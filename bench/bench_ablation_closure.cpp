// Section 3 closure ablation. The paper materializes the transitive
// closure of the constraint set at precompilation and notes that the
// simple class-subset relevance test is complete "only because the
// transitive closures are materialized". This bench quantifies both
// halves of the trade-off:
//
//  1. COMPLETENESS: a chain c0 -> c1 -> ... -> cd of constraints hops
//     through intermediate classes. A query touching only the chain's
//     endpoint classes can exploit the derived endpoint-to-endpoint
//     constraint when the closure is materialized; without it, the
//     intermediate constraints fail the class-subset relevance test and
//     the transformation is silently missed.
//  2. COST: the closure is paid once at Engine::Open (and inflates the
//     clause count); dynamic chaining is cheap per call but must run
//     for every query — and still cannot recover the missed
//     transformations under class-based relevance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace sqopt {
namespace {

using bench::Unwrap;

// Chain hopping cargo -> vehicle -> driver -> department -> supplier.
// Depth d uses the first d hops; the query touches only cargo and the
// hop-d class' *endpoint pair* — here we always query {cargo, supplier}
// (adjacent via "supplies"), so only the FULL chain (d = 4) closes the
// gap; shorter chains are exercised with matching endpoint queries.
struct ChainSpec {
  std::vector<std::string> clauses;
  std::string query_text;
};

ChainSpec MakeChain(int depth) {
  // Hop attributes, one per class along the chain.
  const char* attrs[] = {"cargo.quantity", "vehicle.capacity",
                         "driver.licenseClass", "department.budget",
                         "supplier.rating"};
  ChainSpec spec;
  for (int i = 0; i < depth; ++i) {
    spec.clauses.push_back("h" + std::to_string(i) + ": " +
                           std::string(attrs[i]) + " >= 500 -> " +
                           std::string(attrs[i + 1]) + " >= 500");
  }
  // Endpoint class pairs adjacent in the experiment schema, per depth:
  //   1: {cargo, vehicle}   via collects
  //   2: {cargo, driver}    via inspects
  //   4: {cargo, supplier}  via supplies
  // (depth 3 has no adjacent endpoint pair; skipped in tables)
  const char* query_by_depth[] = {
      "",  // unused
      "{cargo.code} {} {cargo.quantity >= 500} {collects} "
      "{cargo, vehicle}",
      "{cargo.code} {} {cargo.quantity >= 500} {inspects} "
      "{cargo, driver}",
      "",  // depth 3: see above
      "{cargo.code} {} {cargo.quantity >= 500} {supplies} "
      "{cargo, supplier}",
  };
  spec.query_text = query_by_depth[depth];
  return spec;
}

struct Setup {
  Engine engine;
  Query query;
};

Setup MakeSetup(int depth, bool materialize) {
  ChainSpec spec = MakeChain(depth);
  EngineOptions options;
  options.precompile.materialize_closure = materialize;
  Engine engine =
      Unwrap(Engine::Open(SchemaSource::Experiment(),
                          ConstraintSource::FromText(spec.clauses),
                          std::move(options)));
  Query query = Unwrap(engine.Parse(spec.query_text));
  return Setup{std::move(engine), std::move(query)};
}

void BM_OptimizeWithClosure(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)), true);
  size_t firings = 0;
  for (auto _ : state) {
    QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
    firings = result.report.num_firings;
  }
  state.counters["firings"] = static_cast<double>(firings);
  state.counters["clauses"] =
      static_cast<double>(setup.engine.catalog().clauses().size());
}
BENCHMARK(BM_OptimizeWithClosure)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_OptimizeWithoutClosure(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)), false);
  size_t firings = 0;
  for (auto _ : state) {
    QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
    firings = result.report.num_firings;
  }
  state.counters["firings"] = static_cast<double>(firings);
  state.counters["clauses"] =
      static_cast<double>(setup.engine.catalog().clauses().size());
}
BENCHMARK(BM_OptimizeWithoutClosure)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqopt

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::Unwrap;

  std::printf("=== Closure ablation: completeness of class-based "
              "relevance ===\n");
  std::printf("%6s %14s | %12s %12s | %12s %12s\n", "depth",
              "precompile(us)", "with:relev", "with:fired", "wo:relev",
              "wo:fired");
  bench::BenchJson json("ablation_closure");
  for (int depth : {1, 2, 4}) {
    Setup with_setup = MakeSetup(depth, true);
    Setup without_setup = MakeSetup(depth, false);

    // Precompile cost of the materialized design (one full Open).
    auto t0 = std::chrono::steady_clock::now();
    {
      Setup tmp = MakeSetup(depth, true);
      benchmark::DoNotOptimize(tmp);
    }
    auto t1 = std::chrono::steady_clock::now();

    QueryOutcome with_result =
        Unwrap(with_setup.engine.Analyze(with_setup.query));
    QueryOutcome without_result =
        Unwrap(without_setup.engine.Analyze(without_setup.query));

    std::printf("%6d %14.1f | %12zu %12zu | %12zu %12zu\n", depth,
                std::chrono::duration<double, std::micro>(t1 - t0).count(),
                with_result.report.num_relevant_constraints,
                with_result.report.num_firings,
                without_result.report.num_relevant_constraints,
                without_result.report.num_firings);
    const std::string prefix = "depth" + std::to_string(depth) + "_";
    json.Set(prefix + "with_closure_firings",
             with_result.report.num_firings);
    json.Set(prefix + "without_closure_firings",
             without_result.report.num_firings);
  }
  json.Write();
  std::printf(
      "\nexpected shape: at depth >= 2 the endpoint query sees relevant\n"
      "(derived) constraints and fires transformations ONLY when the\n"
      "closure is materialized — without it the intermediate classes\n"
      "fail the relevance test and the optimizer finds nothing. The\n"
      "cost is a one-time precompile that grows with chain depth.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Section 3 closure ablation. The paper materializes the transitive
// closure of the constraint set at precompilation and notes that the
// simple class-subset relevance test is complete "only because the
// transitive closures are materialized". This bench quantifies both
// halves of the trade-off:
//
//  1. COMPLETENESS: a chain c0 -> c1 -> ... -> cd of constraints hops
//     through intermediate classes. A query touching only the chain's
//     endpoint classes can exploit the derived endpoint-to-endpoint
//     constraint when the closure is materialized; without it, the
//     intermediate constraints fail the class-subset relevance test and
//     the transformation is silently missed.
//  2. COST: the closure is paid once at precompilation (and inflates
//     the clause count); dynamic chaining is cheap per call but must
//     run for every query — and still cannot recover the missed
//     transformations under class-based relevance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "constraints/closure.h"
#include "constraints/constraint_parser.h"
#include "query/query_parser.h"
#include "sqo/optimizer.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

using bench::Check;
using bench::Unwrap;

// Chain hopping cargo -> vehicle -> driver -> department -> supplier.
// Depth d uses the first d hops; the query touches only cargo and the
// hop-d class' *endpoint pair* — here we always query {cargo, supplier}
// (adjacent via "supplies"), so only the FULL chain (d = 4) closes the
// gap; shorter chains are exercised with matching endpoint queries.
struct ChainSpec {
  std::vector<std::string> clauses;
  std::string query_text;
};

ChainSpec MakeChain(int depth) {
  // Hop attributes, one per class along the chain.
  const char* attrs[] = {"cargo.quantity", "vehicle.capacity",
                         "driver.licenseClass", "department.budget",
                         "supplier.rating"};
  // Endpoint class pairs adjacent in the experiment schema, per depth.
  // depth 1: cargo-vehicle (collects); 2: cargo-driver (inspects);
  // 3: cargo-department?? not adjacent -> use driver-department query
  // anchored mid-chain; keep it simple: depths 1, 2, 4 have adjacent
  // endpoints; depth 3 reuses the depth-4 query (the full chain yields
  // the supplier consequent one hop early... no: use vehicle-department
  // via no edge). To stay structurally valid we use these endpoints:
  //   1: {cargo, vehicle}   via collects
  //   2: {cargo, driver}    via inspects
  //   4: {cargo, supplier}  via supplies
  ChainSpec spec;
  for (int i = 0; i < depth; ++i) {
    spec.clauses.push_back("h" + std::to_string(i) + ": " +
                           std::string(attrs[i]) + " >= 500 -> " +
                           std::string(attrs[i + 1]) + " >= 500");
  }
  const char* query_by_depth[] = {
      "",  // unused
      "{cargo.code} {} {cargo.quantity >= 500} {collects} "
      "{cargo, vehicle}",
      "{cargo.code} {} {cargo.quantity >= 500} {inspects} "
      "{cargo, driver}",
      "",  // depth 3 has no adjacent endpoint pair; skipped in tables
      "{cargo.code} {} {cargo.quantity >= 500} {supplies} "
      "{cargo, supplier}",
  };
  spec.query_text = query_by_depth[depth];
  return spec;
}

struct Setup {
  Schema schema;
  std::unique_ptr<ConstraintCatalog> catalog;
  std::unique_ptr<AccessStats> stats;
  Query query;
  std::vector<HornClause> base;
};

std::unique_ptr<Setup> MakeSetup(int depth, bool materialize) {
  auto setup = std::make_unique<Setup>();
  setup->schema = Unwrap(BuildExperimentSchema());
  setup->catalog = std::make_unique<ConstraintCatalog>(&setup->schema);
  setup->stats =
      std::make_unique<AccessStats>(setup->schema.num_classes());
  ChainSpec spec = MakeChain(depth);
  for (const std::string& text : spec.clauses) {
    HornClause clause = Unwrap(ParseConstraint(setup->schema, text));
    setup->base.push_back(clause);
    Check(setup->catalog->AddConstraint(std::move(clause)));
  }
  PrecompileOptions options;
  options.materialize_closure = materialize;
  Check(setup->catalog->Precompile(setup->stats.get(), options));
  setup->query = Unwrap(ParseQuery(setup->schema, spec.query_text));
  return setup;
}

void BM_OptimizeWithClosure(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<int>(state.range(0)), true);
  SemanticOptimizer optimizer(&setup->schema, setup->catalog.get(), nullptr);
  size_t firings = 0;
  for (auto _ : state) {
    OptimizeResult result = Unwrap(optimizer.Optimize(setup->query));
    firings = result.report.num_firings;
  }
  state.counters["firings"] = static_cast<double>(firings);
  state.counters["clauses"] =
      static_cast<double>(setup->catalog->clauses().size());
}
BENCHMARK(BM_OptimizeWithClosure)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_OptimizeWithoutClosure(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<int>(state.range(0)), false);
  SemanticOptimizer optimizer(&setup->schema, setup->catalog.get(), nullptr);
  size_t firings = 0;
  for (auto _ : state) {
    OptimizeResult result = Unwrap(optimizer.Optimize(setup->query));
    firings = result.report.num_firings;
  }
  state.counters["firings"] = static_cast<double>(firings);
  state.counters["clauses"] =
      static_cast<double>(setup->catalog->clauses().size());
}
BENCHMARK(BM_OptimizeWithoutClosure)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqopt

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::Unwrap;

  std::printf("=== Closure ablation: completeness of class-based "
              "relevance ===\n");
  std::printf("%6s %14s | %12s %12s | %12s %12s\n", "depth",
              "precompile(us)", "with:relev", "with:fired", "wo:relev",
              "wo:fired");
  for (int depth : {1, 2, 4}) {
    auto with_setup = MakeSetup(depth, true);
    auto without_setup = MakeSetup(depth, false);

    // Precompile cost of the materialized design.
    auto t0 = std::chrono::steady_clock::now();
    {
      auto tmp = MakeSetup(depth, true);
      benchmark::DoNotOptimize(tmp);
    }
    auto t1 = std::chrono::steady_clock::now();

    SemanticOptimizer opt_with(&with_setup->schema,
                               with_setup->catalog.get(), nullptr);
    SemanticOptimizer opt_without(&without_setup->schema,
                                  without_setup->catalog.get(), nullptr);
    OptimizeResult with_result =
        Unwrap(opt_with.Optimize(with_setup->query));
    OptimizeResult without_result =
        Unwrap(opt_without.Optimize(without_setup->query));

    std::printf("%6d %14.1f | %12zu %12zu | %12zu %12zu\n", depth,
                std::chrono::duration<double, std::micro>(t1 - t0).count(),
                with_result.report.num_relevant_constraints,
                with_result.report.num_firings,
                without_result.report.num_relevant_constraints,
                without_result.report.num_firings);
  }
  std::printf(
      "\nexpected shape: at depth >= 2 the endpoint query sees relevant\n"
      "(derived) constraints and fires transformations ONLY when the\n"
      "closure is materialized — without it the intermediate classes\n"
      "fail the relevance test and the optimizer finds nothing. The\n"
      "cost is a one-time precompile that grows with chain depth.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Section 3 grouping ablation: how many constraints does the optimizer
// fetch per query — and what fraction is irrelevant — under each
// grouping policy, compared against the no-grouping strawman (fetch
// everything, always)? Uses a skewed query stream so the paper's
// least-frequently-accessed enhancement has something to exploit.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::Unwrap;

  Schema schema = Unwrap(BuildExperimentSchema());
  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema, 1, 5);

  // Skewed stream: queries over paths whose FIRST class is drawn
  // Zipf-style, making some classes hot. 500 queries.
  Rng rng(77);
  std::vector<std::vector<ClassId>> stream;
  for (int i = 0; i < 500; ++i) {
    ClassId hot = static_cast<ClassId>(
        rng.SkewedIndex(schema.num_classes(), /*theta=*/1.3));
    // Find a path starting (or ending) at the hot class.
    std::vector<const SchemaPath*> candidates;
    for (const SchemaPath& p : paths) {
      if (p.classes.front() == hot || p.classes.back() == hot) {
        candidates.push_back(&p);
      }
    }
    const SchemaPath* pick = candidates[rng.Index(candidates.size())];
    stream.push_back(pick->classes);
  }

  // Warm access statistics from the stream itself (what a running
  // system would have observed).
  AccessStats access(schema.num_classes());
  for (const auto& classes : stream) access.RecordQuery(classes);

  std::printf("=== Grouping policy ablation (500 skewed queries) ===\n");
  std::printf("%-28s %14s %14s %12s\n", "policy", "retrieved/query",
              "relevant/query", "% irrelevant");

  auto run = [&](const char* label, bool use_grouping,
                 GroupingPolicy policy) {
    ConstraintCatalog catalog(&schema);
    for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
      Check(catalog.AddConstraint(std::move(clause)));
    }
    PrecompileOptions options;
    options.grouping = policy;
    Check(catalog.Precompile(&access, options));

    uint64_t retrieved = 0, relevant = 0;
    for (const auto& classes : stream) {
      std::vector<ConstraintId> fetched;
      if (use_grouping) {
        fetched = catalog.RetrieveForQuery(classes);
      } else {
        // Strawman: every constraint, every query.
        for (ConstraintId id = 0;
             id < static_cast<ConstraintId>(catalog.clauses().size());
             ++id) {
          fetched.push_back(id);
        }
      }
      retrieved += fetched.size();
      relevant += catalog.RelevantConstraints(classes, fetched).size();
    }
    double rq = static_cast<double>(retrieved) / stream.size();
    double vq = static_cast<double>(relevant) / stream.size();
    std::printf("%-28s %14.2f %14.2f %11.1f%%\n", label, rq, vq,
                retrieved > 0
                    ? 100.0 * (1.0 - static_cast<double>(relevant) /
                                         retrieved)
                    : 0.0);
  };

  run("no grouping (fetch all)", false, GroupingPolicy::kArbitrary);
  run("arbitrary", true, GroupingPolicy::kArbitrary);
  run("balanced", true, GroupingPolicy::kBalanced);
  run("least-frequently-accessed", true,
      GroupingPolicy::kLeastFrequentlyAccessed);

  std::printf(
      "\nexpected shape: any grouping beats fetch-all; LFA fetches the\n"
      "fewest irrelevant constraints on the skewed stream (the paper's\n"
      "§3 enhancement).\n");
  return 0;
}

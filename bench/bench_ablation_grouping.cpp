// Section 3 grouping ablation: how many constraints does the optimizer
// fetch per query — and what fraction is irrelevant — under each
// grouping policy, compared against the no-grouping strawman (fetch
// everything, always)? Uses a skewed query stream so the paper's
// least-frequently-accessed enhancement has something to exploit. Each
// policy is an Engine whose access statistics are warmed from the
// stream before Recompile regroups the catalog.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "workload/path_enum.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::OpenExperimentEngine;

  Engine probe = OpenExperimentEngine();
  std::vector<SchemaPath> paths = EnumerateSimplePaths(probe.schema(), 1, 5);

  // Skewed stream: queries over paths whose FIRST class is drawn
  // Zipf-style, making some classes hot. 500 queries.
  Rng rng(77);
  std::vector<std::vector<ClassId>> stream;
  for (int i = 0; i < 500; ++i) {
    ClassId hot = static_cast<ClassId>(
        rng.SkewedIndex(probe.schema().num_classes(), /*theta=*/1.3));
    // Find a path starting (or ending) at the hot class.
    std::vector<const SchemaPath*> candidates;
    for (const SchemaPath& p : paths) {
      if (p.classes.front() == hot || p.classes.back() == hot) {
        candidates.push_back(&p);
      }
    }
    const SchemaPath* pick = candidates[rng.Index(candidates.size())];
    stream.push_back(pick->classes);
  }

  std::printf("=== Grouping policy ablation (500 skewed queries) ===\n");
  std::printf("%-28s %14s %14s %12s\n", "policy", "retrieved/query",
              "relevant/query", "% irrelevant");

  auto run = [&](const char* label, bool use_grouping,
                 GroupingPolicy policy) {
    Engine engine = OpenExperimentEngine();
    // Warm access statistics from the stream itself (what a running
    // system would have observed), then regroup under the policy.
    for (const auto& classes : stream) {
      engine.mutable_access_stats()->RecordQuery(classes);
    }
    PrecompileOptions precompile;
    precompile.grouping = policy;
    Check(engine.Recompile(precompile));
    const ConstraintCatalog& catalog = engine.catalog();

    uint64_t retrieved = 0, relevant = 0;
    for (const auto& classes : stream) {
      std::vector<ConstraintId> fetched;
      if (use_grouping) {
        fetched = catalog.RetrieveForQuery(classes);
      } else {
        // Strawman: every constraint, every query.
        for (ConstraintId id = 0;
             id < static_cast<ConstraintId>(catalog.clauses().size());
             ++id) {
          fetched.push_back(id);
        }
      }
      retrieved += fetched.size();
      relevant += catalog.RelevantConstraints(classes, fetched).size();
    }
    double rq = static_cast<double>(retrieved) / stream.size();
    double vq = static_cast<double>(relevant) / stream.size();
    std::printf("%-28s %14.2f %14.2f %11.1f%%\n", label, rq, vq,
                retrieved > 0
                    ? 100.0 * (1.0 - static_cast<double>(relevant) /
                                         retrieved)
                    : 0.0);
    return rq;
  };

  bench::BenchJson json("ablation_grouping");
  json.Set("queries", stream.size());
  json.Set("fetch_all_retrieved_per_query",
           run("no grouping (fetch all)", false, GroupingPolicy::kArbitrary));
  json.Set("arbitrary_retrieved_per_query",
           run("arbitrary", true, GroupingPolicy::kArbitrary));
  json.Set("balanced_retrieved_per_query",
           run("balanced", true, GroupingPolicy::kBalanced));
  json.Set("lfa_retrieved_per_query",
           run("least-frequently-accessed", true,
               GroupingPolicy::kLeastFrequentlyAccessed));
  json.Write();

  std::printf(
      "\nexpected shape: any grouping beats fetch-all; LFA fetches the\n"
      "fewest irrelevant constraints on the skewed stream (the paper's\n"
      "§3 enhancement).\n");
  return 0;
}

// Tag-policy ablation: Tables 3.1/3.2 (index-aware — an intra-class
// consequent on an INDEXED attribute is tagged optional, not redundant)
// versus the §3.3 pseudocode simplification that ignores indexes. The
// index-aware policy keeps introduced indexed predicates alive long
// enough for the cost model to exploit them as access paths; the
// simplification silently discards exactly those wins.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::Unwrap;

  Schema schema = Unwrap(BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
    Check(catalog.AddConstraint(std::move(clause)));
  }
  AccessStats access(schema.num_classes());
  Check(catalog.Precompile(&access));

  auto store =
      Unwrap(GenerateDatabase(schema, DbSpec{"TP", 208, 616}, 33));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema, 1, 5);
  QueryGenOptions gen_options;
  gen_options.trigger_probability = 0.9;
  QueryGenerator gen(&schema, 33, gen_options);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, 30));

  std::printf("=== Tag-policy ablation (30 queries, DB4-sized store) "
              "===\n\n");
  std::printf("%-16s %16s %18s %20s\n", "policy", "mean exec cost",
              "indexed introduced", "intra made redundant");

  for (TagPolicy policy :
       {TagPolicy::kIndexAware, TagPolicy::kIgnoreIndexes}) {
    OptimizerOptions options;
    options.tag_policy = policy;
    SemanticOptimizer optimizer(&schema, &catalog, &cost_model, options);

    double total_cost = 0.0;
    size_t indexed_introduced = 0, redundant_effects = 0;
    for (const Query& query : queries) {
      OptimizeResult result = Unwrap(optimizer.Optimize(query));
      if (!result.empty_result) {
        ExecutionMeter meter;
        Check(ExecuteQuery(*store, result.query, &meter).status());
        total_cost += meter.CostUnits();
      }
      for (const TransformStep& step : result.report.steps) {
        if (step.index_introduction) ++indexed_introduced;
        for (const auto& [pred, tag] : step.effects) {
          if (tag == PredicateTag::kRedundant) ++redundant_effects;
        }
      }
    }
    std::printf("%-16s %16.2f %18zu %20zu\n",
                policy == TagPolicy::kIndexAware ? "index-aware"
                                                 : "ignore-indexes",
                total_cost / queries.size(), indexed_introduced,
                redundant_effects);
  }

  std::printf(
      "\nexpected shape: index-aware introduces indexed predicates the\n"
      "plan builder can drive scans with, yielding lower mean execution\n"
      "cost; ignore-indexes tags every intra consequent redundant and\n"
      "forgoes those access paths (more redundant effects, higher "
      "cost).\n");
  return 0;
}

// Tag-policy ablation: Tables 3.1/3.2 (index-aware — an intra-class
// consequent on an INDEXED attribute is tagged optional, not redundant)
// versus the §3.3 pseudocode simplification that ignores indexes. The
// index-aware policy keeps introduced indexed predicates alive long
// enough for the cost model to exploit them as access paths; the
// simplification silently discards exactly those wins. One Engine per
// policy; the measured execution cost comes from Engine::Execute's
// meter.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::OpenExperimentEngine;
  using bench::Unwrap;

  const DbSpec spec{"TP", 208, 616};
  constexpr uint64_t kSeed = 33;

  Engine probe = OpenExperimentEngine();
  std::vector<SchemaPath> paths = EnumerateSimplePaths(probe.schema(), 1, 5);
  QueryGenOptions gen_options;
  gen_options.trigger_probability = 0.9;
  QueryGenerator gen(&probe.schema(), kSeed, gen_options);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, 30));

  std::printf("=== Tag-policy ablation (30 queries, DB4-sized store) "
              "===\n\n");
  std::printf("%-16s %16s %18s %20s\n", "policy", "mean exec cost",
              "indexed introduced", "intra made redundant");

  bench::BenchJson json("ablation_tagpolicy");
  json.Set("queries", queries.size());
  for (TagPolicy policy :
       {TagPolicy::kIndexAware, TagPolicy::kIgnoreIndexes}) {
    EngineOptions options;
    options.optimizer.tag_policy = policy;
    Engine engine = OpenExperimentEngine(options);
    Check(engine.Load(DataSource::Generated(spec, kSeed)));

    double total_cost = 0.0;
    size_t indexed_introduced = 0, redundant_effects = 0;
    for (const Query& query : queries) {
      QueryOutcome outcome = Unwrap(engine.Execute(query));
      total_cost += outcome.meter.CostUnits();
      for (const TransformStep& step : outcome.report.steps) {
        if (step.index_introduction) ++indexed_introduced;
        for (const auto& [pred, tag] : step.effects) {
          if (tag == PredicateTag::kRedundant) ++redundant_effects;
        }
      }
    }
    std::printf("%-16s %16.2f %18zu %20zu\n",
                policy == TagPolicy::kIndexAware ? "index-aware"
                                                 : "ignore-indexes",
                total_cost / queries.size(), indexed_introduced,
                redundant_effects);
    const std::string prefix = policy == TagPolicy::kIndexAware
                                   ? "index_aware_"
                                   : "ignore_indexes_";
    json.Set(prefix + "mean_exec_cost", total_cost / queries.size());
    json.Set(prefix + "indexed_introduced", indexed_introduced);
  }
  json.Write();

  std::printf(
      "\nexpected shape: index-aware introduces indexed predicates the\n"
      "plan builder can drive scans with, yielding lower mean execution\n"
      "cost; ignore-indexes tags every intra consequent redundant and\n"
      "forgoes those access paths (more redundant effects, higher "
      "cost).\n");
  return 0;
}

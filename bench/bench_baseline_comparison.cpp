// Section 4 comparison: the delayed-choice algorithm (via the Engine)
// versus (a) the "straight-forward" immediately-apply approach over
// many constraint orders, and (b) a bounded best-first search [SSD88].
// Reports final estimated costs and work counters; the paper's claim is
// that the delayed-choice outcome is at least as good as immediate-
// apply under any order, at polynomial cost. The baselines borrow the
// Engine's catalog and cost model — they are alternative optimizers,
// not alternative stacks.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/best_first_optimizer.h"
#include "baseline/immediate_optimizer.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::OpenExperimentEngine;
  using bench::Unwrap;

  Engine engine = OpenExperimentEngine();
  Check(engine.Load(DataSource::Generated(DbSpec{"BC", 208, 616}, 13)));

  std::vector<SchemaPath> paths = EnumerateSimplePaths(engine.schema(), 2, 5);
  QueryGenerator gen(&engine.schema(), 13);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, 20));

  const ConstraintCatalog& catalog = engine.catalog();
  const CostModelInterface& cost_model = *engine.cost_model();
  ImmediateApplyOptimizer immediate(&engine.schema(), &catalog, &cost_model);
  BestFirstOptimizer best_first(&engine.schema(), &catalog, &cost_model,
                                /*max_states=*/128);

  std::printf("=== Delayed-choice vs baselines (20 queries) ===\n\n");
  std::printf("%4s %12s %22s %20s %10s\n", "q", "delayed",
              "immediate(min..max/8 orders)", "best-first(states)",
              "dominates");

  Rng rng(99);
  int dominated = 0;
  double sum_delayed = 0, sum_immediate = 0, sum_bf = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& query = queries[qi];

    QueryOutcome delayed = Unwrap(engine.Analyze(query));
    double delayed_cost = delayed.answered_without_database
                              ? 0.0
                              : cost_model.QueryCost(delayed.transformed);

    // Immediate-apply under 8 random constraint orders.
    std::vector<ConstraintId> order =
        catalog.RelevantForQuery(query.classes);
    double imm_min = 0, imm_max = 0;
    for (int perm = 0; perm < 8; ++perm) {
      rng.Shuffle(&order);
      ImmediateResult r = Unwrap(immediate.OptimizeWithOrder(query, order));
      double c = cost_model.QueryCost(r.query);
      if (perm == 0) {
        imm_min = imm_max = c;
      } else {
        imm_min = std::min(imm_min, c);
        imm_max = std::max(imm_max, c);
      }
    }

    BestFirstResult bf = Unwrap(best_first.Optimize(query));

    bool dom = delayed_cost <= imm_min + 1e-9;
    dominated += dom ? 1 : 0;
    sum_delayed += delayed_cost;
    sum_immediate += imm_min;
    sum_bf += bf.best_cost;
    std::printf("%4zu %12.2f %12.2f..%-10.2f %12.2f(%3zu) %10s\n", qi + 1,
                delayed_cost, imm_min, imm_max, bf.best_cost,
                bf.states_explored, dom ? "yes" : "NO");
  }

  std::printf("\nmean final cost: delayed %.2f | immediate(best order) "
              "%.2f | best-first %.2f\n",
              sum_delayed / queries.size(), sum_immediate / queries.size(),
              sum_bf / queries.size());
  std::printf("delayed-choice dominated immediate-apply on %d/%zu "
              "queries\n",
              dominated, queries.size());

  bench::BenchJson json("baseline_comparison");
  json.Set("queries", queries.size());
  json.Set("mean_cost_delayed", sum_delayed / queries.size());
  json.Set("mean_cost_immediate_best", sum_immediate / queries.size());
  json.Set("mean_cost_best_first", sum_bf / queries.size());
  json.Set("dominated", dominated);
  json.Write();
  std::printf(
      "\nexpected shape: delayed <= immediate for every order tried\n"
      "(the §4 dominance argument), best-first can match delayed but\n"
      "explores up to its state budget to do so.\n");
  return 0;
}

// Section 4 comparison: the delayed-choice algorithm versus (a) the
// "straight-forward" immediately-apply approach over many constraint
// orders, and (b) a bounded best-first search [SSD88]. Reports final
// estimated costs and work counters; the paper's claim is that the
// delayed-choice outcome is at least as good as immediate-apply under
// any order, at polynomial cost.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/best_first_optimizer.h"
#include "baseline/immediate_optimizer.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/plan_builder.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::Unwrap;

  Schema schema = Unwrap(BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
    Check(catalog.AddConstraint(std::move(clause)));
  }
  AccessStats access(schema.num_classes());
  Check(catalog.Precompile(&access));

  auto store =
      Unwrap(GenerateDatabase(schema, DbSpec{"BC", 208, 616}, 13));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema, 2, 5);
  QueryGenerator gen(&schema, 13);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, 20));

  SemanticOptimizer sqo(&schema, &catalog, &cost_model);
  ImmediateApplyOptimizer immediate(&schema, &catalog, &cost_model);
  BestFirstOptimizer best_first(&schema, &catalog, &cost_model,
                                /*max_states=*/128);

  std::printf("=== Delayed-choice vs baselines (20 queries) ===\n\n");
  std::printf("%4s %12s %22s %20s %10s\n", "q", "delayed",
              "immediate(min..max/8 orders)", "best-first(states)",
              "dominates");

  Rng rng(99);
  int dominated = 0;
  double sum_delayed = 0, sum_immediate = 0, sum_bf = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& query = queries[qi];

    OptimizeResult delayed = Unwrap(sqo.Optimize(query));
    double delayed_cost =
        delayed.empty_result ? 0.0 : cost_model.QueryCost(delayed.query);

    // Immediate-apply under 8 random constraint orders.
    std::vector<ConstraintId> order =
        catalog.RelevantForQuery(query.classes);
    double imm_min = 0, imm_max = 0;
    for (int perm = 0; perm < 8; ++perm) {
      rng.Shuffle(&order);
      ImmediateResult r = Unwrap(immediate.OptimizeWithOrder(query, order));
      double c = cost_model.QueryCost(r.query);
      if (perm == 0) {
        imm_min = imm_max = c;
      } else {
        imm_min = std::min(imm_min, c);
        imm_max = std::max(imm_max, c);
      }
    }

    BestFirstResult bf = Unwrap(best_first.Optimize(query));

    bool dom = delayed_cost <= imm_min + 1e-9;
    dominated += dom ? 1 : 0;
    sum_delayed += delayed_cost;
    sum_immediate += imm_min;
    sum_bf += bf.best_cost;
    std::printf("%4zu %12.2f %12.2f..%-10.2f %12.2f(%3zu) %10s\n", qi + 1,
                delayed_cost, imm_min, imm_max, bf.best_cost,
                bf.states_explored, dom ? "yes" : "NO");
  }

  std::printf("\nmean final cost: delayed %.2f | immediate(best order) "
              "%.2f | best-first %.2f\n",
              sum_delayed / queries.size(), sum_immediate / queries.size(),
              sum_bf / queries.size());
  std::printf("delayed-choice dominated immediate-apply on %d/%zu "
              "queries\n",
              dominated, queries.size());
  std::printf(
      "\nexpected shape: delayed <= immediate for every order tried\n"
      "(the §4 dominance argument), best-first can match delayed but\n"
      "explores up to its state budget to do so.\n");
  return 0;
}

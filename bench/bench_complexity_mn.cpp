// Section 4 complexity claim: the query transformation step is bounded
// by O(m·n) — m distinct predicates, n relevant constraints. Sweeps m
// and n independently with synthetic non-chaining constraint sets and
// reports both wall time and the algorithm's own work counters (cell
// writes), which must scale at most linearly in each dimension.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "constraints/constraint_parser.h"
#include "query/query_parser.h"
#include "sqo/optimizer.h"
#include "workload/dbgen.h"

namespace sqopt {
namespace {

using bench::Check;
using bench::Unwrap;

struct Setup {
  Schema schema;
  std::unique_ptr<ConstraintCatalog> catalog;
  std::unique_ptr<AccessStats> stats;
  Query query;
};

// n fireable constraints (antecedent = the shared query predicate,
// consequents distinct so nothing chains) plus `extra_preds` inert query
// predicates that inflate m without enabling transformations.
std::unique_ptr<Setup> MakeSetup(int n, int extra_preds) {
  auto setup = std::make_unique<Setup>();
  setup->schema = Unwrap(BuildExperimentSchema());
  setup->catalog = std::make_unique<ConstraintCatalog>(&setup->schema);
  setup->stats =
      std::make_unique<AccessStats>(setup->schema.num_classes());

  for (int i = 0; i < n; ++i) {
    std::string clause = "s" + std::to_string(i) +
                         ": cargo.quantity >= 500 -> cargo.weight >= " +
                         std::to_string(10000 + i);
    Check(setup->catalog->AddConstraint(
        Unwrap(ParseConstraint(setup->schema, clause))));
  }
  Check(setup->catalog->Precompile(setup->stats.get()));

  std::string preds = "cargo.quantity >= 500";
  for (int i = 0; i < extra_preds; ++i) {
    preds += ", cargo.quantity <= " + std::to_string(20000 + i);
  }
  setup->query = Unwrap(
      ParseQuery(setup->schema, "{cargo.code} {} {" + preds + "} {} {cargo}"));
  return setup;
}

void BM_TransformScalesWithN(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto setup = MakeSetup(n, /*extra_preds=*/4);
  SemanticOptimizer optimizer(&setup->schema, setup->catalog.get(), nullptr);
  uint64_t writes = 0;
  size_t m = 0;
  for (auto _ : state) {
    OptimizeResult result = Unwrap(optimizer.Optimize(setup->query));
    writes = result.report.cell_writes;
    m = result.report.num_distinct_predicates;
  }
  state.counters["n"] = n;
  state.counters["m"] = static_cast<double>(m);
  state.counters["cell_writes"] = static_cast<double>(writes);
  state.counters["writes_per_mn"] =
      static_cast<double>(writes) / (static_cast<double>(m) * n);
}

BENCHMARK(BM_TransformScalesWithN)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_TransformScalesWithM(benchmark::State& state) {
  int extra = static_cast<int>(state.range(0));
  auto setup = MakeSetup(/*n=*/16, extra);
  SemanticOptimizer optimizer(&setup->schema, setup->catalog.get(), nullptr);
  uint64_t writes = 0;
  size_t m = 0;
  for (auto _ : state) {
    OptimizeResult result = Unwrap(optimizer.Optimize(setup->query));
    writes = result.report.cell_writes;
    m = result.report.num_distinct_predicates;
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["cell_writes"] = static_cast<double>(writes);
}

BENCHMARK(BM_TransformScalesWithM)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqopt

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::Unwrap;

  // Headline check printed before the precise timings: cell writes per
  // (m·n) must stay bounded by a small constant as n grows 32x.
  std::printf("=== O(m*n) work bound ===\n");
  std::printf("%6s %6s %12s %14s\n", "n", "m", "cell_writes",
              "writes/(m*n)");
  for (int n : {4, 8, 16, 32, 64, 128}) {
    auto setup = MakeSetup(n, 4);
    SemanticOptimizer optimizer(&setup->schema, setup->catalog.get(),
                                nullptr);
    OptimizeResult result = Unwrap(optimizer.Optimize(setup->query));
    size_t m = result.report.num_distinct_predicates;
    std::printf("%6d %6zu %12llu %14.3f\n", n, m,
                static_cast<unsigned long long>(result.report.cell_writes),
                static_cast<double>(result.report.cell_writes) /
                    (static_cast<double>(m) * n));
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

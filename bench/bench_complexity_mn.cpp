// Section 4 complexity claim: the query transformation step is bounded
// by O(m·n) — m distinct predicates, n relevant constraints. Sweeps m
// and n independently with synthetic non-chaining constraint sets and
// reports both wall time and the algorithm's own work counters (cell
// writes), which must scale at most linearly in each dimension.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace sqopt {
namespace {

using bench::Unwrap;

struct Setup {
  Engine engine;
  Query query;
};

// n fireable constraints (antecedent = the shared query predicate,
// consequents distinct so nothing chains) plus `extra_preds` inert query
// predicates that inflate m without enabling transformations.
Setup MakeSetup(int n, int extra_preds) {
  std::vector<std::string> clauses;
  clauses.reserve(n);
  for (int i = 0; i < n; ++i) {
    clauses.push_back("s" + std::to_string(i) +
                      ": cargo.quantity >= 500 -> cargo.weight >= " +
                      std::to_string(10000 + i));
  }
  Engine engine = Unwrap(Engine::Open(
      SchemaSource::Experiment(),
      ConstraintSource::FromText(std::move(clauses))));

  std::string preds = "cargo.quantity >= 500";
  for (int i = 0; i < extra_preds; ++i) {
    preds += ", cargo.quantity <= " + std::to_string(20000 + i);
  }
  Query query = Unwrap(
      engine.Parse("{cargo.code} {} {" + preds + "} {} {cargo}"));
  return Setup{std::move(engine), std::move(query)};
}

void BM_TransformScalesWithN(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Setup setup = MakeSetup(n, /*extra_preds=*/4);
  uint64_t writes = 0;
  size_t m = 0;
  for (auto _ : state) {
    QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
    writes = result.report.cell_writes;
    m = result.report.num_distinct_predicates;
  }
  state.counters["n"] = n;
  state.counters["m"] = static_cast<double>(m);
  state.counters["cell_writes"] = static_cast<double>(writes);
  state.counters["writes_per_mn"] =
      static_cast<double>(writes) / (static_cast<double>(m) * n);
}

BENCHMARK(BM_TransformScalesWithN)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_TransformScalesWithM(benchmark::State& state) {
  int extra = static_cast<int>(state.range(0));
  Setup setup = MakeSetup(/*n=*/16, extra);
  uint64_t writes = 0;
  size_t m = 0;
  for (auto _ : state) {
    QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
    writes = result.report.cell_writes;
    m = result.report.num_distinct_predicates;
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["cell_writes"] = static_cast<double>(writes);
}

BENCHMARK(BM_TransformScalesWithM)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqopt

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::Unwrap;

  // Headline check printed before the precise timings: cell writes per
  // (m·n) must stay bounded by a small constant as n grows 32x.
  std::printf("=== O(m*n) work bound ===\n");
  std::printf("%6s %6s %12s %14s\n", "n", "m", "cell_writes",
              "writes/(m*n)");
  bench::BenchJson json("complexity_mn");
  double max_writes_per_mn = 0.0;
  for (int n : {4, 8, 16, 32, 64, 128}) {
    Setup setup = MakeSetup(n, 4);
    QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
    size_t m = result.report.num_distinct_predicates;
    double writes_per_mn = static_cast<double>(result.report.cell_writes) /
                           (static_cast<double>(m) * n);
    max_writes_per_mn = std::max(max_writes_per_mn, writes_per_mn);
    std::printf("%6d %6zu %12llu %14.3f\n", n, m,
                static_cast<unsigned long long>(result.report.cell_writes),
                writes_per_mn);
  }
  json.Set("max_writes_per_mn", max_writes_per_mn);
  json.Write();
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Durability bench: what persistence costs on the write path and what
// it buys on startup. Measures (1) commit latency through Engine::Apply
// with the WAL fsync on vs off, split into clone/WAL/fsync phases from
// the per-commit ApplyOutcome timers, (2) Checkpoint time (fold the log
// into a fresh snapshot), and (3) cold-open time — Engine::Open(dir) on a
// checkpointed 40k-row database, which deserializes the precompiled
// catalog, extents, indexes, and statistics — against the full re-Load
// path (constraint closure precompilation + data generation + stats
// collection) it replaces. Verifies the reopened engine answers the
// query pool identically to the loaded one before reporting. Emits
// BENCH_durability.json for the bench-smoke CI regression gate.
//
// Flags:
//   --quick        fewer commits/checkpoints (CI smoke mode; same DB)
//   --commits=N    commit-latency sample count per fsync mode
//   --out=PATH     JSON output path (default BENCH_durability.json)
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "workload/mutation_script.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - start)
      .count();
}

// Mean per-commit cost of `n` small (4-update) batches, split into the
// phases the engine reports per commit: snapshot clone, WAL encode +
// write (fsync excluded), and the fsync itself. `total_us` is the
// caller-observed wall clock per Apply.
struct CommitTiming {
  double total_us = 0;
  double clone_us = 0;
  double wal_us = 0;    // Append minus fsync
  double fsync_us = 0;  // fsync() alone; 0 with the flush off
};

CommitTiming MeasureCommits(sqopt::Engine* engine, int n, uint64_t seed) {
  using namespace sqopt;
  const Schema& schema = engine->schema();
  const ClassId supplier = schema.FindClass("supplier");
  const AttrRef rating = schema.ResolveQualified("supplier.rating").value();
  const int64_t rows = engine->store()->NumLiveObjects(supplier);
  Rng rng(seed);
  uint64_t clone = 0, wal = 0, fsync = 0;
  const auto start = Clock::now();
  for (int i = 0; i < n; ++i) {
    MutationBatch batch;
    for (int j = 0; j < 4; ++j) {
      int64_t row = rng.UniformInt(0, rows - 1);
      int seg = SegmentOfRow(row);
      batch.Update(supplier, row, rating.attr_id,
                   Value::Int(seg == 0 ? rng.UniformInt(8, 10)
                                       : rng.UniformInt(1, 7)));
    }
    ApplyOutcome out = bench::Unwrap(engine->Apply(batch));
    clone += out.clone_micros;
    wal += out.wal_micros - out.fsync_micros;
    fsync += out.fsync_micros;
  }
  CommitTiming t;
  t.total_us = MsSince(start) * 1000.0 / n;
  t.clone_us = static_cast<double>(clone) / n;
  t.wal_us = static_cast<double>(wal) / n;
  t.fsync_us = static_cast<double>(fsync) / n;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::BenchJson;
  using bench::Check;
  using bench::Unwrap;

  bool quick = false;
  int commits = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--commits=", 10) == 0) {
      commits = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  // 5 classes x 8000 = 40k rows — the acceptance-scale database; quick
  // mode trims only the repetition counts.
  const DbSpec spec{"durability", 8000, 12000};
  if (commits <= 0) commits = quick ? 24 : 96;
  constexpr uint64_t kSeed = 20260729;
  const std::string dir =
      (fs::temp_directory_path() /
       ("sqopt_bench_durability_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  std::printf("=== Durability (%lld-row DB, %d commits/mode) ===\n",
              static_cast<long long>(spec.class_cardinality * 5), commits);

  // Full re-Load path: what every restart pays WITHOUT persistence —
  // rebuild the catalog (closure precompilation), regenerate the data,
  // recollect statistics + histograms.
  const auto load_start = Clock::now();
  Engine engine = bench::OpenExperimentEngine();
  Check(engine.Load(DataSource::Generated(spec, kSeed)));
  const double load_ms = MsSince(load_start);

  const auto save_start = Clock::now();
  Check(engine.Save(dir));
  const double save_ms = MsSince(save_start);

  // Commit latency, fsync on (the default DurabilityOptions).
  const CommitTiming fsync_on = MeasureCommits(&engine, commits, kSeed);

  // Same stream with the WAL flush off.
  {
    ServeOptions serve = engine.options().serve;
    serve.durability.fsync = false;
    engine.SetServeOptions(serve);
  }
  const CommitTiming fsync_off =
      MeasureCommits(&engine, commits, kSeed ^ 0xF);

  // Checkpoint: fold the log (2 * commits records) into a new snapshot.
  const auto ckpt_start = Clock::now();
  Check(engine.Checkpoint());
  const double checkpoint_ms = MsSince(ckpt_start);

  // Cold open of the checkpointed directory.
  const auto open_start = Clock::now();
  Engine reopened = Unwrap(Engine::Open(dir));
  const double cold_open_ms = MsSince(open_start);

  // Correctness gate before any number leaves this process: identical
  // catalog size, versions, and query answers.
  int identical = 1;
  if (reopened.data_version() != engine.data_version() ||
      reopened.catalog().num_derived() != engine.catalog().num_derived()) {
    identical = 0;
  }
  for (const std::string& text : MutationScript::QueryPool()) {
    QueryOutcome a = Unwrap(engine.Execute(text));
    QueryOutcome b = Unwrap(reopened.Execute(text));
    if (!a.rows.SameDistinctRows(b.rows)) identical = 0;
  }

  const double open_speedup = cold_open_ms > 0 ? load_ms / cold_open_ms : 0;
  std::printf(
      "load %.0f ms, save %.0f ms, cold open %.0f ms (%.1fx faster than "
      "re-Load), checkpoint %.0f ms\n"
      "commit %.0f us total (fsync on: clone %.0f + wal %.0f + fsync %.0f) "
      "/ %.0f us (no fsync), identical=%d\n",
      load_ms, save_ms, cold_open_ms, open_speedup, checkpoint_ms,
      fsync_on.total_us, fsync_on.clone_us, fsync_on.wal_us,
      fsync_on.fsync_us, fsync_off.total_us, identical);
  fs::remove_all(dir);

  BenchJson json("durability");
  json.Set("quick", quick);
  json.Set("db_rows", spec.class_cardinality * 5);
  json.Set("commits_per_mode", commits);
  json.Set("load_ms", load_ms);
  json.Set("save_ms", save_ms);
  json.Set("cold_open_ms", cold_open_ms);
  json.Set("open_speedup", open_speedup);
  json.Set("checkpoint_ms", checkpoint_ms);
  // Phase split of the fsync-on commit (totals stay for the gate):
  // clone = delta COW snapshot, wal = record encode + write, fsync =
  // the flush itself.
  json.Set("commit_fsync_us", fsync_on.total_us);
  json.Set("commit_clone_us", fsync_on.clone_us);
  json.Set("commit_wal_us", fsync_on.wal_us);
  json.Set("commit_sync_us", fsync_on.fsync_us);
  json.Set("commit_nofsync_us", fsync_off.total_us);
  json.Set("identical", identical);
  json.Set("final_version", engine.data_version());
  json.Write(out_path);
  return identical == 1 ? 0 : 1;
}

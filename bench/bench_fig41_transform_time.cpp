// Figure 4.1 reproduction: query transformation time as a function of
// the number of object classes in the query (x-axis, 1..5), one series
// per number of relevant constraints (1, 5, 9) — the paper's three
// curves. Also registered as google-benchmark timings for precise
// per-configuration numbers.
//
// The constraint sets are built so that exactly `k` constraints are
// relevant to the c-class path query and none of them chain (the
// closure adds nothing), keeping n exactly at the intended value.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace sqopt {
namespace {

using bench::Unwrap;

// Path through the experiment schema covering up to 5 classes:
//   cargo -collects- vehicle -drives- driver -belongsTo- department
//         -shipsTo- supplier
const char* kPathClasses[] = {"cargo", "vehicle", "driver", "department",
                              "supplier"};
const char* kPathRels[] = {"collects", "drives", "belongsTo", "shipsTo"};
// One integer attribute per class used for synthetic consequents. None
// of them is "quantity", so constraints never chain through the shared
// antecedent below.
const char* kConsequentAttr[] = {"cargo.weight", "vehicle.capacity",
                                 "driver.licenseClass",
                                 "department.budget", "supplier.rating"};

struct Setup {
  Engine engine;
  Query query;
};

// Builds a query over the first `num_classes` path classes and an
// engine whose catalog holds exactly `num_constraints` relevant,
// fireable constraints.
Setup MakeSetup(int num_classes, int num_constraints) {
  // Constraints: shared antecedent (the query predicate), consequents
  // cycling over the query's classes with distinct constants.
  std::vector<std::string> clauses;
  clauses.reserve(num_constraints);
  for (int i = 0; i < num_constraints; ++i) {
    std::string consequent = std::string(kConsequentAttr[i % num_classes]) +
                             " >= " + std::to_string(1000 + i);
    clauses.push_back("f" + std::to_string(i) +
                      ": cargo.quantity >= 500 -> " + consequent);
  }
  Engine engine = Unwrap(Engine::Open(
      SchemaSource::Experiment(),
      ConstraintSource::FromText(std::move(clauses))));

  // Query text.
  std::string classes, rels;
  for (int i = 0; i < num_classes; ++i) {
    if (i) classes += ", ";
    classes += kPathClasses[i];
    if (i > 0) {
      if (i > 1) rels += ", ";
      rels += kPathRels[i - 1];
    }
  }
  std::string text = "{cargo.code} {} {cargo.quantity >= 500} {" + rels +
                     "} {" + classes + "}";
  Query query = Unwrap(engine.Parse(text));
  return Setup{std::move(engine), std::move(query)};
}

void BM_TransformTime(benchmark::State& state) {
  int num_classes = static_cast<int>(state.range(0));
  int num_constraints = static_cast<int>(state.range(1));
  Setup setup = MakeSetup(num_classes, num_constraints);

  size_t relevant = 0, firings = 0;
  for (auto _ : state) {
    QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
    benchmark::DoNotOptimize(result);
    relevant = result.report.num_relevant_constraints;
    firings = result.report.num_firings;
  }
  state.counters["relevant_constraints"] = static_cast<double>(relevant);
  state.counters["firings"] = static_cast<double>(firings);
}

BENCHMARK(BM_TransformTime)
    ->ArgNames({"classes", "constraints"})
    ->ArgsProduct({{1, 2, 3, 4, 5}, {1, 5, 9}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sqopt

// Prints the Figure 4.1 series (transformation time vs #classes, one
// row per relevant-constraint count) before handing over to the
// google-benchmark runner.
int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::Unwrap;

  std::printf("=== Figure 4.1: query transformation time (us) ===\n");
  std::printf("%-14s", "#constraints");
  for (int c = 1; c <= 5; ++c) std::printf("  %d-class", c);
  std::printf("\n");
  bench::BenchJson json("fig41_transform_time");
  for (int k : {1, 5, 9}) {
    std::printf("%-14d", k);
    for (int c = 1; c <= 5; ++c) {
      Setup setup = MakeSetup(c, k);
      // Median of repeated runs.
      std::vector<int64_t> times;
      for (int rep = 0; rep < 51; ++rep) {
        QueryOutcome result = Unwrap(setup.engine.Analyze(setup.query));
        times.push_back(result.report.total_ns);
      }
      std::sort(times.begin(), times.end());
      double median_us = times[times.size() / 2] / 1000.0;
      std::printf("  %7.1f", median_us);
      // Corners of the paper's figure: the cheapest and the costliest
      // configuration.
      if ((c == 1 && k == 1) || (c == 5 && k == 9)) {
        json.Set("c" + std::to_string(c) + "_k" + std::to_string(k) +
                     "_median_us",
                 median_us);
      }
    }
    std::printf("\n");
  }
  json.Write();
  std::printf("\n(expected shape: grows with #classes in the query and,\n"
              " more mildly, with the number of relevant constraints —\n"
              " the paper reports <0.4 s per query on a SUN-3/160.)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Machine-readable bench summaries. Every bench binary ends by
// emitting one flat JSON object: written to BENCH_<name>.json in the
// working directory and echoed to stdout as a single
// "BENCH_JSON <path> <object>" line. This is the stable contract the
// bench-smoke CI job consumes (artifact upload + regression gate), so
// renaming fields is a breaking change — add, don't rename.
#ifndef SQOPT_BENCH_BENCH_JSON_H_
#define SQOPT_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sqopt::bench {

class BenchJson {
 public:
  // `name` is the file stem: BenchJson("serve") -> BENCH_serve.json.
  // Every summary records the machine's core count so the regression
  // gate can skip parallelism-dependent metrics on boxes that cannot
  // express them (a 1-core CI runner can't show a scan speedup).
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    Set("bench", name_);
    unsigned cores = std::thread::hardware_concurrency();
    Set("cores", cores == 0 ? 1u : cores);
  }

  void Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void Set(const std::string& key, const char* value) {
    Set(key, std::string(value));
  }
  void Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Set(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      fields_.emplace_back(key, "null");
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  // One template for every integer width; bool and double take the
  // exact-match overloads above.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  void Set(const std::string& key, T value) {
    fields_.emplace_back(key, std::to_string(value));
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + Escape(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

  // Writes BENCH_<name>.json (or `path` when given) and prints the
  // summary line. Returns false when the file could not be written
  // (the summary line is still printed).
  bool Write(const std::string& path = "") const {
    const std::string file =
        path.empty() ? "BENCH_" + name_ + ".json" : path;
    const std::string json = ToJson();
    bool ok = false;
    if (FILE* f = std::fopen(file.c_str(), "w")) {
      ok = std::fputs(json.c_str(), f) >= 0 && std::fputc('\n', f) != EOF;
      std::fclose(f);
    }
    std::printf("BENCH_JSON %s %s\n", file.c_str(), json.c_str());
    if (!ok) {
      std::fprintf(stderr, "bench_json: could not write %s\n", file.c_str());
    }
    return ok;
  }

 private:
  static std::string Escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace sqopt::bench

#endif  // SQOPT_BENCH_BENCH_JSON_H_

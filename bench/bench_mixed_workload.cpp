// Mixed read/write workload through the Engine facade: rounds of
// ExecuteBatch query traffic interleaved with transactional commits
// submitted through ApplyGroup — four batches per commit group
// (segment-consistent updates, world inserts, occasional in-group
// rejected writes), measuring read throughput while the store churns,
// group-commit throughput, and how well the plan cache survives
// threshold-gated epoching. commits_per_sec counts SUCCESSFUL batches
// over the write-phase wall clock, so it prices the whole group
// protocol (one WAL append + one fsync + one snapshot per group).
// Emits BENCH_mixed.json for the bench-smoke CI regression gate.
//
// Flags:
//   --quick        smaller DB + fewer rounds (CI smoke mode)
//   --threads=N    ExecuteBatch worker threads (default 4)
//   --rounds=N     mutate+serve rounds
//   --out=PATH     JSON output path (default BENCH_mixed.json)
#include <chrono>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::BenchJson;
  using bench::Check;
  using bench::Unwrap;

  bool quick = false;
  int threads = 4;
  int rounds = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  const DbSpec spec = quick ? DbSpec{"mixed", 104, 154}
                            : DbSpec{"mixed", 416, 616};
  if (rounds <= 0) rounds = quick ? 60 : 240;
  constexpr uint64_t kSeed = 20260729;

  EngineOptions options;
  options.serve.threads = threads;
  Engine engine = bench::OpenExperimentEngine(options);
  Check(engine.Load(DataSource::Generated(spec, kSeed)));
  const Schema& schema = engine.schema();
  const ClassId supplier = schema.FindClass("supplier");
  const ClassId cargo = schema.FindClass("cargo");
  const AttrRef rating = schema.ResolveQualified("supplier.rating").value();
  const AttrRef weight = schema.ResolveQualified("cargo.weight").value();

  // The read stream: the serving bench's query shapes.
  const std::vector<std::string> pool = {
      "{supplier.name} {} {supplier.rating >= 8} {} {supplier}",
      "{cargo.code} {} {cargo.weight <= 40} {} {cargo}",
      "{supplier.name, cargo.code} {} {cargo.desc = \"frozen food\"} "
      "{supplies} {supplier, cargo}",
      "{cargo.code, vehicle.vehicleNo} {} "
      "{vehicle.desc = \"refrigerated truck\"} {collects} {cargo, vehicle}",
  };
  std::vector<std::string> stream;
  const size_t per_round = quick ? 24 : 64;
  for (size_t i = 0; i < per_round; ++i) {
    stream.push_back(pool[i % pool.size()]);
  }

  Rng rng(kSeed);
  uint64_t read_micros = 0, write_micros = 0;
  uint64_t reads = 0, commits = 0, rejects = 0, cache_hits = 0;
  uint64_t invalidations = 0;
  int64_t next_ordinal = 0;

  std::printf("=== Mixed workload (%lld rows, %d rounds, %d threads) ===\n",
              static_cast<long long>(spec.class_cardinality), rounds,
              threads);
  const auto bench_start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    // Writes: four small segment-consistent batches submitted as ONE
    // commit group (a deterministic stand-in for four concurrent
    // writers — one WAL append, one fsync, one published snapshot for
    // the whole group). A world insert rides in the first batch every
    // 8th round, and every 16th round a doomed batch joins the group
    // to prove a violation is rejected in-group without poisoning the
    // other members.
    std::vector<MutationBatch> group(4);
    for (size_t b = 0; b < 4; ++b) {
      for (int i = 0; i < 4; ++i) {
        int64_t row = rng.UniformInt(0, spec.class_cardinality - 1);
        int seg = SegmentOfRow(row);
        if (i % 2 == 0) {
          group[b].Update(supplier, row, rating.attr_id,
                          Value::Int(seg == 0 ? rng.UniformInt(8, 10)
                                              : rng.UniformInt(1, 7)));
        } else {
          group[b].Update(cargo, row, weight.attr_id,
                          Value::Int(seg == 0 ? rng.UniformInt(10, 40)
                                              : rng.UniformInt(41, 100)));
        }
      }
    }
    if (round % 8 == 0) {
      int seg = static_cast<int>(rng.Index(kNumSegments));
      std::vector<int64_t> handle(schema.num_classes(), -1);
      for (const ObjectClass& oc : schema.classes()) {
        handle[oc.id] = group[0].Insert(
            oc.id, Unwrap(MakeSegmentObject(schema, oc.id, seg,
                                            next_ordinal)));
      }
      ++next_ordinal;
      for (const Relationship& rel : schema.relationships()) {
        group[0].Link(rel.id, handle[rel.a], handle[rel.b]);
      }
    }
    size_t doomed_index = group.size();
    if (round % 16 == 0) {
      // Segment-1 supplier rating 9 violates i1; must be rejected
      // in-group while its groupmates commit.
      MutationBatch doomed;
      int64_t row = 1 + 4 * rng.UniformInt(0, spec.class_cardinality / 8);
      doomed.Update(supplier, row, rating.attr_id, Value::Int(9));
      doomed_index = group.size();
      group.push_back(std::move(doomed));
    }
    auto write_start = std::chrono::steady_clock::now();
    std::vector<Result<ApplyOutcome>> results = engine.ApplyGroup(group);
    write_micros += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - write_start)
            .count());
    bool invalidated = false;
    for (size_t b = 0; b < results.size(); ++b) {
      if (b == doomed_index) {
        if (results[b].ok() || results[b].status().code() !=
                                   StatusCode::kConstraintViolation) {
          std::fprintf(stderr,
                       "mixed bench: violating write was not rejected\n");
          return 1;
        }
        ++rejects;
        continue;
      }
      ApplyOutcome applied = Unwrap(std::move(results[b]));
      ++commits;
      if (applied.plan_cache_invalidated) invalidated = true;
    }
    if (invalidated) ++invalidations;

    // Reads: one batch over the shared pool + plan cache.
    auto read_start = std::chrono::steady_clock::now();
    BatchOutcome out = Unwrap(engine.ExecuteBatch(stream));
    read_micros += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - read_start)
            .count());
    if (out.stats.failed != 0) {
      std::fprintf(stderr, "mixed bench: %zu queries failed\n",
                   out.stats.failed);
      return 1;
    }
    reads += out.stats.queries;
    cache_hits += out.stats.cache_hits;
  }
  const double total_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - bench_start)
          .count();

  const double read_qps =
      read_micros > 0 ? 1e6 * static_cast<double>(reads) /
                            static_cast<double>(read_micros)
                      : 0.0;
  const double commits_per_s =
      write_micros > 0 ? 1e6 * static_cast<double>(commits) /
                             static_cast<double>(write_micros)
                       : 0.0;
  const double hit_rate =
      reads > 0 ? static_cast<double>(cache_hits) /
                      static_cast<double>(reads)
                : 0.0;
  std::printf(
      "%llu reads (%.0f qps while mutating), %llu commits (%.0f/s), "
      "%llu rejected, cache hit rate %.3f, %.1fs total\n",
      static_cast<unsigned long long>(reads), read_qps,
      static_cast<unsigned long long>(commits), commits_per_s,
      static_cast<unsigned long long>(rejects), hit_rate, total_s);

  BenchJson json("mixed");
  json.Set("quick", quick);
  json.Set("db_rows", spec.class_cardinality);
  json.Set("rounds", rounds);
  json.Set("threads", threads);
  json.Set("queries", reads);
  json.Set("commits", commits);
  json.Set("rejected", rejects);
  json.Set("read_qps", read_qps);
  json.Set("commits_per_sec", commits_per_s);
  json.Set("cache_hit_rate", hit_rate);
  json.Set("replan_invalidations", invalidations);
  json.Set("final_version", engine.data_version());
  json.Write(out_path);
  return 0;
}

// Morsel-driven parallel scan: one heavy scan query (full extent scan
// on a non-indexed predicate, expanded across one relationship)
// executed at parallelism 1 / 2 / 4 / 8 over a large generated
// database, through the Engine facade. Measures the intra-query
// speedup the morsel fan-out buys and verifies byte-identical results
// (rows AND order) across every degree. Emits the machine-readable
// BENCH_scan.json consumed by the bench-smoke CI regression gate.
//
// Flags:
//   --quick        smaller DB + fewer reps (CI smoke mode)
//   --threads=N    worker-pool threads (default 8)
//   --reps=N       timed executions per parallelism degree
//   --out=PATH     JSON output path (default BENCH_scan.json)
//   --force-all    time every leg even beyond hardware_concurrency
//
// Parallelism legs above std::thread::hardware_concurrency() are
// SKIPPED (they cannot speed anything up on this machine and their
// numbers would only mislead): the leg's fields are emitted with the
// sequential leg's values for schema stability, and the skipped
// metrics are named in "skipped_metrics" so the regression gate
// ignores them on small runners.
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::BenchJson;
  using bench::Check;
  using bench::Unwrap;

  bool quick = false;
  bool force_all = false;
  int threads = 8;
  int reps = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--force-all") == 0) {
      force_all = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const DbSpec spec = quick ? DbSpec{"scan", 8000, 12000}
                            : DbSpec{"scan", 40000, 60000};
  if (reps <= 0) reps = quick ? 10 : 30;
  // ~32 morsels whatever the DB size, so every degree up to 8 has work.
  const int64_t morsel_size =
      std::max<int64_t>(512, spec.class_cardinality / 32);
  constexpr uint64_t kSeed = 20260728;

  // No constraints: this bench isolates the scan path; semantic
  // rewrites are someone else's benchmark.
  EngineOptions options;
  options.serve.threads = threads;
  options.serve.morsel_size = morsel_size;
  options.cost_params.morsel_rows = static_cast<double>(morsel_size);
  Engine engine = Unwrap(Engine::Open(SchemaSource::Experiment(),
                                      ConstraintSource::None(), options));
  std::printf("generating %lld-row database...\n",
              static_cast<long long>(spec.class_cardinality));
  Check(engine.Load(DataSource::Generated(spec, kSeed)));

  // Full extent scan (quantity is not indexed) + one pointer-join
  // expansion: the shape the morsel pipeline parallelizes end to end.
  const std::string query_text =
      "{cargo.code, vehicle.vehicleNo} {} {cargo.weight <= 40} "
      "{collects} {cargo, vehicle}";

  // Single-thread filtered-scan leg: the same non-indexed interval
  // predicate with no join, so the measured rate is the batch filter's
  // raw rows/sec through one core (the vectorized-kernel gate metric,
  // independent of runner core count).
  double scan_rows_per_sec = 0.0;
  {
    const std::string scan_only =
        "{cargo.code} {} {cargo.weight <= 40} {} {cargo}";
    QueryOutcome warm = Unwrap(engine.Execute(scan_only));
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      QueryOutcome out = Unwrap(engine.Execute(scan_only));
      (void)out;
    }
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    const double rows_per_sec =
        wall_ms > 0 ? 1000.0 * reps * spec.class_cardinality / wall_ms : 0.0;
    std::printf(
        "filtered scan (no join, 1 thread): %6.2f ms/query  %.3g rows/sec  "
        "%llu rows out\n",
        wall_ms / reps, rows_per_sec,
        static_cast<unsigned long long>(warm.meter.rows_out));
    scan_rows_per_sec = rows_per_sec;
  }

  std::printf("=== Parallel scan (%lld rows, %d reps, %d pool threads) ===\n",
              static_cast<long long>(spec.class_cardinality), reps,
              threads);

  struct DegreeResult {
    int parallelism = 0;
    double wall_ms = 0.0;
    uint64_t rows = 0;
    uint64_t morsels = 0;
    uint64_t workers = 0;
    double meter_speedup = 0.0;
    bool skipped = false;
  };
  std::vector<DegreeResult> degrees;
  std::vector<std::string> baseline_keys;
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());

  for (int parallelism : {1, 2, 4, 8}) {
    // On runners with >= 4 cores every leg is timed, even degrees above
    // hardware_concurrency: 8 software threads on 4 real cores still
    // overlap to a genuine ~4x, and the CI gate holds speedup_p8 there
    // (gate.json marks it min_cores: 4). Only 1-2 core machines skip
    // over-subscribed legs — a timed run there would just report noise
    // around 1.00x.
    if (!force_all && hw_threads < 4 &&
        parallelism > static_cast<int>(hw_threads)) {
      std::printf("parallelism %d: skipped (hardware_concurrency=%u)\n",
                  parallelism, hw_threads);
      DegreeResult result;
      result.parallelism = parallelism;
      result.skipped = true;
      degrees.push_back(result);
      continue;
    }
    ServeOptions serve = engine.options().serve;
    serve.parallelism = parallelism;
    engine.SetServeOptions(serve);

    // Untimed warm-up: plan once into the cache, fault in the data.
    QueryOutcome warm = Unwrap(engine.Execute(query_text));
    std::vector<std::string> keys;
    keys.reserve(warm.rows.rows.size());
    for (const auto& row : warm.rows.rows) {
      std::string k;
      for (const Value& v : row) {
        k += v.ToString();
        k += '|';
      }
      keys.push_back(std::move(k));
    }
    if (parallelism == 1) {
      baseline_keys = std::move(keys);
    } else if (keys != baseline_keys) {
      std::fprintf(stderr,
                   "parallel scan bench: parallelism %d changed the "
                   "result (rows or order)\n",
                   parallelism);
      return 1;
    }

    DegreeResult result;
    result.parallelism = parallelism;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      QueryOutcome out = Unwrap(engine.Execute(query_text));
      result.rows = out.meter.rows_out;
      result.morsels = out.meter.morsels;
      result.workers = out.meter.morsel_workers;
      result.meter_speedup = out.meter.ParallelSpeedup();
    }
    result.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("parallelism %d: %8.1f ms total  %7.2f ms/query  "
                "%llu rows  %llu morsels  %llu workers  busy/wall %.2fx\n",
                parallelism, result.wall_ms, result.wall_ms / reps,
                static_cast<unsigned long long>(result.rows),
                static_cast<unsigned long long>(result.morsels),
                static_cast<unsigned long long>(result.workers),
                result.meter_speedup);
    degrees.push_back(result);
  }

  const double wall_p1 = degrees[0].wall_ms;
  // Skipped legs inherit the sequential leg's measurements (that IS
  // what would run at that setting on this machine) so the emission
  // schema never depends on the runner's core count; the gate skips
  // their metrics by name.
  std::string skipped_metrics;
  for (DegreeResult& d : degrees) {
    if (!d.skipped) continue;
    const std::string suffix = "_p" + std::to_string(d.parallelism);
    d.wall_ms = wall_p1;
    d.rows = degrees[0].rows;
    d.morsels = degrees[0].morsels;
    d.workers = degrees[0].workers;
    for (const char* metric : {"wall_ms", "qps", "speedup"}) {
      if (!skipped_metrics.empty()) skipped_metrics += ",";
      skipped_metrics += metric + suffix;
    }
  }

  BenchJson json("scan");
  json.Set("quick", quick);
  json.Set("db_rows", spec.class_cardinality);
  json.Set("reps", reps);
  json.Set("threads", threads);
  json.Set("hw_threads", hw_threads);
  json.Set("morsel_size", morsel_size);
  json.Set("rows_out", degrees[0].rows);
  json.Set("scan_rows_per_sec", scan_rows_per_sec);
  for (const DegreeResult& d : degrees) {
    const std::string suffix = "_p" + std::to_string(d.parallelism);
    json.Set("wall_ms" + suffix, d.wall_ms);
    json.Set("qps" + suffix,
             d.wall_ms > 0 ? 1000.0 * reps / d.wall_ms : 0.0);
    if (d.parallelism > 1) {
      json.Set("speedup" + suffix,
               d.skipped ? 1.0
                         : (d.wall_ms > 0 ? wall_p1 / d.wall_ms : 0.0));
      json.Set("skipped" + suffix, d.skipped);
    }
  }
  json.Set("morsels_p8", degrees.back().morsels);
  json.Set("workers_p8", degrees.back().workers);
  json.Set("meter_speedup_p8", degrees.back().meter_speedup);
  if (degrees.back().skipped) {
    for (const char* metric :
         {"morsels_p8", "workers_p8", "meter_speedup_p8"}) {
      if (!skipped_metrics.empty()) skipped_metrics += ",";
      skipped_metrics += metric;
    }
  }
  json.Set("skipped_metrics", skipped_metrics);
  if (degrees.back().skipped) {
    std::printf("speedup at 8 threads: skipped (%u cores)\n", hw_threads);
  } else {
    const double speedup_8 =
        degrees.back().wall_ms > 0 ? wall_p1 / degrees.back().wall_ms : 0.0;
    std::printf("speedup at 8 threads: %.2fx\n", speedup_8);
  }
  json.Write(out_path);
  return 0;
}

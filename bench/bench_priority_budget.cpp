// Section 4 priority/budget ablation: "if it is necessary to assign a
// budget and limit the number of transformations ... perform those
// transformations that are more likely to be profitable first." Sweeps
// the transformation budget under FIFO and priority disciplines and
// reports the estimated cost of the final query for each.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cost/cost_model.h"
#include "exec/plan_builder.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::Unwrap;

  Schema schema = Unwrap(BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
    Check(catalog.AddConstraint(std::move(clause)));
  }
  AccessStats access(schema.num_classes());
  Check(catalog.Precompile(&access));

  auto store =
      Unwrap(GenerateDatabase(schema, DbSpec{"PB", 208, 616}, 4242));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema, 2, 5);
  QueryGenerator gen(&schema, 4242);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, 30));

  std::printf("=== Priority queue + budget ablation (30 queries, DB4 "
              "stats) ===\n");
  std::printf("mean estimated cost of the final query; lower is better\n\n");
  std::printf("%8s %14s %14s %14s\n", "budget", "fifo", "priority",
              "prio/fifo");

  for (size_t budget : {1u, 2u, 3u, 4u, 0u}) {
    double total_fifo = 0, total_prio = 0;
    for (const Query& query : queries) {
      OptimizerOptions fifo;
      fifo.queue = QueueDiscipline::kFifo;
      fifo.transformation_budget = budget;
      SemanticOptimizer opt_fifo(&schema, &catalog, &cost_model, fifo);
      OptimizeResult rf = Unwrap(opt_fifo.Optimize(query));
      total_fifo += rf.empty_result ? 0.0 : cost_model.QueryCost(rf.query);

      OptimizerOptions prio;
      prio.queue = QueueDiscipline::kPriority;
      prio.transformation_budget = budget;
      SemanticOptimizer opt_prio(&schema, &catalog, &cost_model, prio);
      OptimizeResult rp = Unwrap(opt_prio.Optimize(query));
      total_prio += rp.empty_result ? 0.0 : cost_model.QueryCost(rp.query);
    }
    char label[16];
    if (budget == 0) {
      std::snprintf(label, sizeof(label), "%s", "unlimited");
    } else {
      std::snprintf(label, sizeof(label), "%zu", budget);
    }
    std::printf("%8s %14.2f %14.2f %13.3f\n", label,
                total_fifo / queries.size(), total_prio / queries.size(),
                total_fifo > 0 ? total_prio / total_fifo : 1.0);
  }

  std::printf(
      "\nexpected shape: with unlimited budget the disciplines agree\n"
      "(order immateriality); under tight budgets priority spends its\n"
      "firings on index introductions first and matches or beats FIFO.\n");
  return 0;
}

// Section 4 priority/budget ablation: "if it is necessary to assign a
// budget and limit the number of transformations ... perform those
// transformations that are more likely to be profitable first." Sweeps
// the transformation budget under FIFO and priority disciplines on one
// loaded Engine, switching configurations with SetOptimizerOptions, and
// reports the estimated cost of the final query for each.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::OpenExperimentEngine;
  using bench::Unwrap;

  const DbSpec spec{"PB", 208, 616};
  constexpr uint64_t kSeed = 4242;

  Engine engine = OpenExperimentEngine();
  Check(engine.Load(DataSource::Generated(spec, kSeed)));
  std::vector<SchemaPath> paths = EnumerateSimplePaths(engine.schema(), 2, 5);
  QueryGenerator gen(&engine.schema(), kSeed);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, 30));

  std::printf("=== Priority queue + budget ablation (30 queries, DB4 "
              "stats) ===\n");
  std::printf("mean estimated cost of the final query; lower is better\n\n");
  std::printf("%8s %14s %14s %14s\n", "budget", "fifo", "priority",
              "prio/fifo");

  auto mean_cost = [&](QueueDiscipline queue, size_t budget) {
    OptimizerOptions optimizer;
    optimizer.queue = queue;
    optimizer.transformation_budget = budget;
    engine.SetOptimizerOptions(optimizer);
    double total = 0;
    for (const Query& query : queries) {
      QueryOutcome outcome = Unwrap(engine.Analyze(query));
      if (!outcome.answered_without_database) {
        total += engine.cost_model()->QueryCost(outcome.transformed);
      }
    }
    return total / queries.size();
  };

  bench::BenchJson json("priority_budget");
  json.Set("queries", queries.size());
  for (size_t budget : {1u, 2u, 3u, 4u, 0u}) {
    double fifo = mean_cost(QueueDiscipline::kFifo, budget);
    double prio = mean_cost(QueueDiscipline::kPriority, budget);
    char label[16];
    if (budget == 0) {
      std::snprintf(label, sizeof(label), "%s", "unlimited");
    } else {
      std::snprintf(label, sizeof(label), "%zu", budget);
    }
    std::printf("%8s %14.2f %14.2f %13.3f\n", label, fifo, prio,
                fifo > 0 ? prio / fifo : 1.0);
    const std::string prefix =
        "budget_" + std::string(budget == 0 ? "unlimited"
                                            : std::to_string(budget)) +
        "_";
    json.Set(prefix + "fifo_mean_cost", fifo);
    json.Set(prefix + "priority_mean_cost", prio);
  }
  json.Write();

  std::printf(
      "\nexpected shape: with unlimited budget the disciplines agree\n"
      "(order immateriality); under tight budgets priority spends its\n"
      "firings on index introductions first and matches or beats FIFO.\n");
  return 0;
}

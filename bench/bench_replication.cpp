// Replication bench: what WAL shipping costs the leader and what the
// follower pipeline delivers. In one process it measures (1) leader
// commit throughput alone vs with a ReplicationLog, a serving socket,
// and TWO live FollowerAppliers subscribed (the gated overhead — the
// commit listener encodes the group record under the commit lock, the
// socket pump runs off it), (2) replication lag: submit-to-applied
// p50/p95 per record, sampled on a follower's on_record_applied hook
// against the leader's submit timestamps, and (3) catch-up throughput:
// a cold follower subscribing after the fact replays the whole history
// — records/s from subscribe to convergence. Verifies both streaming
// followers converge to the leader's exact version before reporting.
// Emits BENCH_replication.json for the bench-smoke CI regression gate.
//
// Flags:
//   --quick        fewer commits (CI smoke mode)
//   --commits=N    commit count per phase
//   --out=PATH     JSON output path (default BENCH_replication.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "replica/follower.h"
#include "replica/replication_log.h"
#include "server/server.h"
#include "workload/mutation_script.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace sqopt;  // NOLINT(build/namespaces) — bench binary

constexpr uint64_t kSeed = 20260807;
const DbSpec kSpec{"replication_bench", 104, 154};

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - start)
      .count();
}

Engine LoadedEngine() {
  Engine engine = bench::OpenExperimentEngine();
  bench::Check(engine.Load(DataSource::Generated(kSpec, kSeed)));
  return engine;
}

std::vector<int64_t> BaseRows(const Engine& engine) {
  std::vector<int64_t> rows;
  for (const ObjectClass& oc : engine.schema().classes()) {
    rows.push_back(engine.store()->NumObjects(oc.id));
  }
  return rows;
}

// Applies `commits` script batches; returns commits/sec.
double DriveCommits(Engine& engine, int commits,
                    std::vector<Clock::time_point>* submit_times) {
  MutationScript script(&engine.schema(), BaseRows(engine), kSeed);
  const auto start = Clock::now();
  for (int i = 0; i < commits; ++i) {
    MutationBatch batch = bench::Unwrap(script.Next());
    if (submit_times != nullptr) {
      // Indexed by the version this apply will commit as; stored
      // before Apply so the follower hook can always read it.
      (*submit_times)[static_cast<size_t>(engine.data_version()) + 1] =
          Clock::now();
    }
    bench::Check(engine.Apply(batch).status());
  }
  return commits / SecondsSince(start);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  int commits = 480;
  std::string out = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      commits = 96;
    } else if (std::strncmp(argv[i], "--commits=", 10) == 0) {
      commits = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    }
  }

  bench::BenchJson json("replication");
  json.Set("quick", commits <= 96);
  json.Set("commits", commits);

  // --- Phase 1: the leader alone, no replication machinery. ---------
  double alone;
  {
    Engine engine = LoadedEngine();
    alone = DriveCommits(engine, commits, nullptr);
  }

  // --- Phase 2: leader + log + server + 2 streaming followers. ------
  Engine leader = LoadedEngine();
  replica::ReplicationLog log;
  log.AttachTo(&leader);
  server::ServerOptions options;
  options.port = 0;
  std::unique_ptr<server::Server> server =
      bench::Unwrap(server::Server::Start(&leader, options, &log));

  // Submit-to-applied lag, sampled on follower 1.
  std::vector<Clock::time_point> submit_times(
      static_cast<size_t>(commits) + 2);
  std::mutex lag_mu;
  std::vector<double> lag_us;
  Engine f1 = LoadedEngine();
  replica::FollowerOptions fopts;
  fopts.leader_port = server->port();
  fopts.poll_interval_ms = 50;
  fopts.on_record_applied = [&](uint64_t version) {
    if (version >= submit_times.size()) return;
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            Clock::now() - submit_times[version])
            .count();
    std::lock_guard<std::mutex> hold(lag_mu);
    lag_us.push_back(us);
  };
  std::unique_ptr<replica::FollowerApplier> a1 =
      bench::Unwrap(replica::FollowerApplier::Start(&f1, fopts));

  Engine f2 = LoadedEngine();
  replica::FollowerOptions fopts2 = fopts;
  fopts2.on_record_applied = nullptr;
  std::unique_ptr<replica::FollowerApplier> a2 =
      bench::Unwrap(replica::FollowerApplier::Start(&f2, fopts2));

  const double replicated = DriveCommits(leader, commits, &submit_times);
  const uint64_t tip = leader.data_version();
  const bool converged =
      a1->WaitForVersion(tip, 60000) && a2->WaitForVersion(tip, 60000) &&
      f1.data_version() == tip && f2.data_version() == tip;

  // --- Phase 3: cold catch-up from version 1. ------------------------
  Engine cold = LoadedEngine();
  replica::FollowerOptions copts;
  copts.leader_port = server->port();
  copts.poll_interval_ms = 50;
  const auto catchup_start = Clock::now();
  std::unique_ptr<replica::FollowerApplier> a3 =
      bench::Unwrap(replica::FollowerApplier::Start(&cold, copts));
  const bool caught_up = a3->WaitForVersion(tip, 60000);
  const double catchup_secs = SecondsSince(catchup_start);
  const uint64_t caught_records = a3->stats().records_applied;

  a1->Stop();
  a2->Stop();
  a3->Stop();
  server->Shutdown();

  const double overhead = alone > 0 ? 1.0 - replicated / alone : 0.0;
  json.Set("commits_per_sec_alone", alone);
  json.Set("commits_per_sec_replicated", replicated);
  json.Set("follower_overhead", overhead < 0 ? 0.0 : overhead);
  json.Set("lag_p50_us", Percentile(lag_us, 0.50));
  json.Set("lag_p95_us", Percentile(lag_us, 0.95));
  json.Set("lag_samples", lag_us.size());
  json.Set("catchup_records_per_sec",
           catchup_secs > 0 ? caught_records / catchup_secs : 0.0);
  json.Set("followers_converged", (converged && caught_up) ? 1 : 0);
  json.Set("final_version", tip);
  json.Write(out);
  return (converged && caught_up) ? 0 : 1;
}

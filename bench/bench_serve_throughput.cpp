// Concurrent serving throughput: the experiment workload (one query
// per schema path, decorated by the §4 query generator) replayed as a
// high-traffic stream through Engine::ExecuteBatch. Compares the
// single-thread cold-cache baseline (every query pays parse +
// retrieval + transformation + planning) against the multi-thread
// warm-cache serving path, and emits the machine-readable
// BENCH_serve.json consumed by the bench-smoke CI regression gate.
//
// Flags:
//   --quick        smaller stream + DB (CI smoke mode)
//   --threads=N    serving threads (default 8)
//   --out=PATH     JSON output path (default BENCH_serve.json)
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "query/query_printer.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::BenchJson;
  using bench::Check;
  using bench::OpenExperimentEngine;
  using bench::Unwrap;

  bool quick = false;
  int threads = 8;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // DB1/DB2 of Table 4.1: the optimization pipeline (what the cache
  // skips) dominates per-query cost, which is exactly the regime the
  // paper's precompilation argument — pay per constraint change, not
  // per query — is about.
  const DbSpec spec = quick ? DbSpec{"serve", 52, 77}
                            : DbSpec{"serve", 104, 154};
  const size_t stream_length = quick ? 512 : 4096;
  constexpr uint64_t kSeed = 20260728;

  Engine engine = OpenExperimentEngine();
  Check(engine.Load(DataSource::Generated(spec, kSeed)));

  // The experiment workload: queries over every simple schema path,
  // sampled into a stream with repetition — the heavy-traffic shape
  // (many users, few distinct query templates) the plan cache exists
  // for.
  std::vector<SchemaPath> paths =
      EnumerateSimplePaths(engine.schema(), 2, 5);
  QueryGenerator gen(&engine.schema(), kSeed);
  std::vector<Query> distinct = Unwrap(gen.Sample(paths, paths.size()));
  std::vector<std::string> stream;
  stream.reserve(stream_length);
  Rng pick(kSeed + 1);
  for (size_t i = 0; i < stream_length; ++i) {
    stream.push_back(
        PrintQuery(engine.schema(), distinct[pick.Index(distinct.size())]));
  }

  std::printf("=== Serve throughput (%zu queries, %zu distinct, DB %lld/%lld) "
              "===\n",
              stream.size(), distinct.size(),
              static_cast<long long>(spec.class_cardinality),
              static_cast<long long>(spec.rel_cardinality));

  // Baseline: one thread, cache off — the pre-cache engine serving the
  // same stream sequentially.
  EngineOptions cold_options;
  cold_options.serve.cache_capacity = 0;
  Engine cold_engine = OpenExperimentEngine(cold_options);
  Check(cold_engine.Load(DataSource::Generated(spec, kSeed)));
  ServeOptions single;
  single.threads = 1;
  BatchOutcome cold = Unwrap(cold_engine.ExecuteBatch(stream, single));

  // Serving path: N threads over the shared warm cache. Warm it with
  // one untimed pass.
  ServeOptions serve;
  serve.threads = threads;
  Check(engine.ExecuteBatch(stream, serve).status());
  BatchOutcome warm = Unwrap(engine.ExecuteBatch(stream, serve));

  auto report = [](const char* label, const BatchStats& s) {
    std::printf("%-26s %8.0f qps  p50 %6llu us  p95 %6llu us  "
                "p99 %6llu us  max %6llu us  "
                "hit rate %4.0f%%  (%zu ok, %zu failed, %d threads)\n",
                label, s.qps, static_cast<unsigned long long>(s.p50_micros),
                static_cast<unsigned long long>(s.p95_micros),
                static_cast<unsigned long long>(s.p99_micros),
                static_cast<unsigned long long>(s.max_micros),
                100.0 * s.cache_hit_rate, s.succeeded, s.failed, s.threads);
  };
  report("1 thread, cold cache", cold.stats);
  report("warm cache", warm.stats);
  const double speedup =
      cold.stats.qps > 0 ? warm.stats.qps / cold.stats.qps : 0.0;
  std::printf("speedup: %.1fx\n", speedup);

  if (cold.stats.failed > 0 || warm.stats.failed > 0) {
    std::fprintf(stderr, "serve bench: unexpected per-query failures\n");
    return 1;
  }

  BenchJson json("serve");
  json.Set("threads", warm.stats.threads);
  json.Set("queries", stream.size());
  json.Set("distinct_queries", distinct.size());
  json.Set("quick", quick);
  json.Set("qps", warm.stats.qps);
  json.Set("p50_us", warm.stats.p50_micros);
  json.Set("p95_us", warm.stats.p95_micros);
  json.Set("p99_us", warm.stats.p99_micros);
  json.Set("max_us", warm.stats.max_micros);
  json.Set("cache_hit_rate", warm.stats.cache_hit_rate);
  json.Set("single_thread_cold_qps", cold.stats.qps);
  json.Set("speedup_vs_cold", speedup);
  json.Write(out_path);
  return 0;
}

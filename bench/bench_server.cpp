// Network serving bench: an in-process sqopt server on a loopback TCP
// socket, driven by the same open-loop Zipfian load engine as
// tools/loadgen (src/server/load_runner.h). Three phases:
//
//   1. sustained — open-loop at a fixed target QPS; must run clean
//      (zero protocol errors, zero sheds) and reports p50/p95/p99/max
//      from scheduled arrival, the tail numbers the in-process
//      closed-loop serve bench structurally cannot see.
//   2. capacity  — closed-loop saturation probe, so "overload" is
//      defined relative to the machine the bench runs on.
//   3. overload  — open-loop at 2x measured capacity; the server must
//      shed load with typed kOverloaded responses, keep the queue at
//      its bound (no unbounded growth), answer a post-run ping (no
//      crash), and drain cleanly on shutdown.
//
// Emits BENCH_server.json for the bench-smoke regression gate.
//
// Flags:
//   --quick     smaller DB + shorter budgets (CI smoke mode)
//   --sweep     append a 1x/2x/4x overload sweep (nightly long budget)
//   --out=PATH  JSON output path (default BENCH_server.json)
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "server/client.h"
#include "server/load_runner.h"
#include "server/server.h"
#include "workload/query_pool.h"

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::BenchJson;
  using bench::Check;
  using bench::OpenExperimentEngine;
  using bench::Unwrap;

  bool quick = false;
  bool sweep = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // Full mode serves the 40k-row fixture scale (8k rows x 5 classes) —
  // the same scale the durability bench's cold-open numbers use.
  const DbSpec spec = quick ? DbSpec{"server", 800, 1200}
                            : DbSpec{"server", 8000, 12000};
  constexpr uint64_t kSeed = 20260807;

  Engine engine = OpenExperimentEngine();
  Check(engine.Load(DataSource::Generated(spec, kSeed)));
  const std::vector<std::string> pool = ExperimentQueryPool();
  // Warm the shared plan cache: steady-state serving is the regime
  // under test, not first-query planning.
  for (const std::string& q : pool) Check(engine.Execute(q).status());

  server::ServerOptions options;
  options.port = 0;  // ephemeral
  options.threads = 4;
  // Shallow enough that the overload phase's synchronous connections
  // can hold more outstanding requests than workers + queue — the
  // regime where admission control engages.
  options.max_queue = 32;
  options.default_deadline_ms = 2000;
  auto started = server::Server::Start(&engine, options);
  Check(started.status());
  server::Server& server = **started;
  const int port = server.port();
  const int64_t rows_total =
      spec.class_cardinality * static_cast<int64_t>(5);

  std::printf("=== Server bench (port %d, %lld rows, %zu-query pool) ===\n",
              port, static_cast<long long>(rows_total), pool.size());

  auto print_report = [](const char* label, const server::LoadReport& r) {
    std::printf(
        "%-10s offered %7.0f qps  ok %7.0f qps  p50 %6llu  p95 %6llu  "
        "p99 %6llu  max %7llu us  shed %llu  timeout %llu  proto %llu\n",
        label, r.offered_qps, r.achieved_qps,
        static_cast<unsigned long long>(r.p50_us),
        static_cast<unsigned long long>(r.p95_us),
        static_cast<unsigned long long>(r.p99_us),
        static_cast<unsigned long long>(r.max_us),
        static_cast<unsigned long long>(r.overloaded),
        static_cast<unsigned long long>(r.timed_out),
        static_cast<unsigned long long>(r.protocol_errors));
  };

  // --- Phase 1: sustained open-loop at a modest fixed target. ---
  server::LoadOptions sustained_options;
  sustained_options.target_qps = quick ? 400.0 : 600.0;
  sustained_options.duration_ms = quick ? 2000 : 8000;
  sustained_options.connections = 8;
  sustained_options.seed = kSeed;
  server::LoadReport sustained =
      Unwrap(server::RunOpenLoop("127.0.0.1", port, pool,
                                 sustained_options));
  print_report("sustained", sustained);
  if (!sustained.clean() || sustained.overloaded > 0 ||
      sustained.failed > 0) {
    std::fprintf(stderr,
                 "server bench: sustained phase was not clean "
                 "(target too high for this machine?)\n");
    return 1;
  }

  // --- Phase 2: closed-loop capacity probe. ---
  const double capacity = Unwrap(server::MeasureCapacityQps(
      "127.0.0.1", port, pool, /*connections=*/16,
      /*duration_ms=*/quick ? 1000 : 3000, kSeed));
  std::printf("capacity   %7.0f qps (closed-loop, 16 conns)\n", capacity);

  // --- Phase 3: open-loop at 2x capacity — the server must shed. ---
  auto overload_run = [&](double multiplier,
                          uint64_t duration_ms) -> server::LoadReport {
    server::LoadOptions o;
    o.target_qps = capacity * multiplier;
    o.duration_ms = duration_ms;
    // Each connection is synchronous, so outstanding requests are
    // bounded by the connection count; admission control only engages
    // when that exceeds workers + max_queue.
    o.connections = static_cast<int>(options.max_queue) * 4;
    o.seed = kSeed + 1;
    return Unwrap(server::RunOpenLoop("127.0.0.1", port, pool, o));
  };
  server::LoadReport overload =
      overload_run(2.0, quick ? 1500 : 5000);
  print_report("overload", overload);

  const server::ServerStats stats = server.stats();
  bool failed = false;
  if (overload.overloaded == 0) {
    std::fprintf(stderr,
                 "server bench: 2x overload produced no kOverloaded "
                 "rejections\n");
    failed = true;
  }
  if (overload.protocol_errors > 0) {
    std::fprintf(stderr, "server bench: protocol errors under overload\n");
    failed = true;
  }
  if (stats.queue_depth_hwm > options.max_queue) {
    std::fprintf(stderr, "server bench: queue grew past its bound\n");
    failed = true;
  }
  // The server must still be alive and answering after the storm.
  {
    auto probe = server::Client::Connect("127.0.0.1", port);
    if (!probe.ok() || !probe->Ping().ok()) {
      std::fprintf(stderr, "server bench: server unreachable after "
                           "overload\n");
      failed = true;
    }
  }

  double rejection_rate =
      overload.sent > 0
          ? static_cast<double>(overload.overloaded) /
                static_cast<double>(overload.sent)
          : 0.0;

  BenchJson json("server");
  json.Set("quick", quick);
  json.Set("rows_total", rows_total);
  json.Set("threads", options.threads);
  json.Set("max_queue", static_cast<uint64_t>(options.max_queue));
  json.Set("sustained_target_qps", sustained_options.target_qps);
  json.Set("sustained_offered_qps", sustained.offered_qps);
  json.Set("sustained_qps", sustained.achieved_qps);
  json.Set("sustained_p50_us", sustained.p50_us);
  json.Set("sustained_p95_us", sustained.p95_us);
  json.Set("sustained_p99_us", sustained.p99_us);
  json.Set("sustained_max_us", sustained.max_us);
  json.Set("capacity_qps", capacity);
  json.Set("overload_target_qps", capacity * 2.0);
  json.Set("overload_ok_qps", overload.achieved_qps);
  json.Set("overload_rejected", overload.overloaded);
  json.Set("overload_rejection_rate", rejection_rate);
  json.Set("overload_p99_us", overload.p99_us);
  json.Set("overload_shed", overload.overloaded > 0 ? 1 : 0);
  json.Set("protocol_errors",
           sustained.protocol_errors + overload.protocol_errors);
  json.Set("queue_hwm", stats.queue_depth_hwm);

  // --- Optional nightly sweep: how shedding scales past 2x. ---
  if (sweep) {
    for (double multiplier : {1.0, 2.0, 4.0}) {
      server::LoadReport r = overload_run(multiplier, 5000);
      char label[32];
      std::snprintf(label, sizeof(label), "x%.0f", multiplier);
      print_report(label, r);
      const std::string prefix =
          "sweep_x" + std::to_string(static_cast<int>(multiplier));
      json.Set(prefix + "_ok_qps", r.achieved_qps);
      json.Set(prefix + "_rejected", r.overloaded);
      json.Set(prefix + "_p99_us", r.p99_us);
      if (r.protocol_errors > 0) {
        std::fprintf(stderr, "server bench: protocol errors in %s sweep\n",
                     label);
        failed = true;
      }
    }
  }

  // Graceful drain: every admitted request answered, buffers flushed.
  server.Shutdown();
  const server::ServerStats final_stats = server.stats();
  const bool drain_clean =
      final_stats.queue_depth == 0 && final_stats.connections_active == 0;
  if (!drain_clean) {
    std::fprintf(stderr, "server bench: drain left work behind\n");
    failed = true;
  }
  json.Set("drain_clean", drain_clean ? 1 : 0);
  json.Write(out_path);
  return failed ? 1 : 0;
}

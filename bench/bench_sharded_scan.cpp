// Shard-per-core scatter-gather: the parallel-scan query shape driven
// through the ShardedEngine coordinator at 1 / 2 / 4 / 8 shards over a
// large generated database, against a single unpartitioned Engine as
// both the timing baseline and the correctness oracle (rows AND order
// must match at every fleet size). Measures
//
//   - qps per shard count (the scatter-gather speedup),
//   - merge overhead: fleet-of-1 wall time over the single engine's —
//     the pure cost of the coordinator hop, plan handoff, and the
//     provenance merge with zero parallelism to pay for it,
//   - commit routing rates: mutation batches confined to one shard vs
//     batches spanning shards (split + multi-shard dispatch per
//     commit), plus the cross-shard link pre-check on the reject path.
//
// Emits BENCH_sharded.json for the bench-smoke regression gate.
//
// Flags:
//   --quick        smaller DB + fewer reps (CI smoke mode)
//   --threads=N    coordinator scatter pool threads (default 8)
//   --reps=N       timed executions per shard count
//   --out=PATH     JSON output path (default BENCH_sharded.json)
//   --force-all    time every leg even beyond hardware_concurrency
//
// Shard counts above hardware_concurrency are SKIPPED on small
// machines exactly like bench_parallel_scan's degrees: the leg's
// fields are emitted with the 1-shard leg's values for schema
// stability and named in "skipped_metrics" so the gate ignores them.
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "shard/sharded_engine.h"

int main(int argc, char** argv) {
  using namespace sqopt;
  using bench::BenchJson;
  using bench::Check;
  using bench::Unwrap;

  bool quick = false;
  bool force_all = false;
  int threads = 8;
  int reps = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--force-all") == 0) {
      force_all = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const DbSpec spec = quick ? DbSpec{"sharded", 8000, 12000}
                            : DbSpec{"sharded", 40000, 60000};
  if (reps <= 0) reps = quick ? 10 : 30;
  constexpr uint64_t kSeed = 20260806;

  // No constraints: this bench isolates the scatter-gather path.
  EngineOptions options;
  options.serve.threads = threads;

  std::printf("generating %lld-row database...\n",
              static_cast<long long>(spec.class_cardinality));
  Engine single = Unwrap(Engine::Open(SchemaSource::Experiment(),
                                      ConstraintSource::None(), options));
  Check(single.Load(DataSource::Generated(spec, kSeed)));

  // Full extent scan + one pointer-join expansion: every shard scans
  // and joins its own partition, the coordinator merges by provenance.
  const std::string query_text =
      "{cargo.code, vehicle.vehicleNo} {} {cargo.weight <= 40} "
      "{collects} {cargo, vehicle}";

  auto row_keys = [](const QueryOutcome& out) {
    std::vector<std::string> keys;
    keys.reserve(out.rows.rows.size());
    for (const auto& row : out.rows.rows) {
      std::string k;
      for (const Value& v : row) {
        k += v.ToString();
        k += '|';
      }
      keys.push_back(std::move(k));
    }
    return keys;
  };

  // Single-engine baseline leg.
  double single_wall_ms = 0.0;
  uint64_t rows_out = 0;
  std::vector<std::string> oracle_keys;
  {
    QueryOutcome warm = Unwrap(single.Execute(query_text));
    oracle_keys = row_keys(warm);
    rows_out = warm.meter.rows_out;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      QueryOutcome out = Unwrap(single.Execute(query_text));
      (void)out;
    }
    single_wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("single engine: %7.2f ms/query  %llu rows\n",
                single_wall_ms / reps,
                static_cast<unsigned long long>(rows_out));
  }

  struct ShardResult {
    int shards = 0;
    double wall_ms = 0.0;
    bool skipped = false;
  };
  std::vector<ShardResult> legs;
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());

  std::printf("=== Sharded scan (%lld rows, %d reps, %d pool threads) ===\n",
              static_cast<long long>(spec.class_cardinality), reps, threads);
  for (int shards : {1, 2, 4, 8}) {
    // Same skip policy as bench_parallel_scan's parallelism degrees:
    // >= 4-core runners time every leg (over-subscription still
    // overlaps to a real speedup); 1-2 core machines skip legs that
    // could only report noise around 1x.
    if (!force_all && hw_threads < 4 &&
        shards > static_cast<int>(hw_threads)) {
      std::printf("shards %d: skipped (hardware_concurrency=%u)\n", shards,
                  hw_threads);
      legs.push_back({shards, 0.0, /*skipped=*/true});
      continue;
    }
    shard::ShardOptions shard_options;
    shard_options.shards = shards;
    shard_options.engine = options;
    shard::ShardedEngine fleet = Unwrap(shard::ShardedEngine::Open(
        SchemaSource::Experiment(), ConstraintSource::None(),
        shard_options));
    Check(fleet.Load(DataSource::Generated(spec, kSeed)));

    QueryOutcome warm = Unwrap(fleet.Execute(query_text));
    if (row_keys(warm) != oracle_keys) {
      std::fprintf(stderr,
                   "sharded scan bench: %d shards changed the result "
                   "(rows or order)\n",
                   shards);
      return 1;
    }

    ShardResult leg;
    leg.shards = shards;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      QueryOutcome out = Unwrap(fleet.Execute(query_text));
      (void)out;
    }
    leg.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("shards %d: %8.1f ms total  %7.2f ms/query\n", shards,
                leg.wall_ms, leg.wall_ms / reps);
    legs.push_back(leg);
  }

  // Commit routing rates at 4 shards: same-shard batches (two updates
  // on one segment — a single sub-batch dispatch) vs cross-shard
  // batches (updates on two segments — split + two shard commits under
  // one coordinator version), plus the pre-check reject path.
  double commits_single_shard_per_sec = 0.0;
  double commits_cross_shard_per_sec = 0.0;
  uint64_t cross_shard_rejected = 0;
  {
    shard::ShardOptions shard_options;
    shard_options.shards = 4;
    shard_options.engine = options;
    shard::ShardedEngine fleet = Unwrap(shard::ShardedEngine::Open(
        SchemaSource::Experiment(), ConstraintSource::None(),
        shard_options));
    Check(fleet.Load(DataSource::Generated(spec, kSeed)));
    const Schema& schema = fleet.schema();
    const ClassId supplier = schema.FindClass("supplier");
    const AttrId name_attr = schema.FindAttribute(supplier, "name").attr_id;
    const int commit_reps = quick ? 200 : 1000;

    auto time_commits = [&](bool cross_shard) {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < commit_reps; ++r) {
        MutationBatch batch;
        // Fixture rows: segment = row % 4 (round-robin generator), so
        // rows r*4 and r*4+1 sit in different shards at 4 shards.
        const int64_t base = (r % 64) * 4;
        batch.Update(supplier, base, name_attr,
                     Value::String("b" + std::to_string(r)));
        batch.Update(supplier, cross_shard ? base + 1 : base, name_attr,
                     Value::String("c" + std::to_string(r)));
        Unwrap(fleet.Apply(batch));
      }
      const double wall_ms =
          std::chrono::duration_cast<
              std::chrono::duration<double, std::milli>>(
              std::chrono::steady_clock::now() - start)
              .count();
      return wall_ms > 0 ? 1000.0 * commit_reps / wall_ms : 0.0;
    };
    commits_single_shard_per_sec = time_commits(/*cross_shard=*/false);
    commits_cross_shard_per_sec = time_commits(/*cross_shard=*/true);

    // The reject path: a relationship instance spanning shards must be
    // refused by the coordinator pre-check before anything commits.
    const RelId collects = schema.FindRelationship("collects");
    const uint64_t version = fleet.data_version();
    for (int r = 0; r < 16; ++r) {
      MutationBatch bad;
      bad.Link(collects, /*cargo row=*/0, /*vehicle row=*/1);
      if (!fleet.Apply(bad).ok()) ++cross_shard_rejected;
    }
    if (fleet.data_version() != version) {
      std::fprintf(stderr,
                   "sharded scan bench: rejected batch consumed a version\n");
      return 1;
    }
    std::printf(
        "commits/sec: %.0f single-shard  %.0f cross-shard  "
        "(%llu cross-shard links rejected)\n",
        commits_single_shard_per_sec, commits_cross_shard_per_sec,
        static_cast<unsigned long long>(cross_shard_rejected));
  }

  const double wall_s1 = legs[0].wall_ms;
  std::string skipped_metrics;
  for (ShardResult& leg : legs) {
    if (!leg.skipped) continue;
    const std::string suffix = "_s" + std::to_string(leg.shards);
    leg.wall_ms = wall_s1;
    for (const char* metric : {"wall_ms", "qps", "speedup"}) {
      if (!skipped_metrics.empty()) skipped_metrics += ",";
      skipped_metrics += metric + suffix;
    }
  }

  const double merge_overhead =
      single_wall_ms > 0 ? wall_s1 / single_wall_ms : 0.0;
  std::printf("merge overhead (1 shard vs single engine): %.2fx\n",
              merge_overhead);

  BenchJson json("sharded");
  json.Set("quick", quick);
  json.Set("db_rows", spec.class_cardinality);
  json.Set("reps", reps);
  json.Set("threads", threads);
  json.Set("hw_threads", hw_threads);
  json.Set("rows_out", rows_out);
  json.Set("single_wall_ms", single_wall_ms);
  json.Set("single_qps",
           single_wall_ms > 0 ? 1000.0 * reps / single_wall_ms : 0.0);
  json.Set("merge_overhead", merge_overhead);
  for (const ShardResult& leg : legs) {
    const std::string suffix = "_s" + std::to_string(leg.shards);
    json.Set("wall_ms" + suffix, leg.wall_ms);
    json.Set("qps" + suffix,
             leg.wall_ms > 0 ? 1000.0 * reps / leg.wall_ms : 0.0);
    if (leg.shards > 1) {
      json.Set("speedup" + suffix,
               leg.skipped ? 1.0
                           : (leg.wall_ms > 0 ? wall_s1 / leg.wall_ms : 0.0));
      json.Set("skipped" + suffix, leg.skipped);
    }
  }
  json.Set("commits_single_shard_per_sec", commits_single_shard_per_sec);
  json.Set("commits_cross_shard_per_sec", commits_cross_shard_per_sec);
  json.Set("cross_shard_rejected", cross_shard_rejected);
  json.Set("skipped_metrics", skipped_metrics);
  json.Write(out_path);
  return 0;
}

// Table 4.1 reproduction: the four database instances the paper
// evaluates on. Loads each into an Engine, verifies the realized
// statistics, and prints the table's rows (plus load time — generation
// + statistics collection — which the other benches rely on).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::OpenExperimentEngine;

  std::printf("=== Table 4.1: database sizes ===\n");
  std::printf("%-22s", "");
  for (const DbSpec& spec : PaperDatabases()) {
    std::printf("%8s", spec.name.c_str());
  }
  std::printf("\n");

  struct RowData {
    int64_t num_classes = 0;
    int64_t avg_class_card = 0;
    int64_t num_rels = 0;
    int64_t avg_rel_card = 0;
    double load_ms = 0;
  };
  std::vector<RowData> rows;

  for (const DbSpec& spec : PaperDatabases()) {
    Engine engine = OpenExperimentEngine();
    auto t0 = std::chrono::steady_clock::now();
    Check(engine.Load(DataSource::Generated(spec, /*seed=*/41)));
    auto t1 = std::chrono::steady_clock::now();

    const Schema& schema = engine.schema();
    const ObjectStore& store = *engine.store();
    RowData row;
    row.num_classes = static_cast<int64_t>(schema.num_classes());
    int64_t total_objects = 0;
    for (const ObjectClass& oc : schema.classes()) {
      total_objects += store.NumObjects(oc.id);
    }
    row.avg_class_card = total_objects / row.num_classes;
    row.num_rels = static_cast<int64_t>(schema.num_relationships());
    int64_t total_pairs = 0;
    for (const Relationship& rel : schema.relationships()) {
      total_pairs += store.NumPairs(rel.id);
    }
    row.avg_rel_card = total_pairs / row.num_rels;
    row.load_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    rows.push_back(row);
  }

  auto print_row = [&](const char* label, auto getter) {
    std::printf("%-22s", label);
    for (const RowData& row : rows) {
      std::printf("%8lld", static_cast<long long>(getter(row)));
    }
    std::printf("\n");
  };
  print_row("# object class", [](const RowData& r) { return r.num_classes; });
  print_row("avg. class cardinality",
            [](const RowData& r) { return r.avg_class_card; });
  print_row("# relationships", [](const RowData& r) { return r.num_rels; });
  print_row("avg. rel. cardinality",
            [](const RowData& r) { return r.avg_rel_card; });

  std::printf("%-22s", "load time (ms)");
  for (const RowData& row : rows) std::printf("%8.1f", row.load_ms);
  std::printf("\n");

  bench::BenchJson json("table41_database_sizes");
  const std::vector<DbSpec> specs = PaperDatabases();
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::string prefix = specs[i].name + "_";
    json.Set(prefix + "avg_class_cardinality", rows[i].avg_class_card);
    json.Set(prefix + "avg_rel_cardinality", rows[i].avg_rel_card);
    json.Set(prefix + "load_ms", rows[i].load_ms);
  }
  json.Write();

  std::printf(
      "\npaper's Table 4.1: cardinalities (52,77) (104,154) (208,308) "
      "(208,616)\n");
  return 0;
}

// Table 4.2 reproduction: the ratio of optimized query cost (INCLUDING
// query transformation time, as in the paper) to original query cost,
// bucketed in 10% deciles, for 40 random path queries on each of
// DB1..DB4. One Engine per database instance; the optimized side runs
// Engine::Execute, the original side Engine::ExecuteUnoptimized.
//
// Substitution note (DESIGN.md §2): the paper measured wall-clock on a
// relational DBMS backend; we measure executor cost units (pages + CPU
// + probes) and convert the measured transformation wall time into cost
// units at kMicrosPerCostUnit. The expected SHAPE: on DB1 (small) the
// transformation overhead eats the savings for many queries (mass at
// and above 100%), while on DB4 (large) most queries land well below
// 100%, with a sizeable group near 0% (contradictions answered without
// the database and index-introduction wins) — matching the paper's 40%
// regressions on DB1 vs 67% improvements on DB4.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace {
// One executor cost unit ~ one page access ~ 100us of backend time
// (disk pages on the paper's SUN-3/160 were milliseconds; 100us keeps
// the transformation overhead at the paper's "about 10%" level on DB1
// without exaggerating the wins on DB4). Only the ratio SHAPE depends
// on this; see DESIGN.md / EXPERIMENTS.md.
constexpr double kMicrosPerCostUnit = 100.0;
constexpr int kNumQueries = 40;
constexpr uint64_t kSeed = 1991;
}  // namespace

int main() {
  using namespace sqopt;
  using bench::Check;
  using bench::OpenExperimentEngine;
  using bench::Unwrap;

  // The paper's queries were formulated over a constraint-rich schema;
  // bias the generator toward constraint-triggering predicates so a
  // comparable fraction of the 40 queries is transformable.
  Engine probe = OpenExperimentEngine();
  std::vector<SchemaPath> paths = EnumerateSimplePaths(probe.schema(), 1, 5);
  QueryGenOptions gen_options;
  gen_options.predicate_probability = 0.85;
  gen_options.trigger_probability = 0.9;
  QueryGenerator gen(&probe.schema(), kSeed, gen_options);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, kNumQueries));

  std::printf("=== Table 4.2: optimized/original cost ratio, %d queries "
              "===\n",
              kNumQueries);
  std::printf("(ratio includes transformation time at %.0fus per cost "
              "unit)\n\n",
              kMicrosPerCostUnit);
  std::printf("%-5s", "");
  for (int b = 0; b <= 11; ++b) std::printf("%6d%%", b * 10);
  std::printf("   faster  same  slower\n");

  bench::BenchJson json("table42_cost_ratio");
  json.Set("queries", kNumQueries);
  for (const DbSpec& spec : PaperDatabases()) {
    Engine engine = OpenExperimentEngine();
    Check(engine.Load(DataSource::Generated(spec, kSeed)));

    std::vector<int> buckets(12, 0);
    int faster = 0, same = 0, slower = 0;
    for (const Query& query : queries) {
      QueryOutcome original = Unwrap(engine.ExecuteUnoptimized(query));
      double original_cost = original.meter.CostUnits();

      QueryOutcome optimized = Unwrap(engine.Execute(query));
      // The optimizer times itself; report.total_ns is the measured
      // wall time of retrieval + transformation + formulation.
      double transform_units =
          optimized.report.total_ns / 1000.0 / kMicrosPerCostUnit;
      double optimized_cost =
          optimized.meter.CostUnits() + transform_units;

      double ratio = original_cost > 0 ? optimized_cost / original_cost
                                       : 1.0;
      int bucket = static_cast<int>(ratio * 10.0);
      if (bucket < 0) bucket = 0;
      if (bucket > 11) bucket = 11;
      buckets[bucket] += 1;
      if (ratio < 0.98) {
        ++faster;
      } else if (ratio <= 1.02) {
        ++same;
      } else {
        ++slower;
      }
    }

    std::printf("%-5s", spec.name.c_str());
    for (int b = 0; b <= 11; ++b) {
      int pct = (buckets[b] * 100 + kNumQueries / 2) / kNumQueries;
      if (buckets[b] == 0) {
        std::printf("%7s", "__");
      } else {
        std::printf("%6d%%", pct);
      }
    }
    std::printf("   %5d %5d %6d\n", faster, same, slower);
    const std::string prefix = spec.name + "_";
    json.Set(prefix + "faster", faster);
    json.Set(prefix + "same", same);
    json.Set(prefix + "slower", slower);
  }
  json.Write();

  std::printf(
      "\npaper's shape: DB1 ~40%% of queries regress (<=10%% overhead),\n"
      "34%% improve; DB4 67%% improve, 27%% improve drastically (queries\n"
      "that took hours / aborted). Reproduced shape: regressions shrink\n"
      "and the low-ratio mass grows monotonically from DB1 to DB4.\n");
  return 0;
}

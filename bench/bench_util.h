// Shared setup for the benchmark/reproduction binaries. Everything
// goes through the sqopt::Engine façade; a bench never hand-wires the
// optimizer/planner/executor pipeline.
#ifndef SQOPT_BENCH_BENCH_UTIL_H_
#define SQOPT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "api/engine.h"

namespace sqopt::bench {

inline void Die(const Status& status) {
  std::fprintf(stderr, "bench error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

inline void Check(const Status& status) {
  if (!status.ok()) Die(status);
}

// The standard bench fixture: experiment schema + the 15 experiment
// constraints, precompiled.
inline Engine OpenExperimentEngine(EngineOptions options = {}) {
  return Unwrap(Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment(),
                             std::move(options)));
}

}  // namespace sqopt::bench

#endif  // SQOPT_BENCH_BENCH_UTIL_H_

// Shared setup for the benchmark/reproduction binaries.
#ifndef SQOPT_BENCH_BENCH_UTIL_H_
#define SQOPT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "catalog/access_stats.h"
#include "common/status.h"
#include "constraints/constraint_catalog.h"

namespace sqopt::bench {

inline void Die(const Status& status) {
  std::fprintf(stderr, "bench error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

inline void Check(const Status& status) {
  if (!status.ok()) Die(status);
}

}  // namespace sqopt::bench

#endif  // SQOPT_BENCH_BENCH_UTIL_H_

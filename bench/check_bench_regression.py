#!/usr/bin/env python3
"""Gate bench JSON emissions against their checked-in baselines.

Two checks per bench file:
  1. Schema: every baseline field must be present in the current
     emission with the same JSON type (the emission is a contract; CI
     consumers break when fields disappear or change type).
  2. Regression: each gated metric must stay on the right side of its
     baseline. Metrics are "higher is better" by default (the value
     must not fall below baseline * (1 - tolerance)); metrics with
     direction "lower" must not rise above baseline * (1 + tolerance);
     metrics with direction "equal" must match the baseline exactly
     (deterministic correctness counts like result-row totals).

Baselines are intentionally conservative (well below a healthy run on
any CI runner) so the gate catches real regressions, not runner
variance.

Two modes:

Single file (the original interface):
  check_bench_regression.py --current build/BENCH_serve.json \
      --baseline bench/baseline/BENCH_serve.json \
      --metric qps --max-regression 0.30

Suite (gate every bench named by a config):
  check_bench_regression.py --suite bench/baseline/gate.json \
      --current-dir build --baseline-dir bench/baseline

The suite config maps bench file names to their gated metrics:
  {
    "BENCH_serve.json": {
      "metrics": {
        "qps": {"max_regression": 0.30},
        "p95_us": {"max_regression": 0.50, "direction": "lower"},
        "speedup_p8": {"max_regression": 0.40, "min_cores": 2}
      }
    }
  }
A missing current or baseline file fails the suite: every gated bench
must actually run.

A metric with "min_cores": N is judged only on runners with at least N
hardware threads (the emission's "cores" field, recorded by every
bench): a 1-core box cannot express a parallel speedup, and gating it
there would turn runner shape into a failure. The emission MUST carry
"cores" for such a metric — a missing count fails the gate rather than
silently skipping.
"""

import argparse
import glob
import json
import os
import sys


def check_schema(name, baseline, current, failures):
    """Baseline fields must survive into the emission with the same type."""
    for key, base_value in baseline.items():
        if key not in current:
            failures.append(f"{name}: schema: field '{key}' missing from emission")
            continue
        base_numeric = isinstance(base_value, (int, float)) and not isinstance(
            base_value, bool
        )
        cur_numeric = isinstance(current[key], (int, float)) and not isinstance(
            current[key], bool
        )
        if base_numeric != cur_numeric or (
            not base_numeric and type(base_value) is not type(current[key])
        ):
            failures.append(
                f"{name}: schema: field '{key}' changed type "
                f"({type(base_value).__name__} -> "
                f"{type(current[key]).__name__})"
            )


def skipped_metrics(current):
    """Metrics the emission marked as not-measured on this runner.

    Benches that cannot meaningfully measure a metric on the current
    machine (e.g. parallelism legs above hardware_concurrency) emit
    placeholder values for schema stability and name the affected
    metrics in a comma-separated "skipped_metrics" string; the gate
    must not judge those placeholders.
    """
    raw = current.get("skipped_metrics", "")
    if not isinstance(raw, str):
        return set()
    return {m for m in raw.split(",") if m}


def check_metric(name, metric, spec, baseline, current, failures):
    """One metric against its baseline, honoring direction + tolerance."""
    if metric in skipped_metrics(current):
        print(f"{name}: {metric}: [skipped: not measured on this runner]")
        return
    min_cores = spec.get("min_cores", 1)
    if min_cores > 1:
        cores = current.get("cores")
        if not isinstance(cores, int) or isinstance(cores, bool) or cores < 1:
            failures.append(
                f"{name}: metric '{metric}' requires min_cores={min_cores} "
                f"but the emission has no valid 'cores' field"
            )
            return
        if cores < min_cores:
            print(
                f"{name}: {metric}: [skipped: needs >= {min_cores} cores, "
                f"runner has {cores}]"
            )
            return
    if metric not in baseline or metric not in current:
        failures.append(f"{name}: metric '{metric}' absent from baseline/current")
        return
    base = baseline[metric]
    value = current[metric]
    for side, v in (("baseline", base), ("current", value)):
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            # check_schema already flags the type change; record the
            # metric failure and keep gating the remaining benches.
            failures.append(
                f"{name}: metric '{metric}' is non-numeric in {side} "
                f"({type(v).__name__})"
            )
            return
    tolerance = spec.get("max_regression", 0.30)
    direction = spec.get("direction", "higher")
    if direction not in ("higher", "lower", "equal"):
        failures.append(
            f"{name}: gate config: metric '{metric}' has unknown "
            f"direction '{direction}' (use higher/lower/equal)"
        )
        return
    if direction == "equal":
        ok = value == base
        status = "ok" if ok else "REGRESSION"
        print(f"{name}: {metric}: current={value:.6g} expected={base:.6g} "
              f"[{status}]")
        if not ok:
            failures.append(
                f"{name}: regression: {metric}={value:.6g} != expected "
                f"{base:.6g} (direction: equal)"
            )
        return
    if direction == "lower":
        bound = base * (1.0 + tolerance)
        ok = value <= bound
        relation = "ceiling"
    else:
        bound = base * (1.0 - tolerance)
        ok = value >= bound
        relation = "floor"
    status = "ok" if ok else "REGRESSION"
    print(
        f"{name}: {metric}: current={value:.6g} baseline={base:.6g} "
        f"{relation}={bound:.6g} [{status}]"
    )
    if not ok:
        failures.append(
            f"{name}: regression: {metric}={value:.6g} crossed the "
            f"{relation} {bound:.6g} (baseline {base:.6g}, "
            f"tolerance {tolerance:.0%})"
        )


def load_json(path, failures, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"{what} '{path}': {e}")
        return None


def gate_file(name, current_path, baseline_path, metric_specs, failures):
    baseline = load_json(baseline_path, failures, f"{name}: baseline")
    current = load_json(current_path, failures, f"{name}: emission")
    if baseline is None or current is None:
        return
    check_schema(name, baseline, current, failures)
    for metric, spec in metric_specs.items():
        check_metric(name, metric, spec, baseline, current, failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", help="single-file mode: emission path")
    parser.add_argument("--baseline", help="single-file mode: baseline path")
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        help="single-file mode: numeric field that must not regress "
        "(repeatable)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="single-file mode: allowed fractional drop below baseline",
    )
    parser.add_argument(
        "--suite", help="suite mode: gate config JSON (see module docstring)"
    )
    parser.add_argument(
        "--current-dir", default="build", help="suite mode: emissions directory"
    )
    parser.add_argument(
        "--baseline-dir",
        default="bench/baseline",
        help="suite mode: baselines directory",
    )
    args = parser.parse_args()

    failures = []

    if args.suite:
        suite = load_json(args.suite, failures, "suite config")
        if suite is None:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        for name in sorted(suite):
            entry = suite[name]
            metrics = entry.get("metrics") if isinstance(entry, dict) else None
            if not isinstance(metrics, dict) or not metrics:
                # An entry that gates nothing is a config bug, not a
                # pass: it would silently disable the bench's gate.
                failures.append(
                    f"{name}: gate config: entry must be an object with a "
                    f"non-empty 'metrics' map"
                )
                continue
            gate_file(
                name,
                os.path.join(args.current_dir, name),
                os.path.join(args.baseline_dir, name),
                metrics,
                failures,
            )
        # "Every BENCH_*.json is gated" holds in both directions: an
        # emission with no gate entry (new or renamed bench) fails the
        # suite instead of slipping through ungated.
        for path in sorted(
            glob.glob(os.path.join(args.current_dir, "BENCH_*.json"))
        ):
            name = os.path.basename(path)
            if name not in suite:
                failures.append(
                    f"{name}: emitted but has no entry in {args.suite}; "
                    f"add a gate (and a baseline) for it"
                )
    elif args.current and args.baseline:
        specs = {m: {"max_regression": args.max_regression} for m in args.metric}
        gate_file(
            os.path.basename(args.current),
            args.current,
            args.baseline,
            specs,
            failures,
        )
    else:
        parser.error("pass either --suite or both --current and --baseline")

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

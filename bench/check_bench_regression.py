#!/usr/bin/env python3
"""Gate a bench JSON emission against its checked-in baseline.

Two checks:
  1. Schema: every baseline field must be present in the current
     emission with the same JSON type (the emission is a contract; CI
     consumers break when fields disappear or change type).
  2. Regression: each metric named by --metric must not fall below
     baseline * (1 - --max-regression).

The baseline is intentionally conservative (well below a healthy run
on any CI runner) so the gate catches real regressions, not runner
variance.

Usage:
  check_bench_regression.py --current build/BENCH_serve.json \
      --baseline bench/baseline/BENCH_serve.json \
      --metric qps --max-regression 0.30
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        help="numeric field that must not regress (repeatable)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline value",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []

    # 1. Schema: baseline fields must survive with the same type.
    for key, base_value in baseline.items():
        if key not in current:
            failures.append(f"schema: field '{key}' missing from emission")
            continue
        base_numeric = isinstance(base_value, (int, float)) and not isinstance(
            base_value, bool
        )
        cur_numeric = isinstance(current[key], (int, float)) and not isinstance(
            current[key], bool
        )
        if base_numeric != cur_numeric or (
            not base_numeric and type(base_value) is not type(current[key])
        ):
            failures.append(
                f"schema: field '{key}' changed type "
                f"({type(base_value).__name__} -> "
                f"{type(current[key]).__name__})"
            )

    # 2. Regression gate on the named metrics.
    for metric in args.metric:
        if metric not in baseline or metric not in current:
            failures.append(f"metric '{metric}' absent from baseline/current")
            continue
        floor = baseline[metric] * (1.0 - args.max_regression)
        value = current[metric]
        status = "ok" if value >= floor else "REGRESSION"
        print(
            f"{metric}: current={value:.6g} baseline={baseline[metric]:.6g} "
            f"floor={floor:.6g} [{status}]"
        )
        if value < floor:
            failures.append(
                f"regression: {metric}={value:.6g} fell below floor "
                f"{floor:.6g} (baseline {baseline[metric]:.6g}, "
                f"tolerance {args.max_regression:.0%})"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

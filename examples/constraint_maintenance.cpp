// Constraint maintenance scenario: how the constraint subsystem behaves
// as the rule base and access patterns evolve — the operational side of
// Section 3 (closure recomputation on updates, grouping policies,
// access-frequency drift).
//
//   $ ./examples/constraint_maintenance
#include <cstdio>
#include <cstdlib>

#include "catalog/access_stats.h"
#include "constraints/constraint_catalog.h"
#include "constraints/constraint_parser.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void PrintGroups(const sqopt::Schema& schema,
                 const sqopt::ConstraintCatalog& catalog) {
  for (const sqopt::ObjectClass& oc : schema.classes()) {
    std::printf("  group[%s]: %zu constraints\n", oc.name.c_str(),
                catalog.grouping().group_size(oc.id));
  }
}

}  // namespace

int main() {
  using namespace sqopt;

  Schema schema = Unwrap(BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
    Status s = catalog.AddConstraint(std::move(clause));
    if (!s.ok()) Die(s);
  }

  // --- Phase 1: cold start, arbitrary grouping. ---
  AccessStats access(schema.num_classes());
  PrecompileOptions options;
  options.grouping = GroupingPolicy::kArbitrary;
  Status s = catalog.Precompile(&access, options);
  if (!s.ok()) Die(s);
  std::printf("=== Phase 1: arbitrary grouping ===\n");
  std::printf("base %zu, derived %zu\n", catalog.num_base(),
              catalog.num_derived());
  PrintGroups(schema, catalog);

  // --- Phase 2: a month of traffic; cargo and vehicle run hot. ---
  ClassId cargo = schema.FindClass("cargo");
  ClassId vehicle = schema.FindClass("vehicle");
  ClassId department = schema.FindClass("department");
  access.SetCount(cargo, 900);
  access.SetCount(vehicle, 700);
  access.SetCount(schema.FindClass("supplier"), 120);
  access.SetCount(schema.FindClass("driver"), 60);
  access.SetCount(department, 5);

  options.grouping = GroupingPolicy::kLeastFrequentlyAccessed;
  s = catalog.Precompile(&access, options);
  if (!s.ok()) Die(s);
  std::printf("\n=== Phase 2: least-frequently-accessed grouping ===\n");
  std::printf("(constraints migrate toward cold classes, so hot-class\n"
              " queries fetch fewer irrelevant constraints)\n");
  PrintGroups(schema, catalog);

  catalog.ResetRetrievalStats();
  for (int i = 0; i < 100; ++i) {
    catalog.RelevantForQuery({cargo, vehicle});  // the hot query
  }
  std::printf("hot-query retrieval: %.1f constraints/query, "
              "%.0f%% irrelevant\n",
              static_cast<double>(
                  catalog.retrieval_stats().constraints_retrieved) /
                  catalog.retrieval_stats().queries,
              100.0 * catalog.retrieval_stats().IrrelevantFraction());

  // --- Phase 3: the rule base changes; closure must be recomputed. ---
  std::printf("\n=== Phase 3: adding a constraint, recompiling ===\n");
  auto extra = ParseConstraint(
      schema,
      "new1: cargo.weight <= 40 -> cargo.quantity <= 499");
  if (!extra.ok()) Die(extra.status());
  s = catalog.AddConstraint(std::move(*extra));
  if (!s.ok()) Die(s);
  std::printf("catalog precompiled flag after add: %s\n",
              catalog.precompiled() ? "true" : "false");
  s = catalog.Precompile(&access, options);
  if (!s.ok()) Die(s);
  std::printf("after recompile: base %zu, derived %zu (new chains appear "
              "through the added rule)\n",
              catalog.num_base(), catalog.num_derived());

  // --- Phase 4: balanced grouping for drift-free installations. ---
  options.grouping = GroupingPolicy::kBalanced;
  s = catalog.Precompile(&access, options);
  if (!s.ok()) Die(s);
  std::printf("\n=== Phase 4: balanced grouping ===\n");
  PrintGroups(schema, catalog);
  return 0;
}

// Constraint maintenance scenario: how the constraint subsystem behaves
// as the rule base and access patterns evolve — the operational side of
// Section 3 (closure recomputation on updates, grouping policies,
// access-frequency drift), driven entirely through the Engine's admin
// path.
//
//   $ ./examples/constraint_maintenance
#include <cstdio>
#include <cstdlib>

#include "api/engine.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void PrintGroups(const sqopt::Engine& engine) {
  for (const sqopt::ObjectClass& oc : engine.schema().classes()) {
    std::printf("  group[%s]: %zu constraints\n", oc.name.c_str(),
                engine.catalog().grouping().group_size(oc.id));
  }
}

}  // namespace

int main() {
  using namespace sqopt;

  // --- Phase 1: cold start, arbitrary grouping. ---
  EngineOptions options;
  options.precompile.grouping = GroupingPolicy::kArbitrary;
  Engine engine = Unwrap(Engine::Open(SchemaSource::Experiment(),
                                      ConstraintSource::Experiment(),
                                      options));
  std::printf("=== Phase 1: arbitrary grouping ===\n");
  std::printf("base %zu, derived %zu\n", engine.catalog().num_base(),
              engine.catalog().num_derived());
  PrintGroups(engine);

  // --- Phase 2: a month of traffic; cargo and vehicle run hot. ---
  const Schema& schema = engine.schema();
  ClassId cargo = schema.FindClass("cargo");
  ClassId vehicle = schema.FindClass("vehicle");
  ClassId department = schema.FindClass("department");
  AccessStats* access = engine.mutable_access_stats();
  access->SetCount(cargo, 900);
  access->SetCount(vehicle, 700);
  access->SetCount(schema.FindClass("supplier"), 120);
  access->SetCount(schema.FindClass("driver"), 60);
  access->SetCount(department, 5);

  PrecompileOptions precompile;
  precompile.grouping = GroupingPolicy::kLeastFrequentlyAccessed;
  Status s = engine.Recompile(precompile);
  if (!s.ok()) Die(s);
  std::printf("\n=== Phase 2: least-frequently-accessed grouping ===\n");
  std::printf("(constraints migrate toward cold classes, so hot-class\n"
              " queries fetch fewer irrelevant constraints)\n");
  PrintGroups(engine);

  engine.catalog().ResetRetrievalStats();
  for (int i = 0; i < 100; ++i) {
    engine.catalog().RelevantForQuery({cargo, vehicle});  // the hot query
  }
  const RetrievalStats retrieval = engine.catalog().retrieval_stats();
  std::printf("hot-query retrieval: %.1f constraints/query, "
              "%.0f%% irrelevant\n",
              static_cast<double>(retrieval.constraints_retrieved) /
                  retrieval.queries,
              100.0 * retrieval.IrrelevantFraction());

  // --- Phase 3: the rule base changes; closure must be recomputed.
  // Engine::AddConstraint re-precompiles immediately — the catalog is
  // never served stale. ---
  std::printf("\n=== Phase 3: adding a constraint, recompiling ===\n");
  s = engine.AddConstraint(
      "new1: cargo.weight <= 40 -> cargo.quantity <= 499");
  if (!s.ok()) Die(s);
  std::printf("after add + recompile: base %zu, derived %zu (new chains "
              "appear through the added rule)\n",
              engine.catalog().num_base(), engine.catalog().num_derived());

  // --- Phase 4: balanced grouping for drift-free installations. ---
  precompile.grouping = GroupingPolicy::kBalanced;
  s = engine.Recompile(precompile);
  if (!s.ok()) Die(s);
  std::printf("\n=== Phase 4: balanced grouping ===\n");
  PrintGroups(engine);
  return 0;
}

// Logistics fleet scenario: the transport workload the paper's intro
// motivates. Opens an Engine on the experiment schema, loads a
// mid-sized database, runs a handful of fleet management queries with
// and without semantic optimization, and prints measured execution
// costs side by side.
//
//   $ ./examples/logistics_fleet [class_cardinality] [rel_cardinality]
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "api/engine.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;

  DbSpec spec{"fleet", 208, 616};  // DB4-sized by default
  if (argc > 1) spec.class_cardinality = std::atol(argv[1]);
  if (argc > 2) spec.rel_cardinality = std::atol(argv[2]);

  Engine engine = Unwrap(Engine::Open(SchemaSource::Experiment(),
                                      ConstraintSource::Experiment()));

  std::printf("generating fleet database: %ld objects/class, %ld "
              "pairs/relationship...\n",
              static_cast<long>(spec.class_cardinality),
              static_cast<long>(spec.rel_cardinality));
  Status s = engine.Load(DataSource::Generated(spec, /*seed=*/20260612));
  if (!s.ok()) Die(s);

  const std::vector<std::pair<const char*, const char*>> queries = {
      {"Which cargos do our refrigerated trucks collect?",
       R"(( SELECT {cargo.code, vehicle.vehicleNo} {}
            {vehicle.desc = "refrigerated truck"}
            {collects} {cargo, vehicle} ))"},
      {"Frozen-food cargo from west-region suppliers",
       R"(( SELECT {cargo.code} {}
            {cargo.desc = "frozen food", supplier.region = "west"}
            {supplies} {supplier, cargo} ))"},
      {"Can a refrigerated truck ever haul fuel? (contradiction)",
       R"(( SELECT {cargo.code} {}
            {vehicle.desc = "refrigerated truck", cargo.desc = "fuel"}
            {collects} {cargo, vehicle} ))"},
      {"Drivers cleared for high-security departments",
       R"(( SELECT {driver.name} {}
            {department.securityClass >= 4}
            {belongsTo} {driver, department} ))"},
      {"Senior drivers inspecting heavy cargo (neutral for SQO)",
       R"(( SELECT {driver.name, cargo.code} {}
            {driver.rank = "senior", cargo.weight >= 80}
            {inspects} {driver, cargo} ))"},
  };

  const CostModelParams& params = engine.options().cost_params;
  for (const auto& [title, text] : queries) {
    QueryOutcome original = Unwrap(engine.ExecuteUnoptimized(text));
    QueryOutcome optimized = Unwrap(engine.Execute(text));

    std::printf("\n--- %s ---\n", title);
    std::printf("original:    %s\n",
                PrintQuery(engine.schema(), original.original).c_str());
    std::printf("transformed: %s%s\n",
                PrintQuery(engine.schema(), optimized.transformed).c_str(),
                optimized.answered_without_database
                    ? "  [EMPTY — answered without DB]"
                    : "");
    std::printf("firings: %zu, eliminated classes: %zu, rows: %zu -> %zu\n",
                optimized.report.num_firings,
                optimized.report.eliminated_classes.size(),
                original.rows.rows.size(), optimized.rows.rows.size());
    double oc = original.meter.CostUnits(params);
    double tc = optimized.meter.CostUnits(params);
    std::printf("measured cost units: %.2f -> %.2f (%.0f%%)\n", oc, tc,
                oc > 0 ? 100.0 * tc / oc : 0.0);
  }
  return 0;
}

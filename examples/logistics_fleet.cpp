// Logistics fleet scenario: the transport workload the paper's intro
// motivates. Generates a mid-sized database, runs a handful of fleet
// management queries with and without semantic optimization, and prints
// measured execution costs side by side.
//
//   $ ./examples/logistics_fleet [class_cardinality] [rel_cardinality]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "catalog/access_stats.h"
#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;

  DbSpec spec{"fleet", 208, 616};  // DB4-sized by default
  if (argc > 1) spec.class_cardinality = std::atol(argv[1]);
  if (argc > 2) spec.rel_cardinality = std::atol(argv[2]);

  Schema schema = Unwrap(BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
    Status s = catalog.AddConstraint(std::move(clause));
    if (!s.ok()) Die(s);
  }
  AccessStats access(schema.num_classes());
  Status s = catalog.Precompile(&access);
  if (!s.ok()) Die(s);

  std::printf("generating fleet database: %ld objects/class, %ld "
              "pairs/relationship...\n",
              static_cast<long>(spec.class_cardinality),
              static_cast<long>(spec.rel_cardinality));
  auto store = Unwrap(GenerateDatabase(schema, spec, /*seed=*/20260612));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);
  SemanticOptimizer optimizer(&schema, &catalog, &cost_model);

  const std::vector<std::pair<const char*, const char*>> queries = {
      {"Which cargos do our refrigerated trucks collect?",
       R"(( SELECT {cargo.code, vehicle.vehicleNo} {}
            {vehicle.desc = "refrigerated truck"}
            {collects} {cargo, vehicle} ))"},
      {"Frozen-food cargo from west-region suppliers",
       R"(( SELECT {cargo.code} {}
            {cargo.desc = "frozen food", supplier.region = "west"}
            {supplies} {supplier, cargo} ))"},
      {"Can a refrigerated truck ever haul fuel? (contradiction)",
       R"(( SELECT {cargo.code} {}
            {vehicle.desc = "refrigerated truck", cargo.desc = "fuel"}
            {collects} {cargo, vehicle} ))"},
      {"Drivers cleared for high-security departments",
       R"(( SELECT {driver.name} {}
            {department.securityClass >= 4}
            {belongsTo} {driver, department} ))"},
      {"Senior drivers inspecting heavy cargo (neutral for SQO)",
       R"(( SELECT {driver.name, cargo.code} {}
            {driver.rank = "senior", cargo.weight >= 80}
            {inspects} {driver, cargo} ))"},
  };

  CostModelParams params;
  for (const auto& [title, text] : queries) {
    Query query = Unwrap(ParseQuery(schema, text));
    access.RecordQuery(query.classes);

    ExecutionMeter original_meter;
    ResultSet original =
        Unwrap(ExecuteQuery(*store, query, &original_meter));

    OptimizeResult opt = Unwrap(optimizer.Optimize(query));
    ExecutionMeter optimized_meter;
    ResultSet optimized;
    if (!opt.empty_result) {
      optimized = Unwrap(ExecuteQuery(*store, opt.query, &optimized_meter));
    }

    std::printf("\n--- %s ---\n", title);
    std::printf("original:    %s\n", PrintQuery(schema, query).c_str());
    std::printf("transformed: %s%s\n",
                PrintQuery(schema, opt.query).c_str(),
                opt.empty_result ? "  [EMPTY — answered without DB]" : "");
    std::printf("firings: %zu, eliminated classes: %zu, rows: %zu -> %zu\n",
                opt.report.num_firings,
                opt.report.eliminated_classes.size(), original.rows.size(),
                opt.empty_result ? 0 : optimized.rows.size());
    double oc = original_meter.CostUnits(params);
    double tc = optimized_meter.CostUnits(params);
    std::printf("measured cost units: %.2f -> %.2f (%.0f%%)\n", oc, tc,
                oc > 0 ? 100.0 * tc / oc : 0.0);
  }
  return 0;
}

// Path workload driver: reproduces the paper's §4 evaluation protocol —
// enumerate all simple paths in the schema, formulate a query per path,
// draw 40 at random, and push them through the Engine's analysis path.
// Prints a per-query line plus aggregate statistics.
//
//   $ ./examples/path_workload [num_queries] [seed]
#include <cstdio>
#include <cstdlib>

#include "api/engine.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;

  size_t num_queries = argc > 1 ? std::atoi(argv[1]) : 40;
  uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1991;

  Engine engine = Unwrap(Engine::Open(SchemaSource::Experiment(),
                                      ConstraintSource::Experiment()));
  // The database exists to give the profitability analysis real
  // statistics; the queries themselves are only analyzed.
  Status s = engine.Load(DataSource::Generated(DbSpec{"PW", 104, 154}, seed));
  if (!s.ok()) Die(s);

  std::vector<SchemaPath> paths =
      EnumerateSimplePaths(engine.schema(), 1, 5);
  std::printf("schema has %zu simple paths; drawing %zu queries "
              "(seed %llu)\n\n",
              paths.size(), num_queries,
              static_cast<unsigned long long>(seed));

  QueryGenerator gen(&engine.schema(), seed);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, num_queries));

  size_t transformed = 0, eliminations = 0, contradictions = 0;
  size_t introductions = 0, eliminated_preds = 0;
  int64_t total_ns = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOutcome outcome = Unwrap(engine.Analyze(queries[i]));
    const OptimizationReport& r = outcome.report;
    if (r.num_firings > 0) ++transformed;
    eliminations += r.eliminated_classes.size();
    if (outcome.answered_without_database) ++contradictions;
    for (const TransformStep& step : r.steps) {
      if (step.introduced) ++introductions;
    }
    for (const FinalPredicate& fp : r.final_predicates) {
      if (fp.in_original_query && !fp.retained) ++eliminated_preds;
    }
    total_ns += r.total_ns;
    std::printf("q%02zu  classes=%zu rels=%zu  n=%zu m=%zu  firings=%zu  "
                "%s%s\n",
                i + 1, queries[i].classes.size(),
                queries[i].relationships.size(),
                r.num_relevant_constraints, r.num_distinct_predicates,
                r.num_firings,
                r.eliminated_classes.empty() ? "" : "[class-elim] ",
                outcome.answered_without_database ? "[empty-result]" : "");
  }

  const RetrievalStats rs = engine.catalog().retrieval_stats();
  std::printf("\n=== Aggregates over %zu queries ===\n", queries.size());
  std::printf("queries transformed:        %zu\n", transformed);
  std::printf("predicates introduced:      %zu\n", introductions);
  std::printf("query predicates dropped:   %zu\n", eliminated_preds);
  std::printf("classes eliminated:         %zu\n", eliminations);
  std::printf("contradictions detected:    %zu\n", contradictions);
  std::printf("constraints retrieved:      %llu (%.0f%% irrelevant)\n",
              static_cast<unsigned long long>(rs.constraints_retrieved),
              100.0 * rs.IrrelevantFraction());
  std::printf("mean transformation time:   %.1f us\n",
              queries.empty() ? 0.0
                              : total_ns / 1000.0 / queries.size());
  return 0;
}

// Path workload driver: reproduces the paper's §4 evaluation protocol —
// enumerate all simple paths in the schema, formulate a query per path,
// draw 40 at random, and push them through the semantic optimizer.
// Prints a per-query line plus aggregate statistics.
//
//   $ ./examples/path_workload [num_queries] [seed]
#include <cstdio>
#include <cstdlib>

#include "catalog/access_stats.h"
#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "exec/plan_builder.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"
#include "workload/path_enum.h"
#include "workload/query_gen.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqopt;

  size_t num_queries = argc > 1 ? std::atoi(argv[1]) : 40;
  uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1991;

  Schema schema = Unwrap(BuildExperimentSchema());
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(ExperimentConstraints(schema))) {
    Status s = catalog.AddConstraint(std::move(clause));
    if (!s.ok()) Die(s);
  }
  AccessStats access(schema.num_classes());
  Status s = catalog.Precompile(&access);
  if (!s.ok()) Die(s);

  std::vector<SchemaPath> paths = EnumerateSimplePaths(schema, 1, 5);
  std::printf("schema has %zu simple paths; drawing %zu queries "
              "(seed %llu)\n\n",
              paths.size(), num_queries,
              static_cast<unsigned long long>(seed));

  auto store = Unwrap(GenerateDatabase(schema, DbSpec{"PW", 104, 154}, seed));
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);
  SemanticOptimizer optimizer(&schema, &catalog, &cost_model);

  QueryGenerator gen(&schema, seed);
  std::vector<Query> queries = Unwrap(gen.Sample(paths, num_queries));

  size_t transformed = 0, eliminations = 0, contradictions = 0;
  size_t introductions = 0, eliminated_preds = 0;
  int64_t total_ns = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    access.RecordQuery(queries[i].classes);
    OptimizeResult result = Unwrap(optimizer.Optimize(queries[i]));
    const OptimizationReport& r = result.report;
    if (r.num_firings > 0) ++transformed;
    eliminations += r.eliminated_classes.size();
    if (result.empty_result) ++contradictions;
    for (const TransformStep& step : r.steps) {
      if (step.introduced) ++introductions;
    }
    for (const FinalPredicate& fp : r.final_predicates) {
      if (fp.in_original_query && !fp.retained) ++eliminated_preds;
    }
    total_ns += r.total_ns;
    std::printf("q%02zu  classes=%zu rels=%zu  n=%zu m=%zu  firings=%zu  "
                "%s%s\n",
                i + 1, queries[i].classes.size(),
                queries[i].relationships.size(),
                r.num_relevant_constraints, r.num_distinct_predicates,
                r.num_firings,
                r.eliminated_classes.empty() ? "" : "[class-elim] ",
                result.empty_result ? "[empty-result]" : "");
  }

  const RetrievalStats& rs = catalog.retrieval_stats();
  std::printf("\n=== Aggregates over %zu queries ===\n", queries.size());
  std::printf("queries transformed:        %zu\n", transformed);
  std::printf("predicates introduced:      %zu\n", introductions);
  std::printf("query predicates dropped:   %zu\n", eliminated_preds);
  std::printf("classes eliminated:         %zu\n", eliminations);
  std::printf("contradictions detected:    %zu\n", contradictions);
  std::printf("constraints retrieved:      %llu (%.0f%% irrelevant)\n",
              static_cast<unsigned long long>(rs.constraints_retrieved),
              100.0 * rs.IrrelevantFraction());
  std::printf("mean transformation time:   %.1f us\n",
              queries.empty() ? 0.0
                              : total_ns / 1000.0 / queries.size());
  return 0;
}

// Quickstart: the paper's running example (Figures 2.1-2.3, Section 3.5)
// end to end — build the schema, load the semantic constraints, optimize
// the sample query, and print the transformation trace.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstdlib>
#include <string>

#include "catalog/access_stats.h"
#include "constraints/constraint_catalog.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "workload/example_schema.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace sqopt;

  // 1. The Figure 2.1 database schema.
  Schema schema = Unwrap(BuildFigure21Schema());
  std::printf("=== Schema (Figure 2.1) ===\n%s\n",
              schema.ToString().c_str());

  // 2. The Figure 2.2 semantic constraints, precompiled: transitive
  // closure materialized, constraints grouped by object class.
  ConstraintCatalog catalog(&schema);
  for (HornClause& clause : Unwrap(Figure22Constraints(schema))) {
    std::printf("constraint %s\n", clause.ToString(schema).c_str());
    Status s = catalog.AddConstraint(std::move(clause));
    if (!s.ok()) Die(s);
  }
  AccessStats stats(schema.num_classes());
  Status s = catalog.Precompile(&stats);
  if (!s.ok()) Die(s);
  std::printf("\nprecompiled: %zu base + %zu derived constraints\n\n",
              catalog.num_base(), catalog.num_derived());

  // 3. The Figure 2.3 sample query: refrigerated trucks sent to SFI.
  Query query = Unwrap(Figure23SampleQuery(schema));
  std::printf("=== Original query ===\n%s\n\n",
              PrintQueryPretty(schema, query).c_str());

  // 4. Optimize. No cost model here: every optional predicate is kept,
  // exactly as in the paper's walkthrough.
  SemanticOptimizer optimizer(&schema, &catalog, /*cost_model=*/nullptr);
  OptimizeResult result = Unwrap(optimizer.Optimize(query));

  std::printf("=== Transformation trace ===\n%s\n",
              result.report.ToString(schema).c_str());
  std::printf("=== Transformed query ===\n%s\n",
              PrintQueryPretty(schema, result.query).c_str());
  std::printf(
      "\nThe supplier class is gone (class elimination), its predicate\n"
      "supplier.name = \"SFI\" with it, and cargo.desc = \"frozen food\"\n"
      "was introduced — matching Figure 2.3's final query.\n");
  return 0;
}

// Quickstart: the paper's running example (Figures 2.1-2.3, Section 3.5)
// end to end through the public API — open an Engine on the schema and
// the semantic constraints, analyze the sample query, and print the
// transformation trace.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "api/engine.h"
#include "workload/example_schema.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace sqopt;

  // One call wires the whole pipeline: the Figure 2.1 schema, the
  // Figure 2.2 constraints with their transitive closure materialized
  // and grouped by object class. No data is loaded, so there is no
  // cost model: every optional predicate is kept, exactly as in the
  // paper's walkthrough.
  Engine engine = Unwrap(Engine::Open(SchemaSource::PaperExample(),
                                      ConstraintSource::PaperExample()));

  std::printf("=== Schema (Figure 2.1) ===\n%s\n",
              engine.schema().ToString().c_str());

  const ConstraintCatalog& catalog = engine.catalog();
  for (size_t i = 0; i < catalog.num_base(); ++i) {
    std::printf("constraint %s\n",
                catalog.clause(static_cast<ConstraintId>(i))
                    .ToString(engine.schema())
                    .c_str());
  }
  std::printf("\nprecompiled: %zu base + %zu derived constraints\n\n",
              catalog.num_base(), catalog.num_derived());

  // The Figure 2.3 sample query: refrigerated trucks sent to SFI.
  Query query = Unwrap(Figure23SampleQuery(engine.schema()));
  std::printf("=== Original query ===\n%s\n\n",
              PrintQueryPretty(engine.schema(), query).c_str());

  QueryOutcome outcome = Unwrap(engine.Analyze(query));

  std::printf("=== Transformation trace ===\n%s\n",
              outcome.report.ToString(engine.schema()).c_str());
  std::printf("=== Transformed query ===\n%s\n",
              PrintQueryPretty(engine.schema(), outcome.transformed).c_str());
  std::printf(
      "\nThe supplier class is gone (class elimination), its predicate\n"
      "supplier.name = \"SFI\" with it, and cargo.desc = \"frozen food\"\n"
      "was introduced — matching Figure 2.3's final query.\n");
  return 0;
}

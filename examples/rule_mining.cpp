// Rule mining scenario (Siegel [Sie88] / Yu & Sun [YuS89] extension):
// derive state-dependent semantic rules from the current database
// contents, feed them to the optimizer alongside the hand-written
// integrity constraints, and show the extra transformations they enable.
//
//   $ ./examples/rule_mining
#include <cstdio>
#include <cstdlib>

#include "catalog/access_stats.h"
#include "constraints/constraint_catalog.h"
#include "constraints/rule_derivation.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace sqopt;

  Schema schema = Unwrap(BuildExperimentSchema());
  auto store =
      Unwrap(GenerateDatabase(schema, DbSpec{"mine", 104, 208}, 7));

  // Mine rules from the current state.
  std::printf("=== Mining state rules ===\n");
  std::vector<HornClause> mined = Unwrap(DeriveStateRules(*store));
  std::printf("derived %zu rules; a sample:\n", mined.size());
  for (size_t i = 0; i < mined.size() && i < 8; ++i) {
    std::printf("  %s\n", mined[i].ToString(schema).c_str());
  }

  // Two catalogs: integrity constraints only, and integrity + mined.
  auto build_catalog = [&](bool with_mined) {
    auto catalog = std::make_unique<ConstraintCatalog>(&schema);
    for (HornClause& c : Unwrap(ExperimentConstraints(schema))) {
      Status s = catalog->AddConstraint(std::move(c));
      if (!s.ok()) Die(s);
    }
    if (with_mined) {
      for (const HornClause& c : mined) {
        // Mined rules may duplicate hand-written ones; skip those.
        (void)catalog->AddConstraint(c);
      }
    }
    AccessStats access(schema.num_classes());
    Status s = catalog->Precompile(&access);
    if (!s.ok()) Die(s);
    return catalog;
  };
  auto base_catalog = build_catalog(false);
  auto mined_catalog = build_catalog(true);
  std::printf("\ncatalog sizes: integrity-only %zu clauses, +mined %zu "
              "clauses (after closure)\n",
              base_catalog->clauses().size(),
              mined_catalog->clauses().size());

  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);

  // A query the integrity constraints cannot help but mined rules can:
  // the global bounds turn an out-of-range filter into a contradiction.
  const char* queries[] = {
      // quantity >= 5000 exceeds the observed max (1000): mined range
      // rule makes it provably empty in this state.
      "{cargo.code} {} {cargo.quantity >= 5000} {} {cargo}",
      // licenseClass = 4 pins the driver segment; mined value rules
      // introduce clearance/rank predicates integrity rules don't know.
      "{driver.name} {} {driver.licenseClass >= 4} {} {driver}",
  };

  for (const char* text : queries) {
    Query query = Unwrap(ParseQuery(schema, text));
    std::printf("\n--- %s ---\n", PrintQuery(schema, query).c_str());
    for (auto* catalog : {base_catalog.get(), mined_catalog.get()}) {
      bool with_mined = (catalog == mined_catalog.get());
      SemanticOptimizer optimizer(&schema, catalog, &cost_model);
      OptimizeResult result = Unwrap(optimizer.Optimize(query));
      std::printf("%-18s firings=%zu%s -> %s\n",
                  with_mined ? "integrity+mined:" : "integrity-only:",
                  result.report.num_firings,
                  result.empty_result ? " [EMPTY without DB access]" : "",
                  PrintQuery(schema, result.query).c_str());
    }
  }

  std::printf(
      "\nCaveat (Siegel): mined rules hold in the CURRENT state only —\n"
      "after updates they must be re-validated (RuleHoldsOnStore) or\n"
      "re-derived, unlike the always-true integrity constraints.\n");
  return 0;
}

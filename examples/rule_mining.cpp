// Rule mining scenario (Siegel [Sie88] / Yu & Sun [YuS89] extension):
// derive state-dependent semantic rules from the current database
// contents, feed them to a second Engine alongside the hand-written
// integrity constraints, and show the extra transformations they
// enable.
//
//   $ ./examples/rule_mining
#include <cstdio>
#include <cstdlib>

#include "api/engine.h"
#include "constraints/rule_derivation.h"

namespace {

void Die(const sqopt::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(sqopt::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void Check(const sqopt::Status& status) {
  if (!status.ok()) Die(status);
}

}  // namespace

int main() {
  using namespace sqopt;

  const DbSpec spec{"mine", 104, 208};
  constexpr uint64_t kSeed = 7;

  // Baseline engine: integrity constraints only.
  Engine base = Unwrap(Engine::Open(SchemaSource::Experiment(),
                                    ConstraintSource::Experiment()));
  Check(base.Load(DataSource::Generated(spec, kSeed)));

  // Mine rules from the current state.
  std::printf("=== Mining state rules ===\n");
  std::vector<HornClause> mined = Unwrap(DeriveStateRules(*base.store()));
  std::printf("derived %zu rules; a sample:\n", mined.size());
  for (size_t i = 0; i < mined.size() && i < 8; ++i) {
    std::printf("  %s\n", mined[i].ToString(base.schema()).c_str());
  }

  // Second engine: integrity + mined. Merge skips the mined rules that
  // duplicate hand-written ones; the deterministic generator rebuilds
  // the identical database.
  Engine with_mined = Unwrap(Engine::Open(
      SchemaSource::Experiment(),
      ConstraintSource::Merge({ConstraintSource::Experiment(),
                               ConstraintSource::FromClauses(mined)})));
  Check(with_mined.Load(DataSource::Generated(spec, kSeed)));

  std::printf("\ncatalog sizes: integrity-only %zu clauses, +mined %zu "
              "clauses (after closure)\n",
              base.catalog().clauses().size(),
              with_mined.catalog().clauses().size());

  // A query the integrity constraints cannot help but mined rules can:
  // the global bounds turn an out-of-range filter into a contradiction.
  const char* queries[] = {
      // quantity >= 5000 exceeds the observed max (1000): mined range
      // rule makes it provably empty in this state.
      "{cargo.code} {} {cargo.quantity >= 5000} {} {cargo}",
      // licenseClass = 4 pins the driver segment; mined value rules
      // introduce clearance/rank predicates integrity rules don't know.
      "{driver.name} {} {driver.licenseClass >= 4} {} {driver}",
  };

  for (const char* text : queries) {
    Query query = Unwrap(base.Parse(text));
    std::printf("\n--- %s ---\n", PrintQuery(base.schema(), query).c_str());
    for (const Engine* engine : {&base, &with_mined}) {
      bool is_mined = (engine == &with_mined);
      QueryOutcome outcome = Unwrap(engine->Analyze(query));
      std::printf("%-18s firings=%zu%s -> %s\n",
                  is_mined ? "integrity+mined:" : "integrity-only:",
                  outcome.report.num_firings,
                  outcome.answered_without_database
                      ? " [EMPTY without DB access]"
                      : "",
                  PrintQuery(engine->schema(), outcome.transformed).c_str());
    }
  }

  std::printf(
      "\nCaveat (Siegel): mined rules hold in the CURRENT state only —\n"
      "after updates they must be re-validated (RuleHoldsOnStore) or\n"
      "re-derived, unlike the always-true integrity constraints.\n");
  return 0;
}

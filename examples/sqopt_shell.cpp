// Interactive shell over the public API: parse, optimize, explain, and
// execute queries against a generated experiment database.
//
//   $ ./examples/sqopt_shell
//   sqopt> help
//   sqopt> query {cargo.code} {} {cargo.desc = "frozen food"} {} {cargo}
//   sqopt> explain {cargo.code} {} {cargo.desc = "frozen food"} {} {cargo}
//   sqopt> constraints
//   sqopt> quit
//
// Also accepts commands on stdin non-interactively (used in CI smoke
// runs: `echo 'constraints' | ./examples/sqopt_shell`).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "catalog/access_stats.h"
#include "constraints/constraint_catalog.h"
#include "constraints/constraint_parser.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "query/query_printer.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/dbgen.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  query <5-group query>    optimize + execute, print rows\n"
      "  explain <5-group query>  show transformation trace and plans\n"
      "  add <horn clause>        add a constraint (recompiles catalog)\n"
      "  constraints              list constraints (base + derived)\n"
      "  schema                   print the schema\n"
      "  stats                    class cardinalities\n"
      "  help                     this text\n"
      "  quit\n"
      "query form: {proj} {joins} {selects} {rels} {classes}, e.g.\n"
      "  query {cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}\n");
}

}  // namespace

int main() {
  using namespace sqopt;

  auto schema_result = BuildExperimentSchema();
  if (!schema_result.ok()) return 1;
  Schema schema = std::move(schema_result).value();

  ConstraintCatalog catalog(&schema);
  {
    auto constraints = ExperimentConstraints(schema);
    if (!constraints.ok()) return 1;
    for (HornClause& clause : *constraints) {
      if (!catalog.AddConstraint(std::move(clause)).ok()) return 1;
    }
  }
  AccessStats access(schema.num_classes());
  if (!catalog.Precompile(&access).ok()) return 1;

  auto store_result =
      GenerateDatabase(schema, DbSpec{"shell", 104, 208}, 42);
  if (!store_result.ok()) return 1;
  auto store = std::move(store_result).value();
  DatabaseStats stats = CollectStats(*store);
  CostModel cost_model(&schema, &stats);

  std::printf("sqopt shell — experiment schema, 104 objects/class. "
              "'help' for commands.\n");

  std::string line;
  while (true) {
    std::printf("sqopt> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);

    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "schema") {
      std::printf("%s", schema.ToString().c_str());
      continue;
    }
    if (command == "stats") {
      for (const ObjectClass& oc : schema.classes()) {
        std::printf("  %-12s %6lld objects\n", oc.name.c_str(),
                    static_cast<long long>(store->NumObjects(oc.id)));
      }
      continue;
    }
    if (command == "constraints") {
      for (size_t i = 0; i < catalog.clauses().size(); ++i) {
        const HornClause& c = catalog.clause(static_cast<ConstraintId>(i));
        std::printf("  [%s]%s %s\n",
                    ConstraintClassName(
                        catalog.classification(static_cast<ConstraintId>(i))),
                    c.is_derived() ? " (derived)" : "",
                    c.ToString(schema).c_str());
      }
      continue;
    }
    if (command == "add") {
      auto clause = ParseConstraint(schema, rest);
      if (!clause.ok()) {
        std::printf("  %s\n", clause.status().ToString().c_str());
        continue;
      }
      Status s = catalog.AddConstraint(std::move(*clause));
      if (s.ok()) s = catalog.Precompile(&access);
      std::printf("  %s\n", s.ok() ? "ok (catalog recompiled)"
                                   : s.ToString().c_str());
      continue;
    }
    if (command == "query" || command == "explain") {
      auto query = ParseQuery(schema, rest);
      if (!query.ok()) {
        std::printf("  %s\n", query.status().ToString().c_str());
        continue;
      }
      access.RecordQuery(query->classes);
      SemanticOptimizer optimizer(&schema, &catalog, &cost_model);
      auto opt = optimizer.Optimize(*query);
      if (!opt.ok()) {
        std::printf("  %s\n", opt.status().ToString().c_str());
        continue;
      }
      if (command == "explain") {
        std::printf("%s", opt->report.ToString(schema).c_str());
        std::printf("transformed: %s\n",
                    PrintQuery(schema, opt->query).c_str());
        if (!opt->empty_result) {
          auto plan = BuildPlan(schema, stats, opt->query);
          if (plan.ok()) {
            std::printf("plan:\n%s", plan->ToString(schema).c_str());
          }
        }
        continue;
      }
      // query: execute the transformed form.
      ExecutionMeter meter;
      ResultSet rows;
      if (!opt->empty_result) {
        auto executed = ExecuteQuery(*store, opt->query, &meter);
        if (!executed.ok()) {
          std::printf("  %s\n", executed.status().ToString().c_str());
          continue;
        }
        rows = std::move(*executed);
      }
      size_t shown = 0;
      for (const auto& row : rows.rows) {
        if (shown++ == 10) {
          std::printf("  ... (%zu more)\n", rows.rows.size() - 10);
          break;
        }
        std::string text;
        for (const Value& v : row) text += v.ToString() + "  ";
        std::printf("  %s\n", text.c_str());
      }
      std::printf("%zu row(s), cost %.2f units, %zu transformation(s)%s\n",
                  rows.rows.size(), meter.CostUnits(),
                  opt->report.num_firings,
                  opt->empty_result ? " [contradiction: no DB access]"
                                    : "");
      continue;
    }
    std::printf("unknown command '%s' — try 'help'\n", command.c_str());
  }
  return 0;
}

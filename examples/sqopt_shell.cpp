// Interactive shell over the public API: parse, optimize, explain,
// prepare, and execute queries against a generated experiment database
// through one sqopt::Engine.
//
//   $ ./examples/sqopt_shell
//   sqopt> help
//   sqopt> query {cargo.code} {} {cargo.desc = "frozen food"} {} {cargo}
//   sqopt> explain {cargo.code} {} {cargo.desc = "frozen food"} {} {cargo}
//   sqopt> prepare {cargo.code} {} {cargo.desc = "frozen food"} {} {cargo}
//   sqopt> run 1000
//   sqopt> counters
//   sqopt> quit
//
// Also accepts commands on stdin non-interactively (used in CI smoke
// runs: `echo 'constraints' | ./examples/sqopt_shell`).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "api/engine.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  query <5-group query>    optimize + execute, print rows\n"
      "  explain <5-group query>  show transformation trace and plan\n"
      "  prepare <5-group query>  prepare a statement for repeated runs\n"
      "  run [n]                  execute the prepared statement n times\n"
      "  add <horn clause>        add a constraint (recompiles catalog)\n"
      "  constraints              list constraints (base + derived)\n"
      "  schema                   print the schema\n"
      "  stats                    class cardinalities\n"
      "  counters                 engine counters (parses, executions)\n"
      "  help                     this text\n"
      "  quit\n"
      "query form: {proj} {joins} {selects} {rels} {classes}, e.g.\n"
      "  query {cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}\n");
}

void PrintRows(const sqopt::ResultSet& rows) {
  size_t shown = 0;
  for (const auto& row : rows.rows) {
    if (shown++ == 10) {
      std::printf("  ... (%zu more)\n", rows.rows.size() - 10);
      break;
    }
    std::string text;
    for (const sqopt::Value& v : row) text += v.ToString() + "  ";
    std::printf("  %s\n", text.c_str());
  }
}

}  // namespace

int main() {
  using namespace sqopt;

  auto opened = Engine::Open(SchemaSource::Experiment(),
                             ConstraintSource::Experiment());
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Engine engine = std::move(opened).value();
  Status s =
      engine.Load(DataSource::Generated(DbSpec{"shell", 104, 208}, 42));
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("sqopt shell — experiment schema, 104 objects/class. "
              "'help' for commands.\n");

  PreparedQuery prepared;  // the one statement slot of this shell
  std::string line;
  while (true) {
    std::printf("sqopt> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);

    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "schema") {
      std::printf("%s", engine.schema().ToString().c_str());
      continue;
    }
    if (command == "stats") {
      for (const ObjectClass& oc : engine.schema().classes()) {
        std::printf("  %-12s %6lld objects\n", oc.name.c_str(),
                    static_cast<long long>(
                        engine.store()->NumObjects(oc.id)));
      }
      continue;
    }
    if (command == "counters") {
      EngineStats stats = engine.stats();
      std::printf("  parses %llu | executed %llu | analyzed %llu | "
                  "prepared %llu | prepared runs %llu | "
                  "contradictions %llu\n",
                  static_cast<unsigned long long>(stats.queries_parsed),
                  static_cast<unsigned long long>(stats.queries_executed),
                  static_cast<unsigned long long>(stats.queries_analyzed),
                  static_cast<unsigned long long>(stats.statements_prepared),
                  static_cast<unsigned long long>(stats.prepared_executions),
                  static_cast<unsigned long long>(stats.contradictions));
      continue;
    }
    if (command == "constraints") {
      const ConstraintCatalog& catalog = engine.catalog();
      for (size_t i = 0; i < catalog.clauses().size(); ++i) {
        const HornClause& c = catalog.clause(static_cast<ConstraintId>(i));
        std::printf("  [%s]%s %s\n",
                    ConstraintClassName(
                        catalog.classification(static_cast<ConstraintId>(i))),
                    c.is_derived() ? " (derived)" : "",
                    c.ToString(engine.schema()).c_str());
      }
      continue;
    }
    if (command == "add") {
      Status status = engine.AddConstraint(rest);
      std::printf("  %s\n", status.ok() ? "ok (catalog recompiled)"
                                        : status.ToString().c_str());
      continue;
    }
    if (command == "explain") {
      auto explained = engine.Explain(rest);
      if (!explained.ok()) {
        std::printf("  %s\n", explained.status().ToString().c_str());
        continue;
      }
      std::printf("%s", explained->c_str());
      continue;
    }
    if (command == "prepare") {
      auto handle = engine.Prepare(rest);
      if (!handle.ok()) {
        std::printf("  %s\n", handle.status().ToString().c_str());
        continue;
      }
      prepared = std::move(handle).value();
      std::printf("prepared: %s\n",
                  PrintQuery(engine.schema(), prepared.transformed()).c_str());
      std::printf("  (%zu transformation(s)%s; 'run [n]' to execute)\n",
                  prepared.report().num_firings,
                  prepared.answered_without_database()
                      ? ", provably empty"
                      : "");
      continue;
    }
    if (command == "run") {
      if (!prepared.valid()) {
        std::printf("  nothing prepared — use 'prepare <query>' first\n");
        continue;
      }
      long n = rest.empty() ? 1 : std::atol(rest.c_str());
      if (n < 1) n = 1;
      auto t0 = std::chrono::steady_clock::now();
      Result<QueryOutcome> last = prepared.Execute();
      for (long i = 1; i < n && last.ok(); ++i) {
        last = prepared.Execute();
      }
      auto t1 = std::chrono::steady_clock::now();
      if (!last.ok()) {
        std::printf("  %s\n", last.status().ToString().c_str());
        continue;
      }
      PrintRows(last->rows);
      std::printf("%zu row(s), cost %.2f units, %ld execution(s) in "
                  "%.1f us (%.2f us/exec, %llu lifetime)\n",
                  last->rows.rows.size(), last->meter.CostUnits(),
                  n,
                  std::chrono::duration<double, std::micro>(t1 - t0)
                      .count(),
                  std::chrono::duration<double, std::micro>(t1 - t0)
                          .count() /
                      n,
                  static_cast<unsigned long long>(prepared.executions()));
      continue;
    }
    if (command == "query") {
      auto outcome = engine.Execute(rest);
      if (!outcome.ok()) {
        std::printf("  %s\n", outcome.status().ToString().c_str());
        continue;
      }
      PrintRows(outcome->rows);
      std::printf("%zu row(s), cost %.2f units, %zu transformation(s)%s\n",
                  outcome->rows.rows.size(), outcome->meter.CostUnits(),
                  outcome->report.num_firings,
                  outcome->answered_without_database
                      ? " [contradiction: no DB access]"
                      : "");
      continue;
    }
    std::printf("unknown command '%s' — try 'help'\n", command.c_str());
  }
  return 0;
}

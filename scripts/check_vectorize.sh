#!/usr/bin/env bash
# Proves the batch-filter kernels still auto-vectorize: compiles the
# one TU that holds them (src/exec/batch_filter.cc) at Release
# optimization with the compiler's vectorization report on, and fails
# unless the report names vectorized loops inside that file. Catches
# the silent perf cliff where a refactor re-introduces a branch, an
# aliasing hazard, or a non-contiguous access and the "SIMD" scan
# quietly becomes scalar — the bench gate would catch it eventually,
# but this points at the exact TU in seconds.
#
# Usage: scripts/check_vectorize.sh [compiler]
#   compiler defaults to $CXX, then c++. Both gcc (-fopt-info-vec) and
#   clang (-Rpass=loop-vectorize) report formats are understood.
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${1:-${CXX:-c++}}"
TU=src/exec/batch_filter.cc
# At least this many distinct vectorized loops: the dense mask kernels
# (int64 / double / int-as-double), the mask AND/sum passes, and the
# selection compress all live in this TU. A drop below the floor means
# a whole kernel family went scalar, not report noise.
MIN_LOOPS=3

FLAGS=(-std=c++20 -O3 -DNDEBUG -Isrc -c -o /dev/null)

if "$CXX" --version | grep -qi clang; then
  report=$("$CXX" "${FLAGS[@]}" -Rpass=loop-vectorize "$TU" 2>&1 || true)
  hits=$(printf '%s\n' "$report" | grep -c 'vectorized loop' || true)
else
  report=$("$CXX" "${FLAGS[@]}" -fopt-info-vec-optimized "$TU" 2>&1 || true)
  hits=$(printf '%s\n' "$report" | grep -c 'loop vectorized' || true)
fi

echo "$CXX reports $hits vectorized loop(s) in $TU (floor: $MIN_LOOPS)"
if [ "$hits" -lt "$MIN_LOOPS" ]; then
  printf '%s\n' "$report" | head -40
  echo "FAIL: batch-filter kernels no longer auto-vectorize" >&2
  exit 1
fi

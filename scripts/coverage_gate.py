#!/usr/bin/env python3
"""Line-coverage gate over gcov data, no gcovr/lcov dependency.

Walks every .gcda file under --build-dir, asks gcov for JSON
intermediate output, unions execution counts per (source line) across
translation units, and computes line coverage for the sources under the
given --prefix directories (repo-relative). Fails (exit 1) when the
aggregate line coverage falls below the floor recorded in --floor-file.

The floor file holds one number (percent). It is checked in, so raising
coverage ratchets the gate: lowering it back requires an explicit,
reviewable edit.

Usage (what CI runs):
  python3 scripts/coverage_gate.py \
      --build-dir build --source-root . \
      --prefix src/api --prefix src/storage \
      --floor-file .github/coverage-floor \
      --report coverage-report.txt
"""

import argparse
import json
import os
import subprocess
import sys


def gcov_json_docs(gcda, build_dir):
    """Runs gcov on one .gcda and yields parsed JSON documents."""
    try:
        proc = subprocess.run(
            ["gcov", "--stdout", "--json-format", os.path.abspath(gcda)],
            cwd=build_dir,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as e:
        print(f"coverage_gate: cannot run gcov: {e}", file=sys.stderr)
        sys.exit(2)
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--source-root", default=".")
    parser.add_argument(
        "--prefix",
        action="append",
        required=True,
        help="repo-relative source dir to gate (repeatable)",
    )
    parser.add_argument("--floor-file", required=True)
    parser.add_argument("--report", help="optional report output path")
    args = parser.parse_args()

    with open(args.floor_file) as f:
        floor = float(f.read().strip())
    source_root = os.path.abspath(args.source_root)

    # (relpath, line) -> max execution count across TUs. A line counts
    # as covered when ANY translation unit executed it.
    counts = {}
    gcda_files = []
    for dirpath, _dirnames, filenames in os.walk(args.build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                gcda_files.append(os.path.join(dirpath, name))
    if not gcda_files:
        print("coverage_gate: no .gcda files found — did the coverage "
              "build run the tests?", file=sys.stderr)
        return 2

    for gcda in sorted(gcda_files):
        for doc in gcov_json_docs(gcda, args.build_dir):
            cwd = doc.get("current_working_directory", args.build_dir)
            for entry in doc.get("files", []):
                path = entry.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.join(cwd, path)
                path = os.path.normpath(path)
                if not path.startswith(source_root + os.sep):
                    continue
                rel = os.path.relpath(path, source_root)
                if not any(
                    rel.startswith(p.rstrip("/") + "/") for p in args.prefix
                ):
                    continue
                for line in entry.get("lines", []):
                    key = (rel, line["line_number"])
                    counts[key] = max(
                        counts.get(key, 0), line.get("count", 0)
                    )

    if not counts:
        print("coverage_gate: no lines matched the prefixes "
              f"{args.prefix}", file=sys.stderr)
        return 2

    per_file = {}
    for (rel, _line), count in counts.items():
        total, covered = per_file.get(rel, (0, 0))
        per_file[rel] = (total + 1, covered + (1 if count > 0 else 0))

    lines = []
    grand_total = grand_covered = 0
    for rel in sorted(per_file):
        total, covered = per_file[rel]
        grand_total += total
        grand_covered += covered
        lines.append(
            f"{rel:<44} {covered:>5}/{total:<5} "
            f"{100.0 * covered / total:6.1f}%"
        )
    percent = 100.0 * grand_covered / grand_total
    lines.append(
        f"{'TOTAL (' + ', '.join(args.prefix) + ')':<44} "
        f"{grand_covered:>5}/{grand_total:<5} {percent:6.1f}%"
    )
    lines.append(f"floor: {floor:.1f}%")
    report = "\n".join(lines)
    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report + "\n")

    if percent < floor:
        print(
            f"FAIL: line coverage {percent:.1f}% is below the recorded "
            f"floor {floor:.1f}% ({args.floor_file})",
            file=sys.stderr,
        )
        return 1
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

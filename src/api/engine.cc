#include "api/engine.h"

#include <utility>

#include "api/engine_impl.h"
#include "constraints/constraint_parser.h"
#include "exec/plan_builder.h"
#include "query/query_parser.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/example_schema.h"

namespace sqopt {

// ---------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------

SchemaSource::SchemaSource(Schema schema)
    : factory_([schema = std::move(schema)]() -> Result<Schema> {
        return schema;
      }) {}

SchemaSource::SchemaSource(Factory factory) : factory_(std::move(factory)) {}

SchemaSource SchemaSource::PaperExample() {
  return SchemaSource(Factory(&BuildFigure21Schema));
}

SchemaSource SchemaSource::Experiment() {
  return SchemaSource(Factory(&BuildExperimentSchema));
}

Result<Schema> SchemaSource::Build() const {
  if (!factory_) return Status::InvalidArgument("empty SchemaSource");
  return factory_();
}

ConstraintSource::ConstraintSource(Factory factory)
    : factory_(std::move(factory)) {}

ConstraintSource ConstraintSource::None() {
  return ConstraintSource(
      [](const Schema&) -> Result<std::vector<HornClause>> {
        return std::vector<HornClause>{};
      });
}

ConstraintSource ConstraintSource::PaperExample() {
  return ConstraintSource(
      [](const Schema& schema) { return Figure22Constraints(schema); });
}

ConstraintSource ConstraintSource::Experiment() {
  return ConstraintSource(
      [](const Schema& schema) { return ExperimentConstraints(schema); });
}

ConstraintSource ConstraintSource::FromClauses(
    std::vector<HornClause> clauses) {
  return ConstraintSource(
      [clauses = std::move(clauses)](
          const Schema&) -> Result<std::vector<HornClause>> {
        return clauses;
      });
}

ConstraintSource ConstraintSource::FromText(
    std::vector<std::string> clauses) {
  return ConstraintSource(
      [texts = std::move(clauses)](
          const Schema& schema) -> Result<std::vector<HornClause>> {
        std::vector<HornClause> out;
        out.reserve(texts.size());
        for (const std::string& text : texts) {
          SQOPT_ASSIGN_OR_RETURN(HornClause clause,
                                 ParseConstraint(schema, text));
          out.push_back(std::move(clause));
        }
        return out;
      });
}

ConstraintSource ConstraintSource::Merge(std::vector<ConstraintSource> parts) {
  return ConstraintSource(
      [parts = std::move(parts)](
          const Schema& schema) -> Result<std::vector<HornClause>> {
        std::vector<HornClause> out;
        for (const ConstraintSource& part : parts) {
          SQOPT_ASSIGN_OR_RETURN(std::vector<HornClause> clauses,
                                 part.Build(schema));
          for (HornClause& clause : clauses) {
            out.push_back(std::move(clause));
          }
        }
        return out;
      });
}

Result<std::vector<HornClause>> ConstraintSource::Build(
    const Schema& schema) const {
  if (!factory_) return Status::InvalidArgument("empty ConstraintSource");
  return factory_(schema);
}

DataSource::DataSource(Factory factory) : factory_(std::move(factory)) {}

DataSource DataSource::Generated(DbSpec spec, uint64_t seed) {
  return DataSource([spec = std::move(spec), seed](const Schema& schema) {
    return GenerateDatabase(schema, spec, seed);
  });
}

DataSource DataSource::FromStore(std::unique_ptr<ObjectStore> store) {
  auto holder =
      std::make_shared<std::unique_ptr<ObjectStore>>(std::move(store));
  return DataSource(
      [holder](const Schema&) -> Result<std::unique_ptr<ObjectStore>> {
        if (*holder == nullptr) {
          return Status::FailedPrecondition(
              "DataSource::FromStore already consumed by a Load()");
        }
        return std::move(*holder);
      });
}

Result<std::unique_ptr<ObjectStore>> DataSource::Build(
    const Schema& schema) const {
  if (!factory_) return Status::InvalidArgument("empty DataSource");
  return factory_(schema);
}

// ---------------------------------------------------------------------
// Query-path helpers.
// ---------------------------------------------------------------------

namespace {

void RecordAccess(const detail::EngineState& state, const Query& query) {
  if (!state.options.record_access_stats) return;
  std::lock_guard<std::mutex> lock(state.access_mutex);
  state.access.RecordQuery(query.classes);
}

Result<OptimizeResult> OptimizeQuery(const detail::EngineState& state,
                                     const Query& query) {
  SemanticOptimizer optimizer(&state.schema, &state.catalog,
                              state.cost_model.get(),
                              state.options.optimizer);
  return optimizer.Optimize(query);
}

// Optimize (optionally) and execute (optionally) one query.
Result<QueryOutcome> RunQuery(const detail::EngineState& state,
                              const Query& query, bool optimize,
                              bool execute) {
  if (execute && state.store == nullptr) {
    return Status::FailedPrecondition(
        "no data loaded: call Engine::Load before Execute, or use "
        "Analyze for optimization-only runs");
  }
  QueryOutcome out;
  out.original = query;
  RecordAccess(state, query);

  if (optimize) {
    SQOPT_ASSIGN_OR_RETURN(OptimizeResult opt, OptimizeQuery(state, query));
    out.transformed = std::move(opt.query);
    out.report = std::move(opt.report);
    if (opt.empty_result) {
      out.answered_without_database = true;
      state.contradictions.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    SQOPT_RETURN_IF_ERROR(ValidateQuery(state.schema, query));
    out.transformed = query;
  }

  if (execute && !out.answered_without_database) {
    SQOPT_ASSIGN_OR_RETURN(
        Plan plan, BuildPlan(state.schema, state.db_stats, out.transformed));
    SQOPT_ASSIGN_OR_RETURN(out.rows,
                           ExecutePlan(*state.store, plan, &out.meter));
    out.executed = true;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Engine: lifecycle + admin path.
// ---------------------------------------------------------------------

Result<Engine> Engine::Open(SchemaSource schema_source,
                            ConstraintSource constraint_source,
                            EngineOptions options) {
  SQOPT_ASSIGN_OR_RETURN(Schema schema, schema_source.Build());
  auto state = std::make_shared<detail::EngineState>(std::move(schema),
                                                     std::move(options));
  SQOPT_ASSIGN_OR_RETURN(std::vector<HornClause> clauses,
                         constraint_source.Build(state->schema));
  for (HornClause& clause : clauses) {
    Status s = state->catalog.AddConstraint(std::move(clause));
    // Merged sources (e.g. integrity + mined rules) may overlap; a
    // duplicate is not an error at this level.
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  SQOPT_RETURN_IF_ERROR(
      state->catalog.Precompile(&state->access, state->options.precompile));
  return Engine(std::move(state));
}

Status Engine::Load(DataSource data_source) {
  detail::EngineState& state = *state_;
  SQOPT_ASSIGN_OR_RETURN(std::unique_ptr<ObjectStore> store,
                         data_source.Build(state.schema));
  if (store == nullptr) {
    return Status::InvalidArgument("DataSource produced no store");
  }
  if (store->schema().num_classes() != state.schema.num_classes() ||
      store->schema().num_relationships() !=
          state.schema.num_relationships()) {
    return Status::InvalidArgument(
        "store schema does not match the engine's schema");
  }
  state.store = std::shared_ptr<const ObjectStore>(std::move(store));
  state.db_stats = CollectStats(*state.store);
  if (state.options.use_cost_model) {
    state.cost_model = std::make_unique<CostModel>(
        &state.schema, &state.db_stats, state.options.cost_params);
  } else {
    state.cost_model.reset();
  }
  return Status::OK();
}

Status Engine::AddConstraint(std::string_view constraint_text) {
  SQOPT_ASSIGN_OR_RETURN(HornClause clause,
                         ParseConstraint(state_->schema, constraint_text));
  return AddConstraint(std::move(clause));
}

Status Engine::AddConstraint(HornClause clause) {
  SQOPT_RETURN_IF_ERROR(state_->catalog.AddConstraint(std::move(clause)));
  return Recompile();
}

Status Engine::Recompile() {
  return state_->catalog.Precompile(&state_->access,
                                    state_->options.precompile);
}

Status Engine::Recompile(const PrecompileOptions& precompile) {
  state_->options.precompile = precompile;
  return Recompile();
}

void Engine::SetOptimizerOptions(const OptimizerOptions& optimizer) {
  state_->options.optimizer = optimizer;
}

// ---------------------------------------------------------------------
// Engine: read path.
// ---------------------------------------------------------------------

Result<Query> Engine::Parse(std::string_view query_text) const {
  state_->queries_parsed.fetch_add(1, std::memory_order_relaxed);
  return ParseQuery(state_->schema, query_text);
}

Result<QueryOutcome> Engine::Execute(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return Execute(query);
}

Result<QueryOutcome> Engine::Execute(const Query& query) const {
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/true, /*execute=*/true));
  state_->queries_executed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<QueryOutcome> Engine::ExecuteUnoptimized(
    std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return ExecuteUnoptimized(query);
}

Result<QueryOutcome> Engine::ExecuteUnoptimized(const Query& query) const {
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/false, /*execute=*/true));
  state_->queries_executed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<QueryOutcome> Engine::Analyze(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return Analyze(query);
}

Result<QueryOutcome> Engine::Analyze(const Query& query) const {
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/true, /*execute=*/false));
  state_->queries_analyzed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<PreparedQuery> Engine::Prepare(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return Prepare(query);
}

Result<PreparedQuery> Engine::Prepare(const Query& query) const {
  const detail::EngineState& state = *state_;
  RecordAccess(state, query);

  auto prepared = std::make_shared<detail::PreparedState>();
  prepared->original = query;
  SQOPT_ASSIGN_OR_RETURN(OptimizeResult opt, OptimizeQuery(state, query));
  prepared->transformed = std::move(opt.query);
  prepared->report = std::move(opt.report);
  prepared->empty_result = opt.empty_result;
  prepared->store = state.store;
  if (prepared->store != nullptr && !prepared->empty_result) {
    SQOPT_ASSIGN_OR_RETURN(
        Plan plan,
        BuildPlan(state.schema, state.db_stats, prepared->transformed));
    prepared->plan = std::move(plan);
  }
  state.statements_prepared.fetch_add(1, std::memory_order_relaxed);
  return PreparedQuery(state_, std::move(prepared));
}

Result<std::string> Engine::Explain(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/true, /*execute=*/false));

  std::string text = out.report.ToString(state_->schema);
  text += "transformed: " + PrintQuery(state_->schema, out.transformed);
  text += "\n";
  if (state_->store != nullptr && !out.answered_without_database) {
    auto plan =
        BuildPlan(state_->schema, state_->db_stats, out.transformed);
    if (plan.ok()) {
      text += "plan:\n" + plan->ToString(state_->schema);
    }
  }
  return text;
}

// ---------------------------------------------------------------------
// Engine: introspection.
// ---------------------------------------------------------------------

const Schema& Engine::schema() const { return state_->schema; }

const ConstraintCatalog& Engine::catalog() const { return state_->catalog; }

const ObjectStore* Engine::store() const { return state_->store.get(); }

const DatabaseStats* Engine::database_stats() const {
  return state_->store == nullptr ? nullptr : &state_->db_stats;
}

const CostModelInterface* Engine::cost_model() const {
  return state_->cost_model.get();
}

const EngineOptions& Engine::options() const { return state_->options; }

AccessStats Engine::access_stats() const {
  std::lock_guard<std::mutex> lock(state_->access_mutex);
  return state_->access;
}

AccessStats* Engine::mutable_access_stats() { return &state_->access; }

EngineStats Engine::stats() const {
  const detail::EngineState& state = *state_;
  EngineStats out;
  out.queries_parsed =
      state.queries_parsed.load(std::memory_order_relaxed);
  out.queries_executed =
      state.queries_executed.load(std::memory_order_relaxed);
  out.queries_analyzed =
      state.queries_analyzed.load(std::memory_order_relaxed);
  out.statements_prepared =
      state.statements_prepared.load(std::memory_order_relaxed);
  out.prepared_executions =
      state.prepared_executions.load(std::memory_order_relaxed);
  out.contradictions = state.contradictions.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sqopt

#include "api/engine.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>
#include <utility>

#include <filesystem>

#include "api/engine_impl.h"
#include "common/worker_pool.h"
#include "constraints/constraint_parser.h"
#include "constraints/constraint_validator.h"
#include "exec/plan_builder.h"
#include "persist/crash_point.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "query/query_parser.h"
#include "sqo/optimizer.h"
#include "workload/constraint_gen.h"
#include "workload/example_schema.h"

namespace sqopt {

// ---------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------

SchemaSource::SchemaSource(Schema schema)
    : factory_([schema = std::move(schema)]() -> Result<Schema> {
        return schema;
      }) {}

SchemaSource::SchemaSource(Factory factory) : factory_(std::move(factory)) {}

SchemaSource SchemaSource::PaperExample() {
  return SchemaSource(Factory(&BuildFigure21Schema));
}

SchemaSource SchemaSource::Experiment() {
  return SchemaSource(Factory(&BuildExperimentSchema));
}

Result<Schema> SchemaSource::Build() const {
  if (!factory_) return Status::InvalidArgument("empty SchemaSource");
  return factory_();
}

ConstraintSource::ConstraintSource(Factory factory)
    : factory_(std::move(factory)) {}

ConstraintSource ConstraintSource::None() {
  return ConstraintSource(
      [](const Schema&) -> Result<std::vector<HornClause>> {
        return std::vector<HornClause>{};
      });
}

ConstraintSource ConstraintSource::PaperExample() {
  return ConstraintSource(
      [](const Schema& schema) { return Figure22Constraints(schema); });
}

ConstraintSource ConstraintSource::Experiment() {
  return ConstraintSource(
      [](const Schema& schema) { return ExperimentConstraints(schema); });
}

ConstraintSource ConstraintSource::FromClauses(
    std::vector<HornClause> clauses) {
  return ConstraintSource(
      [clauses = std::move(clauses)](
          const Schema&) -> Result<std::vector<HornClause>> {
        return clauses;
      });
}

ConstraintSource ConstraintSource::FromText(
    std::vector<std::string> clauses) {
  return ConstraintSource(
      [texts = std::move(clauses)](
          const Schema& schema) -> Result<std::vector<HornClause>> {
        std::vector<HornClause> out;
        out.reserve(texts.size());
        for (const std::string& text : texts) {
          SQOPT_ASSIGN_OR_RETURN(HornClause clause,
                                 ParseConstraint(schema, text));
          out.push_back(std::move(clause));
        }
        return out;
      });
}

ConstraintSource ConstraintSource::Merge(std::vector<ConstraintSource> parts) {
  return ConstraintSource(
      [parts = std::move(parts)](
          const Schema& schema) -> Result<std::vector<HornClause>> {
        std::vector<HornClause> out;
        for (const ConstraintSource& part : parts) {
          SQOPT_ASSIGN_OR_RETURN(std::vector<HornClause> clauses,
                                 part.Build(schema));
          for (HornClause& clause : clauses) {
            out.push_back(std::move(clause));
          }
        }
        return out;
      });
}

Result<std::vector<HornClause>> ConstraintSource::Build(
    const Schema& schema) const {
  if (!factory_) return Status::InvalidArgument("empty ConstraintSource");
  return factory_(schema);
}

DataSource::DataSource(Factory factory) : factory_(std::move(factory)) {}

DataSource DataSource::Generated(DbSpec spec, uint64_t seed) {
  return DataSource([spec = std::move(spec), seed](const Schema& schema) {
    return GenerateDatabase(schema, spec, seed);
  });
}

DataSource DataSource::FromStore(std::unique_ptr<ObjectStore> store) {
  auto holder =
      std::make_shared<std::unique_ptr<ObjectStore>>(std::move(store));
  return DataSource(
      [holder](const Schema&) -> Result<std::unique_ptr<ObjectStore>> {
        if (*holder == nullptr) {
          return Status::FailedPrecondition(
              "DataSource::FromStore already consumed by a Load()");
        }
        return std::move(*holder);
      });
}

Result<std::unique_ptr<ObjectStore>> DataSource::Build(
    const Schema& schema) const {
  if (!factory_) return Status::InvalidArgument("empty DataSource");
  return factory_(schema);
}

// ---------------------------------------------------------------------
// Query-path helpers.
// ---------------------------------------------------------------------

namespace {

void RecordAccess(const detail::EngineState& state, const Query& query) {
  if (!state.options.record_access_stats) return;
  std::lock_guard<std::mutex> lock(state.access_mutex);
  state.access.RecordQuery(query.classes);
}

// The engine's physical-planning knobs: serve.parallelism (0 = the
// resolved thread count) caps morsel fan-out, serve.morsel_size sizes
// the morsels, and the cost params gate the parallel decision.
PlanningOptions MakePlanningOptions(const detail::EngineState& state) {
  const ServeOptions& serve = state.options.serve;
  PlanningOptions opts;
  opts.max_parallelism =
      serve.parallelism == 0
          ? WorkerPool::ResolveThreads(serve.threads)
          : serve.parallelism;
  opts.morsel_size = serve.morsel_size;
  opts.cost_params = state.options.cost_params;
  return opts;
}

Result<OptimizeResult> OptimizeQuery(const detail::EngineState& state,
                                     const detail::LoadedData* data,
                                     const Query& query) {
  SemanticOptimizer optimizer(&state.schema, &state.catalog,
                              data == nullptr ? nullptr
                                              : data->cost_model.get(),
                              state.options.optimizer);
  return optimizer.Optimize(query);
}

// The full prepare pipeline: constraint retrieval + semantic
// transformation + physical planning, against one pinned data
// snapshot. The result is what both PreparedQuery handles and
// plan-cache entries hold.
Result<std::shared_ptr<const detail::PreparedState>> BuildPrepared(
    const detail::EngineState& state,
    std::shared_ptr<const detail::LoadedData> data, const Query& query) {
  auto prepared = std::make_shared<detail::PreparedState>();
  prepared->original = query;
  SQOPT_ASSIGN_OR_RETURN(OptimizeResult opt,
                         OptimizeQuery(state, data.get(), query));
  prepared->transformed = std::move(opt.query);
  prepared->report = std::move(opt.report);
  prepared->empty_result = opt.empty_result;
  prepared->data = std::move(data);
  if (prepared->data != nullptr && !prepared->empty_result) {
    SQOPT_ASSIGN_OR_RETURN(Plan plan,
                           BuildPlan(state.schema, prepared->data->db_stats,
                                     prepared->transformed,
                                     MakePlanningOptions(state)));
    prepared->plan = std::move(plan);
  }
  return std::shared_ptr<const detail::PreparedState>(std::move(prepared));
}

// Replays a prepared plan with a fresh meter (the Execute fast path).
// `data` is the caller's pinned CURRENT snapshot: plans are rebound to
// it so cached entries observe committed mutations; the entry's own
// creation-time pin is only the fallback (e.g. a PreparedQuery handle
// outliving the engine's data slot — which Load/Apply never empty).
Result<QueryOutcome> ExecutePreparedState(
    const detail::EngineState& state, const detail::PreparedState& prepared,
    const std::shared_ptr<const detail::LoadedData>& data) {
  QueryOutcome out;
  out.original = prepared.original;
  out.transformed = prepared.transformed;
  out.report = prepared.report;
  if (prepared.empty_result) {
    out.answered_without_database = true;
    state.contradictions.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  const detail::LoadedData* exec_data =
      detail::ChooseExecData(data, prepared.data);
  if (exec_data == nullptr) {
    return Status::FailedPrecondition(
        "no data loaded: call Engine::Load before Execute");
  }
  std::shared_ptr<WorkerPool> pool_holder;
  SQOPT_ASSIGN_OR_RETURN(
      out.rows,
      ExecutePlan(*exec_data->store, *prepared.plan, &out.meter,
                  MakeExecContext(state, *prepared.plan, &pool_holder)));
  out.executed = true;
  return out;
}

// Optimize (optionally) and execute (optionally) one query, bypassing
// the plan cache (Analyze and ExecuteUnoptimized).
Result<QueryOutcome> RunQuery(const detail::EngineState& state,
                              const Query& query, bool optimize,
                              bool execute) {
  std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();
  if (execute && data == nullptr) {
    return Status::FailedPrecondition(
        "no data loaded: call Engine::Load before Execute, or use "
        "Analyze for optimization-only runs");
  }
  QueryOutcome out;
  out.original = query;
  RecordAccess(state, query);

  if (optimize) {
    SQOPT_ASSIGN_OR_RETURN(OptimizeResult opt,
                           OptimizeQuery(state, data.get(), query));
    out.transformed = std::move(opt.query);
    out.report = std::move(opt.report);
    if (opt.empty_result) {
      out.answered_without_database = true;
      state.contradictions.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    SQOPT_RETURN_IF_ERROR(ValidateQuery(state.schema, query));
    out.transformed = query;
  }

  if (execute && !out.answered_without_database) {
    SQOPT_ASSIGN_OR_RETURN(
        Plan plan, BuildPlan(state.schema, data->db_stats, out.transformed,
                             MakePlanningOptions(state)));
    std::shared_ptr<WorkerPool> pool_holder;
    SQOPT_ASSIGN_OR_RETURN(
        out.rows, ExecutePlan(*data->store, plan, &out.meter,
                              MakeExecContext(state, plan, &pool_holder)));
    out.executed = true;
  }
  return out;
}

// Execute through the plan cache: look the canonical key up, replay on
// a hit, run the full prepare pipeline and publish the entry on a
// miss. `data` is the caller's pinned snapshot (never null here).
// `text` (when the query arrived as text) additionally registers a
// raw-text alias so the next Execute of the same string skips parsing
// and canonicalization entirely.
Result<QueryOutcome> ExecuteCached(
    const detail::EngineState& state,
    std::shared_ptr<const detail::LoadedData> data, uint64_t epoch,
    const Query& query, const std::string* text) {
  // The canonical key prints schema names, so reject malformed queries
  // before keying (ParseQuery output is always valid; hand-built Query
  // values may not be).
  SQOPT_RETURN_IF_ERROR(ValidateQuery(state.schema, query));
  const std::string key = CanonicalQueryKey(state.schema, query);

  std::shared_ptr<const detail::PreparedState> entry =
      state.plan_cache.Lookup(key);
  bool hit = entry != nullptr;
  if (!hit) {
    SQOPT_ASSIGN_OR_RETURN(entry, BuildPrepared(state, data, query));
    state.plan_cache.Insert(key, entry, epoch);
  }
  if (text != nullptr && *text != key) {
    state.plan_cache.InsertAlias(*text, entry, epoch);
  }
  SQOPT_ASSIGN_OR_RETURN(QueryOutcome out,
                         ExecutePreparedState(state, *entry, data));
  // On a hit the entry's `original` is whatever canonically-equal
  // query first populated it; report the query THIS caller submitted.
  out.original = query;
  out.plan_cache_hit = hit;
  out.plan_cache = state.plan_cache.stats(/*count_entries=*/false);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Engine: lifecycle + admin path.
// ---------------------------------------------------------------------

Result<Engine> Engine::Open(SchemaSource schema_source,
                            ConstraintSource constraint_source,
                            EngineOptions options) {
  SQOPT_ASSIGN_OR_RETURN(Schema schema, schema_source.Build());
  auto state = std::make_shared<detail::EngineState>(std::move(schema),
                                                     std::move(options));
  SQOPT_ASSIGN_OR_RETURN(std::vector<HornClause> clauses,
                         constraint_source.Build(state->schema));
  for (HornClause& clause : clauses) {
    Status s = state->catalog.AddConstraint(std::move(clause));
    // Merged sources (e.g. integrity + mined rules) may overlap; a
    // duplicate is not an error at this level.
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  }
  SQOPT_RETURN_IF_ERROR(
      state->catalog.Precompile(&state->access, state->options.precompile));
  return Engine(std::move(state));
}

Status Engine::Load(DataSource data_source) {
  detail::EngineState& state = *state_;
  // Snapshot producers (Load and Apply) serialize on the commit lock so
  // a reload can never interleave with a half-built commit.
  std::lock_guard<std::mutex> commit_lock(state.commit_mutex);
  SQOPT_ASSIGN_OR_RETURN(std::unique_ptr<ObjectStore> store,
                         data_source.Build(state.schema));
  if (store == nullptr) {
    return Status::InvalidArgument("DataSource produced no store");
  }
  if (store->schema().num_classes() != state.schema.num_classes() ||
      store->schema().num_relationships() !=
          state.schema.num_relationships()) {
    return Status::InvalidArgument(
        "store schema does not match the engine's schema");
  }
  // Build the complete snapshot off to the side, publish it in one
  // pointer swap, THEN invalidate the plan cache. The order matters:
  // once the epoch moves, any in-flight miss that planned against the
  // old snapshot fails its epoch check and is never cached, so a
  // cached plan can never outlive its store's tenure.
  auto data = std::make_shared<detail::LoadedData>();
  data->store = std::shared_ptr<const ObjectStore>(std::move(store));
  data->db_stats = CollectStats(*data->store);
  if (state.options.use_cost_model) {
    data->cost_model = std::make_unique<CostModel>(
        &state.schema, &data->db_stats, state.options.cost_params);
  }
  data->version = 1;
  data->lineage = ++state.lineages;
  {
    std::lock_guard<std::mutex> lock(state.data_mutex);
    state.data = std::move(data);
  }
  // A wholesale data replacement invalidates the on-disk lineage:
  // detach rather than silently let the WAL describe data that no
  // longer exists. Save() re-attaches.
  state.wal.reset();
  state.persist_dir.clear();
  state.plan_cache.Invalidate();
  return Status::OK();
}

Result<Engine> Engine::Open(const std::string& dir, EngineOptions options) {
  namespace fs = std::filesystem;
  SQOPT_ASSIGN_OR_RETURN(
      persist::SnapshotReader snapshot,
      persist::SnapshotReader::Open(
          (fs::path(dir) / persist::kSnapshotFileName).string()));

  // Rebuild the schema first: the catalog and the store both point into
  // it, and EngineState's heap placement gives it a stable address.
  SQOPT_ASSIGN_OR_RETURN(Schema schema, snapshot.ReadSchema());
  auto state = std::make_shared<detail::EngineState>(std::move(schema),
                                                     std::move(options));
  SQOPT_RETURN_IF_ERROR(snapshot.RestoreCatalog(&state->catalog));

  auto data = std::make_shared<detail::LoadedData>();
  SQOPT_ASSIGN_OR_RETURN(std::unique_ptr<ObjectStore> store,
                         snapshot.RestoreStore(&state->schema));
  data->store = std::shared_ptr<const ObjectStore>(std::move(store));
  SQOPT_ASSIGN_OR_RETURN(data->db_stats, snapshot.RestoreStats());
  if (state->options.use_cost_model) {
    data->cost_model = std::make_unique<CostModel>(
        &state->schema, &data->db_stats, state->options.cost_params);
  }
  data->version = snapshot.data_version();
  data->lineage = ++state->lineages;
  {
    std::lock_guard<std::mutex> lock(state->data_mutex);
    state->data = std::move(data);
  }

  // Replay the log's committed suffix through the ordinary Apply path.
  // Records at or below the snapshot's version were already folded in
  // by the checkpoint that wrote it (idempotence); a version gap means
  // the log does not belong to this snapshot.
  const std::string wal_path =
      (fs::path(dir) / persist::kWalFileName).string();
  SQOPT_ASSIGN_OR_RETURN(persist::WalReadResult log,
                         persist::ReadWal(wal_path));
  Engine engine(std::move(state));
  for (const persist::WalRecord& record : log.records) {
    if (record.batches.empty()) continue;
    const uint64_t current = engine.data_version();
    const uint64_t last = record.first_version + record.batches.size() - 1;
    // Snapshots only capture group boundaries (a group publishes
    // atomically), so a record can be wholly behind the snapshot or
    // wholly ahead — a straddle means the log is not this snapshot's.
    if (last <= current) continue;
    if (record.first_version != current + 1) {
      return Status::Corruption(
          "WAL version gap: snapshot at " + std::to_string(current) +
          ", next record covers [" +
          std::to_string(record.first_version) + ", " +
          std::to_string(last) + "]");
    }
    // Replay the whole group through the ordinary commit body
    // (constraint validation included) — every batch was validated
    // when it was logged, so each must commit again.
    std::vector<detail::CommitRequest> requests(record.batches.size());
    std::vector<detail::CommitRequest*> group;
    group.reserve(requests.size());
    for (size_t i = 0; i < record.batches.size(); ++i) {
      requests[i].batch = &record.batches[i];
      group.push_back(&requests[i]);
    }
    {
      std::lock_guard<std::mutex> commit_lock(
          engine.state_->commit_mutex);
      engine.CommitGroupLocked(group, /*log_to_wal=*/false);
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      const Result<ApplyOutcome>& replayed = *requests[i].result;
      if (!replayed.ok()) {
        return Status(replayed.status().code(),
                      "WAL replay of version " +
                          std::to_string(record.first_version + i) +
                          " failed: " + replayed.status().message());
      }
    }
    engine.state_->wal_records_replayed.fetch_add(
        1, std::memory_order_relaxed);
  }

  // Attach for appending, discarding any torn tail first so the next
  // record starts on a clean frame boundary.
  SQOPT_ASSIGN_OR_RETURN(engine.state_->wal,
                         persist::WalWriter::Open(wal_path, log.valid_bytes));
  engine.state_->persist_dir = dir;
  return engine;
}

Status Engine::Save(const std::string& dir) {
  detail::EngineState& state = *state_;
  std::lock_guard<std::mutex> commit_lock(state.commit_mutex);
  std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();
  if (data == nullptr) {
    return Status::FailedPrecondition(
        "no data loaded: call Engine::Load before Save");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + dir +
                            "': " + ec.message());
  }
  // Kill any log already in the directory BEFORE the new snapshot
  // becomes visible — the reverse order would let a crash inside Save
  // pair the fresh snapshot with a stale WAL from a previous lineage,
  // whose gap-free version numbers would replay foreign batches at
  // the next Open. With this order a crash leaves the OLD snapshot
  // and no log: a clean committed prefix of the directory's previous
  // occupant.
  const std::string wal_path =
      (fs::path(dir) / persist::kWalFileName).string();
  if (fs::remove(wal_path, ec)) {
    SQOPT_RETURN_IF_ERROR(persist::FsyncDirOf(wal_path));
  }
  SQOPT_RETURN_IF_ERROR(persist::WriteSnapshotFile(
      (fs::path(dir) / persist::kSnapshotFileName).string(), state.schema,
      state.catalog, *data->store, data->db_stats, data->version));
  SQOPT_ASSIGN_OR_RETURN(std::unique_ptr<persist::WalWriter> wal,
                         persist::WalWriter::Open(wal_path));
  SQOPT_RETURN_IF_ERROR(wal->Truncate(/*fsync=*/true));
  state.wal = std::move(wal);
  state.persist_dir = dir;
  return Status::OK();
}

Status Engine::Checkpoint() {
  detail::EngineState& state = *state_;
  std::lock_guard<std::mutex> commit_lock(state.commit_mutex);
  if (state.wal == nullptr) {
    return Status::FailedPrecondition(
        "engine is not durable: call Save(dir) or Open(dir) first");
  }
  std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();
  // The snapshot lands via tmp-write + fsync + rename (atomic replace);
  // only once it is durably in place may the log shrink. Between the
  // rename and the truncate the WAL still holds records the snapshot
  // already folded in — recovery skips them by version.
  SQOPT_RETURN_IF_ERROR(persist::WriteSnapshotFile(
      (std::filesystem::path(state.persist_dir) /
       persist::kSnapshotFileName)
          .string(),
      state.schema, state.catalog, *data->store, data->db_stats,
      data->version));
  persist::MaybeCrash("checkpoint_post_rename");
  SQOPT_RETURN_IF_ERROR(state.wal->Truncate(/*fsync=*/true));
  persist::MaybeCrash("checkpoint_post_truncate");
  state.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::string Engine::persist_dir() const {
  std::lock_guard<std::mutex> lock(state_->commit_mutex);
  return state_->persist_dir;
}

namespace {

// One staged insert's resolved identity: Apply checks handles against
// the class the referencing op expects, so a handle can never silently
// name a row of a different class.
struct StagedInsert {
  ClassId class_id = kInvalidClass;
  int64_t row = -1;
};

// One attribute-value change a committed op caused, captured for
// incremental statistics maintenance: `removed` is the pre-image (for
// updates and deletes), `added` the post-image (updates and inserts).
struct AttrDelta {
  AttrRef ref;
  std::optional<Value> removed;
  std::optional<Value> added;
};

// Applies one staged op to the writable clone, resolving pending-insert
// handles and recording the footprint the validator will check plus
// the attribute deltas incremental stats maintenance consumes.
Status ApplyOp(const Schema& schema, ObjectStore& store, const Mutation& op,
               std::vector<StagedInsert>* inserted,
               MutationFootprint* footprint, std::vector<AttrDelta>* deltas,
               ApplyOutcome* out) {
  auto resolve = [&](int64_t row,
                     ClassId expected_class) -> Result<int64_t> {
    if (row >= 0) return row;
    size_t k = static_cast<size_t>(-1 - row);
    if (k >= inserted->size()) {
      return Status::InvalidArgument(
          "pending-insert handle " + std::to_string(row) +
          " does not name an earlier insert of this batch");
    }
    if ((*inserted)[k].class_id != expected_class) {
      return Status::InvalidArgument(
          "pending-insert handle " + std::to_string(row) + " names a '" +
          schema.object_class((*inserted)[k].class_id).name +
          "' but is used as a row of '" +
          schema.object_class(expected_class).name + "'");
    }
    return (*inserted)[k].row;
  };
  switch (op.kind) {
    case Mutation::Kind::kInsert: {
      SQOPT_ASSIGN_OR_RETURN(int64_t row,
                             store.Insert(op.class_id, op.object));
      inserted->push_back({op.class_id, row});
      footprint->touched_rows[op.class_id].push_back(row);
      const Extent& extent = store.extent(op.class_id);
      for (AttrId attr_id : schema.LayoutOf(op.class_id)) {
        AttrDelta d;
        d.ref = {op.class_id, attr_id};
        d.added = extent.ValueAt(row, attr_id);
        deltas->push_back(std::move(d));
      }
      ++out->inserts;
      return Status::OK();
    }
    case Mutation::Kind::kUpdate: {
      SQOPT_ASSIGN_OR_RETURN(int64_t row, resolve(op.row, op.class_id));
      AttrDelta d;
      d.ref = {op.class_id, op.attr_id};
      const Extent& extent = store.extent(op.class_id);
      if (extent.IsLive(row) && extent.SlotOf(op.attr_id) >= 0) {
        d.removed = extent.ValueAt(row, op.attr_id);
      }
      SQOPT_RETURN_IF_ERROR(
          store.UpdateAttribute(op.class_id, row, op.attr_id, op.value));
      d.added = op.value;
      deltas->push_back(std::move(d));
      footprint->touched_rows[op.class_id].push_back(row);
      ++out->updates;
      return Status::OK();
    }
    case Mutation::Kind::kDelete: {
      SQOPT_ASSIGN_OR_RETURN(int64_t row, resolve(op.row, op.class_id));
      const Extent& extent = store.extent(op.class_id);
      std::vector<AttrDelta> removed;
      if (extent.IsLive(row)) {
        for (AttrId attr_id : schema.LayoutOf(op.class_id)) {
          AttrDelta d;
          d.ref = {op.class_id, attr_id};
          d.removed = extent.ValueAt(row, attr_id);
          removed.push_back(std::move(d));
        }
      }
      SQOPT_RETURN_IF_ERROR(store.Delete(op.class_id, row));
      for (AttrDelta& d : removed) deltas->push_back(std::move(d));
      ++out->deletes;
      return Status::OK();
    }
    case Mutation::Kind::kLink: {
      const Relationship& rel = schema.relationship(op.rel_id);
      SQOPT_ASSIGN_OR_RETURN(int64_t row_a, resolve(op.row_a, rel.a));
      SQOPT_ASSIGN_OR_RETURN(int64_t row_b, resolve(op.row_b, rel.b));
      SQOPT_RETURN_IF_ERROR(store.Link(op.rel_id, row_a, row_b));
      footprint->new_links.push_back({op.rel_id, row_a, row_b});
      ++out->links;
      return Status::OK();
    }
    case Mutation::Kind::kUnlink: {
      const Relationship& rel = schema.relationship(op.rel_id);
      SQOPT_ASSIGN_OR_RETURN(int64_t row_a, resolve(op.row_a, rel.a));
      SQOPT_ASSIGN_OR_RETURN(int64_t row_b, resolve(op.row_b, rel.b));
      SQOPT_RETURN_IF_ERROR(store.Unlink(op.rel_id, row_a, row_b));
      ++out->unlinks;
      return Status::OK();
    }
  }
  return Status::Internal("unknown mutation kind");
}

}  // namespace

Result<ApplyOutcome> Engine::Apply(const MutationBatch& batch) {
  std::vector<Result<ApplyOutcome>> results =
      CommitThroughGroup(std::span<const MutationBatch>(&batch, 1));
  return std::move(results[0]);
}

std::vector<Result<ApplyOutcome>> Engine::ApplyGroup(
    std::span<const MutationBatch> batches) {
  return CommitThroughGroup(batches);
}

std::vector<Result<ApplyOutcome>> Engine::CommitThroughGroup(
    std::span<const MutationBatch> batches) {
  if (batches.empty()) return {};
  detail::EngineState& state = *state_;

  // Stack-owned requests: this thread blocks below until every one is
  // done, so queued pointers never dangle.
  std::vector<detail::CommitRequest> requests(batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    requests[i].batch = &batches[i];
  }
  auto all_done = [&] {
    for (const detail::CommitRequest& r : requests) {
      if (!r.done) return false;
    }
    return true;
  };

  std::unique_lock<std::mutex> lock(state.group_mutex);
  // One contiguous push under one lock hold: a leader's whole-queue
  // sweep therefore takes this caller's requests all-or-nothing, and
  // `all_done` flips atomically from its perspective.
  for (detail::CommitRequest& r : requests) {
    state.commit_queue.push_back(&r);
  }
  for (;;) {
    state.group_cv.wait(lock, [&] {
      return all_done() ||
             (!state.group_leader_active && !state.commit_queue.empty() &&
              state.commit_queue.front() == &requests[0]);
    });
    if (all_done()) break;

    // Leadership: sweep everything queued so far into one group and
    // commit it. The queue is released (and re-fillable by newcomers)
    // while the commit runs; group_leader_active keeps a second leader
    // from starting until this group publishes.
    state.group_leader_active = true;
    std::vector<detail::CommitRequest*> group(state.commit_queue.begin(),
                                              state.commit_queue.end());
    state.commit_queue.clear();
    lock.unlock();
    {
      std::lock_guard<std::mutex> commit_lock(state.commit_mutex);
      CommitGroupLocked(group, /*log_to_wal=*/true);
    }
    lock.lock();
    state.group_leader_active = false;
    for (detail::CommitRequest* r : group) {
      r->done = true;
    }
    state.group_cv.notify_all();
  }
  lock.unlock();

  std::vector<Result<ApplyOutcome>> results;
  results.reserve(requests.size());
  for (detail::CommitRequest& r : requests) {
    results.push_back(std::move(*r.result));
  }
  return results;
}

void Engine::CommitGroupLocked(
    const std::vector<detail::CommitRequest*>& group, bool log_to_wal) {
  detail::EngineState& state = *state_;
  std::shared_ptr<const detail::LoadedData> base = state.data_snapshot();
  if (base == nullptr) {
    // Not counted as rejections: mutation_batches_rejected means
    // "failed CONSTRAINT validation", and nothing was validated here.
    for (detail::CommitRequest* req : group) {
      req->result = Status::FailedPrecondition(
          "no data loaded: call Engine::Load before Apply");
    }
    return;
  }

  // Per-request write sets, computed up front so the copy-on-write
  // clone copies exactly what the ops below will mutate (this loop is
  // also the single class/relationship id validation site — ApplyOp
  // relies on it). A delete touches every relationship of its class
  // (cascading unlink). `index_classes` is the subset whose INDEX trees
  // the request can change: inserts/deletes always, updates only when
  // the attribute is indexed — untouched index trees stay shared with
  // the base snapshot (they have no segment-level CoW of their own).
  struct PendingCommit {
    detail::CommitRequest* req = nullptr;
    std::set<ClassId> classes;
    std::set<RelId> rels;
    std::set<ClassId> index_classes;
    std::unordered_map<ClassId, int64_t> class_ops;
    std::unordered_map<RelId, int64_t> rel_ops;
    // A request leaves the group (excluded) the moment its result is
    // decided without a commit: malformed ids, per-op failure, or a
    // constraint violation. Survivors commit together.
    bool excluded = false;
    ApplyOutcome out;
    std::vector<StagedInsert> staged;
    std::vector<AttrDelta> deltas;
  };
  auto valid_class = [&](ClassId id) {
    return id >= 0 && id < static_cast<ClassId>(state.schema.num_classes());
  };
  std::vector<PendingCommit> pending(group.size());
  for (size_t g = 0; g < group.size(); ++g) {
    PendingCommit& pc = pending[g];
    pc.req = group[g];
    const MutationBatch& batch = *pc.req->batch;
    if (batch.empty()) {  // no-op commit: nothing published, no version
      ApplyOutcome out;
      out.snapshot_version = base->version;
      out.group_size = 0;
      pc.req->result = std::move(out);
      pc.excluded = true;
      continue;
    }
    for (const Mutation& op : batch.ops()) {
      if (pc.excluded) break;
      switch (op.kind) {
        case Mutation::Kind::kInsert:
        case Mutation::Kind::kUpdate:
        case Mutation::Kind::kDelete:
          if (!valid_class(op.class_id)) {
            pc.req->result =
                Status::InvalidArgument("mutation names an unknown class");
            pc.excluded = true;
            break;
          }
          pc.classes.insert(op.class_id);
          ++pc.class_ops[op.class_id];
          if (op.kind == Mutation::Kind::kDelete) {
            for (RelId rel : state.schema.RelationshipsOf(op.class_id)) {
              pc.rels.insert(rel);
            }
          }
          if (op.kind == Mutation::Kind::kUpdate) {
            // SlotOf confirms the attr id resolves on the class before
            // schema.attribute() (unchecked) may be consulted.
            if (base->store->extent(op.class_id).SlotOf(op.attr_id) >= 0 &&
                state.schema.attribute({op.class_id, op.attr_id}).indexed) {
              pc.index_classes.insert(op.class_id);
            }
          } else {
            pc.index_classes.insert(op.class_id);
          }
          break;
        case Mutation::Kind::kLink:
        case Mutation::Kind::kUnlink:
          if (op.rel_id < 0 ||
              op.rel_id >=
                  static_cast<RelId>(state.schema.num_relationships())) {
            pc.req->result = Status::InvalidArgument(
                "mutation names an unknown relationship");
            pc.excluded = true;
            break;
          }
          pc.rels.insert(op.rel_id);
          ++pc.rel_ops[op.rel_id];
          break;
      }
    }
  }

  // Apply + validate every surviving batch, IN SUBMISSION ORDER,
  // against one shared clone. A failure anywhere decides that one
  // request's result, excludes it, and restarts the loop on a fresh
  // clone — the earlier batches re-apply identically (the store is
  // deterministic and an excluded batch came after them), so the final
  // state is exactly the sequential-Apply state in which the failed
  // batch left the store untouched. The loop terminates: every restart
  // excludes at least one request.
  const auto clone_start = std::chrono::steady_clock::now();
  std::unique_ptr<ObjectStore> next;
  std::vector<PendingCommit*> survivors;
  for (;;) {
    std::set<ClassId> classes;
    std::set<RelId> rels;
    std::set<ClassId> index_classes;
    survivors.clear();
    for (PendingCommit& pc : pending) {
      if (pc.excluded) continue;
      survivors.push_back(&pc);
      classes.insert(pc.classes.begin(), pc.classes.end());
      rels.insert(pc.rels.begin(), pc.rels.end());
      index_classes.insert(pc.index_classes.begin(),
                           pc.index_classes.end());
    }
    if (survivors.empty()) return;  // every batch decided without commit

    next = base->store->CloneForWrite(classes, rels, index_classes);
    bool restart = false;
    for (PendingCommit* pc : survivors) {
      pc->out = ApplyOutcome();
      pc->staged.clear();
      pc->deltas.clear();
      MutationFootprint footprint;
      const MutationBatch& batch = *pc->req->batch;
      for (size_t i = 0; i < batch.ops().size(); ++i) {
        Status s = ApplyOp(state.schema, *next, batch.ops()[i],
                           &pc->staged, &footprint, &pc->deltas, &pc->out);
        if (!s.ok()) {
          pc->req->result = Status(
              s.code(),
              "mutation #" + std::to_string(i) + ": " + s.message());
          pc->excluded = true;
          restart = true;
          break;
        }
      }
      if (restart) break;

      // Validate this batch's own footprint now, against the state its
      // predecessors left — the same state a sequential Apply would
      // have validated against. A violation rejects THIS batch alone.
      ValidationStats vstats;
      Status valid = ValidateMutations(*next, state.catalog, footprint,
                                       &vstats);
      pc->out.constraint_checks = vstats.clauses_checked;
      if (!valid.ok()) {
        state.mutation_batches_rejected.fetch_add(
            1, std::memory_order_relaxed);
        pc->req->result = std::move(valid);
        pc->excluded = true;
        restart = true;
        break;
      }
    }
    if (!restart) break;
  }
  const uint64_t clone_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - clone_start)
          .count());

  // Write-ahead: the surviving batches reach the log as ONE group
  // record (and, per DurabilityOptions, the disk — one fsync) BEFORE
  // anything is published. A failed append aborts the whole group with
  // the store untouched; a crash after the append but before the
  // publish is recovered by replay — the record carries the version
  // range this group will publish as, so recovery lands on the
  // identical state, whole group or none (one CRC frame).
  uint64_t wal_micros = 0;
  uint64_t fsync_micros = 0;
  if (log_to_wal && state.wal != nullptr) {
    std::vector<MutationBatch> logged;
    logged.reserve(survivors.size());
    for (PendingCommit* pc : survivors) logged.push_back(*pc->req->batch);
    const auto wal_start = std::chrono::steady_clock::now();
    Status appended =
        state.wal->Append(base->version + 1, logged,
                          state.options.serve.durability.fsync,
                          &fsync_micros);
    wal_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wal_start)
            .count());
    if (!appended.ok()) {
      for (PendingCommit* pc : survivors) pc->req->result = appended;
      return;
    }
  }
  persist::MaybeCrash("group_post_wal");

  // Statistics: start from the previous snapshot's and fold in the
  // group's effects. Cardinalities are exact (recounted from the
  // clone). Attribute stats are patched incrementally from the ops'
  // value deltas — histogram buckets updated in place, min/max
  // extended on adds — and only fall back to a full per-attribute
  // recollection where a patch cannot absorb the change (value outside
  // the histogram range, no stats yet). Distinct counts and min/max
  // shrinkage on removals are left stale by design: they feed cost
  // estimates, not answers, and the threshold-crossing full recollect
  // below resyncs them whenever the data drifts enough to matter.
  auto data = std::make_shared<detail::LoadedData>();
  data->db_stats = base->db_stats;

  std::set<ClassId> touched_classes;
  std::set<RelId> touched_rels;
  std::unordered_map<ClassId, int64_t> class_ops;
  std::unordered_map<RelId, int64_t> rel_ops;
  for (PendingCommit* pc : survivors) {
    touched_classes.insert(pc->classes.begin(), pc->classes.end());
    touched_rels.insert(pc->rels.begin(), pc->rels.end());
    for (const auto& [cid, n] : pc->class_ops) class_ops[cid] += n;
    for (const auto& [rid, n] : pc->rel_ops) rel_ops[rid] += n;
  }

  // Drift: the largest fraction of any touched class's rows (or
  // relationship's pairs) this group changed — one op changes one row,
  // and a delete's cascaded unlinks show up in the pair delta.
  double stats_drift = 0.0;
  auto drift = [](int64_t changed, int64_t before) {
    return static_cast<double>(changed) /
           static_cast<double>(std::max<int64_t>(1, before));
  };
  for (ClassId cid : touched_classes) {
    stats_drift = std::max(
        stats_drift,
        drift(class_ops[cid], base->store->NumLiveObjects(cid)));
  }
  for (RelId rid : touched_rels) {
    int64_t before = base->store->NumPairs(rid);
    int64_t delta = next->NumPairs(rid) - before;
    int64_t changed = std::max(rel_ops[rid], delta < 0 ? -delta : delta);
    stats_drift = std::max(stats_drift, drift(changed, before));
  }

  const bool resync = stats_drift >= state.options.serve.replan_threshold;
  if (resync) {
    // The same commits that will drop the plan cache also earn a full
    // recollection: cheap commits keep the incremental path, drifting
    // ones pay to resync the approximations above.
    for (ClassId cid : touched_classes) {
      CollectClassStats(*next, cid, &data->db_stats);
    }
  } else {
    for (ClassId cid : touched_classes) {
      data->db_stats.SetClassCardinality(cid, next->NumLiveObjects(cid));
    }
    std::set<AttrRef> dirty;
    for (PendingCommit* pc : survivors) {
      for (const AttrDelta& d : pc->deltas) {
        if (dirty.count(d.ref) > 0) continue;
        AttrStatsData* stats = data->db_stats.MutableAttrStats(d.ref);
        if (stats == nullptr) {
          dirty.insert(d.ref);
          continue;
        }
        if (d.removed.has_value() && d.removed->is_numeric() &&
            !stats->histogram.empty() &&
            !stats->histogram.Remove(d.removed->AsDouble())) {
          dirty.insert(d.ref);
          continue;
        }
        if (d.added.has_value() && d.added->is_numeric()) {
          if (stats->min.has_value() && d.added.value() < *stats->min) {
            stats->min = d.added;
          }
          if (stats->max.has_value() && *stats->max < d.added.value()) {
            stats->max = d.added;
          }
          if (!stats->histogram.Add(d.added->AsDouble())) {
            dirty.insert(d.ref);
          }
        }
      }
    }
    for (const AttrRef& ref : dirty) {
      CollectAttrStats(*next, ref, &data->db_stats);
    }
  }
  for (RelId rid : touched_rels) {
    CollectRelationshipStats(*next, rid, &data->db_stats);
  }

  data->store = std::shared_ptr<const ObjectStore>(std::move(next));
  if (state.options.use_cost_model) {
    data->cost_model = std::make_unique<CostModel>(
        &state.schema, &data->db_stats, state.options.cost_params);
  }
  data->version = base->version + survivors.size();
  data->lineage = base->lineage;

  const bool invalidated = resync;
  size_t group_ops = 0;
  for (size_t i = 0; i < survivors.size(); ++i) {
    PendingCommit* pc = survivors[i];
    pc->out.snapshot_version = base->version + i + 1;
    pc->out.inserted_rows.reserve(pc->staged.size());
    for (const StagedInsert& ins : pc->staged) {
      pc->out.inserted_rows.push_back(ins.row);
    }
    pc->out.stats_drift = stats_drift;
    pc->out.plan_cache_invalidated = invalidated;
    pc->out.group_size = survivors.size();
    pc->out.clone_micros = clone_micros;
    pc->out.wal_micros = wal_micros;
    pc->out.fsync_micros = fsync_micros;
    group_ops += pc->req->batch->size();
  }

  // Publish, then (maybe) invalidate — same order as Load, for the
  // same epoch-race reason.
  {
    std::lock_guard<std::mutex> lock(state.data_mutex);
    state.data = std::move(data);
  }
  if (invalidated) {
    state.plan_cache.Invalidate();
  }
  state.mutation_batches_applied.fetch_add(survivors.size(),
                                           std::memory_order_relaxed);
  state.mutation_ops_applied.fetch_add(group_ops,
                                       std::memory_order_relaxed);

  // Replication tap: the published group, in commit order, gap-free
  // (we still hold commit_mutex). Independent of WAL attachment so
  // in-memory leaders replicate too.
  if (state.commit_listener && !survivors.empty()) {
    std::vector<MutationBatch> committed;
    committed.reserve(survivors.size());
    for (PendingCommit* pc : survivors) committed.push_back(*pc->req->batch);
    state.commit_listener(base->version + 1, committed);
  }

  for (PendingCommit* pc : survivors) {
    pc->req->result = std::move(pc->out);
  }
}

Status Engine::AddConstraint(std::string_view constraint_text) {
  SQOPT_ASSIGN_OR_RETURN(HornClause clause,
                         ParseConstraint(state_->schema, constraint_text));
  return AddConstraint(std::move(clause));
}

Status Engine::AddConstraint(HornClause clause) {
  SQOPT_RETURN_IF_ERROR(state_->catalog.AddConstraint(std::move(clause)));
  return Recompile();
}

Status Engine::Recompile() {
  SQOPT_RETURN_IF_ERROR(state_->catalog.Precompile(
      &state_->access, state_->options.precompile));
  // Cached plans embed the retrieval + transformation the old catalog
  // produced; drop them.
  state_->plan_cache.Invalidate();
  return Status::OK();
}

Status Engine::Recompile(const PrecompileOptions& precompile) {
  state_->options.precompile = precompile;
  return Recompile();
}

void Engine::SetCommitListener(CommitListener listener) {
  // Same lock CommitGroupLocked holds while invoking it: attaching or
  // detaching never races a commit in flight.
  std::lock_guard<std::mutex> lock(state_->commit_mutex);
  state_->commit_listener = std::move(listener);
}

void Engine::SetOptimizerOptions(const OptimizerOptions& optimizer) {
  state_->options.optimizer = optimizer;
  // Plans cached under the old knobs (tag policy, budget, ...) no
  // longer reflect what a fresh optimization would produce.
  state_->plan_cache.Invalidate();
}

void Engine::SetServeOptions(const ServeOptions& serve) {
  // cache_capacity is consumed at Open; preserve the live value so the
  // stats surface doesn't lie about the cache's actual budget.
  ServeOptions updated = serve;
  updated.cache_capacity = state_->options.serve.cache_capacity;
  state_->options.serve = updated;
  // The parallel-scan decision is baked into cached plans; re-plan
  // under the new knobs.
  state_->plan_cache.Invalidate();
  // Drop the pool so the next use rebuilds it at the new thread count
  // (GetMorselPool never resizes on its own). Work in flight holds its
  // own reference; the old pool drains and joins when the last holder
  // releases it.
  {
    std::lock_guard<std::mutex> lock(state_->pool_mutex);
    state_->pool.reset();
  }
}

// ---------------------------------------------------------------------
// Engine: read path.
// ---------------------------------------------------------------------

Result<Query> Engine::Parse(std::string_view query_text) const {
  state_->queries_parsed.fetch_add(1, std::memory_order_relaxed);
  return ParseQuery(state_->schema, query_text);
}

Result<QueryOutcome> Engine::Execute(std::string_view query_text) const {
  detail::EngineState& state = *state_;
  // Serving fast path: an exact raw-text repeat resolves straight to
  // its cached plan — no parse, no canonicalization, no lookup of the
  // canonical key.
  if (state.plan_cache.enabled()) {
    if (std::shared_ptr<const detail::PreparedState> entry =
            state.plan_cache.LookupText(query_text)) {
      RecordAccess(state, entry->original);
      SQOPT_ASSIGN_OR_RETURN(
          QueryOutcome out,
          ExecutePreparedState(state, *entry, state.data_snapshot()));
      out.plan_cache_hit = true;
      out.plan_cache = state.plan_cache.stats(/*count_entries=*/false);
      state.queries_executed.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
  }
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return ExecuteParsed(query, std::string(query_text));
}

Result<QueryOutcome> Engine::Execute(const Query& query) const {
  return ExecuteParsed(query, std::nullopt);
}

Result<PlannedStatement> Engine::PlanStatement(
    std::string_view query_text) const {
  detail::EngineState& state = *state_;
  // Same fast path as Execute: an exact raw-text repeat resolves
  // straight to its cached prepared state.
  if (state.plan_cache.enabled()) {
    if (std::shared_ptr<const detail::PreparedState> entry =
            state.plan_cache.LookupText(query_text)) {
      RecordAccess(state, entry->original);
      return PlannedStatement{std::move(entry), /*plan_cache_hit=*/true};
    }
  }
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  if (!state.plan_cache.enabled()) {
    std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();
    if (data == nullptr) {
      return Status::FailedPrecondition(
          "no data loaded: call Engine::Load before PlanStatement");
    }
    RecordAccess(state, query);
    SQOPT_ASSIGN_OR_RETURN(std::shared_ptr<const detail::PreparedState> entry,
                           BuildPrepared(state, std::move(data), query));
    return PlannedStatement{std::move(entry), /*plan_cache_hit=*/false};
  }
  // Epoch before snapshot — see ExecuteParsed for why this order is
  // load-bearing against concurrent reloads.
  const uint64_t epoch = state.plan_cache.epoch();
  std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();
  if (data == nullptr) {
    return Status::FailedPrecondition(
        "no data loaded: call Engine::Load before PlanStatement");
  }
  RecordAccess(state, query);
  SQOPT_RETURN_IF_ERROR(ValidateQuery(state.schema, query));
  const std::string key = CanonicalQueryKey(state.schema, query);
  std::shared_ptr<const detail::PreparedState> entry =
      state.plan_cache.Lookup(key);
  const bool hit = entry != nullptr;
  if (!hit) {
    SQOPT_ASSIGN_OR_RETURN(entry, BuildPrepared(state, data, query));
    state.plan_cache.Insert(key, entry, epoch);
  }
  if (std::string text(query_text); text != key) {
    state.plan_cache.InsertAlias(text, entry, epoch);
  }
  return PlannedStatement{std::move(entry), hit};
}

Result<QueryOutcome> Engine::ExecuteParsed(
    const Query& query, std::optional<std::string> text) const {
  detail::EngineState& state = *state_;
  QueryOutcome out;
  if (state.plan_cache.enabled()) {
    // Epoch BEFORE snapshot: Load() publishes the new snapshot first
    // and bumps the epoch second, so an epoch that is still current at
    // Insert time proves the snapshot below was not replaced while the
    // plan was being built. (Snapshot-then-epoch would let a plan
    // built against the dropped store slip in under the new epoch.)
    const uint64_t epoch = state.plan_cache.epoch();
    std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();
    if (data == nullptr) {
      return Status::FailedPrecondition(
          "no data loaded: call Engine::Load before Execute, or use "
          "Analyze for optimization-only runs");
    }
    RecordAccess(state, query);
    SQOPT_ASSIGN_OR_RETURN(
        out, ExecuteCached(state, std::move(data), epoch, query,
                           text.has_value() ? &*text : nullptr));
  } else {
    SQOPT_ASSIGN_OR_RETURN(
        out, RunQuery(state, query, /*optimize=*/true, /*execute=*/true));
  }
  state.queries_executed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<QueryOutcome> Engine::ExecuteUnoptimized(
    std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return ExecuteUnoptimized(query);
}

Result<QueryOutcome> Engine::ExecuteUnoptimized(const Query& query) const {
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/false, /*execute=*/true));
  state_->queries_executed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<QueryOutcome> Engine::Analyze(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return Analyze(query);
}

Result<QueryOutcome> Engine::Analyze(const Query& query) const {
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/true, /*execute=*/false));
  state_->queries_analyzed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<PreparedQuery> Engine::Prepare(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return Prepare(query);
}

Result<PreparedQuery> Engine::Prepare(const Query& query) const {
  detail::EngineState& state = *state_;
  RecordAccess(state, query);
  // Epoch before snapshot — see ExecuteParsed for why this order is
  // load-bearing against concurrent reloads.
  const uint64_t epoch = state.plan_cache.epoch();
  std::shared_ptr<const detail::LoadedData> data = state.data_snapshot();

  // Prepare and Execute share the plan cache: a handle for a recently
  // executed query reuses its cached plan, and a handle prepared here
  // seeds the cache for later ad-hoc Executes. Data-less preparations
  // (analysis-only handles) are never cached — a later Execute must
  // not hit a planless entry.
  std::shared_ptr<const detail::PreparedState> prepared;
  if (state.plan_cache.enabled() && data != nullptr) {
    SQOPT_RETURN_IF_ERROR(ValidateQuery(state.schema, query));
    const std::string key = CanonicalQueryKey(state.schema, query);
    prepared = state.plan_cache.Lookup(key);
    if (prepared == nullptr) {
      SQOPT_ASSIGN_OR_RETURN(prepared,
                             BuildPrepared(state, std::move(data), query));
      state.plan_cache.Insert(key, prepared, epoch);
    }
  } else {
    SQOPT_ASSIGN_OR_RETURN(prepared,
                           BuildPrepared(state, std::move(data), query));
  }
  state.statements_prepared.fetch_add(1, std::memory_order_relaxed);
  return PreparedQuery(state_, std::move(prepared));
}

Result<std::string> Engine::Explain(std::string_view query_text) const {
  SQOPT_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  SQOPT_ASSIGN_OR_RETURN(
      QueryOutcome out,
      RunQuery(*state_, query, /*optimize=*/true, /*execute=*/false));

  std::string text = out.report.ToString(state_->schema);
  text += "transformed: " + PrintQuery(state_->schema, out.transformed);
  text += "\n";
  std::shared_ptr<const detail::LoadedData> data = state_->data_snapshot();
  if (data != nullptr && !out.answered_without_database) {
    auto plan = BuildPlan(state_->schema, data->db_stats, out.transformed,
                          MakePlanningOptions(*state_));
    if (plan.ok()) {
      text += "plan:\n" + plan->ToString(state_->schema);
    }
  }
  return text;
}

// ---------------------------------------------------------------------
// Engine: batch serving.
// ---------------------------------------------------------------------

Result<BatchOutcome> Engine::ExecuteBatch(
    std::span<const std::string> queries) const {
  return ExecuteBatch(queries, state_->options.serve);
}

Result<BatchOutcome> Engine::ExecuteBatch(
    std::span<const std::string> queries, const ServeOptions& serve) const {
  detail::EngineState& state = *state_;
  if (state.data_snapshot() == nullptr) {
    return Status::FailedPrecondition(
        "no data loaded: call Engine::Load before ExecuteBatch");
  }

  BatchOutcome out;
  out.stats.queries = queries.size();
  out.stats.threads = WorkerPool::ResolveThreads(serve.threads);
  if (queries.empty()) {
    state.batches_served.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  // Acquire the shared engine-sized pool for batch dispatch; a
  // per-call thread override gets a PRIVATE pool for this batch only,
  // so the override can never silently resize the pool later queries
  // fan morsels across. Deliberate trade-off: an override that differs
  // from the engine's configured threads pays pool spawn/teardown per
  // batch — callers with a steady thread count should configure it at
  // Open or via SetServeOptions, which use the cached shared pool.
  // (Intra-query fan-out is engine-level and
  // deliberately not throttled by the override: parallel plans inside
  // this batch still borrow the shared engine-sized pool via
  // GetMorselPool — see the ExecuteBatch contract in engine.h.)
  std::shared_ptr<WorkerPool> pool;
  if (out.stats.threads ==
      WorkerPool::ResolveThreads(state.options.serve.threads)) {
    pool = state.GetMorselPool();
  } else {
    pool = std::make_shared<WorkerPool>(out.stats.threads);
  }

  out.results.assign(queries.size(), Status::Internal("not run"));
  std::vector<uint64_t> latencies_micros(queries.size(), 0);

  // Per-batch completion latch.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = queries.size();

  const auto batch_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    pool->Submit([&, i] {
      const auto start = std::chrono::steady_clock::now();
      Result<QueryOutcome> result = Execute(queries[i]);
      latencies_micros[i] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      out.results[i] = std::move(result);
      // Notify while holding the lock: the waiter can only wake (and
      // destroy the latch by returning) after this worker releases the
      // mutex, so the condvar is never signalled after destruction.
      std::lock_guard<std::mutex> lock(done_mu);
      --remaining;
      done_cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  out.stats.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - batch_start)
          .count());

  for (const Result<QueryOutcome>& result : out.results) {
    if (!result.ok()) {
      ++out.stats.failed;
      continue;
    }
    ++out.stats.succeeded;
    if (result->plan_cache_hit) {
      ++out.stats.cache_hits;
    } else if (state.plan_cache.enabled()) {
      ++out.stats.cache_misses;
    }
  }
  if (out.stats.cache_hits + out.stats.cache_misses > 0) {
    out.stats.cache_hit_rate =
        static_cast<double>(out.stats.cache_hits) /
        static_cast<double>(out.stats.cache_hits + out.stats.cache_misses);
  }
  if (out.stats.wall_micros > 0) {
    out.stats.qps = static_cast<double>(queries.size()) * 1e6 /
                    static_cast<double>(out.stats.wall_micros);
  }
  std::sort(latencies_micros.begin(), latencies_micros.end());
  out.stats.p50_micros = latencies_micros[latencies_micros.size() / 2];
  out.stats.p95_micros =
      latencies_micros[latencies_micros.size() * 95 / 100];
  out.stats.p99_micros =
      latencies_micros[latencies_micros.size() * 99 / 100];
  out.stats.max_micros = latencies_micros.back();
  state.batches_served.fetch_add(1, std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------
// Engine: introspection.
// ---------------------------------------------------------------------

const Schema& Engine::schema() const { return state_->schema; }

const ConstraintCatalog& Engine::catalog() const { return state_->catalog; }

const ObjectStore* Engine::store() const {
  std::shared_ptr<const detail::LoadedData> data = state_->data_snapshot();
  return data == nullptr ? nullptr : data->store.get();
}

const DatabaseStats* Engine::database_stats() const {
  std::shared_ptr<const detail::LoadedData> data = state_->data_snapshot();
  return data == nullptr ? nullptr : &data->db_stats;
}

const CostModelInterface* Engine::cost_model() const {
  std::shared_ptr<const detail::LoadedData> data = state_->data_snapshot();
  return data == nullptr ? nullptr : data->cost_model.get();
}

uint64_t Engine::data_version() const {
  std::shared_ptr<const detail::LoadedData> data = state_->data_snapshot();
  return data == nullptr ? 0 : data->version;
}

const EngineOptions& Engine::options() const { return state_->options; }

AccessStats Engine::access_stats() const {
  std::lock_guard<std::mutex> lock(state_->access_mutex);
  return state_->access;
}

AccessStats* Engine::mutable_access_stats() { return &state_->access; }

EngineStats Engine::stats() const {
  const detail::EngineState& state = *state_;
  EngineStats out;
  out.queries_parsed =
      state.queries_parsed.load(std::memory_order_relaxed);
  out.queries_executed =
      state.queries_executed.load(std::memory_order_relaxed);
  out.queries_analyzed =
      state.queries_analyzed.load(std::memory_order_relaxed);
  out.statements_prepared =
      state.statements_prepared.load(std::memory_order_relaxed);
  out.prepared_executions =
      state.prepared_executions.load(std::memory_order_relaxed);
  out.contradictions = state.contradictions.load(std::memory_order_relaxed);
  out.batches_served =
      state.batches_served.load(std::memory_order_relaxed);
  out.mutation_batches_applied =
      state.mutation_batches_applied.load(std::memory_order_relaxed);
  out.mutation_ops_applied =
      state.mutation_ops_applied.load(std::memory_order_relaxed);
  out.mutation_batches_rejected =
      state.mutation_batches_rejected.load(std::memory_order_relaxed);
  out.checkpoints = state.checkpoints.load(std::memory_order_relaxed);
  out.wal_records_replayed =
      state.wal_records_replayed.load(std::memory_order_relaxed);
  return out;
}

PlanCacheStats Engine::plan_cache_stats() const {
  return state_->plan_cache.stats();
}

}  // namespace sqopt

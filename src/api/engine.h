// The sqopt public API: one entry point from query text to metered
// results.
//
//   Engine engine = *Engine::Open(SchemaSource::Experiment(),
//                                 ConstraintSource::Experiment());
//   engine.Load(DataSource::Generated({"db", 104, 154}, /*seed=*/42));
//   QueryOutcome out = *engine.Execute(
//       "{cargo.code} {} {cargo.desc = \"frozen food\"} {} {cargo}");
//
// Open() wires the whole pipeline of the paper — constraint closure
// precompilation, grouping, the delayed-choice semantic optimizer, the
// conventional plan builder, and the metered executor — behind a
// single handle. The read path (Execute / ExecuteBatch / Analyze /
// Prepare / Explain) is const and safe to call from any number of
// threads against one engine; Load() and the transactional write path
// (Apply) may run concurrently with it — every commit publishes a new
// immutable snapshot and in-flight readers keep theirs — while the
// catalog mutations (AddConstraint / Recompile) must be quiesced
// first. Execute is transparently served from a shared plan
// cache keyed on the canonicalized query text, so repeated execution —
// the heavy-traffic case — skips parsing, retrieval, transformation,
// and planning; ExecuteBatch fans whole batches across a worker pool
// against that cache. Prepare() returns a PreparedQuery handle onto
// the same cached state for explicit statement reuse.
#ifndef SQOPT_API_ENGINE_H_
#define SQOPT_API_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine_iface.h"
#include "api/engine_options.h"
#include "api/mutation.h"
#include "api/plan_cache.h"
#include "api/prepared_query.h"
#include "api/serve.h"
#include "catalog/access_stats.h"
#include "catalog/schema.h"
#include "common/status.h"
#include "constraints/constraint_catalog.h"
#include "constraints/horn_clause.h"
#include "cost/stats.h"
#include "exec/executor.h"
#include "query/query.h"
#include "query/query_printer.h"
#include "sqo/report.h"
#include "storage/object_store.h"
#include "workload/dbgen.h"

namespace sqopt {

namespace detail {
struct CommitRequest;
struct EngineState;
struct PreparedState;
}  // namespace detail

// ---------------------------------------------------------------------
// Sources: how an Engine obtains its schema, constraints, and data.
// Each wraps a factory so Open()/Load() control construction order and
// ownership; named factories cover the built-in workloads.
// ---------------------------------------------------------------------

class SchemaSource {
 public:
  using Factory = std::function<Result<Schema>()>;

  // Implicit: pass a ready-made Schema or any callable returning one.
  SchemaSource(Schema schema);     // NOLINT(runtime/explicit)
  SchemaSource(Factory factory);   // NOLINT(runtime/explicit)

  // The paper's Figure 2.1 running-example schema.
  static SchemaSource PaperExample();
  // The §4 experiment schema (5 classes, 6 relationships).
  static SchemaSource Experiment();

  Result<Schema> Build() const;

 private:
  Factory factory_;
};

class ConstraintSource {
 public:
  using Factory =
      std::function<Result<std::vector<HornClause>>(const Schema&)>;

  ConstraintSource(Factory factory);  // NOLINT(runtime/explicit)

  static ConstraintSource None();
  // Figure 2.2's five constraints (requires SchemaSource::PaperExample).
  static ConstraintSource PaperExample();
  // The 15 experiment constraints (requires SchemaSource::Experiment).
  static ConstraintSource Experiment();
  // Pre-built clauses (ids must resolve against the engine's schema).
  static ConstraintSource FromClauses(std::vector<HornClause> clauses);
  // Textual Horn clauses, parsed against the engine's schema at Open.
  static ConstraintSource FromText(std::vector<std::string> clauses);
  // Concatenation; duplicates across parts are skipped at Open.
  static ConstraintSource Merge(std::vector<ConstraintSource> parts);

  Result<std::vector<HornClause>> Build(const Schema& schema) const;

 private:
  Factory factory_;
};

class DataSource {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<ObjectStore>>(const Schema&)>;

  DataSource(Factory factory);  // NOLINT(runtime/explicit)

  // GenerateDatabase over the engine's schema; deterministic in `seed`.
  static DataSource Generated(DbSpec spec, uint64_t seed);
  // Adopts an existing store. The schema the store was built against
  // must outlive the engine and be structurally identical to the
  // engine's. One-shot: a DataSource from FromStore can be Load()ed
  // only once.
  static DataSource FromStore(std::unique_ptr<ObjectStore> store);

  Result<std::unique_ptr<ObjectStore>> Build(const Schema& schema) const;

 private:
  Factory factory_;
};

// ---------------------------------------------------------------------
// Results.
// ---------------------------------------------------------------------

// Everything one query produced: the parsed and transformed forms, the
// optimization trace, the rows, and the measured execution meter.
struct QueryOutcome {
  Query original;
  Query transformed;  // == original when nothing applied / unoptimized
  OptimizationReport report;

  // Contradiction short-circuit (§4 extension): the retained predicate
  // set is unsatisfiable, so `rows` is empty and the store was never
  // touched.
  bool answered_without_database = false;

  bool executed = false;  // false for Analyze and for contradictions
  ResultSet rows;
  ExecutionMeter meter;

  // Plan-cache accounting: whether THIS query was served from a cached
  // parse/retrieval/plan, plus a snapshot of the cache counters taken
  // when the query completed. All zeros when the cache is disabled and
  // on paths that bypass it (Analyze, ExecuteUnoptimized).
  bool plan_cache_hit = false;
  PlanCacheStats plan_cache;
};

// Everything one ExecuteBatch call produced: per-query results in input
// order plus the aggregate throughput meter.
struct BatchOutcome {
  std::vector<Result<QueryOutcome>> results;
  BatchStats stats;
};

// EngineStats lives in api/engine_iface.h (shared with every
// EngineInterface backend).

// One planned statement: the shared parse/retrieve/transform/plan
// state Execute(text) would run with, WITHOUT executing it. Produced
// by Engine::PlanStatement through the same plan cache Execute uses,
// so repeated planning of one query text is a cache hit. The handle
// shares ownership of the cached state; it stays valid across reloads
// (it pins the data snapshot it was planned against).
struct PlannedStatement {
  std::shared_ptr<const detail::PreparedState> prepared;
  bool plan_cache_hit = false;
};

// ---------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------

class Engine : public EngineInterface {
 public:
  // Builds the schema, loads + precompiles the constraints (closure,
  // classification, grouping), and returns a ready engine. Duplicate
  // constraints across merged sources are skipped silently; any other
  // constraint error fails the open.
  static Result<Engine> Open(SchemaSource schema_source,
                             ConstraintSource constraint_source,
                             EngineOptions options = {});

  // Opens a persistence directory previously produced by Save() /
  // Checkpoint(): restores the schema, the precompiled constraint
  // catalog (derived rules included — no closure recomputation), the
  // store with its B-tree indexes, and the collected statistics from
  // the binary snapshot, then replays the write-ahead log's committed
  // suffix through the ordinary Apply path (constraint validation
  // included). A torn WAL tail is discarded; a record at or below the
  // snapshot's version is skipped (a checkpoint killed between rename
  // and truncate leaves exactly that); checksum or structural damage in
  // the snapshot itself fails with kCorruption. The returned engine
  // stays attached to `dir`: subsequent Apply calls append to the WAL
  // per options.serve.durability. `options` is NOT persisted — every
  // open chooses its own knobs.
  static Result<Engine> Open(const std::string& dir,
                             EngineOptions options = {});

  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() override = default;

  // --- Admin path. Load() is safe to run concurrently with the read
  // path: it publishes a complete new data snapshot and invalidates
  // the plan cache, while in-flight queries and PreparedQuery handles
  // keep executing against the snapshot they started with. The other
  // mutations below (AddConstraint / Recompile / SetOptimizerOptions /
  // SetServeOptions) still require quiescing Execute/Prepare callers
  // first. ---

  // Attaches (or replaces) the data, collects statistics, and builds
  // the cost model (unless options.use_cost_model is false). Drops
  // every cached plan: the next Execute of any query re-parses,
  // re-retrieves, and re-plans against the new store. On a durable
  // engine a reload DETACHES the persistence directory (the on-disk
  // lineage no longer describes the data); Save() re-attaches.
  Status Load(DataSource data_source);

  // --- Durability. See DESIGN.md "Durability". ---

  // Makes this engine durable at `dir` (created if absent): writes a
  // full snapshot of the current state — schema, precompiled catalog,
  // extents, adjacency, indexes, statistics — as one atomic file plus
  // a fresh write-ahead log, and attaches the engine so every later
  // Apply is logged before it publishes. Requires Load() first.
  Status Save(const std::string& dir);

  // Folds the log into a new snapshot: writes the current state to a
  // tmp file, fsyncs, renames it over the old snapshot, fsyncs the
  // directory, and only then truncates the WAL. A kill anywhere in
  // that sequence recovers to exactly the pre- or post-checkpoint
  // state (WAL replay is version-idempotent). Requires a durable
  // engine (Save or Open(dir)).
  Status Checkpoint() override;

  // Directory this engine persists to; empty when purely in-memory.
  std::string persist_dir() const;

  // --- Write path. Safe to run concurrently with the read path, like
  // Load(): writers serialize among themselves on a commit lock,
  // readers keep the snapshot they pinned. ---

  // Commits `batch` transactionally against the current snapshot:
  //  * the whole batch applies to a copy-on-write clone of the store
  //    (only touched classes/relationships are copied), with B-tree
  //    indexes maintained incrementally per op;
  //  * the post-apply state is validated against the ConstraintCatalog
  //    (base clauses, on the rows/links the batch touched) BEFORE
  //    anything is published — a violating batch is rejected with a
  //    kConstraintViolation status and the visible store is untouched,
  //    as it is on any other per-op error (bad row, duplicate link...);
  //  * class/relationship statistics and histograms are recollected
  //    incrementally for the touched classes only;
  //  * the new snapshot is published atomically — every read that
  //    starts afterwards sees the whole batch, none of it before;
  //  * the plan cache is dropped only when the commit's statistics
  //    drift crosses options().serve.replan_threshold — below it,
  //    cached plans survive and execute against the new snapshot.
  // Requires Load() first. An empty batch is a no-op commit.
  //
  // Concurrent Apply calls GROUP-COMMIT: callers queue up, one becomes
  // the leader and commits every queued batch with a single WAL append
  // + fsync and a single published snapshot, the rest block on the
  // leader's outcome. Each batch keeps its own typed status — a
  // follower's kConstraintViolation (or malformed batch) rejects that
  // batch alone and never poisons its group-mates.
  Result<ApplyOutcome> Apply(const MutationBatch& batch) override;

  // Commits `batches` as ONE explicit commit group (the same protocol
  // concurrent Apply callers converge on, minus the queueing): batches
  // apply and validate in order against the current snapshot, the
  // survivors share one WAL append + fsync and one published snapshot,
  // and each slot of the returned vector (input order) carries that
  // batch's own outcome or typed failure. Batch i's committed version
  // is base + (number of surviving batches before it) + 1; a rejected
  // batch consumes no version. An empty span returns an empty vector.
  std::vector<Result<ApplyOutcome>> ApplyGroup(
      std::span<const MutationBatch> batches) override;

  // Observer for committed groups, the leader-side replication tap:
  // called after every published commit with the group's first
  // snapshot version and its surviving batches, in commit order, while
  // the commit lock is still held (so invocations are totally ordered
  // and gap-free). Fires for every commit — durable or in-memory —
  // but never during Open(dir) replay, so attaching after Open sees
  // exactly the post-recovery suffix. Pass nullptr to detach. The
  // callback must not re-enter Apply.
  using CommitListener = std::function<void(
      uint64_t first_version, const std::vector<MutationBatch>& batches)>;
  void SetCommitListener(CommitListener listener);

  // Adds one constraint and re-precompiles the catalog (closure +
  // grouping re-run; semantic constraints change rarely — the paper's
  // justification for paying this on write, not per query).
  Status AddConstraint(std::string_view constraint_text);
  Status AddConstraint(HornClause clause);

  // Re-runs precompilation with the current access statistics — e.g.
  // to let kLeastFrequentlyAccessed grouping adapt to traffic drift.
  // The overload replaces the precompile options first.
  Status Recompile();
  Status Recompile(const PrecompileOptions& precompile);

  // Replaces the optimizer knobs (tag policy, queue discipline,
  // budget, ...) without re-opening; takes effect on the next query.
  // Admin path, like the rest of this section.
  void SetOptimizerOptions(const OptimizerOptions& optimizer);

  // Replaces the serving knobs (ExecuteBatch threads, intra-query
  // parallelism ceiling, morsel size) without re-opening; cached plans
  // are dropped because the parallel-scan decision is baked into them.
  // cache_capacity changes are ignored (consumed at Open). Admin path:
  // quiesce readers first, like SetOptimizerOptions.
  void SetServeOptions(const ServeOptions& serve);

  // --- Read path: const, thread-safe. ---

  // Parse -> optimize -> plan -> execute -> meter. Requires Load().
  // Transparently served from the shared plan cache when an identical
  // (canonicalized) query was executed or prepared since the last
  // reload: a hit skips retrieval, transformation, and planning, and
  // the outcome reports plan_cache_hit = true.
  Result<QueryOutcome> Execute(std::string_view query_text) const override;
  Result<QueryOutcome> Execute(const Query& query) const;

  // Plans `query_text` exactly as Execute would — plan-cache fast path
  // included — and returns the shared prepared state instead of
  // executing it. This is the sharded engine's plan-once hook: the
  // coordinator plans on its global planning head and scatters the one
  // plan across every shard. Requires Load().
  Result<PlannedStatement> PlanStatement(std::string_view query_text) const;

  // Fans `queries` across the engine's worker pool (sized by
  // options().serve.threads unless overridden) and returns per-query
  // outcomes in input order plus an aggregate throughput meter. A
  // malformed query fails only its own slot. All queries share the
  // plan cache, so batches with repeated queries serve mostly from
  // cache. The per-call ServeOptions override sizes THIS batch's
  // fan-out only; the intra-query parallelism knobs are engine-level
  // (set at Open or via SetServeOptions) because they are baked into
  // the shared cached plans. Requires Load().
  Result<BatchOutcome> ExecuteBatch(
      std::span<const std::string> queries) const;
  Result<BatchOutcome> ExecuteBatch(std::span<const std::string> queries,
                                    const ServeOptions& serve) const;

  // Same, skipping semantic optimization (baseline side of A/B runs).
  Result<QueryOutcome> ExecuteUnoptimized(std::string_view query_text) const;
  Result<QueryOutcome> ExecuteUnoptimized(const Query& query) const;

  // Parse -> optimize only; never touches data (works with no store).
  Result<QueryOutcome> Analyze(std::string_view query_text) const;
  Result<QueryOutcome> Analyze(const Query& query) const;

  // Parse + optimize + plan once; the returned handle re-executes
  // without re-doing any of it. The handle stays valid after the
  // engine object is destroyed (it shares ownership of the internals).
  Result<PreparedQuery> Prepare(std::string_view query_text) const;
  Result<PreparedQuery> Prepare(const Query& query) const;

  // Human-readable transformation trace + transformed query (in
  // re-parseable textual form) + physical plan when data is loaded.
  Result<std::string> Explain(std::string_view query_text) const;

  // Parses and validates without optimizing or executing.
  Result<Query> Parse(std::string_view query_text) const;

  // --- Introspection. ---
  const Schema& schema() const;
  const ConstraintCatalog& catalog() const;
  // The three data accessors below return null until Load() and point
  // into the CURRENT data snapshot: the pointers stay valid only until
  // the next Load() replaces it. Don't hold them across a reload —
  // re-read them instead (queries in flight are unaffected; they pin
  // their snapshot internally).
  const ObjectStore* store() const;
  bool has_data() const override { return store() != nullptr; }
  const DatabaseStats* database_stats() const;
  const CostModelInterface* cost_model() const;
  // Version of the current data snapshot: 0 before the first Load, 1
  // after it, +1 per committed Apply (a reload restarts the lineage at
  // 1). Lets callers detect whether a write was published.
  uint64_t data_version() const override;
  const EngineOptions& options() const;
  EngineStats stats() const override;

  // Cumulative plan-cache counters (hits, misses, evictions,
  // invalidations, live entries). Safe concurrently with the read path.
  PlanCacheStats plan_cache_stats() const override;

  // Snapshot of the per-class access counters (the read path updates
  // them under a lock; the snapshot is taken under the same lock, so
  // this is safe to call concurrently with Execute).
  AccessStats access_stats() const;

  // What-if drills on the access counters (admin path: not
  // synchronized with concurrent readers).
  AccessStats* mutable_access_stats();

 private:
  explicit Engine(std::shared_ptr<detail::EngineState> state)
      : state_(std::move(state)) {}

  // Shared tail of the two Execute overloads; `text` (when the query
  // arrived as text) registers the raw-text cache alias.
  Result<QueryOutcome> ExecuteParsed(const Query& query,
                                     std::optional<std::string> text) const;

  // Queues `batches` as one contiguous run of commit requests, rides
  // the leader/follower group-commit protocol (becoming leader if the
  // queue head is ours), and returns per-batch results in input order.
  // Shared tail of Apply (a group of one) and ApplyGroup.
  std::vector<Result<ApplyOutcome>> CommitThroughGroup(
      std::span<const MutationBatch> batches);

  // The commit body: applies + validates every batch of `group` in
  // order against the current snapshot, appends the survivors as one
  // WAL group record (when `log_to_wal` and attached), publishes one
  // combined snapshot, and engages every request's `result`. WAL
  // replay at Open(dir) runs it with log_to_wal=false (the record
  // being replayed IS the log). Caller holds commit_mutex.
  void CommitGroupLocked(const std::vector<detail::CommitRequest*>& group,
                         bool log_to_wal);

  std::shared_ptr<detail::EngineState> state_;
};

}  // namespace sqopt

#endif  // SQOPT_API_ENGINE_H_

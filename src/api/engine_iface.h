// The minimal surface the network serving layer needs from a query
// engine: execute one query by text, report cumulative counters, and
// say whether data is loaded. Both the single-process Engine and the
// scatter-gather ShardedEngine implement it, which is how one TCP
// front end (server/server.{h,cc}) serves either backend unchanged —
// see DESIGN.md "Sharding".
#ifndef SQOPT_API_ENGINE_IFACE_H_
#define SQOPT_API_ENGINE_IFACE_H_

#include <cstdint>
#include <string_view>

#include "api/plan_cache.h"
#include "common/status.h"

namespace sqopt {

struct QueryOutcome;

// Cumulative engine counters; all reads are atomic snapshots. For a
// sharded engine these are FLEET TOTALS: per-shard counters sum (every
// mutation op routes to exactly one shard), coordinator-level events
// (query completions, committed batches, checkpoints) count once.
struct EngineStats {
  uint64_t queries_parsed = 0;       // ParseQuery invocations
  uint64_t queries_executed = 0;     // Execute() completions
  uint64_t queries_analyzed = 0;     // Analyze() completions
  uint64_t statements_prepared = 0;  // Prepare() completions
  uint64_t prepared_executions = 0;  // PreparedQuery::Execute completions
  uint64_t contradictions = 0;       // queries answered without the DB
  uint64_t batches_served = 0;       // ExecuteBatch() completions
  uint64_t mutation_batches_applied = 0;   // committed Apply() calls
  uint64_t mutation_ops_applied = 0;       // ops inside committed batches
  // Apply() batches rejected by constraint validation specifically
  // (malformed batches — bad rows, duplicate links — are not counted).
  uint64_t mutation_batches_rejected = 0;
  // Completed Checkpoint() calls.
  uint64_t checkpoints = 0;
  // WAL records replayed by Open(dir) — the committed suffix the last
  // checkpoint had not folded in yet. One record per commit GROUP (a
  // group of concurrent Apply calls shares a record; a lone Apply is a
  // group of one).
  uint64_t wal_records_replayed = 0;
};

class EngineInterface {
 public:
  virtual ~EngineInterface() = default;

  // Parse -> optimize -> plan -> execute -> meter; thread-safe.
  virtual Result<QueryOutcome> Execute(std::string_view query_text) const = 0;

  virtual EngineStats stats() const = 0;
  virtual PlanCacheStats plan_cache_stats() const = 0;

  // Whether Load() (or a durable open) attached data — the serving
  // precondition the server checks instead of poking at a store.
  virtual bool has_data() const = 0;
};

}  // namespace sqopt

#endif  // SQOPT_API_ENGINE_IFACE_H_

// The full serving surface the network layer needs from a query
// engine: execute queries, commit mutation batches, checkpoint, and
// report the snapshot version and cumulative counters. The
// single-process Engine, the scatter-gather ShardedEngine, and the
// wire-speaking shard::RemoteShard all implement it, which is how one
// TCP front end (server/server.{h,cc}) serves any backend — and how
// the sharded coordinator can target in-process and remote shards
// through one seam — with no downcasts. See DESIGN.md "Sharding" and
// "Replication".
#ifndef SQOPT_API_ENGINE_IFACE_H_
#define SQOPT_API_ENGINE_IFACE_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "api/mutation.h"
#include "api/plan_cache.h"
#include "common/status.h"

namespace sqopt {

struct QueryOutcome;

// Cumulative engine counters; all reads are atomic snapshots. For a
// sharded engine these are FLEET TOTALS: per-shard counters sum (every
// mutation op routes to exactly one shard), coordinator-level events
// (query completions, committed batches, checkpoints) count once.
struct EngineStats {
  uint64_t queries_parsed = 0;       // ParseQuery invocations
  uint64_t queries_executed = 0;     // Execute() completions
  uint64_t queries_analyzed = 0;     // Analyze() completions
  uint64_t statements_prepared = 0;  // Prepare() completions
  uint64_t prepared_executions = 0;  // PreparedQuery::Execute completions
  uint64_t contradictions = 0;       // queries answered without the DB
  uint64_t batches_served = 0;       // ExecuteBatch() completions
  uint64_t mutation_batches_applied = 0;   // committed Apply() calls
  uint64_t mutation_ops_applied = 0;       // ops inside committed batches
  // Apply() batches rejected by constraint validation specifically
  // (malformed batches — bad rows, duplicate links — are not counted).
  uint64_t mutation_batches_rejected = 0;
  // Completed Checkpoint() calls.
  uint64_t checkpoints = 0;
  // WAL records replayed by Open(dir) — the committed suffix the last
  // checkpoint had not folded in yet. One record per commit GROUP (a
  // group of concurrent Apply calls shares a record; a lone Apply is a
  // group of one).
  uint64_t wal_records_replayed = 0;
};

class EngineInterface {
 public:
  virtual ~EngineInterface() = default;

  // Parse -> optimize -> plan -> execute -> meter; thread-safe.
  virtual Result<QueryOutcome> Execute(std::string_view query_text) const = 0;

  // Commits one mutation batch atomically (group-commit with
  // concurrent callers where the backend supports it). Thread-safe;
  // serializes against other writers inside the backend.
  virtual Result<ApplyOutcome> Apply(const MutationBatch& batch) = 0;

  // Commits `batches` as one explicit commit group; each slot of the
  // returned vector (input order) carries that batch's own outcome or
  // typed failure. An empty span returns an empty vector.
  virtual std::vector<Result<ApplyOutcome>> ApplyGroup(
      std::span<const MutationBatch> batches) = 0;

  // Folds the WAL into a fresh snapshot. Backends without an attached
  // persistence directory return kFailedPrecondition.
  virtual Status Checkpoint() = 0;

  // Version of the current data snapshot: 0 before the first Load, 1
  // after it, +1 per committed batch. The replication protocol's
  // currency: a follower subscribes from its own data_version().
  virtual uint64_t data_version() const = 0;

  virtual EngineStats stats() const = 0;
  virtual PlanCacheStats plan_cache_stats() const = 0;

  // Whether Load() (or a durable open) attached data — the serving
  // precondition the server checks instead of poking at a store.
  virtual bool has_data() const = 0;
};

}  // namespace sqopt

#endif  // SQOPT_API_ENGINE_IFACE_H_

// INTERNAL: shared state behind the Engine pimpl. Included only by
// engine.cc, plan_cache.cc, prepared_query.cc, and the shard/ layer
// (which executes PlannedStatement plans directly) — not part of the
// public API.
//
// Thread-safety contract: after Open()/AddConstraint()/Recompile()
// complete, everything here is read-only on the query path except the
// atomic counters, the atomic index/retrieval meters inside the owned
// components, the mutex-guarded AccessStats, the internally-locked
// plan cache and worker pool, and the loaded-data slot. Load() IS safe
// to run concurrently with the read path: it publishes a fully-built
// LoadedData snapshot under data_mutex and readers pin the snapshot
// they started with.
#ifndef SQOPT_API_ENGINE_IMPL_H_
#define SQOPT_API_ENGINE_IMPL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "api/engine_options.h"
#include "api/mutation.h"
#include "api/plan_cache.h"
#include "api/serve.h"
#include "catalog/access_stats.h"
#include "catalog/schema.h"
#include "common/worker_pool.h"
#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "persist/wal.h"
#include "sqo/report.h"
#include "storage/object_store.h"

namespace sqopt::detail {

// Everything one Load() or one committed Apply() produced, published as
// one immutable snapshot. Readers (Execute / Prepare / cached plans)
// pin the snapshot they started with, so a concurrent reload or commit
// never swaps the store, the statistics, or the cost model out from
// under a running query. Apply() builds its snapshot as a copy-on-write
// sibling of the previous one (ObjectStore::CloneForWrite), so
// consecutive versions share the extents no commit touched.
struct LoadedData {
  std::shared_ptr<const ObjectStore> store;
  DatabaseStats db_stats;
  std::unique_ptr<const CostModel> cost_model;  // null in walkthrough mode
  // 1 for a fresh Load; +1 per committed Apply on the lineage.
  uint64_t version = 1;
  // Which Load() this snapshot descends from. Apply preserves it; a
  // reload starts a new lineage. Prepared plans follow the CURRENT
  // snapshot within their own lineage (so they observe commits) but
  // stick to their pinned snapshot across a reload — the documented
  // PreparedQuery contract.
  uint64_t lineage = 0;
};

// One caller's pending commit in the group-commit queue. Stack-owned
// by the submitting thread (Engine::Apply / ApplyGroup), which blocks
// until `done` — so a queued pointer is always valid. `result` is
// engaged by the group leader for every member of its group (success,
// per-batch typed failure, or the group-wide WAL error).
struct CommitRequest {
  const MutationBatch* batch = nullptr;
  std::optional<Result<ApplyOutcome>> result;
  bool done = false;  // guarded by EngineState::group_mutex
};

struct EngineState {
  EngineState(Schema s, EngineOptions opts)
      : schema(std::move(s)),
        catalog(&schema),
        access(schema.num_classes()),
        options(std::move(opts)),
        plan_cache(options.serve.cache_capacity) {}

  // EngineState lives on the heap behind a shared_ptr and is never
  // moved, so the internal schema/catalog pointer wiring stays valid.
  EngineState(const EngineState&) = delete;
  EngineState& operator=(const EngineState&) = delete;

  std::shared_ptr<const LoadedData> data_snapshot() const {
    std::lock_guard<std::mutex> lock(data_mutex);
    return data;
  }

  // The lazily-created shared worker pool, always sized by the
  // engine's configured serve.threads (SetServeOptions resets it so
  // the next use rebuilds at the new size; a per-batch thread override
  // never touches it — ExecuteBatch builds a private pool for that
  // batch instead). Batches AND morsel-parallel scans hold it via
  // shared_ptr, so a reset never pulls workers out from under work in
  // flight.
  std::shared_ptr<WorkerPool> GetMorselPool() const {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (pool == nullptr) {
      pool = std::make_shared<WorkerPool>(
          WorkerPool::ResolveThreads(options.serve.threads));
    }
    return pool;
  }

  Schema schema;
  ConstraintCatalog catalog;
  mutable AccessStats access;  // guarded by access_mutex on the query path
  EngineOptions options;

  // Published by Load()/Apply() under data_mutex; null until the first
  // Load().
  std::shared_ptr<const LoadedData> data;
  mutable std::mutex data_mutex;

  // Serializes snapshot producers (Load and Apply): a commit clones,
  // mutates, validates, and publishes under this lock, so writers never
  // race each other. Readers never take it — they pin `data`.
  mutable std::mutex commit_mutex;

  // Group-commit coordination (engine.cc, CommitThroughGroup): callers
  // queue CommitRequests under group_mutex; the caller whose first
  // request heads the queue becomes leader, sweeps the WHOLE queue
  // into one group, commits it under commit_mutex (one WAL append, one
  // fsync, one published snapshot), then marks every member done and
  // notifies. group_mutex is never held while commit_mutex is taken.
  std::mutex group_mutex;
  std::condition_variable group_cv;
  std::deque<CommitRequest*> commit_queue;  // guarded by group_mutex
  bool group_leader_active = false;         // guarded by group_mutex
  // Monotonic Load() counter feeding LoadedData::lineage. Guarded by
  // commit_mutex.
  uint64_t lineages = 0;

  // Durable attachment (Engine::Save / Open(dir)); both guarded by
  // commit_mutex. Null/empty on purely in-memory engines. When `wal`
  // is set, Apply appends the batch (CRC-framed, fsync'd per
  // options.serve.durability) BEFORE publishing its snapshot, and
  // Checkpoint folds the log into a fresh snapshot file. Load()
  // detaches: a wholesale data replacement invalidates the on-disk
  // lineage, so the caller must Save() again to re-attach.
  std::unique_ptr<persist::WalWriter> wal;
  std::string persist_dir;

  // Replication tap (Engine::SetCommitListener): invoked under
  // commit_mutex after every published commit group with
  // (first_version, surviving batches) — total order, no gaps.
  std::function<void(uint64_t, const std::vector<MutationBatch>&)>
      commit_listener;

  // Shared plan cache for Execute/Prepare (internally synchronized).
  mutable PlanCache plan_cache;

  // Lazily-created pool behind ExecuteBatch. Guarded by pool_mutex;
  // held as shared_ptr so a batch in flight keeps its pool alive while
  // a differently-sized replacement is swapped in.
  mutable std::shared_ptr<WorkerPool> pool;
  mutable std::mutex pool_mutex;

  mutable std::mutex access_mutex;

  mutable std::atomic<uint64_t> queries_parsed{0};
  mutable std::atomic<uint64_t> queries_executed{0};
  mutable std::atomic<uint64_t> queries_analyzed{0};
  mutable std::atomic<uint64_t> statements_prepared{0};
  mutable std::atomic<uint64_t> prepared_executions{0};
  mutable std::atomic<uint64_t> contradictions{0};
  mutable std::atomic<uint64_t> batches_served{0};
  mutable std::atomic<uint64_t> mutation_batches_applied{0};
  mutable std::atomic<uint64_t> mutation_ops_applied{0};
  mutable std::atomic<uint64_t> mutation_batches_rejected{0};
  mutable std::atomic<uint64_t> checkpoints{0};
  mutable std::atomic<uint64_t> wal_records_replayed{0};
};

// Execution context for one plan: parallel plans borrow the engine's
// shared pool, pinned via `pool_holder` for the duration of the call
// and never resized by a query (see GetMorselPool). Shared by the
// Engine execute paths and PreparedQuery::Execute.
inline ExecContext MakeExecContext(const EngineState& state,
                                   const Plan& plan,
                                   std::shared_ptr<WorkerPool>* pool_holder) {
  ExecContext ctx;
  if (plan.parallelism > 1) {
    *pool_holder = state.GetMorselPool();
    ctx.pool = pool_holder->get();
  }
  return ctx;
}

// Picks the snapshot a prepared plan should execute against: the
// CURRENT snapshot when it belongs to the same Load lineage the plan
// was built on (so cached plans and prepared statements observe
// committed Apply mutations), else the plan's own pinned snapshot (a
// reload must not retarget old handles — see PreparedQuery).
inline const LoadedData* ChooseExecData(
    const std::shared_ptr<const LoadedData>& current,
    const std::shared_ptr<const LoadedData>& pinned) {
  if (current != nullptr &&
      (pinned == nullptr || current->lineage == pinned->lineage)) {
    return current.get();
  }
  return pinned.get();
}

// One fully-prepared query: shared by PreparedQuery handles and by
// plan-cache entries. Immutable after construction (the execution
// counter aside), so one instance can serve any number of threads.
struct PreparedState {
  Query original;
  Query transformed;
  OptimizationReport report;
  bool empty_result = false;

  // The data snapshot the plan was built against (null when the engine
  // had no data at Prepare time — the handle then only replays the
  // analysis). Execution does NOT read through this pin: the Engine
  // execute paths and PreparedQuery::Execute rebind the plan to the
  // engine's CURRENT snapshot, so cached plans observe committed
  // mutations (plans are correct for any snapshot of the same schema —
  // only their cost choices age, which the replan threshold bounds).
  // The pin remains as the fallback when the engine state is gone and
  // to document provenance.
  std::shared_ptr<const LoadedData> data;
  std::optional<Plan> plan;  // engaged iff data && !empty_result

  mutable std::atomic<uint64_t> executions{0};
};

}  // namespace sqopt::detail

#endif  // SQOPT_API_ENGINE_IMPL_H_

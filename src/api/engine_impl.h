// INTERNAL: shared state behind the Engine pimpl. Included only by
// engine.cc and prepared_query.cc — not part of the public API.
//
// Thread-safety contract: after Open()/Load()/AddConstraint()/
// Recompile() complete, everything here is read-only on the query path
// except the atomic counters, the atomic index/retrieval meters inside
// the owned components, and the mutex-guarded AccessStats.
#ifndef SQOPT_API_ENGINE_IMPL_H_
#define SQOPT_API_ENGINE_IMPL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "api/engine_options.h"
#include "catalog/access_stats.h"
#include "catalog/schema.h"
#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "exec/plan.h"
#include "sqo/report.h"
#include "storage/object_store.h"

namespace sqopt::detail {

struct EngineState {
  EngineState(Schema s, EngineOptions opts)
      : schema(std::move(s)),
        catalog(&schema),
        access(schema.num_classes()),
        options(std::move(opts)) {}

  // EngineState lives on the heap behind a shared_ptr and is never
  // moved, so the internal schema/catalog pointer wiring stays valid.
  EngineState(const EngineState&) = delete;
  EngineState& operator=(const EngineState&) = delete;

  Schema schema;
  ConstraintCatalog catalog;
  mutable AccessStats access;  // guarded by access_mutex on the query path
  EngineOptions options;

  // Populated by Load(). `store` is shared so PreparedQuery handles
  // keep executing against the store they were planned on even if a
  // later Load() swaps it out.
  std::shared_ptr<const ObjectStore> store;
  DatabaseStats db_stats;
  std::unique_ptr<const CostModel> cost_model;

  mutable std::mutex access_mutex;

  mutable std::atomic<uint64_t> queries_parsed{0};
  mutable std::atomic<uint64_t> queries_executed{0};
  mutable std::atomic<uint64_t> queries_analyzed{0};
  mutable std::atomic<uint64_t> statements_prepared{0};
  mutable std::atomic<uint64_t> prepared_executions{0};
  mutable std::atomic<uint64_t> contradictions{0};
};

struct PreparedState {
  Query original;
  Query transformed;
  OptimizationReport report;
  bool empty_result = false;

  // The store the plan was built against (null when the engine had no
  // data at Prepare time — the handle then only replays the analysis).
  std::shared_ptr<const ObjectStore> store;
  std::optional<Plan> plan;  // engaged iff store && !empty_result

  mutable std::atomic<uint64_t> executions{0};
};

}  // namespace sqopt::detail

#endif  // SQOPT_API_ENGINE_IMPL_H_

// Configuration of an sqopt::Engine. One flat struct groups the knobs
// of every internal layer: the semantic optimizer (tag policy, match
// mode, queue discipline, budget), the constraint precompiler (closure
// materialization, grouping policy), and the cost model parameters.
// Defaults reproduce the paper's design end to end.
#ifndef SQOPT_API_ENGINE_OPTIONS_H_
#define SQOPT_API_ENGINE_OPTIONS_H_

#include "api/serve.h"
#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "sqo/options.h"

namespace sqopt {

struct EngineOptions {
  // Semantic-optimizer knobs (§3–§4): tag_policy, match_mode, queue,
  // transformation_budget, enable_class_elimination,
  // enable_contradiction_detection, enable_profitability_analysis.
  OptimizerOptions optimizer;

  // Constraint precompilation (§3): materialize_closure and the
  // grouping policy that drives per-query retrieval.
  PrecompileOptions precompile;

  // Cost model parameters shared by profitability analysis and the
  // measured ExecutionMeter::CostUnits conversion.
  CostModelParams cost_params;

  // When false the optimizer runs without a cost model even when data
  // is loaded: every optional predicate is retained and class
  // elimination applies whenever structurally legal — the paper's
  // walkthrough mode. (With no data loaded there is never a cost
  // model; statistics require a store.)
  bool use_cost_model = true;

  // Record per-class access frequencies on every query. They feed the
  // kLeastFrequentlyAccessed grouping policy at the next Recompile.
  bool record_access_stats = true;

  // Concurrent serving: ExecuteBatch worker threads, the shared
  // plan-cache capacity (cache_capacity = 0 turns the cache off and
  // every Execute pays the full parse/retrieve/plan pipeline), and the
  // intra-query morsel-parallelism knobs (parallelism, morsel_size)
  // that let a single query's scan fan out across the same pool.
  ServeOptions serve;
};

}  // namespace sqopt

#endif  // SQOPT_API_ENGINE_OPTIONS_H_

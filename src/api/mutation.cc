#include "api/mutation.h"

#include <utility>

namespace sqopt {

int64_t MutationBatch::Insert(ClassId class_id, Object object) {
  Mutation op;
  op.kind = Mutation::Kind::kInsert;
  op.class_id = class_id;
  op.object = std::move(object);
  ops_.push_back(std::move(op));
  // Handle -1-k for the k-th insert; Apply resolves it to the real row.
  return -1 - static_cast<int64_t>(num_inserts_++);
}

void MutationBatch::Update(ClassId class_id, int64_t row, AttrId attr_id,
                           Value value) {
  Mutation op;
  op.kind = Mutation::Kind::kUpdate;
  op.class_id = class_id;
  op.row = row;
  op.attr_id = attr_id;
  op.value = std::move(value);
  ops_.push_back(std::move(op));
}

void MutationBatch::Delete(ClassId class_id, int64_t row) {
  Mutation op;
  op.kind = Mutation::Kind::kDelete;
  op.class_id = class_id;
  op.row = row;
  ops_.push_back(std::move(op));
}

void MutationBatch::Link(RelId rel_id, int64_t row_a, int64_t row_b) {
  Mutation op;
  op.kind = Mutation::Kind::kLink;
  op.rel_id = rel_id;
  op.row_a = row_a;
  op.row_b = row_b;
  ops_.push_back(std::move(op));
}

void MutationBatch::Unlink(RelId rel_id, int64_t row_a, int64_t row_b) {
  Mutation op;
  op.kind = Mutation::Kind::kUnlink;
  op.rel_id = rel_id;
  op.row_a = row_a;
  op.row_b = row_b;
  ops_.push_back(std::move(op));
}

}  // namespace sqopt

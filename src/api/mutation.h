// The transactional write path's input and output types. A
// MutationBatch stages an ordered list of inserts / updates / deletes /
// links / unlinks; Engine::Apply commits the whole batch atomically
// against the current data snapshot (all ops validate and apply, or the
// store is untouched) and publishes the result as the next snapshot.
//
// Rows inserted by the batch can be referenced by LATER ops of the same
// batch through the negative handle Insert() returns, so one batch can
// create an object and immediately link or update it:
//
//   MutationBatch batch;
//   int64_t s = batch.Insert(supplier_class, supplier_obj);
//   int64_t c = batch.Insert(cargo_class, cargo_obj);
//   batch.Link(supplies_rel, s, c);
//   ApplyOutcome out = *engine.Apply(batch);
//   int64_t supplier_row = out.inserted_rows[0];  // resolved id of `s`
#ifndef SQOPT_API_MUTATION_H_
#define SQOPT_API_MUTATION_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "storage/object.h"
#include "types/value.h"

namespace sqopt {

// One staged operation. Row fields may hold a pending-insert handle
// (negative; see MutationBatch::Insert) anywhere a row id is expected.
struct Mutation {
  enum class Kind { kInsert, kUpdate, kDelete, kLink, kUnlink };

  Kind kind = Kind::kInsert;
  ClassId class_id = kInvalidClass;  // insert / update / delete
  int64_t row = -1;                  // update / delete
  AttrId attr_id = kInvalidAttr;     // update
  Value value;                       // update
  Object object;                     // insert
  RelId rel_id = kInvalidRel;        // link / unlink
  int64_t row_a = -1;                // link / unlink (class `a` side)
  int64_t row_b = -1;                // link / unlink (class `b` side)
};

class MutationBatch {
 public:
  // Stages an insert and returns a handle (< 0) usable as a row id in
  // later ops of this batch. Apply resolves handle -1-k to the row id
  // the k-th staged insert produced (also reported in
  // ApplyOutcome::inserted_rows) and rejects the batch if the handle is
  // used where a row of a DIFFERENT class is expected.
  int64_t Insert(ClassId class_id, Object object);

  // Stages an attribute overwrite of a live row (or pending insert).
  void Update(ClassId class_id, int64_t row, AttrId attr_id, Value value);

  // Stages a tombstone delete; the row's relationship instances are
  // removed with it.
  void Delete(ClassId class_id, int64_t row);

  // Stages creating / removing a relationship instance. `row_a` /
  // `row_b` belong to the relationship's class `a` / `b` respectively.
  void Link(RelId rel_id, int64_t row_a, int64_t row_b);
  void Unlink(RelId rel_id, int64_t row_a, int64_t row_b);

  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  size_t num_inserts() const { return num_inserts_; }
  const std::vector<Mutation>& ops() const { return ops_; }

 private:
  std::vector<Mutation> ops_;
  size_t num_inserts_ = 0;
};

// What one committed Apply produced.
struct ApplyOutcome {
  // Version of the published snapshot (Load starts a lineage at 1;
  // every commit increments it).
  uint64_t snapshot_version = 0;

  // Resolved row ids of the batch's inserts, in staging order.
  std::vector<int64_t> inserted_rows;

  // Ops applied, by kind.
  size_t inserts = 0;
  size_t updates = 0;
  size_t deletes = 0;
  size_t links = 0;
  size_t unlinks = 0;

  // (constraint, tuple) combinations the pre-commit validator checked.
  uint64_t constraint_checks = 0;

  // Statistics drift the commit caused: the max, over touched classes
  // and relationships, of changed rows (or pairs) as a fraction of the
  // pre-commit cardinality. Compared against
  // ServeOptions::replan_threshold to decide cache invalidation.
  double stats_drift = 0.0;

  // True when the drift crossed the threshold and the plan cache was
  // dropped (the next Execute of any query re-plans).
  bool plan_cache_invalidated = false;

  // Number of batches the commit group that carried this batch
  // published together (1 when the batch committed alone). The group
  // shares one WAL append, one fsync, and one snapshot publish.
  size_t group_size = 1;

  // Wall-clock microseconds of the group's commit phases, shared by
  // every member of the group: the copy-on-write clone, the WAL append
  // (fsync included), and the fsync alone (0 with durability.fsync
  // off, or when no WAL is attached). Bench-attribution hooks.
  uint64_t clone_micros = 0;
  uint64_t wal_micros = 0;
  uint64_t fsync_micros = 0;
};

}  // namespace sqopt

#endif  // SQOPT_API_MUTATION_H_

#include "api/plan_cache.h"

#include <functional>

#include "api/engine_impl.h"

namespace sqopt::detail {

namespace {
constexpr size_t kMaxShards = 8;
}  // namespace

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) return;
  num_shards_ = capacity_ < kMaxShards ? capacity_ : kMaxShards;
  per_shard_capacity_ = (capacity_ + num_shards_ - 1) / num_shards_;
  shards_.reserve(num_shards_);
  alias_shards_.reserve(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    alias_shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(
    std::vector<std::unique_ptr<Shard>>& shards, std::string_view key) {
  return *shards[std::hash<std::string_view>{}(key) % num_shards_];
}

std::shared_ptr<const PreparedState> PlanCache::LookupIn(
    std::vector<std::unique_ptr<Shard>>& shards, std::string_view key) {
  Shard& shard = ShardFor(shards, key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

std::shared_ptr<const PreparedState> PlanCache::Lookup(std::string_view key) {
  if (!enabled()) return nullptr;
  std::shared_ptr<const PreparedState> entry = LookupIn(shards_, key);
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

std::shared_ptr<const PreparedState> PlanCache::LookupText(
    std::string_view text) {
  if (!enabled()) return nullptr;
  std::shared_ptr<const PreparedState> entry = LookupIn(alias_shards_, text);
  // Only a hit is counted: on null the caller parses and falls through
  // to the canonical Lookup, which scores this query exactly once.
  if (entry != nullptr) hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void PlanCache::InsertIn(std::vector<std::unique_ptr<Shard>>& shards,
                         const std::string& key,
                         std::shared_ptr<const PreparedState> entry,
                         uint64_t epoch_at_lookup, bool count_evictions) {
  Shard& shard = ShardFor(shards, key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // A reload/recompile invalidated the cache while this plan was being
  // built: it may reference the dropped store, so never cache it. The
  // epoch is re-checked under the shard lock so Invalidate (which takes
  // every shard lock) cannot interleave with this insert.
  if (epoch_.load(std::memory_order_acquire) != epoch_at_lookup) return;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    if (count_evictions) evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(shard.lru.front().first, shard.lru.begin());
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PreparedState> entry,
                       uint64_t epoch_at_lookup) {
  if (!enabled() || entry == nullptr) return;
  InsertIn(shards_, key, std::move(entry), epoch_at_lookup,
           /*count_evictions=*/true);
}

void PlanCache::InsertAlias(const std::string& text,
                            std::shared_ptr<const PreparedState> entry,
                            uint64_t epoch_at_lookup) {
  if (!enabled() || entry == nullptr) return;
  InsertIn(alias_shards_, text, std::move(entry), epoch_at_lookup,
           /*count_evictions=*/false);
}

void PlanCache::Invalidate() {
  if (!enabled()) return;
  // Hold ALL shard locks while bumping the epoch so no miss-path insert
  // (which checks the epoch under its shard lock) can slip a
  // stale-epoch entry in after its shard was cleared.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_ * 2);
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  for (auto& shard : alias_shards_) locks.emplace_back(shard->mu);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    shard->index.clear();
    shard->lru.clear();
  }
  for (auto& shard : alias_shards_) {
    shard->index.clear();
    shard->lru.clear();
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

PlanCacheStats PlanCache::stats(bool count_entries) const {
  PlanCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.capacity = capacity_;
  out.shards = num_shards_;
  if (!count_entries) return out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.entries += shard->lru.size();
  }
  for (const auto& shard : alias_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.aliases += shard->lru.size();
  }
  return out;
}

}  // namespace sqopt::detail

// A sharded LRU cache of fully-prepared queries, shared by every
// Engine::Execute call and by Engine::Prepare. Entries are the same
// detail::PreparedState a PreparedQuery handle wraps: the parsed query,
// its constraint retrieval + semantic transformation, and the physical
// plan, pinned to the data snapshot they were planned against. Keys are
// the canonicalized query text (CanonicalQueryKey), so textual variants
// of one query coalesce onto one entry.
//
// Concurrency: every shard is guarded by its own mutex; the counters
// are atomics. Lookup/Insert/Invalidate are safe from any number of
// threads. Invalidation is epoch-based: Invalidate() clears the shards
// and bumps the epoch, and an Insert carrying a stale epoch (taken
// before a concurrent invalidation) is dropped instead of resurrecting
// a plan built against dropped data.
#ifndef SQOPT_API_PLAN_CACHE_H_
#define SQOPT_API_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sqopt {

// Snapshot of the cache counters; also embedded in QueryOutcome so a
// caller can watch hit rates query by query.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // LRU displacements (capacity pressure)
  uint64_t invalidations = 0;  // whole-cache clears (reloads, recompiles)
  size_t entries = 0;          // currently cached plans (canonical keys)
  size_t aliases = 0;          // raw-text aliases onto those plans
  size_t capacity = 0;         // 0 = caching disabled
  size_t shards = 0;
};

namespace detail {

struct PreparedState;

class PlanCache {
 public:
  // `capacity` is the total entry budget across shards (rounded up to a
  // multiple of the shard count); 0 disables the cache entirely.
  explicit PlanCache(size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  bool enabled() const { return capacity_ > 0; }

  // The current invalidation epoch. Read it BEFORE building a plan on
  // the miss path and hand it back to Insert: if a reload invalidated
  // the cache in between, the insert is dropped.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Returns the cached entry (refreshing its LRU position) or null.
  // Counts a hit or a miss; on a disabled cache returns null without
  // counting.
  std::shared_ptr<const PreparedState> Lookup(std::string_view key);

  // The serving fast path: an exact raw-text match skips parsing AND
  // canonicalization. Counts a hit when found; a miss is NOT counted
  // here (the caller falls through to the canonical Lookup, which
  // counts exactly once per query).
  std::shared_ptr<const PreparedState> LookupText(std::string_view text);

  // Caches `entry` under `key` unless the epoch moved since
  // `epoch_at_lookup` (a concurrent invalidation) or the cache is
  // disabled. Replaces an existing entry for the same key; evicts the
  // shard's LRU entry when the shard is full.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedState> entry,
              uint64_t epoch_at_lookup);

  // Registers `text` as a raw-text alias resolving to `entry` (same
  // epoch discipline as Insert). Aliases live in their own LRU shards
  // with the same per-shard budget, so alias churn never evicts
  // canonical plans.
  void InsertAlias(const std::string& text,
                   std::shared_ptr<const PreparedState> entry,
                   uint64_t epoch_at_lookup);

  // Drops every entry and bumps the epoch. Called on Load (data
  // reload), AddConstraint/Recompile (catalog change), and
  // SetOptimizerOptions (plans depend on the optimizer knobs).
  void Invalidate();

  // `count_entries` walks every shard under its lock to count live
  // entries/aliases; the per-query outcome snapshot passes false and
  // reports the atomic counters only.
  PlanCacheStats stats(bool count_entries = true) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map's string_view keys point into
    // the list nodes' strings (stable: list nodes never move).
    std::list<std::pair<std::string, std::shared_ptr<const PreparedState>>>
        lru;
    std::unordered_map<
        std::string_view,
        std::list<std::pair<std::string,
                            std::shared_ptr<const PreparedState>>>::iterator>
        index;
  };

  Shard& ShardFor(std::vector<std::unique_ptr<Shard>>& shards,
                  std::string_view key);
  std::shared_ptr<const PreparedState> LookupIn(
      std::vector<std::unique_ptr<Shard>>& shards, std::string_view key);
  void InsertIn(std::vector<std::unique_ptr<Shard>>& shards,
                const std::string& key,
                std::shared_ptr<const PreparedState> entry,
                uint64_t epoch_at_lookup, bool count_evictions);

  size_t capacity_ = 0;
  size_t num_shards_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Shard>> alias_shards_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace detail
}  // namespace sqopt

#endif  // SQOPT_API_PLAN_CACHE_H_

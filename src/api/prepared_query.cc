#include "api/prepared_query.h"

#include "api/engine.h"
#include "api/engine_impl.h"
#include "common/worker_pool.h"
#include "exec/executor.h"

namespace sqopt {

namespace {

const Query& EmptyQuery() {
  static const Query* kEmpty = new Query();
  return *kEmpty;
}

const OptimizationReport& EmptyReport() {
  static const OptimizationReport* kEmpty = new OptimizationReport();
  return *kEmpty;
}

}  // namespace

Result<QueryOutcome> PreparedQuery::Execute() const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition(
        "invalid PreparedQuery: obtain handles from Engine::Prepare");
  }
  const detail::PreparedState& prepared = *state_;

  QueryOutcome out;
  out.original = prepared.original;
  out.transformed = prepared.transformed;
  out.report = prepared.report;

  if (prepared.empty_result) {
    out.answered_without_database = true;
    if (engine_ != nullptr) {
      engine_->contradictions.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Execute against the engine's CURRENT snapshot when it descends
    // from the same Load as this plan, so prepared statements observe
    // committed Apply() mutations; across a full reload (new lineage)
    // the handle keeps the snapshot it was planned on.
    std::shared_ptr<const detail::LoadedData> data =
        engine_ != nullptr ? engine_->data_snapshot() : nullptr;
    const detail::LoadedData* exec_data =
        detail::ChooseExecData(data, prepared.data);
    if (exec_data == nullptr) {
      return Status::FailedPrecondition(
          "prepared without data: Engine::Load must run before Prepare "
          "for the handle to be executable");
    }
    // Parallel plans borrow the engine's shared pool; the handle owns
    // the engine state, so the pool outlives this call even if the
    // Engine object is gone.
    ExecContext context;
    std::shared_ptr<WorkerPool> pool_holder;
    if (engine_ != nullptr) {
      context = detail::MakeExecContext(*engine_, *prepared.plan,
                                        &pool_holder);
    }
    SQOPT_ASSIGN_OR_RETURN(
        out.rows, ExecutePlan(*exec_data->store, *prepared.plan,
                              &out.meter, context));
    out.executed = true;
  }

  prepared.executions.fetch_add(1, std::memory_order_relaxed);
  if (engine_ != nullptr) {
    engine_->prepared_executions.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

const Query& PreparedQuery::original() const {
  return state_ == nullptr ? EmptyQuery() : state_->original;
}

const Query& PreparedQuery::transformed() const {
  return state_ == nullptr ? EmptyQuery() : state_->transformed;
}

const OptimizationReport& PreparedQuery::report() const {
  return state_ == nullptr ? EmptyReport() : state_->report;
}

bool PreparedQuery::answered_without_database() const {
  return state_ != nullptr && state_->empty_result;
}

uint64_t PreparedQuery::executions() const {
  return state_ == nullptr
             ? 0
             : state_->executions.load(std::memory_order_relaxed);
}

}  // namespace sqopt

// A prepared-query handle: the parsed query, its relevant-constraint
// retrieval, the semantic transformation, and the physical plan are all
// computed once at Engine::Prepare; Execute() then replays only the
// plan against the store. This is the high-throughput path: repeated
// execution skips parse + retrieval + transformation + planning.
//
// Handles are cheap to copy (two shared pointers), safe to execute
// from any number of threads, and keep the engine internals they were
// prepared against alive — destroying the Engine does not invalidate
// outstanding handles.
#ifndef SQOPT_API_PREPARED_QUERY_H_
#define SQOPT_API_PREPARED_QUERY_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "query/query.h"
#include "sqo/report.h"

namespace sqopt {

struct QueryOutcome;
class Engine;

namespace detail {
struct EngineState;
struct PreparedState;
}  // namespace detail

class PreparedQuery {
 public:
  // Default-constructed handles are invalid; obtain real ones from
  // Engine::Prepare.
  PreparedQuery() = default;

  bool valid() const { return state_ != nullptr; }

  // Replays the cached plan with a fresh meter. No parsing, constraint
  // retrieval, transformation, or planning happens here. Const and
  // thread-safe.
  Result<QueryOutcome> Execute() const;

  // The query as parsed at Prepare time.
  const Query& original() const;
  // The semantically transformed form the plan was built from.
  const Query& transformed() const;
  // The optimization trace captured at Prepare time.
  const OptimizationReport& report() const;
  // True if the optimizer proved the result empty; Execute() then
  // returns zero rows without touching the store.
  bool answered_without_database() const;
  // Number of completed Execute() calls on this statement.
  uint64_t executions() const;

 private:
  friend class Engine;
  PreparedQuery(std::shared_ptr<const detail::EngineState> engine,
                std::shared_ptr<const detail::PreparedState> state)
      : engine_(std::move(engine)), state_(std::move(state)) {}

  std::shared_ptr<const detail::EngineState> engine_;
  std::shared_ptr<const detail::PreparedState> state_;
};

}  // namespace sqopt

#endif  // SQOPT_API_PREPARED_QUERY_H_

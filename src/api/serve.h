// The concurrent batch-serving layer behind Engine::ExecuteBatch: the
// knobs (ServeOptions), the aggregate throughput meter (BatchStats),
// and a small shared worker pool (detail::WorkerPool). The pool is
// created lazily on the first batch and lives with the engine state;
// batches enqueue tasks and block until their own tasks drain, so any
// number of ExecuteBatch calls can share one pool.
#ifndef SQOPT_API_SERVE_H_
#define SQOPT_API_SERVE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sqopt {

struct ServeOptions {
  // Worker threads for ExecuteBatch. 0 = hardware concurrency, clamped
  // to [1, 16].
  int threads = 0;

  // Total plan-cache entry budget (0 disables the cache). Consumed at
  // Engine::Open; changing it on a live engine has no effect.
  size_t cache_capacity = 256;
};

// Aggregate meter for one ExecuteBatch call.
struct BatchStats {
  size_t queries = 0;
  size_t succeeded = 0;  // per-query Result was ok (contradictions count)
  size_t failed = 0;     // parse/validation/execution errors
  int threads = 0;       // workers the batch actually ran on

  uint64_t wall_micros = 0;  // submit-to-drain wall time
  double qps = 0.0;          // queries / wall seconds

  // Per-query latency distribution (successful and failed alike).
  uint64_t p50_micros = 0;
  uint64_t p95_micros = 0;

  // Plan-cache traffic attributable to this batch's successful queries.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses), 0 when empty
};

namespace detail {

// Fixed-size pool: a task queue, `threads` workers, FIFO dispatch.
// Submit() never blocks; the caller synchronizes completion itself
// (ExecuteBatch counts finished tasks under its own latch).
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();  // drains the queue, then joins

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  void Submit(std::function<void()> task);

  // ServeOptions::threads resolved against the hardware.
  static int ResolveThreads(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace detail
}  // namespace sqopt

#endif  // SQOPT_API_SERVE_H_

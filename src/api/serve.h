// The concurrent serving layer behind Engine::ExecuteBatch and the
// morsel-parallel executor: the knobs (ServeOptions) and the aggregate
// throughput meter (BatchStats). The shared WorkerPool itself lives in
// common/worker_pool.{h,cc} so the exec/ layer can fan intra-query
// morsels across the same pool batches use, without a layering cycle.
// The pool is created lazily on
// first use and lives with the engine state; batches enqueue tasks and
// block until their own tasks drain, so any number of ExecuteBatch
// calls — and any number of parallel scans inside them — can share one
// pool.
#ifndef SQOPT_API_SERVE_H_
#define SQOPT_API_SERVE_H_

#include <cstddef>
#include <cstdint>

#include "storage/morsel.h"

namespace sqopt {

// Durability knobs for engines attached to a persistence directory
// (Engine::Save / Engine::Open(dir)); ignored on purely in-memory
// engines. See DESIGN.md "Durability".
struct DurabilityOptions {
  // fsync the write-ahead log on every committed Apply before the
  // snapshot is published. Off skips only the flush (the record is
  // still written), trading durability of the last few commits against
  // an OS crash for commit latency; a process kill loses nothing
  // either way.
  bool fsync = true;
};

struct ServeOptions {
  // Worker threads for ExecuteBatch and for morsel fan-out. 0 =
  // hardware concurrency, clamped to [1, 16].
  int threads = 0;

  // Total plan-cache entry budget (0 disables the cache). Consumed at
  // Engine::Open; changing it on a live engine has no effect.
  size_t cache_capacity = 256;

  // Intra-query parallelism: the ceiling on how many workers one
  // query's driving scan (extent scan or index range scan) may fan its
  // morsels across. 1 = sequential execution (default); 0 = the
  // resolved thread count. The planner chooses the actual degree per
  // plan — and keeps small scans sequential — via the cost model's
  // ChooseScanParallelism, so raising this never pessimizes cheap
  // queries.
  int parallelism = 1;

  // Driving-step candidates per morsel for parallel scans.
  // Non-positive falls back to the same default.
  int64_t morsel_size = kDefaultMorselSize;

  // Replan threshold for the write path: Engine::Apply drops the plan
  // cache only when a commit's statistics drift — the fraction of a
  // touched class's rows (or a touched relationship's pairs) the batch
  // changed — reaches this value. Below it, cached plans survive and
  // simply execute against the new snapshot (plans are correct for any
  // snapshot of the same schema; the threshold trades planning
  // optimality for cache hits). 0 re-plans on every commit.
  double replan_threshold = 0.15;

  // WAL flushing for durable engines (see DurabilityOptions).
  DurabilityOptions durability;
};

// Aggregate meter for one ExecuteBatch call.
struct BatchStats {
  size_t queries = 0;
  size_t succeeded = 0;  // per-query Result was ok (contradictions count)
  size_t failed = 0;     // parse/validation/execution errors
  int threads = 0;       // workers the batch actually ran on

  uint64_t wall_micros = 0;  // submit-to-drain wall time
  double qps = 0.0;          // queries / wall seconds

  // Per-query latency distribution (successful and failed alike).
  uint64_t p50_micros = 0;
  uint64_t p95_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t max_micros = 0;

  // Plan-cache traffic attributable to this batch's successful queries.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;  // hits / (hits + misses), 0 when empty
};

}  // namespace sqopt

#endif  // SQOPT_API_SERVE_H_

#include "baseline/best_first_optimizer.h"

#include <algorithm>
#include <queue>
#include <set>

#include "expr/implication.h"
#include "query/query_printer.h"

namespace sqopt {

namespace {

struct SearchNode {
  Query query;
  double cost;
};
struct NodeOrder {
  bool operator()(const SearchNode& a, const SearchNode& b) const {
    return a.cost > b.cost;  // min-heap on estimated cost
  }
};

bool ContainsPredicate(const Query& query, const Predicate& p) {
  const auto& list = p.is_attr_attr() ? query.join_predicates
                                      : query.selective_predicates;
  return std::find(list.begin(), list.end(), p) != list.end();
}

}  // namespace

Result<BestFirstResult> BestFirstOptimizer::Optimize(
    const Query& query) const {
  SQOPT_RETURN_IF_ERROR(ValidateQuery(*schema_, query));
  if (!catalog_->precompiled()) {
    return Status::FailedPrecondition(
        "ConstraintCatalog::Precompile must run before Optimize");
  }
  if (cost_model_ == nullptr) {
    return Status::InvalidArgument(
        "best-first search requires a cost model");
  }

  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(query.classes);

  BestFirstResult result;
  result.query = query;
  result.best_cost = cost_model_->QueryCost(query);

  std::priority_queue<SearchNode, std::vector<SearchNode>, NodeOrder>
      frontier;
  std::set<std::string> seen;  // canonical printed form

  auto canonical = [&](const Query& q) {
    Query copy = q;
    copy.Normalize();
    return PrintQuery(*schema_, copy);
  };

  frontier.push(SearchNode{query, result.best_cost});
  seen.insert(canonical(query));
  result.states_generated = 1;

  while (!frontier.empty()) {
    if (result.states_explored >= max_states_) {
      result.exhausted_budget = true;
      break;
    }
    SearchNode node = frontier.top();
    frontier.pop();
    ++result.states_explored;

    if (node.cost < result.best_cost) {
      result.best_cost = node.cost;
      result.query = node.query;
    }

    // Successors: one transformation per applicable constraint.
    std::vector<Predicate> preds = node.query.AllPredicates();
    for (ConstraintId id : relevant) {
      const HornClause& clause = catalog_->clause(id);
      bool fireable = true;
      for (const Predicate& a : clause.antecedents()) {
        if (!ConjunctionImplies(preds, a)) {
          fireable = false;
          break;
        }
      }
      if (!fireable) continue;
      const Predicate& consequent = clause.consequent();

      Query succ = node.query;
      if (ContainsPredicate(succ, consequent)) {
        auto& list = consequent.is_attr_attr() ? succ.join_predicates
                                               : succ.selective_predicates;
        list.erase(std::remove(list.begin(), list.end(), consequent),
                   list.end());
      } else {
        if (consequent.is_attr_attr()) {
          succ.join_predicates.push_back(consequent);
        } else {
          succ.selective_predicates.push_back(consequent);
        }
      }
      std::string key = canonical(succ);
      if (!seen.insert(key).second) continue;
      double cost = cost_model_->QueryCost(succ);
      frontier.push(SearchNode{std::move(succ), cost});
      ++result.states_generated;
    }
  }
  return result;
}

}  // namespace sqopt

// A bounded best-first search over transformation sequences, in the
// spirit of Shekhar, Srivastava & Dutta [SSD88] (cited in §1): each
// state is a physically rewritten query; successors apply one
// elimination or introduction; states are explored cheapest-estimated-
// cost first, stopping on a node budget. Exists as a second comparison
// point: it can match the delayed-choice result but at exponential
// worst-case node counts, which bench_baseline_comparison quantifies.
#ifndef SQOPT_BASELINE_BEST_FIRST_OPTIMIZER_H_
#define SQOPT_BASELINE_BEST_FIRST_OPTIMIZER_H_

#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "query/query.h"

namespace sqopt {

struct BestFirstResult {
  Query query;
  double best_cost = 0.0;
  size_t states_explored = 0;
  size_t states_generated = 0;
  bool exhausted_budget = false;
};

class BestFirstOptimizer {
 public:
  BestFirstOptimizer(const Schema* schema, const ConstraintCatalog* catalog,
                     const CostModelInterface* cost_model,
                     size_t max_states = 256)
      : schema_(schema),
        catalog_(catalog),
        cost_model_(cost_model),
        max_states_(max_states) {}

  Result<BestFirstResult> Optimize(const Query& query) const;

 private:
  const Schema* schema_;
  const ConstraintCatalog* catalog_;
  const CostModelInterface* cost_model_;
  size_t max_states_;
};

}  // namespace sqopt

#endif  // SQOPT_BASELINE_BEST_FIRST_OPTIMIZER_H_

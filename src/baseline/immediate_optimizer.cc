#include "baseline/immediate_optimizer.h"

#include <algorithm>

#include "expr/implication.h"

namespace sqopt {

namespace {

bool ContainsPredicate(const Query& query, const Predicate& p) {
  const auto& list = p.is_attr_attr() ? query.join_predicates
                                      : query.selective_predicates;
  return std::find(list.begin(), list.end(), p) != list.end();
}

void AddPredicate(Query* query, const Predicate& p) {
  if (p.is_attr_attr()) {
    query->join_predicates.push_back(p);
  } else {
    query->selective_predicates.push_back(p);
  }
}

void RemovePredicate(Query* query, const Predicate& p) {
  auto& list = p.is_attr_attr() ? query->join_predicates
                                : query->selective_predicates;
  list.erase(std::remove(list.begin(), list.end(), p), list.end());
}

// All antecedents implied by the query's current predicate set.
bool AntecedentsPresent(const HornClause& clause, const Query& query) {
  std::vector<Predicate> preds = query.AllPredicates();
  for (const Predicate& a : clause.antecedents()) {
    if (!ConjunctionImplies(preds, a)) return false;
  }
  return true;
}

}  // namespace

Result<ImmediateResult> ImmediateApplyOptimizer::Optimize(
    const Query& query) const {
  std::vector<ConstraintId> order =
      catalog_->RelevantForQuery(query.classes);
  return OptimizeWithOrder(query, order);
}

Result<ImmediateResult> ImmediateApplyOptimizer::OptimizeWithOrder(
    const Query& query, const std::vector<ConstraintId>& order) const {
  SQOPT_RETURN_IF_ERROR(ValidateQuery(*schema_, query));
  if (!catalog_->precompiled()) {
    return Status::FailedPrecondition(
        "ConstraintCatalog::Precompile must run before Optimize");
  }

  ImmediateResult result;
  result.query = query;

  // Fixpoint over passes: a pass applies every transformation that is
  // applicable AND deemed profitable at the moment it is examined.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.passes;
    for (ConstraintId id : order) {
      const HornClause& clause = catalog_->clause(id);
      if (!AntecedentsPresent(clause, result.query)) continue;
      const Predicate& consequent = clause.consequent();

      if (ContainsPredicate(result.query, consequent)) {
        // Candidate: restriction elimination.
        ++result.transformations_considered;
        Query after = result.query;
        RemovePredicate(&after, consequent);
        if (cost_model_ == nullptr ||
            cost_model_->QueryCost(after) <=
                cost_model_->QueryCost(result.query)) {
          result.query = std::move(after);
          ++result.transformations_applied;
          changed = true;
        }
      } else {
        // Candidate: restriction/index introduction. Skip if already
        // implied outright (nothing to gain).
        ++result.transformations_considered;
        if (ConjunctionImplies(result.query.AllPredicates(), consequent)) {
          continue;
        }
        Query after = result.query;
        AddPredicate(&after, consequent);
        if (cost_model_ != nullptr &&
            cost_model_->QueryCost(after) <
                cost_model_->QueryCost(result.query)) {
          result.query = std::move(after);
          ++result.transformations_applied;
          changed = true;
        }
      }
    }
    // Guard against elimination/introduction ping-pong: once passes
    // exceed the constraint count, stop (each constraint can usefully
    // apply at most once).
    if (result.passes > order.size() + 1) break;
  }

  // Class elimination, same structural rule as the core optimizer.
  bool eliminated = true;
  while (eliminated && result.query.classes.size() > 1) {
    eliminated = false;
    for (ClassId id : result.query.classes) {
      if (result.query.ProjectsFrom(id)) continue;
      if (result.query.RelationshipDegree(id, *schema_) != 1) continue;
      // Any remaining predicate on the class blocks elimination in this
      // baseline (it has no tag information to know better).
      bool has_pred = false;
      for (const Predicate& p : result.query.AllPredicates()) {
        for (ClassId c : p.ReferencedClasses()) {
          if (c == id) has_pred = true;
        }
      }
      if (has_pred) continue;
      Query after = result.query;
      after.classes.erase(
          std::remove(after.classes.begin(), after.classes.end(), id),
          after.classes.end());
      after.relationships.erase(
          std::remove_if(after.relationships.begin(),
                         after.relationships.end(),
                         [&](RelId rel_id) {
                           return schema_->relationship(rel_id).Involves(
                               id);
                         }),
          after.relationships.end());
      if (cost_model_ == nullptr ||
          cost_model_->QueryCost(after) <=
              cost_model_->QueryCost(result.query)) {
        result.query = std::move(after);
        eliminated = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace sqopt

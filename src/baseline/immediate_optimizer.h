// The "straight-forward approach" of Section 4: walk the relevant
// constraints in a fixed order, evaluate each possible transformation's
// profitability with the cost model, and if profitable apply it to the
// query IMMEDIATELY (physically rewriting it). Because an applied
// transformation can preclude later ones — eliminating an antecedent
// predicate disables the constraints it would have fired — the outcome
// depends on constraint order. This is the paper's foil: the delayed-
// choice algorithm is guaranteed to do at least as well.
#ifndef SQOPT_BASELINE_IMMEDIATE_OPTIMIZER_H_
#define SQOPT_BASELINE_IMMEDIATE_OPTIMIZER_H_

#include <vector>

#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "query/query.h"

namespace sqopt {

struct ImmediateResult {
  Query query;
  size_t transformations_applied = 0;
  size_t transformations_considered = 0;
  size_t passes = 0;
};

class ImmediateApplyOptimizer {
 public:
  ImmediateApplyOptimizer(const Schema* schema,
                          const ConstraintCatalog* catalog,
                          const CostModelInterface* cost_model)
      : schema_(schema), catalog_(catalog), cost_model_(cost_model) {}

  // Processes constraints in catalog order.
  Result<ImmediateResult> Optimize(const Query& query) const;

  // Processes constraints in the caller-supplied order (a permutation
  // of the relevant constraint list) — used to demonstrate order
  // sensitivity.
  Result<ImmediateResult> OptimizeWithOrder(
      const Query& query, const std::vector<ConstraintId>& order) const;

 private:
  const Schema* schema_;
  const ConstraintCatalog* catalog_;
  const CostModelInterface* cost_model_;
};

}  // namespace sqopt

#endif  // SQOPT_BASELINE_IMMEDIATE_OPTIMIZER_H_

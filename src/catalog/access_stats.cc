#include "catalog/access_stats.h"

#include <cassert>

namespace sqopt {

ClassId AccessStats::LeastFrequent(
    const std::vector<ClassId>& candidates) const {
  assert(!candidates.empty());
  ClassId best = candidates[0];
  for (ClassId id : candidates) {
    if (counts_[id] < counts_[best] ||
        (counts_[id] == counts_[best] && id < best)) {
      best = id;
    }
  }
  return best;
}

}  // namespace sqopt

// Per-class access frequency statistics. Section 3 of the paper uses
// these to assign each semantic constraint to the group of its least
// frequently accessed class, so that constraints over rarely-queried
// classes are rarely fetched.
#ifndef SQOPT_CATALOG_ACCESS_STATS_H_
#define SQOPT_CATALOG_ACCESS_STATS_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"

namespace sqopt {

class AccessStats {
 public:
  explicit AccessStats(size_t num_classes) : counts_(num_classes, 0) {}

  // Records one access (one query referencing the class).
  void RecordAccess(ClassId id) { counts_[id] += 1; }

  // Records that a query referenced every class in `classes`.
  void RecordQuery(const std::vector<ClassId>& classes) {
    for (ClassId id : classes) RecordAccess(id);
  }

  uint64_t count(ClassId id) const { return counts_[id]; }
  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts_) t += c;
    return t;
  }

  // The least frequently accessed class among `candidates`; ties broken
  // by smaller class id for determinism. Requires non-empty candidates.
  ClassId LeastFrequent(const std::vector<ClassId>& candidates) const;

  // Overwrites the counter for a class (used by tests / what-if drills).
  void SetCount(ClassId id, uint64_t value) { counts_[id] = value; }

  void Reset() {
    for (uint64_t& c : counts_) c = 0;
  }

 private:
  std::vector<uint64_t> counts_;
};

}  // namespace sqopt

#endif  // SQOPT_CATALOG_ACCESS_STATS_H_

#include "catalog/schema.h"

#include <sstream>

#include "common/string_util.h"

namespace sqopt {

ClassId Schema::FindClass(std::string_view name) const {
  auto it = class_by_name_.find(std::string(name));
  return it == class_by_name_.end() ? kInvalidClass : it->second;
}

RelId Schema::FindRelationship(std::string_view name) const {
  auto it = rel_by_name_.find(std::string(name));
  return it == rel_by_name_.end() ? kInvalidRel : it->second;
}

AttrRef Schema::FindAttribute(ClassId class_id,
                              std::string_view attr_name) const {
  ClassId cur = class_id;
  while (cur != kInvalidClass) {
    const ObjectClass& oc = classes_[cur];
    for (size_t i = 0; i < oc.attributes.size(); ++i) {
      if (oc.attributes[i].name == attr_name) {
        // Attribute identity is (queried class, declaring slot): the
        // declaring class's slot index is unique along the chain because
        // SchemaBuilder rejects shadowed names.
        return AttrRef{class_id, static_cast<AttrId>(
                                     EncodeSlot(class_id, cur, i))};
      }
    }
    cur = oc.parent;
  }
  return AttrRef{};
}

// Attribute ids encode (declaring class, slot) so that inherited
// attributes resolve to the declaring class's metadata while keeping the
// queried class in AttrRef::class_id. Layout: decl_class * 4096 + slot.
// 4096 attributes per class is far beyond any realistic schema.
namespace {
constexpr int32_t kSlotBits = 12;
constexpr int32_t kSlotMask = (1 << kSlotBits) - 1;
}  // namespace

int32_t Schema::EncodeSlot(ClassId /*queried*/, ClassId declaring,
                           size_t slot) {
  return (declaring << kSlotBits) | static_cast<int32_t>(slot);
}

const Attribute& Schema::attribute(const AttrRef& ref) const {
  ClassId declaring = ref.attr_id >> kSlotBits;
  int32_t slot = ref.attr_id & kSlotMask;
  return classes_[declaring].attributes[slot];
}

Result<AttrRef> Schema::ResolveQualified(std::string_view qualified) const {
  std::string_view s = StripWhitespace(qualified);
  size_t dot = s.find('.');
  if (dot == std::string_view::npos) {
    return Status::ParseError("expected class.attr, got '" +
                              std::string(s) + "'");
  }
  std::string_view class_name = StripWhitespace(s.substr(0, dot));
  std::string_view attr_name = StripWhitespace(s.substr(dot + 1));
  ClassId cid = FindClass(class_name);
  if (cid == kInvalidClass) {
    return Status::NotFound("unknown class '" + std::string(class_name) +
                            "'");
  }
  AttrRef ref = FindAttribute(cid, attr_name);
  if (!ref.valid()) {
    return Status::NotFound("class '" + std::string(class_name) +
                            "' has no attribute '" + std::string(attr_name) +
                            "'");
  }
  return ref;
}

std::string Schema::AttrRefName(const AttrRef& ref) const {
  if (!ref.valid()) return "<invalid>";
  return classes_[ref.class_id].name + "." + attribute(ref).name;
}

std::vector<RelId> Schema::RelationshipsOf(ClassId class_id) const {
  std::vector<RelId> out;
  for (const Relationship& rel : relationships_) {
    if (rel.Involves(class_id)) out.push_back(rel.id);
  }
  return out;
}

bool Schema::AreLinked(ClassId a, ClassId b) const {
  for (const Relationship& rel : relationships_) {
    if (rel.Connects(a, b)) return true;
  }
  return false;
}

std::vector<AttrId> Schema::LayoutOf(ClassId class_id) const {
  // Chain from root ancestor down to class_id.
  std::vector<ClassId> chain;
  for (ClassId cur = class_id; cur != kInvalidClass;
       cur = classes_[cur].parent) {
    chain.push_back(cur);
  }
  std::vector<AttrId> layout;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ObjectClass& oc = classes_[*it];
    for (size_t slot = 0; slot < oc.attributes.size(); ++slot) {
      layout.push_back(EncodeSlot(class_id, *it, slot));
    }
  }
  return layout;
}

std::vector<ClassId> Schema::SubclassesOf(ClassId class_id) const {
  std::vector<ClassId> out;
  // Schemas are tiny; a quadratic walk is clearer than building a tree.
  bool changed = true;
  std::vector<bool> in(classes_.size(), false);
  while (changed) {
    changed = false;
    for (const ObjectClass& oc : classes_) {
      if (in[oc.id]) continue;
      if (oc.parent == class_id ||
          (oc.parent != kInvalidClass && in[oc.parent])) {
        in[oc.id] = true;
        changed = true;
      }
    }
  }
  for (const ObjectClass& oc : classes_) {
    if (in[oc.id]) out.push_back(oc.id);
  }
  return out;
}

bool Schema::IsKindOf(ClassId maybe_sub, ClassId ancestor) const {
  ClassId cur = maybe_sub;
  while (cur != kInvalidClass) {
    if (cur == ancestor) return true;
    cur = classes_[cur].parent;
  }
  return false;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (const ObjectClass& oc : classes_) {
    os << oc.name;
    if (oc.parent != kInvalidClass) {
      os << " : " << classes_[oc.parent].name;
    }
    os << "(";
    for (size_t i = 0; i < oc.attributes.size(); ++i) {
      if (i) os << ", ";
      os << oc.attributes[i].name;
      if (oc.attributes[i].indexed) os << "*";
    }
    os << ")\n";
  }
  for (const Relationship& rel : relationships_) {
    os << rel.name << ": " << classes_[rel.a].name << " -- "
       << classes_[rel.b].name << "\n";
  }
  return os.str();
}

}  // namespace sqopt

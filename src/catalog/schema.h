// Object-oriented schema catalog: object classes with typed attributes,
// single inheritance, named relationships between classes, and index
// declarations. This is the data model of Figure 2.1 in the paper.
#ifndef SQOPT_CATALOG_SCHEMA_H_
#define SQOPT_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace sqopt {

using ClassId = int32_t;
using AttrId = int32_t;
using RelId = int32_t;

inline constexpr ClassId kInvalidClass = -1;
inline constexpr AttrId kInvalidAttr = -1;
inline constexpr RelId kInvalidRel = -1;

// A scalar attribute of an object class. Relationships between classes
// are modeled separately (`Relationship`), mirroring the paper where the
// pointer attributes in Figure 2.1 exist solely to implement the named
// relationships used in queries ({collects, supplies}, ...).
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;
  bool indexed = false;  // true if an access-method index exists
  // Number of distinct values the attribute takes; used by selectivity
  // estimation. 0 = unknown (estimator applies defaults).
  int64_t distinct_values = 0;
};

// An object class. `parent` supports single inheritance (employee is the
// superclass of manager/driver/supervisor in the example database).
struct ObjectClass {
  ClassId id = kInvalidClass;
  std::string name;
  ClassId parent = kInvalidClass;
  std::vector<Attribute> attributes;  // declared on this class only
};

// A binary relationship between two classes, identified by name in query
// relationship lists. `a` and `b` are unordered endpoints.
struct Relationship {
  RelId id = kInvalidRel;
  std::string name;
  ClassId a = kInvalidClass;
  ClassId b = kInvalidClass;

  bool Connects(ClassId x, ClassId y) const {
    return (a == x && b == y) || (a == y && b == x);
  }
  bool Involves(ClassId x) const { return a == x || b == x; }
  ClassId Other(ClassId x) const { return a == x ? b : a; }
};

// A fully-resolved reference to an attribute of a class: the unit the
// predicate algebra operates on.
struct AttrRef {
  ClassId class_id = kInvalidClass;
  AttrId attr_id = kInvalidAttr;

  bool valid() const { return class_id >= 0 && attr_id >= 0; }
  bool operator==(const AttrRef& other) const = default;
  auto operator<=>(const AttrRef& other) const = default;
};

struct AttrRefHash {
  size_t operator()(const AttrRef& r) const {
    return static_cast<size_t>(r.class_id) * 1000003u +
           static_cast<size_t>(r.attr_id);
  }
};

// Immutable after construction (use SchemaBuilder). All lookups are by
// value-semantics ids or by name.
class Schema {
 public:
  Schema() = default;

  size_t num_classes() const { return classes_.size(); }
  size_t num_relationships() const { return relationships_.size(); }

  const ObjectClass& object_class(ClassId id) const { return classes_[id]; }
  const Relationship& relationship(RelId id) const {
    return relationships_[id];
  }
  const std::vector<ObjectClass>& classes() const { return classes_; }
  const std::vector<Relationship>& relationships() const {
    return relationships_;
  }

  // Name lookups. Return invalid ids when absent.
  ClassId FindClass(std::string_view name) const;
  RelId FindRelationship(std::string_view name) const;

  // Finds `attr_name` on `class_id`, walking up the inheritance chain.
  // Returns the AttrRef naming the class that *declares* the attribute
  // paired with the queried class (so predicate identity stays on the
  // queried class). Invalid AttrRef when absent.
  AttrRef FindAttribute(ClassId class_id, std::string_view attr_name) const;

  // The attribute metadata behind a resolved reference.
  const Attribute& attribute(const AttrRef& ref) const;

  // Resolves "class.attr" notation. Errors on unknown class/attribute.
  Result<AttrRef> ResolveQualified(std::string_view qualified) const;

  // "class.attr" display form of a resolved reference.
  std::string AttrRefName(const AttrRef& ref) const;

  // All relationships with `class_id` as an endpoint.
  std::vector<RelId> RelationshipsOf(ClassId class_id) const;

  // True if some relationship directly connects the two classes.
  bool AreLinked(ClassId a, ClassId b) const;

  // All attributes visible on `class_id` — inherited ones first (root
  // ancestor downward), declaration order within each class — as attr
  // ids usable with attribute()/FindAttribute. This is the storage
  // layout order of the class's extent.
  std::vector<AttrId> LayoutOf(ClassId class_id) const;

  // Transitive subclasses of `class_id` (not including itself).
  std::vector<ClassId> SubclassesOf(ClassId class_id) const;

  // True if `maybe_sub` equals `ancestor` or derives from it.
  bool IsKindOf(ClassId maybe_sub, ClassId ancestor) const;

  std::string ToString() const;

 private:
  friend class SchemaBuilder;

  // Packs (declaring class, attribute slot) into an AttrId. See .cc.
  static int32_t EncodeSlot(ClassId queried, ClassId declaring, size_t slot);

  std::vector<ObjectClass> classes_;
  std::vector<Relationship> relationships_;
  std::unordered_map<std::string, ClassId> class_by_name_;
  std::unordered_map<std::string, RelId> rel_by_name_;
};

}  // namespace sqopt

#endif  // SQOPT_CATALOG_SCHEMA_H_

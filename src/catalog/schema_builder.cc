#include "catalog/schema_builder.h"

#include <unordered_set>

namespace sqopt {

SchemaBuilder::ClassBuilder& SchemaBuilder::ClassBuilder::Attr(
    std::string name, ValueType type, bool indexed,
    int64_t distinct_values) {
  Attribute attr;
  attr.name = std::move(name);
  attr.type = type;
  attr.indexed = indexed;
  attr.distinct_values = distinct_values;
  owner_->pending_classes_[index_].attributes.push_back(std::move(attr));
  return *this;
}

SchemaBuilder::ClassBuilder& SchemaBuilder::ClassBuilder::Parent(
    std::string parent_name) {
  owner_->pending_classes_[index_].parent = std::move(parent_name);
  return *this;
}

SchemaBuilder::ClassBuilder SchemaBuilder::AddClass(std::string name) {
  PendingClass pc;
  pc.name = std::move(name);
  pending_classes_.push_back(std::move(pc));
  return ClassBuilder(this, pending_classes_.size() - 1);
}

SchemaBuilder& SchemaBuilder::AddRelationship(std::string name,
                                              std::string class_a,
                                              std::string class_b) {
  pending_rels_.push_back(
      PendingRel{std::move(name), std::move(class_a), std::move(class_b)});
  return *this;
}

Result<Schema> SchemaBuilder::Build() {
  Schema schema;

  // Pass 1: register classes.
  for (const PendingClass& pc : pending_classes_) {
    if (schema.class_by_name_.count(pc.name) > 0) {
      return Status::AlreadyExists("duplicate class '" + pc.name + "'");
    }
    ObjectClass oc;
    oc.id = static_cast<ClassId>(schema.classes_.size());
    oc.name = pc.name;
    oc.attributes = pc.attributes;
    schema.class_by_name_[pc.name] = oc.id;
    schema.classes_.push_back(std::move(oc));
  }

  // Pass 2: resolve parents and validate attribute uniqueness
  // (including no shadowing of inherited attributes).
  for (size_t i = 0; i < pending_classes_.size(); ++i) {
    const PendingClass& pc = pending_classes_[i];
    ObjectClass& oc = schema.classes_[i];
    if (!pc.parent.empty()) {
      ClassId pid = schema.FindClass(pc.parent);
      if (pid == kInvalidClass) {
        return Status::NotFound("class '" + pc.name +
                                "': unknown parent '" + pc.parent + "'");
      }
      if (pid == oc.id) {
        return Status::InvalidArgument("class '" + pc.name +
                                       "' cannot be its own parent");
      }
      oc.parent = pid;
    }
  }
  // Detect inheritance cycles before walking chains below.
  for (const ObjectClass& oc : schema.classes_) {
    ClassId slow = oc.id, fast = oc.id;
    while (true) {
      ClassId fp = schema.classes_[fast].parent;
      if (fp == kInvalidClass) break;
      fast = schema.classes_[fp].parent;
      slow = schema.classes_[slow].parent;
      if (fast == kInvalidClass) break;
      if (slow == fast) {
        return Status::InvalidArgument("inheritance cycle through class '" +
                                       oc.name + "'");
      }
    }
  }
  for (const ObjectClass& oc : schema.classes_) {
    std::unordered_set<std::string> own;
    for (const Attribute& attr : oc.attributes) {
      if (!own.insert(attr.name).second) {
        return Status::AlreadyExists("class '" + oc.name +
                                     "': duplicate attribute '" + attr.name +
                                     "'");
      }
    }
    // Shadowing of inherited attributes is rejected so that attribute
    // identity (declaring class, slot) stays unambiguous.
    for (ClassId cur = oc.parent; cur != kInvalidClass;
         cur = schema.classes_[cur].parent) {
      for (const Attribute& attr : schema.classes_[cur].attributes) {
        if (own.count(attr.name) > 0) {
          return Status::AlreadyExists(
              "class '" + oc.name + "': attribute '" + attr.name +
              "' shadows an inherited attribute");
        }
      }
    }
  }

  // Pass 3: relationships.
  for (const PendingRel& pr : pending_rels_) {
    if (schema.rel_by_name_.count(pr.name) > 0) {
      return Status::AlreadyExists("duplicate relationship '" + pr.name +
                                   "'");
    }
    ClassId a = schema.FindClass(pr.class_a);
    ClassId b = schema.FindClass(pr.class_b);
    if (a == kInvalidClass || b == kInvalidClass) {
      return Status::NotFound("relationship '" + pr.name +
                              "' references unknown class");
    }
    Relationship rel;
    rel.id = static_cast<RelId>(schema.relationships_.size());
    rel.name = pr.name;
    rel.a = a;
    rel.b = b;
    schema.rel_by_name_[pr.name] = rel.id;
    schema.relationships_.push_back(rel);
  }

  return schema;
}

}  // namespace sqopt

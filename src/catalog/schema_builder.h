// Fluent, validated construction of Schema objects.
#ifndef SQOPT_CATALOG_SCHEMA_BUILDER_H_
#define SQOPT_CATALOG_SCHEMA_BUILDER_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace sqopt {

// Usage:
//   SchemaBuilder b;
//   b.AddClass("vehicle")
//       .Attr("vehicle#", ValueType::kInt, /*indexed=*/true)
//       .Attr("desc", ValueType::kString)
//       .Attr("class", ValueType::kInt);
//   b.AddRelationship("collects", "cargo", "vehicle");
//   SQOPT_ASSIGN_OR_RETURN(Schema schema, b.Build());
//
// Errors (duplicate names, unknown classes, attribute shadowing) are
// collected and reported by Build().
class SchemaBuilder {
 public:
  class ClassBuilder {
   public:
    ClassBuilder& Attr(std::string name, ValueType type,
                       bool indexed = false, int64_t distinct_values = 0);
    ClassBuilder& Parent(std::string parent_name);

   private:
    friend class SchemaBuilder;
    ClassBuilder(SchemaBuilder* owner, size_t index)
        : owner_(owner), index_(index) {}
    SchemaBuilder* owner_;
    size_t index_;  // into owner_->pending_classes_
  };

  ClassBuilder AddClass(std::string name);
  SchemaBuilder& AddRelationship(std::string name, std::string class_a,
                                 std::string class_b);

  // Validates and produces the schema. The builder may not be reused
  // after a successful Build().
  Result<Schema> Build();

 private:
  struct PendingClass {
    std::string name;
    std::string parent;  // empty = none
    std::vector<Attribute> attributes;
  };
  struct PendingRel {
    std::string name;
    std::string class_a;
    std::string class_b;
  };

  std::vector<PendingClass> pending_classes_;
  std::vector<PendingRel> pending_rels_;
};

}  // namespace sqopt

#endif  // SQOPT_CATALOG_SCHEMA_BUILDER_H_

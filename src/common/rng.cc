#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace sqopt {

namespace {

// SplitMix64 to expand the single seed into two non-zero state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  s0_ = SplitMix64(&sm);
  s1_ = SplitMix64(&sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be non-zero
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(Next() % n);
}

size_t Rng::SkewedIndex(size_t n, double theta) {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling over weights 1/(k+1)^theta.
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) total += std::pow(k + 1.0, -theta);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += std::pow(k + 1.0, -theta);
    if (u <= acc) return k;
  }
  return n - 1;
}

}  // namespace sqopt

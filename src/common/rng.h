// Deterministic pseudo-random number generator used by all workload
// generators so that experiments are reproducible run to run.
#ifndef SQOPT_COMMON_RNG_H_
#define SQOPT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sqopt {

// xorshift128+ generator; small, fast, and fully deterministic from the
// seed. Not suitable for cryptography (and not used as such).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform in [0, 2^64).
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Picks a uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n);

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  // Zipf-like skewed index in [0, n): index k drawn with weight
  // 1/(k+1)^theta. Used to model skewed class access frequencies.
  size_t SkewedIndex(size_t n, double theta);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace sqopt

#endif  // SQOPT_COMMON_RNG_H_

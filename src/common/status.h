// Status and Result<T>: exception-free error propagation for the sqopt
// library. Modeled after the Status/StatusOr idiom used by large C++
// database codebases (Arrow, RocksDB).
#ifndef SQOPT_COMMON_STATUS_H_
#define SQOPT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sqopt {

// Error categories surfaced by the library. Keep the set small; the
// message carries the details.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kParseError,
  // A write was rejected because committing it would leave the store
  // violating an integrity constraint (see Engine::Apply).
  kConstraintViolation,
  // A durable file (snapshot section, WAL record) failed its checksum
  // or structural validation (see src/persist/).
  kCorruption,
  // The serving layer shed this request: the bounded admission queue
  // was full (or the server was draining). Retry against a less loaded
  // server — the request was never executed (see src/server/).
  kOverloaded,
  // The request's deadline expired before execution started; the
  // request was never executed (see src/server/).
  kTimeout,
  // A durable file was written by a format version this build does not
  // read (e.g. a pre-columnar snapshot opened by a columnar build).
  // Distinct from kCorruption: the file is intact, just older/newer
  // than this reader (see src/persist/snapshot.h).
  kUnsupportedVersion,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no
// allocation); errors carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status UnsupportedVersion(std::string msg) {
    return Status(StatusCode::kUnsupportedVersion, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. Accessing the value of an error Result is a
// programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites terse (`return value;` / `return Status::NotFound(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // kOk iff value_ engaged.
};

// Propagates a non-OK status out of the current function.
#define SQOPT_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::sqopt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs`, or propagates
// the error. Usage: SQOPT_ASSIGN_OR_RETURN(auto x, ComputeX());
#define SQOPT_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define SQOPT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SQOPT_ASSIGN_OR_RETURN_NAME(x, y) SQOPT_ASSIGN_OR_RETURN_CONCAT(x, y)
#define SQOPT_ASSIGN_OR_RETURN(lhs, rexpr)                                \
  SQOPT_ASSIGN_OR_RETURN_IMPL(                                            \
      SQOPT_ASSIGN_OR_RETURN_NAME(_sqopt_result_, __LINE__), lhs, rexpr)

}  // namespace sqopt

#endif  // SQOPT_COMMON_STATUS_H_

#include "common/string_util.h"

#include <cctype>
#include <cstdlib>

namespace sqopt {

namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim, bool trim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      std::string_view piece = s.substr(start, i - start);
      if (trim) piece = StripWhitespace(piece);
      out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitTopLevel(std::string_view s, char delim,
                                       char open, char close) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == delim && depth == 0)) {
      out.emplace_back(StripWhitespace(s.substr(start, i - start)));
      start = i + 1;
      continue;
    }
    if (s[i] == open) ++depth;
    if (s[i] == close) --depth;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool LooksLikeInteger(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace sqopt

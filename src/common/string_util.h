// Small string helpers shared across the library (no dependency on any
// other sqopt module).
#ifndef SQOPT_COMMON_STRING_UTIL_H_
#define SQOPT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqopt {

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Splits `s` on `delim`, optionally trimming each piece. Empty pieces are
// kept (callers that don't want them can filter).
std::vector<std::string> Split(std::string_view s, char delim,
                               bool trim = true);

// Splits `s` on `delim` but only at depth zero with respect to the given
// open/close bracket pair. Used by the query/constraint parsers to split
// comma lists that may contain nested parentheses.
std::vector<std::string> SplitTopLevel(std::string_view s, char delim,
                                       char open, char close);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// True if `s` begins with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// ASCII lowercase copy.
std::string ToLower(std::string_view s);

// True if `s` parses fully as a signed integer / floating point literal.
bool LooksLikeInteger(std::string_view s);
bool LooksLikeDouble(std::string_view s);

}  // namespace sqopt

#endif  // SQOPT_COMMON_STRING_UTIL_H_

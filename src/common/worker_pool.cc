#include "common/worker_pool.h"

#include <utility>

namespace sqopt {

int WorkerPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 4;
  return static_cast<int>(hw < 16 ? hw : 16);
}

WorkerPool::WorkerPool(int threads) {
  int n = ResolveThreads(threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain outstanding work even when stopping: a batch in flight
      // still owns tasks in the queue and is blocked on their latch.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sqopt

// A small fixed-size thread pool: a task queue, `threads` workers, FIFO
// dispatch. Submit() never blocks; callers synchronize completion
// themselves (batch serving counts finished tasks under its own latch,
// the parallel executor claims morsels from a shared atomic cursor and
// always works the queue from the submitting thread too, so a saturated
// pool degrades to sequential execution instead of deadlocking).
//
// Lives in common/ so both the api/ serving layer and the exec/
// morsel-parallel executor can share one pool without a layering cycle.
#ifndef SQOPT_COMMON_WORKER_POOL_H_
#define SQOPT_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqopt {

class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();  // drains the queue, then joins

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  void Submit(std::function<void()> task);

  // A requested thread count resolved against the hardware:
  // 0 = hardware concurrency, clamped to [1, 16].
  static int ResolveThreads(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sqopt

#endif  // SQOPT_COMMON_WORKER_POOL_H_

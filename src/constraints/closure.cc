#include "constraints/closure.h"

#include <optional>
#include <unordered_set>

#include "expr/implication.h"
#include "expr/interval.h"

namespace sqopt {

namespace {

// Structural dedup set over HornClause.
struct ClauseKeyHash {
  size_t operator()(const HornClause* c) const { return c->StructuralHash(); }
};
struct ClauseKeyEq {
  bool operator()(const HornClause* a, const HornClause* b) const {
    return a->StructurallyEquals(*b);
  }
};

// Builds the chained clause for c1 feeding antecedent index `ai` of c2.
// Returns nullopt when the result is trivial/over-long per options.
std::optional<HornClause> Chain(const HornClause& c1, ConstraintId id1,
                                const HornClause& c2, ConstraintId id2,
                                size_t ai, const ClosureOptions& options) {
  std::vector<Predicate> antecedents = c1.antecedents();
  for (size_t i = 0; i < c2.antecedents().size(); ++i) {
    if (i == ai) continue;
    const Predicate& p = c2.antecedents()[i];
    bool dup = false;
    for (const Predicate& q : antecedents) {
      if (p == q) {
        dup = true;
        break;
      }
    }
    if (!dup) antecedents.push_back(p);
  }
  if (antecedents.size() > options.max_antecedents) return std::nullopt;

  const Predicate& consequent = c2.consequent();
  // Vacuous: consequent already among (or implied by) the antecedents.
  if (options.prune_trivial) {
    if (ConjunctionImplies(antecedents, consequent)) return std::nullopt;
    if (!ConjunctionSatisfiable(antecedents)) return std::nullopt;
  } else {
    for (const Predicate& p : antecedents) {
      if (p == consequent) return std::nullopt;
    }
  }

  HornClause derived(c1.label() + "*" + c2.label(), std::move(antecedents),
                     consequent);
  derived.set_derived_from({id1, id2});
  return derived;
}

}  // namespace

Result<ClosureResult> ComputeClosure(const Schema& /*schema*/,
                                     std::vector<HornClause> base,
                                     const ClosureOptions& options) {
  size_t max_derived = options.max_derived == 0 ? 4096 : options.max_derived;

  ClosureResult result;
  result.clauses = std::move(base);
  result.num_base = result.clauses.size();

  std::unordered_set<const HornClause*, ClauseKeyHash, ClauseKeyEq> seen;
  // Note: pointers into result.clauses are invalidated by growth, so we
  // rebuild `seen` from scratch at the start of each round. Rounds are
  // few and clause counts small; clarity wins.
  auto rebuild_seen = [&] {
    seen.clear();
    for (const HornClause& c : result.clauses) seen.insert(&c);
  };

  // Semi-naive fixpoint: in each round, chain pairs where at least one
  // side is from the previous round's frontier.
  size_t frontier_begin = 0;
  while (true) {
    rebuild_seen();
    size_t frontier_end = result.clauses.size();
    std::vector<HornClause> fresh;
    for (size_t i = 0; i < frontier_end; ++i) {
      for (size_t j = 0; j < frontier_end; ++j) {
        if (i == j) continue;
        // Skip pairs entirely below the frontier (already chained).
        if (i < frontier_begin && j < frontier_begin) continue;
        const HornClause& c1 = result.clauses[i];
        const HornClause& c2 = result.clauses[j];
        for (size_t ai = 0; ai < c2.antecedents().size(); ++ai) {
          if (!Implies(c1.consequent(), c2.antecedents()[ai])) continue;
          std::optional<HornClause> derived =
              Chain(c1, static_cast<ConstraintId>(i), c2,
                    static_cast<ConstraintId>(j), ai, options);
          if (!derived.has_value()) continue;
          if (seen.count(&*derived) > 0) continue;
          bool dup_in_fresh = false;
          for (const HornClause& f : fresh) {
            if (f.StructurallyEquals(*derived)) {
              dup_in_fresh = true;
              break;
            }
          }
          if (dup_in_fresh) continue;
          fresh.push_back(std::move(*derived));
          if (result.num_derived + fresh.size() > max_derived) {
            return Status::OutOfRange(
                "constraint closure exceeded max_derived=" +
                std::to_string(max_derived) +
                "; the constraint set likely chains pathologically");
          }
        }
      }
    }
    ++result.rounds;
    if (fresh.empty()) break;
    frontier_begin = frontier_end;
    for (HornClause& c : fresh) {
      result.clauses.push_back(std::move(c));
      ++result.num_derived;
    }
  }
  return result;
}

std::vector<ConstraintId> ChainAtQueryTime(
    const std::vector<HornClause>& clauses,
    const std::vector<Predicate>& seed) {
  std::vector<Predicate> known = seed;
  std::vector<bool> fired(clauses.size(), false);
  std::vector<ConstraintId> order;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < clauses.size(); ++i) {
      if (fired[i]) continue;
      const HornClause& c = clauses[i];
      bool all_present = true;
      for (const Predicate& a : c.antecedents()) {
        bool present = false;
        for (const Predicate& k : known) {
          if (Implies(k, a)) {
            present = true;
            break;
          }
        }
        if (!present) {
          all_present = false;
          break;
        }
      }
      if (!all_present) continue;
      fired[i] = true;
      order.push_back(static_cast<ConstraintId>(i));
      known.push_back(c.consequent());
      changed = true;
    }
  }
  return order;
}

}  // namespace sqopt

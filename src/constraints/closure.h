// Transitive closure of a Horn-clause constraint set, materialized at
// precompilation (Section 3). The chaining rule, following Yu & Sun
// [YuS89] and the paper's own example
//   (A = a) -> (B > 20),  (B > 10) -> (C = c)   ⟹   (A = a) -> (C = c),
// is: if c1's consequent logically implies an antecedent r of c2, derive
//   antecedents(c1) ∪ (antecedents(c2) \ {r})  ->  consequent(c2).
// Materializing the closure is what makes the simple class-subset
// relevance test complete, so the optimizer never needs to chain at
// query time.
#ifndef SQOPT_CONSTRAINTS_CLOSURE_H_
#define SQOPT_CONSTRAINTS_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "constraints/horn_clause.h"

namespace sqopt {

struct ClosureOptions {
  // Hard cap on the number of derived clauses; guards against
  // pathological constraint sets. 0 = default (4096).
  size_t max_derived = 4096;
  // Maximum antecedent count of a derived clause; longer derivations are
  // discarded (they are rarely relevant to any query and bloat groups).
  size_t max_antecedents = 8;
  // Drop derived clauses whose antecedent set is unsatisfiable or whose
  // consequent is already implied by the antecedents (vacuous).
  bool prune_trivial = true;
};

struct ClosureResult {
  // Base clauses first (same order as input), derived clauses appended.
  std::vector<HornClause> clauses;
  size_t num_base = 0;
  size_t num_derived = 0;
  int rounds = 0;  // fixpoint iterations performed
};

// Computes the closure. Input clauses keep their labels; derived clauses
// get labels "<l1>*<l2>" and provenance ids (indices into the output).
Result<ClosureResult> ComputeClosure(const Schema& schema,
                                     std::vector<HornClause> base,
                                     const ClosureOptions& options = {});

// Query-time chaining used by the "no materialized closure" ablation:
// starting from the predicates present in `seed`, repeatedly fires
// clauses whose antecedents are all implied by the accumulated set, and
// returns every clause that fired. This is the work the materialized
// closure avoids.
std::vector<ConstraintId> ChainAtQueryTime(
    const std::vector<HornClause>& clauses,
    const std::vector<Predicate>& seed);

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_CLOSURE_H_

#include "constraints/constraint_catalog.h"

#include <algorithm>
#include <set>

namespace sqopt {

Status ConstraintCatalog::AddConstraint(HornClause clause) {
  // Note: an empty antecedent list is legal (class-membership-only
  // constraints such as the paper's c3/c4).
  for (const HornClause& existing : base_) {
    if (existing.StructurallyEquals(clause)) {
      return Status::AlreadyExists("constraint '" + clause.label() +
                                   "' duplicates '" + existing.label() +
                                   "'");
    }
  }
  if (clause.label().empty()) {
    clause.set_label("c" + std::to_string(base_.size() + 1));
  }
  base_.push_back(std::move(clause));
  precompiled_ = false;
  return Status::OK();
}

Status ConstraintCatalog::Precompile(const AccessStats* stats,
                                     const PrecompileOptions& options) {
  if (options.materialize_closure) {
    SQOPT_ASSIGN_OR_RETURN(ClosureResult closure,
                           ComputeClosure(*schema_, base_, options.closure));
    clauses_ = std::move(closure.clauses);
    num_base_ = closure.num_base;
  } else {
    clauses_ = base_;
    num_base_ = base_.size();
  }

  classes_.clear();
  classes_.reserve(clauses_.size());
  for (const HornClause& c : clauses_) {
    classes_.push_back(c.Classify());
  }

  GroupingPolicy policy = options.grouping;
  if (policy == GroupingPolicy::kLeastFrequentlyAccessed &&
      stats == nullptr) {
    policy = GroupingPolicy::kArbitrary;  // graceful fallback
  }
  grouping_.Build(*schema_, clauses_, policy, stats);
  precompiled_ = true;
  return Status::OK();
}

Status ConstraintCatalog::RestorePrecompiled(
    std::vector<HornClause> base, std::vector<HornClause> clauses,
    std::vector<ConstraintClass> classifications,
    std::vector<ClassId> grouping_assignment) {
  if (base.size() > clauses.size() ||
      clauses.size() != classifications.size() ||
      clauses.size() != grouping_assignment.size()) {
    return Status::Corruption(
        "constraint catalog snapshot is internally inconsistent (" +
        std::to_string(base.size()) + " base, " +
        std::to_string(clauses.size()) + " clauses, " +
        std::to_string(classifications.size()) + " classifications, " +
        std::to_string(grouping_assignment.size()) + " assignments)");
  }
  SQOPT_RETURN_IF_ERROR(grouping_.Restore(std::move(grouping_assignment),
                                          schema_->num_classes()));
  num_base_ = base.size();
  base_ = std::move(base);
  clauses_ = std::move(clauses);
  classes_ = std::move(classifications);
  precompiled_ = true;
  return Status::OK();
}

std::vector<ConstraintId> ConstraintCatalog::RetrieveForQuery(
    const std::vector<ClassId>& query_classes) const {
  return grouping_.Retrieve(query_classes);
}

std::vector<ConstraintId> ConstraintCatalog::RelevantConstraints(
    const std::vector<ClassId>& query_classes,
    const std::vector<ConstraintId>& candidates) const {
  std::set<ClassId> in_query(query_classes.begin(), query_classes.end());
  std::vector<ConstraintId> out;
  for (ConstraintId id : candidates) {
    bool relevant = true;
    for (ClassId referenced : clauses_[id].ReferencedClasses()) {
      if (in_query.count(referenced) == 0) {
        relevant = false;
        break;
      }
    }
    if (relevant) out.push_back(id);
  }
  return out;
}

std::vector<ConstraintId> ConstraintCatalog::RelevantForQuery(
    const std::vector<ClassId>& query_classes) const {
  std::vector<ConstraintId> retrieved = RetrieveForQuery(query_classes);
  std::vector<ConstraintId> relevant =
      RelevantConstraints(query_classes, retrieved);
  stat_queries_.fetch_add(1, std::memory_order_relaxed);
  stat_retrieved_.fetch_add(retrieved.size(), std::memory_order_relaxed);
  stat_relevant_.fetch_add(relevant.size(), std::memory_order_relaxed);
  return relevant;
}

}  // namespace sqopt

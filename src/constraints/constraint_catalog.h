// The constraint subsystem's front door. Owns the base constraint set,
// materializes the transitive closure at precompilation, classifies each
// clause intra/inter, assigns groups, and serves the per-query retrieval
// + relevance filtering pipeline of Section 3.
#ifndef SQOPT_CONSTRAINTS_CONSTRAINT_CATALOG_H_
#define SQOPT_CONSTRAINTS_CONSTRAINT_CATALOG_H_

#include <atomic>
#include <vector>

#include "catalog/access_stats.h"
#include "catalog/schema.h"
#include "common/status.h"
#include "constraints/closure.h"
#include "constraints/grouping.h"
#include "constraints/horn_clause.h"

namespace sqopt {

struct PrecompileOptions {
  bool materialize_closure = true;  // the paper's design; false = ablation
  ClosureOptions closure;
  GroupingPolicy grouping = GroupingPolicy::kLeastFrequentlyAccessed;
};

// Cumulative counters for the retrieval pipeline, used by the grouping
// ablation bench.
struct RetrievalStats {
  uint64_t queries = 0;
  uint64_t constraints_retrieved = 0;  // fetched via groups
  uint64_t constraints_relevant = 0;   // passed the relevance test

  double IrrelevantFraction() const {
    if (constraints_retrieved == 0) return 0.0;
    return 1.0 - static_cast<double>(constraints_relevant) /
                     static_cast<double>(constraints_retrieved);
  }
};

class ConstraintCatalog {
 public:
  explicit ConstraintCatalog(const Schema* schema) : schema_(schema) {}

  // Registers a base constraint. Must be called before Precompile; after
  // Precompile, call again + re-Precompile to change the set (semantic
  // constraints change rarely — the paper's stated justification for
  // materializing the closure).
  Status AddConstraint(HornClause clause);

  // Runs closure + classification + grouping. Idempotent; re-runs from
  // the base set each time.
  Status Precompile(const AccessStats* stats,
                    const PrecompileOptions& options = {});
  bool precompiled() const { return precompiled_; }

  // All clauses after precompilation (base then derived).
  const std::vector<HornClause>& clauses() const { return clauses_; }
  const HornClause& clause(ConstraintId id) const { return clauses_[id]; }
  ConstraintClass classification(ConstraintId id) const {
    return classes_[id];
  }
  size_t num_base() const { return num_base_; }
  size_t num_derived() const { return clauses_.size() - num_base_; }

  // Group-based retrieval: all constraints attached to the query's
  // classes. Superset of the relevant constraints.
  std::vector<ConstraintId> RetrieveForQuery(
      const std::vector<ClassId>& query_classes) const;

  // Relevance (Section 3): constraint c is relevant to query q iff every
  // class c references appears in q. Filters `candidates` (typically the
  // output of RetrieveForQuery) and updates the stats counters.
  std::vector<ConstraintId> RelevantConstraints(
      const std::vector<ClassId>& query_classes,
      const std::vector<ConstraintId>& candidates) const;

  // Convenience: RetrieveForQuery then RelevantConstraints, with
  // counters. Const and safe to call from concurrent readers once the
  // catalog is precompiled (the counters are atomics).
  std::vector<ConstraintId> RelevantForQuery(
      const std::vector<ClassId>& query_classes) const;

  const ConstraintGrouping& grouping() const { return grouping_; }

  // --- Persistence hook (src/persist/snapshot.cc). ---

  // Restores a fully-precompiled catalog from serialized state: the
  // base set, the closed clause list (base prefix + derived), the
  // per-clause classification, and the grouping assignment — so a cold
  // open never re-runs closure computation ("rule mining") or
  // grouping. Replaces any previously registered state.
  Status RestorePrecompiled(std::vector<HornClause> base,
                            std::vector<HornClause> clauses,
                            std::vector<ConstraintClass> classifications,
                            std::vector<ClassId> grouping_assignment);

  // Snapshot of the cumulative retrieval counters.
  RetrievalStats retrieval_stats() const {
    RetrievalStats out;
    out.queries = stat_queries_.load(std::memory_order_relaxed);
    out.constraints_retrieved =
        stat_retrieved_.load(std::memory_order_relaxed);
    out.constraints_relevant =
        stat_relevant_.load(std::memory_order_relaxed);
    return out;
  }
  void ResetRetrievalStats() const {
    stat_queries_.store(0, std::memory_order_relaxed);
    stat_retrieved_.store(0, std::memory_order_relaxed);
    stat_relevant_.store(0, std::memory_order_relaxed);
  }

 private:
  const Schema* schema_;
  std::vector<HornClause> base_;
  std::vector<HornClause> clauses_;       // after closure
  std::vector<ConstraintClass> classes_;  // intra/inter per clause
  ConstraintGrouping grouping_;
  size_t num_base_ = 0;
  bool precompiled_ = false;
  // Retrieval counters live outside RetrievalStats so the hot read path
  // (RelevantForQuery) stays const and data-race-free.
  mutable std::atomic<uint64_t> stat_queries_{0};
  mutable std::atomic<uint64_t> stat_retrieved_{0};
  mutable std::atomic<uint64_t> stat_relevant_{0};
};

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_CONSTRAINT_CATALOG_H_

#include "constraints/constraint_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace sqopt {

namespace {

// Splits on commas outside quotes (predicates may contain quoted commas).
std::vector<std::string> SplitPredicates(std::string_view body) {
  std::vector<std::string> out;
  bool in_quote = false;
  char quote = 0;
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size()) {
      char c = body[i];
      if (in_quote) {
        if (c == quote) in_quote = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        in_quote = true;
        quote = c;
        continue;
      }
      if (c != ',') continue;
    }
    std::string_view piece = StripWhitespace(body.substr(start, i - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = i + 1;
  }
  return out;
}

// Finds "->" outside quotes. Returns npos if absent.
size_t FindArrow(std::string_view s) {
  bool in_quote = false;
  char quote = 0;
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    char c = s[i];
    if (in_quote) {
      if (c == quote) in_quote = false;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_quote = true;
      quote = c;
      continue;
    }
    if (c == '-' && s[i + 1] == '>') return i;
  }
  return std::string_view::npos;
}

// Finds a label terminator ':' that precedes any predicate content.
// A ':' is a label separator only if everything before it is a bare
// identifier (no dots, quotes, or comparison characters).
size_t FindLabelColon(std::string_view s) {
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == ':') return i;
    bool ident = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 std::isspace(static_cast<unsigned char>(c));
    if (!ident) return std::string_view::npos;
  }
  return std::string_view::npos;
}

}  // namespace

Result<HornClause> ParseConstraint(const Schema& schema,
                                   std::string_view text) {
  std::string_view s = StripWhitespace(text);

  std::string label;
  size_t colon = FindLabelColon(s);
  if (colon != std::string_view::npos) {
    label = std::string(StripWhitespace(s.substr(0, colon)));
    s = StripWhitespace(s.substr(colon + 1));
  }

  size_t arrow = FindArrow(s);
  if (arrow == std::string_view::npos) {
    return Status::ParseError("constraint missing '->': '" +
                              std::string(text) + "'");
  }
  std::string_view lhs = StripWhitespace(s.substr(0, arrow));
  std::string_view rhs = StripWhitespace(s.substr(arrow + 2));
  if (rhs.empty()) {
    return Status::ParseError("constraint has empty consequent");
  }

  std::vector<Predicate> antecedents;
  for (const std::string& piece : SplitPredicates(lhs)) {
    SQOPT_ASSIGN_OR_RETURN(Predicate p, ParsePredicate(schema, piece));
    // Deduplicate repeated antecedents.
    bool dup = false;
    for (const Predicate& q : antecedents) {
      if (p == q) {
        dup = true;
        break;
      }
    }
    if (!dup) antecedents.push_back(std::move(p));
  }
  // An empty antecedent list is legal: it encodes a constraint
  // conditioned only on class membership (the paper's c3/c4 — "a driver
  // can only drive vehicles whose classification is not higher than his
  // license classification" has no predicate antecedents). Such a
  // constraint fires whenever its classes appear in the query.
  SQOPT_ASSIGN_OR_RETURN(Predicate consequent, ParsePredicate(schema, rhs));

  // A consequent repeating an antecedent is vacuous.
  for (const Predicate& p : antecedents) {
    if (p == consequent) {
      return Status::InvalidArgument(
          "constraint is vacuous: consequent repeats an antecedent");
    }
  }

  return HornClause(std::move(label), std::move(antecedents),
                    std::move(consequent));
}

Result<std::vector<HornClause>> ParseConstraintList(const Schema& schema,
                                                    std::string_view text) {
  std::vector<HornClause> out;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view s = StripWhitespace(line);
    if (s.empty() || s.front() == '#') continue;
    SQOPT_ASSIGN_OR_RETURN(HornClause clause, ParseConstraint(schema, s));
    out.push_back(std::move(clause));
  }
  return out;
}

}  // namespace sqopt

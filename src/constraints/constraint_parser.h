// Parses Horn-clause constraints from text:
//
//   c1: cargo.desc = "frozen food", vehicle.desc = "refrigerated truck"
//       -> supplier.name = "SFI"
//
// Grammar: [label ':'] predicate (',' predicate)* '->' predicate.
// The leading label is optional.
#ifndef SQOPT_CONSTRAINTS_CONSTRAINT_PARSER_H_
#define SQOPT_CONSTRAINTS_CONSTRAINT_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "constraints/horn_clause.h"

namespace sqopt {

Result<HornClause> ParseConstraint(const Schema& schema,
                                   std::string_view text);

// Parses one constraint per non-empty, non-comment ('#') line.
Result<std::vector<HornClause>> ParseConstraintList(const Schema& schema,
                                                    std::string_view text);

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_CONSTRAINT_PARSER_H_

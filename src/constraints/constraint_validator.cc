#include "constraints/constraint_validator.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

namespace sqopt {

namespace {

// Evaluates one predicate of `clause` under a class -> row binding.
// Every class a base clause references is bound by the caller.
bool EvalOn(const ObjectStore& store,
            const std::unordered_map<ClassId, int64_t>& binding,
            const Predicate& p) {
  // By value: ValueAt materializes from the columnar segments.
  const Value lhs = store.extent(p.lhs().class_id)
                        .ValueAt(binding.at(p.lhs().class_id),
                                 p.lhs().attr_id);
  if (p.is_attr_const()) {
    return EvalCompare(lhs, p.op(), p.rhs_value());
  }
  const Value rhs = store.extent(p.rhs_attr().class_id)
                        .ValueAt(binding.at(p.rhs_attr().class_id),
                                 p.rhs_attr().attr_id);
  return EvalCompare(lhs, p.op(), rhs);
}

// antecedents all true and consequent false => violated.
bool ClauseViolated(const ObjectStore& store,
                    const std::unordered_map<ClassId, int64_t>& binding,
                    const HornClause& clause) {
  for (const Predicate& a : clause.antecedents()) {
    if (!EvalOn(store, binding, a)) return false;
  }
  return !EvalOn(store, binding, clause.consequent());
}

Status Violation(const Schema& schema, const HornClause& clause,
                 const std::unordered_map<ClassId, int64_t>& binding) {
  std::string msg = "constraint '" + clause.label() + "' (" +
                    clause.ToString(schema) + ") violated by";
  for (const auto& [cid, row] : binding) {
    msg += " " + schema.object_class(cid).name + "[" +
           std::to_string(row) + "]";
  }
  return Status::ConstraintViolation(std::move(msg));
}

}  // namespace

Status ValidateMutations(const ObjectStore& store,
                         const ConstraintCatalog& catalog,
                         const MutationFootprint& footprint,
                         ValidationStats* stats) {
  const Schema& schema = store.schema();
  ValidationStats local;
  if (stats == nullptr) stats = &local;

  const std::vector<HornClause>& clauses = catalog.clauses();
  const size_t num_base = catalog.num_base();
  for (size_t i = 0; i < num_base && i < clauses.size(); ++i) {
    const HornClause& clause = clauses[i];
    std::vector<ClassId> referenced = clause.ReferencedClasses();

    if (referenced.size() == 1) {
      const ClassId cid = referenced[0];
      auto it = footprint.touched_rows.find(cid);
      if (it == footprint.touched_rows.end()) continue;
      for (int64_t row : it->second) {
        if (!store.IsLive(cid, row)) continue;  // deleted later in batch
        ++stats->clauses_checked;
        std::unordered_map<ClassId, int64_t> binding{{cid, row}};
        if (ClauseViolated(store, binding, clause)) {
          return Violation(schema, clause, binding);
        }
      }
      continue;
    }

    if (referenced.size() != 2) {
      // Base constraints in this system are at most two-class; a wider
      // clause could only arrive hand-built. Checking it would require
      // enumerating join paths, so it is (conservatively) skipped —
      // mirroring RuleHoldsOnStore.
      continue;
    }

    // Two-class clause: collect every directly-linked (c1, c2) pair the
    // footprint could have affected — new links between the classes,
    // plus the current partners of every touched row on either side.
    const ClassId c1 = referenced[0];
    const ClassId c2 = referenced[1];
    std::set<std::pair<int64_t, int64_t>> pairs;
    for (const MutationFootprint::LinkRef& link : footprint.new_links) {
      const Relationship& rel = schema.relationship(link.rel);
      if (!rel.Connects(c1, c2)) continue;
      // Only pairs that SURVIVED the batch constrain the final state: a
      // later Unlink (or a delete's cascade) may have removed this link
      // again, and then it must not reject the batch.
      const std::vector<int64_t>& partners =
          store.Partners(link.rel, rel.a, link.row_a);
      if (std::find(partners.begin(), partners.end(), link.row_b) ==
          partners.end()) {
        continue;
      }
      pairs.insert(rel.a == c1 ? std::make_pair(link.row_a, link.row_b)
                               : std::make_pair(link.row_b, link.row_a));
    }
    auto add_partners = [&](ClassId from, ClassId to, int64_t row) {
      for (RelId rel_id : schema.RelationshipsOf(from)) {
        const Relationship& rel = schema.relationship(rel_id);
        if (rel.Other(from) != to || rel.a == rel.b) continue;
        for (int64_t partner : store.Partners(rel_id, from, row)) {
          pairs.insert(from == c1 ? std::make_pair(row, partner)
                                  : std::make_pair(partner, row));
        }
      }
    };
    if (auto it = footprint.touched_rows.find(c1);
        it != footprint.touched_rows.end()) {
      for (int64_t row : it->second) {
        if (store.IsLive(c1, row)) add_partners(c1, c2, row);
      }
    }
    if (auto it = footprint.touched_rows.find(c2);
        it != footprint.touched_rows.end()) {
      for (int64_t row : it->second) {
        if (store.IsLive(c2, row)) add_partners(c2, c1, row);
      }
    }

    for (const auto& [row1, row2] : pairs) {
      if (!store.IsLive(c1, row1) || !store.IsLive(c2, row2)) continue;
      ++stats->clauses_checked;
      std::unordered_map<ClassId, int64_t> binding{{c1, row1}, {c2, row2}};
      if (ClauseViolated(store, binding, clause)) {
        return Violation(schema, clause, binding);
      }
    }
  }
  return Status::OK();
}

}  // namespace sqopt

// Write-path integrity checking: before a mutation batch commits, the
// engine validates that the post-apply store still satisfies every BASE
// constraint of the catalog. Derived (closure) clauses are logical
// consequences of the base set, so validating the base set suffices.
//
// Scope-driven: a commit names the rows whose attribute values changed
// (inserted or updated) and the relationship instances it created, and
// only clauses that can newly be violated by that footprint are
// checked —
//   * intra-class clauses run against each touched row of their class;
//   * inter-class clauses run against every directly-linked pair that
//     involves a touched row or a new link.
// Deletes and unlinks only remove tuples from the universally
// quantified constraint semantics, so they can never introduce a
// violation and need no checking.
//
// Inter-class semantics: a two-class clause must hold on every pair of
// objects joined by a relationship that directly connects the two
// classes. This matches how the workload generator establishes the
// constraints (segment-closed worlds, where any join path stays inside
// one segment); writes that keep direct pairs consistent and
// segment-shaped data keep multi-hop join paths consistent too. See
// DESIGN.md "Write path".
#ifndef SQOPT_CONSTRAINTS_CONSTRAINT_VALIDATOR_H_
#define SQOPT_CONSTRAINTS_CONSTRAINT_VALIDATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "constraints/constraint_catalog.h"
#include "storage/object_store.h"

namespace sqopt {

// What a mutation batch changed, as the validator needs to see it.
struct MutationFootprint {
  // Rows whose attribute values are new or changed, per class.
  std::unordered_map<ClassId, std::vector<int64_t>> touched_rows;

  // Relationship instances created by the batch.
  struct LinkRef {
    RelId rel = kInvalidRel;
    int64_t row_a = -1;  // row of the relationship's class `a`
    int64_t row_b = -1;  // row of the relationship's class `b`
  };
  std::vector<LinkRef> new_links;
};

struct ValidationStats {
  uint64_t clauses_checked = 0;  // (clause, tuple) combinations evaluated
};

// Validates the base constraints of `catalog` against `store`, limited
// to the tuples `footprint` could have affected. Returns OK when every
// check passes, or a kConstraintViolation status naming the first
// violated constraint and the offending row(s).
Status ValidateMutations(const ObjectStore& store,
                         const ConstraintCatalog& catalog,
                         const MutationFootprint& footprint,
                         ValidationStats* stats = nullptr);

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_CONSTRAINT_VALIDATOR_H_

#include "constraints/grouping.h"

#include <algorithm>
#include <cassert>

namespace sqopt {

const char* GroupingPolicyName(GroupingPolicy policy) {
  switch (policy) {
    case GroupingPolicy::kArbitrary:
      return "arbitrary";
    case GroupingPolicy::kLeastFrequentlyAccessed:
      return "least-frequently-accessed";
    case GroupingPolicy::kBalanced:
      return "balanced";
  }
  return "unknown";
}

void ConstraintGrouping::Build(const Schema& schema,
                               const std::vector<HornClause>& clauses,
                               GroupingPolicy policy,
                               const AccessStats* stats) {
  assignment_.assign(clauses.size(), kInvalidClass);
  groups_.assign(schema.num_classes(), {});

  for (size_t i = 0; i < clauses.size(); ++i) {
    std::vector<ClassId> referenced = clauses[i].ReferencedClasses();
    assert(!referenced.empty());
    ClassId chosen = referenced[0];
    switch (policy) {
      case GroupingPolicy::kArbitrary:
        chosen = referenced[0];
        break;
      case GroupingPolicy::kLeastFrequentlyAccessed:
        assert(stats != nullptr &&
               "LFA grouping requires access statistics");
        chosen = stats->LeastFrequent(referenced);
        break;
      case GroupingPolicy::kBalanced: {
        chosen = referenced[0];
        for (ClassId candidate : referenced) {
          if (groups_[candidate].size() < groups_[chosen].size()) {
            chosen = candidate;
          }
        }
        break;
      }
    }
    assignment_[i] = chosen;
    groups_[chosen].push_back(static_cast<ConstraintId>(i));
  }
}

Status ConstraintGrouping::Restore(std::vector<ClassId> assignment,
                                   size_t num_classes) {
  groups_.assign(num_classes, {});
  for (size_t i = 0; i < assignment.size(); ++i) {
    ClassId chosen = assignment[i];
    if (chosen < 0 || static_cast<size_t>(chosen) >= num_classes) {
      return Status::Corruption(
          "grouping assignment names an unknown class " +
          std::to_string(chosen));
    }
    groups_[chosen].push_back(static_cast<ConstraintId>(i));
  }
  assignment_ = std::move(assignment);
  return Status::OK();
}

std::vector<ConstraintId> ConstraintGrouping::Retrieve(
    const std::vector<ClassId>& query_classes) const {
  std::vector<ConstraintId> out;
  for (ClassId id : query_classes) {
    if (id < 0 || static_cast<size_t>(id) >= groups_.size()) continue;
    out.insert(out.end(), groups_[id].begin(), groups_[id].end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sqopt

// Constraint grouping (Section 3). Every constraint is assigned to
// exactly one group g_k attached to an object class o_k that the
// constraint references. To optimize a query, only groups attached to
// classes appearing in the query are fetched; because a relevant
// constraint references only query classes, this retrieval is complete
// (never misses a relevant constraint), though it may fetch irrelevant
// ones. Assignment policies trade retrieval precision against
// maintenance cost:
//   * kArbitrary: first referenced class (paper's baseline scheme);
//   * kLeastFrequentlyAccessed: the class with the lowest access count,
//     so constraints over rarely-queried classes are rarely fetched
//     (paper's enhancement);
//   * kBalanced: the referenced class with the currently smallest group
//     (paper's alternative for when access patterns drift).
#ifndef SQOPT_CONSTRAINTS_GROUPING_H_
#define SQOPT_CONSTRAINTS_GROUPING_H_

#include <vector>

#include "catalog/access_stats.h"
#include "catalog/schema.h"
#include "constraints/horn_clause.h"

namespace sqopt {

enum class GroupingPolicy {
  kArbitrary,
  kLeastFrequentlyAccessed,
  kBalanced,
};

const char* GroupingPolicyName(GroupingPolicy policy);

class ConstraintGrouping {
 public:
  ConstraintGrouping() = default;

  // Assigns every clause to one group. `stats` is only consulted by
  // kLeastFrequentlyAccessed and may be null for the other policies.
  void Build(const Schema& schema, const std::vector<HornClause>& clauses,
             GroupingPolicy policy, const AccessStats* stats);

  // Group (class) a constraint was assigned to.
  ClassId GroupOf(ConstraintId id) const { return assignment_[id]; }

  // All constraints in the group attached to `class_id`.
  const std::vector<ConstraintId>& Group(ClassId class_id) const {
    return groups_[class_id];
  }

  // Union of the groups attached to `query_classes` — everything the
  // optimizer fetches for a query. Sorted, deduplicated (assignment is a
  // partition, so no duplicates arise).
  std::vector<ConstraintId> Retrieve(
      const std::vector<ClassId>& query_classes) const;

  size_t num_groups() const { return groups_.size(); }
  size_t group_size(ClassId class_id) const {
    return groups_[class_id].size();
  }

  // Persistence hooks (src/persist/snapshot.cc): the assignment IS the
  // grouping (groups are its inverse), so a snapshot serializes only
  // the per-constraint class and Restore rebuilds the group lists.
  const std::vector<ClassId>& assignment() const { return assignment_; }
  Status Restore(std::vector<ClassId> assignment, size_t num_classes);

 private:
  std::vector<ClassId> assignment_;             // constraint -> class
  std::vector<std::vector<ConstraintId>> groups_;  // class -> constraints
};

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_GROUPING_H_

#include "constraints/horn_clause.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace sqopt {

const char* ConstraintClassName(ConstraintClass c) {
  return c == ConstraintClass::kIntra ? "intra" : "inter";
}

std::vector<ClassId> HornClause::ReferencedClasses() const {
  std::set<ClassId> classes;
  for (const Predicate& p : antecedents_) {
    for (ClassId id : p.ReferencedClasses()) classes.insert(id);
  }
  for (ClassId id : consequent_.ReferencedClasses()) classes.insert(id);
  return std::vector<ClassId>(classes.begin(), classes.end());
}

ConstraintClass HornClause::Classify() const {
  return ReferencedClasses().size() <= 1 ? ConstraintClass::kIntra
                                         : ConstraintClass::kInter;
}

bool HornClause::StructurallyEquals(const HornClause& other) const {
  if (!(consequent_ == other.consequent_)) return false;
  if (antecedents_.size() != other.antecedents_.size()) return false;
  // Set comparison: every antecedent of ours appears in theirs. Sizes
  // match and our antecedents are deduplicated by the parser/closure.
  for (const Predicate& p : antecedents_) {
    bool found = false;
    for (const Predicate& q : other.antecedents_) {
      if (p == q) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

size_t HornClause::StructuralHash() const {
  // Order-insensitive combination over antecedents.
  size_t h = consequent_.Hash() * 1000003u;
  for (const Predicate& p : antecedents_) {
    h ^= p.Hash() * 2654435761u;  // xor keeps it order-insensitive
  }
  return h;
}

std::string HornClause::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (!label_.empty()) os << label_ << ": ";
  for (size_t i = 0; i < antecedents_.size(); ++i) {
    if (i) os << ", ";
    os << antecedents_[i].ToString(schema);
  }
  os << " -> " << consequent_.ToString(schema);
  return os.str();
}

}  // namespace sqopt

// Semantic integrity constraints in Horn-clause form (Section 2):
//
//   p_1 ∧ p_2 ∧ ... ∧ p_k  ->  q
//
// where every p_i and q is a Predicate. Constraints are classified as
// intra-class (all predicates reference one object class) or inter-class
// (more than one); the classification drives the tag tables (3.1, 3.2).
#ifndef SQOPT_CONSTRAINTS_HORN_CLAUSE_H_
#define SQOPT_CONSTRAINTS_HORN_CLAUSE_H_

#include <string>
#include <vector>

#include "expr/predicate.h"

namespace sqopt {

using ConstraintId = int32_t;
inline constexpr ConstraintId kInvalidConstraint = -1;

enum class ConstraintClass {
  kIntra,  // references attributes of exactly one object class
  kInter,  // references attributes of two or more object classes
};

const char* ConstraintClassName(ConstraintClass c);

class HornClause {
 public:
  HornClause() = default;
  HornClause(std::string label, std::vector<Predicate> antecedents,
             Predicate consequent)
      : label_(std::move(label)),
        antecedents_(std::move(antecedents)),
        consequent_(std::move(consequent)) {}

  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  const std::vector<Predicate>& antecedents() const { return antecedents_; }
  const Predicate& consequent() const { return consequent_; }

  // All object classes referenced by any predicate, sorted + deduped.
  std::vector<ClassId> ReferencedClasses() const;

  // Paper §3.2: intra iff exactly one referenced class.
  ConstraintClass Classify() const;

  // Derivation provenance: ids of the two constraints this clause was
  // chained from during closure computation, or empty for base clauses.
  const std::vector<ConstraintId>& derived_from() const {
    return derived_from_;
  }
  void set_derived_from(std::vector<ConstraintId> src) {
    derived_from_ = std::move(src);
  }
  bool is_derived() const { return !derived_from_.empty(); }

  // Structural identity (label excluded): same antecedent *set* and the
  // same consequent. Used to deduplicate closure output.
  bool StructurallyEquals(const HornClause& other) const;
  size_t StructuralHash() const;

  std::string ToString(const Schema& schema) const;

 private:
  std::string label_;
  std::vector<Predicate> antecedents_;
  Predicate consequent_;
  std::vector<ConstraintId> derived_from_;
};

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_HORN_CLAUSE_H_

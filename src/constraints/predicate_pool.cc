#include "constraints/predicate_pool.h"

namespace sqopt {

PredId PredicatePool::Intern(const Predicate& p) {
  auto it = index_.find(p);
  if (it != index_.end()) return it->second;
  PredId id = static_cast<PredId>(predicates_.size());
  predicates_.push_back(p);
  index_.emplace(p, id);
  return id;
}

PredId PredicatePool::Find(const Predicate& p) const {
  auto it = index_.find(p);
  return it == index_.end() ? kInvalidPred : it->second;
}

}  // namespace sqopt

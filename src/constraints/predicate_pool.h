// Interning store for predicates. The paper (Section 3) stores the
// transitive closure compactly by "extracting all the predicates into a
// separate structure, and modifying the constraints to contain only
// pointers to relevant predicates in the structure". PredicatePool is
// that structure: each distinct predicate is stored once and referenced
// by a dense integer id, which also serves as the column index of the
// transformation table.
#ifndef SQOPT_CONSTRAINTS_PREDICATE_POOL_H_
#define SQOPT_CONSTRAINTS_PREDICATE_POOL_H_

#include <unordered_map>
#include <vector>

#include "expr/predicate.h"

namespace sqopt {

using PredId = int32_t;
inline constexpr PredId kInvalidPred = -1;

class PredicatePool {
 public:
  PredicatePool() = default;

  // Returns the id of `p`, interning it on first sight.
  PredId Intern(const Predicate& p);

  // Returns the id of `p` if already interned, else kInvalidPred.
  PredId Find(const Predicate& p) const;

  const Predicate& Get(PredId id) const { return predicates_[id]; }
  size_t size() const { return predicates_.size(); }

  const std::vector<Predicate>& predicates() const { return predicates_; }

 private:
  std::vector<Predicate> predicates_;
  std::unordered_map<Predicate, PredId, PredicateHash> index_;
};

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_PREDICATE_POOL_H_

#include "constraints/rule_derivation.h"

#include <map>
#include <set>
#include <string>

namespace sqopt {

namespace {

// Group of rows sharing one value of the antecedent attribute.
struct ValueGroup {
  Value value;
  std::vector<int64_t> rows;
};

std::vector<ValueGroup> GroupByAttr(const Extent& extent, AttrId attr_id) {
  std::map<Value, std::vector<int64_t>> groups;
  for (int64_t row = 0; row < extent.size(); ++row) {
    if (!extent.IsLive(row)) continue;
    groups[extent.ValueAt(row, attr_id)].push_back(row);
  }
  std::vector<ValueGroup> out;
  out.reserve(groups.size());
  for (auto& [value, rows] : groups) {
    out.push_back(ValueGroup{value, std::move(rows)});
  }
  return out;
}

std::string ValueLabel(const Value& v) {
  std::string s = v.ToString();
  // Strip quotes for compact labels.
  std::erase(s, '"');
  return s;
}

}  // namespace

Result<std::vector<HornClause>> DeriveStateRules(
    const ObjectStore& store, const RuleDerivationOptions& options) {
  const Schema& schema = store.schema();
  std::vector<HornClause> rules;

  for (const ObjectClass& oc : schema.classes()) {
    const Extent& extent = store.extent(oc.id);
    if (extent.live_count() < options.min_support) continue;
    std::vector<AttrId> layout = schema.LayoutOf(oc.id);

    // Global bounds and distinct counts per attribute.
    struct AttrSummary {
      bool numeric = false;
      Value min, max;
      int64_t distinct = 0;
    };
    std::map<AttrId, AttrSummary> summaries;
    for (AttrId attr : layout) {
      AttrSummary s;
      std::set<Value> seen;
      bool all_numeric = extent.live_count() > 0;
      for (int64_t row = 0; row < extent.size(); ++row) {
        if (!extent.IsLive(row)) continue;
        const Value v = extent.ValueAt(row, attr);
        seen.insert(v);
        if (!v.is_numeric()) all_numeric = false;
      }
      s.distinct = static_cast<int64_t>(seen.size());
      s.numeric = all_numeric;
      if (all_numeric && !seen.empty()) {
        s.min = *seen.begin();
        s.max = *seen.rbegin();
      }
      summaries[attr] = std::move(s);
    }

    // Global range rules: (empty antecedent) -> attr >= min / <= max.
    if (options.derive_range_rules) {
      for (AttrId attr : layout) {
        const AttrSummary& s = summaries[attr];
        if (!s.numeric || s.distinct < 2) continue;
        AttrRef ref{oc.id, attr};
        const std::string& attr_name = schema.attribute(ref).name;
        rules.emplace_back(
            "state:" + oc.name + "." + attr_name + ".lo",
            std::vector<Predicate>{},
            Predicate::AttrConst(ref, CompareOp::kGe, s.min));
        rules.emplace_back(
            "state:" + oc.name + "." + attr_name + ".hi",
            std::vector<Predicate>{},
            Predicate::AttrConst(ref, CompareOp::kLe, s.max));
      }
    }

    // Per-antecedent-value rules.
    for (AttrId a_attr : layout) {
      const AttrSummary& a_summary = summaries[a_attr];
      if (a_summary.distinct < 2 ||
          a_summary.distinct > options.max_antecedent_values) {
        continue;
      }
      AttrRef a_ref{oc.id, a_attr};
      const std::string& a_name = schema.attribute(a_ref).name;

      for (const ValueGroup& group : GroupByAttr(extent, a_attr)) {
        if (static_cast<int64_t>(group.rows.size()) < options.min_support) {
          continue;
        }
        Predicate antecedent =
            Predicate::AttrConst(a_ref, CompareOp::kEq, group.value);

        for (AttrId b_attr : layout) {
          if (b_attr == a_attr) continue;
          const AttrSummary& b_summary = summaries[b_attr];
          if (b_summary.distinct < 2) continue;  // globally constant
          AttrRef b_ref{oc.id, b_attr};
          const std::string& b_name = schema.attribute(b_ref).name;

          // Group-local value set.
          std::set<Value> values;
          for (int64_t row : group.rows) {
            values.insert(extent.ValueAt(row, b_attr));
          }

          if (options.derive_value_rules && values.size() == 1) {
            rules.emplace_back(
                "state:" + oc.name + "." + a_name + "=" +
                    ValueLabel(group.value) + "->" + b_name,
                std::vector<Predicate>{antecedent},
                Predicate::AttrConst(b_ref, CompareOp::kEq,
                                     *values.begin()));
            continue;  // a value rule subsumes the range rules
          }

          if (options.derive_conditional_ranges && b_summary.numeric &&
              !values.empty()) {
            const Value& lo = *values.begin();
            const Value& hi = *values.rbegin();
            // Only strictly tighter-than-global bounds carry knowledge.
            if (b_summary.max.Compare(hi).value_or(0) > 0) {
              rules.emplace_back(
                  "state:" + oc.name + "." + a_name + "=" +
                      ValueLabel(group.value) + "->" + b_name + ".hi",
                  std::vector<Predicate>{antecedent},
                  Predicate::AttrConst(b_ref, CompareOp::kLe, hi));
            }
            if (b_summary.min.Compare(lo).value_or(0) < 0) {
              rules.emplace_back(
                  "state:" + oc.name + "." + a_name + "=" +
                      ValueLabel(group.value) + "->" + b_name + ".lo",
                  std::vector<Predicate>{antecedent},
                  Predicate::AttrConst(b_ref, CompareOp::kGe, lo));
            }
          }
        }
      }
    }
  }
  return rules;
}

bool RuleHoldsOnStore(const ObjectStore& store, const HornClause& clause) {
  std::vector<ClassId> classes = clause.ReferencedClasses();
  if (classes.size() != 1) return true;  // conservative for inter-class
  ClassId cid = classes[0];
  const Extent& extent = store.extent(cid);

  auto eval = [&](const Predicate& p, int64_t row) {
    if (!p.is_attr_const()) return true;  // conservative
    const Value lhs = extent.ValueAt(row, p.lhs().attr_id);
    return EvalCompare(lhs, p.op(), p.rhs_value());
  };
  for (int64_t row = 0; row < extent.size(); ++row) {
    if (!extent.IsLive(row)) continue;
    bool antecedents_hold = true;
    for (const Predicate& a : clause.antecedents()) {
      if (!eval(a, row)) {
        antecedents_hold = false;
        break;
      }
    }
    if (antecedents_hold && !eval(clause.consequent(), row)) return false;
  }
  return true;
}

}  // namespace sqopt

// Automatic derivation of state-dependent semantic rules from the
// current database contents, after Siegel [Sie88] and Yu & Sun [YuS89]
// (both discussed in the paper's §1; §2 notes such rules "can easily be
// accommodated" by the optimizer). A derived rule holds in the CURRENT
// database state — it must be discarded or re-derived after updates,
// unlike the integrity constraints which hold in every state.
//
// Rule families mined:
//  * value rules:        A = a  ->  B = b      (per-group functional)
//  * range rules:        (empty) -> B >= min, B <= max   (global bounds)
//  * conditional ranges: A = a  ->  B <= max(B | A = a)  (group bounds,
//    emitted only when strictly tighter than the global bound)
#ifndef SQOPT_CONSTRAINTS_RULE_DERIVATION_H_
#define SQOPT_CONSTRAINTS_RULE_DERIVATION_H_

#include <vector>

#include "common/status.h"
#include "constraints/horn_clause.h"
#include "storage/object_store.h"

namespace sqopt {

struct RuleDerivationOptions {
  // Groups smaller than this are noise, not knowledge.
  int64_t min_support = 8;
  // Antecedent attributes with more distinct values than this are
  // skipped (a rule per customer id is useless).
  int64_t max_antecedent_values = 8;

  bool derive_value_rules = true;
  bool derive_range_rules = true;
  bool derive_conditional_ranges = true;
};

// Mines rules from `store`. Every returned clause is guaranteed to hold
// on the store's current contents (and is labeled "state:..."). The
// caller decides whether to add them to a ConstraintCatalog; remember
// to re-derive after updates.
Result<std::vector<HornClause>> DeriveStateRules(
    const ObjectStore& store, const RuleDerivationOptions& options = {});

// Verifies that `clause` holds on every object (intra-class clauses) or
// every same-class-pair combination implied by its classes (checked
// per class for attr-const predicates). Used by tests and by callers
// that re-validate state rules after updates. Conservative: returns
// false only on a definite violation.
bool RuleHoldsOnStore(const ObjectStore& store, const HornClause& clause);

}  // namespace sqopt

#endif  // SQOPT_CONSTRAINTS_RULE_DERIVATION_H_

#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "expr/implication.h"

namespace sqopt {

namespace {

// Predicates on `class_id`, attr-const only.
std::vector<Predicate> PredicatesOn(const std::vector<Predicate>& preds,
                                    ClassId class_id) {
  std::vector<Predicate> out;
  for (const Predicate& p : preds) {
    if (p.is_attr_const() && p.lhs().class_id == class_id) out.push_back(p);
  }
  return out;
}

// Selectivity product skipping predicates implied by the others on the
// same class: an implied predicate has marginal selectivity 1, so
// counting it would double-credit the filtering it duplicates. This is
// what lets the model judge redundant optional predicates unprofitable.
double MarginalClassSelectivity(const Schema& schema,
                                const DatabaseStats& stats,
                                const std::vector<Predicate>& class_preds) {
  double sel = 1.0;
  for (size_t i = 0; i < class_preds.size(); ++i) {
    std::vector<Predicate> others;
    for (size_t j = 0; j < class_preds.size(); ++j) {
      if (j != i) others.push_back(class_preds[j]);
    }
    if (!others.empty() && ConjunctionImplies(others, class_preds[i])) {
      continue;  // no marginal filtering
    }
    sel *= EstimateSelectivity(schema, stats, class_preds[i]);
  }
  return std::clamp(sel, kMinSelectivity, 1.0);
}

}  // namespace

bool CostModel::HasIndexedPredicate(
    ClassId id, const std::vector<Predicate>& predicates) const {
  for (const Predicate& p : predicates) {
    if (!p.is_attr_const()) continue;
    if (p.lhs().class_id != id) continue;
    if (schema_->attribute(p.lhs()).indexed) return true;
  }
  return false;
}

double CostModel::ClassAccessCost(ClassId id,
                                  const std::vector<Predicate>& predicates,
                                  double multiplier) const {
  double card = static_cast<double>(stats_->ClassCardinality(id));
  std::vector<Predicate> class_preds = PredicatesOn(predicates, id);
  double num_preds = static_cast<double>(class_preds.size());

  if (HasIndexedPredicate(id, class_preds)) {
    // Best indexed predicate drives the access path; the rest are
    // evaluated on the matches.
    double best_sel = 1.0;
    for (const Predicate& p : class_preds) {
      if (schema_->attribute(p.lhs()).indexed) {
        best_sel = std::min(best_sel,
                            EstimateSelectivity(*schema_, *stats_, p));
      }
    }
    double matches = std::max(card * best_sel, 1.0);
    double probe = params_.probe_weight * std::log2(std::max(card, 2.0));
    double residual =
        matches * std::max(num_preds - 1.0, 0.0) * params_.cpu_weight;
    return multiplier * (probe + Pages(matches) + residual);
  }
  // Full extent scan, every predicate evaluated on every instance.
  return multiplier * (Pages(card) + card * num_preds * params_.cpu_weight);
}

double CostModel::QueryCost(const Query& query) const {
  if (query.classes.empty()) return 0.0;
  std::vector<Predicate> preds = query.AllPredicates();

  // Effective size of each class after its selective predicates.
  auto effective_size = [&](ClassId id) {
    double card = static_cast<double>(stats_->ClassCardinality(id));
    return card * MarginalClassSelectivity(*schema_, *stats_,
                                           PredicatesOn(preds, id));
  };

  // Driving class: cheapest access, ties broken by smaller effective
  // size so selective classes start the traversal.
  ClassId start = query.classes[0];
  double best_key = ClassAccessCost(start, preds, 1.0);
  for (ClassId id : query.classes) {
    double key = ClassAccessCost(id, preds, 1.0);
    if (key < best_key ||
        (key == best_key && effective_size(id) < effective_size(start))) {
      best_key = key;
      start = id;
    }
  }

  double cost = ClassAccessCost(start, preds, 1.0);
  double size = std::max(effective_size(start), kMinSelectivity);
  std::set<ClassId> visited = {start};
  std::set<RelId> used_rels;

  // Join predicates are applied once both endpoints are visited.
  std::vector<bool> join_applied(query.join_predicates.size(), false);
  auto apply_joins = [&] {
    for (size_t i = 0; i < query.join_predicates.size(); ++i) {
      if (join_applied[i]) continue;
      const Predicate& jp = query.join_predicates[i];
      if (visited.count(jp.lhs().class_id) > 0 &&
          visited.count(jp.rhs_attr().class_id) > 0) {
        join_applied[i] = true;
        cost += size * params_.cpu_weight;
        size *= EstimateSelectivity(*schema_, *stats_, jp);
        size = std::max(size, kMinSelectivity);
      }
    }
  };
  apply_joins();

  while (visited.size() < query.classes.size()) {
    // Greedy: the expandable relationship minimizing the resulting size.
    RelId best_rel = kInvalidRel;
    double best_size = 0.0;
    for (RelId rel_id : query.relationships) {
      if (used_rels.count(rel_id) > 0) continue;
      const Relationship& rel = schema_->relationship(rel_id);
      ClassId from, to;
      if (visited.count(rel.a) > 0 && visited.count(rel.b) == 0) {
        from = rel.a;
        to = rel.b;
      } else if (visited.count(rel.b) > 0 && visited.count(rel.a) == 0) {
        from = rel.b;
        to = rel.a;
      } else {
        continue;
      }
      double from_card =
          static_cast<double>(stats_->ClassCardinality(from));
      double fanout =
          static_cast<double>(stats_->RelationshipCardinality(rel_id)) /
          std::max(from_card, 1.0);
      double to_sel = MarginalClassSelectivity(*schema_, *stats_,
                                               PredicatesOn(preds, to));
      double new_size = size * fanout * to_sel;
      if (best_rel == kInvalidRel || new_size < best_size) {
        best_rel = rel_id;

        best_size = new_size;
      }
    }

    if (best_rel == kInvalidRel) {
      // Disconnected remainder (ValidateQuery rejects this, but stay
      // robust): cross product with the cheapest unvisited class.
      for (ClassId id : query.classes) {
        if (visited.count(id) > 0) continue;
        cost += ClassAccessCost(id, preds, 1.0);
        size *= std::max(effective_size(id), kMinSelectivity);
        visited.insert(id);
        break;
      }
      apply_joins();
      continue;
    }

    const Relationship& rel = schema_->relationship(best_rel);
    ClassId from = visited.count(rel.a) > 0 ? rel.a : rel.b;
    ClassId to = rel.Other(from);
    double from_card = static_cast<double>(stats_->ClassCardinality(from));
    double fanout =
        static_cast<double>(stats_->RelationshipCardinality(best_rel)) /
        std::max(from_card, 1.0);
    double partners = size * fanout;
    std::vector<Predicate> to_preds = PredicatesOn(preds, to);

    cost += size * params_.probe_weight;  // pointer traversal per row
    double to_card = static_cast<double>(stats_->ClassCardinality(to));
    cost += Pages(std::min(partners, to_card));
    cost += partners * static_cast<double>(to_preds.size()) *
            params_.cpu_weight;

    size = std::max(partners * MarginalClassSelectivity(*schema_, *stats_,
                                                        to_preds),
                    kMinSelectivity);
    visited.insert(to);
    used_rels.insert(best_rel);
    apply_joins();
  }

  cost += size * params_.output_weight;
  return cost;
}

double CostModel::ResultCardinality(const Query& query) const {
  if (query.classes.empty()) return 0.0;
  std::vector<Predicate> preds = query.AllPredicates();
  double size = 1.0;
  for (ClassId id : query.classes) {
    double card = static_cast<double>(stats_->ClassCardinality(id));
    size *= card * MarginalClassSelectivity(*schema_, *stats_,
                                            PredicatesOn(preds, id));
  }
  // Each relationship edge acts as a join filter: fanout/card(b).
  for (RelId rel_id : query.relationships) {
    const Relationship& rel = schema_->relationship(rel_id);
    double ca = static_cast<double>(stats_->ClassCardinality(rel.a));
    double cb = static_cast<double>(stats_->ClassCardinality(rel.b));
    double pairs =
        static_cast<double>(stats_->RelationshipCardinality(rel_id));
    size *= pairs / std::max(ca * cb, 1.0);
  }
  for (const Predicate& jp : query.join_predicates) {
    size *= EstimateSelectivity(*schema_, *stats_, jp);
  }
  return std::max(size, 0.0);
}

bool RetainIsProfitable(const CostModelInterface& model, const Query& query,
                        const Predicate& p) {
  Query without = query;
  auto drop = [&](std::vector<Predicate>* preds) {
    preds->erase(std::remove(preds->begin(), preds->end(), p),
                 preds->end());
  };
  drop(&without.join_predicates);
  drop(&without.selective_predicates);
  // `query` must contain p for the comparison to be meaningful; if it
  // does not, retaining is vacuously unprofitable.
  if (without.join_predicates.size() == query.join_predicates.size() &&
      without.selective_predicates.size() ==
          query.selective_predicates.size()) {
    return false;
  }
  return model.QueryCost(query) < model.QueryCost(without);
}

bool EliminationIsProfitable(const CostModelInterface& model,
                             const Query& with, const Query& without) {
  return model.QueryCost(without) <= model.QueryCost(with);
}

double ParallelScanCost(double instances, int workers,
                        const CostModelParams& params) {
  if (workers < 1) workers = 1;
  double pages = instances / params.page_instances;
  if (instances > 0 && pages < 1.0) pages = 1.0;
  return pages / static_cast<double>(workers) +
         params.parallel_fanout_overhead * static_cast<double>(workers - 1);
}

int ChooseScanParallelism(double instances, int max_parallelism,
                          const CostModelParams& params,
                          int64_t morsel_size) {
  const double cap_rows = morsel_size > 0
                              ? static_cast<double>(morsel_size)
                              : params.morsel_rows;
  if (max_parallelism <= 1 || instances <= 0 || cap_rows <= 0) {
    return 1;
  }
  const double morsels = std::ceil(instances / cap_rows);
  int cap = max_parallelism;
  if (morsels < static_cast<double>(cap)) cap = static_cast<int>(morsels);
  int best = 1;
  double best_cost = ParallelScanCost(instances, 1, params);
  for (int workers = 2; workers <= cap; ++workers) {
    double cost = ParallelScanCost(instances, workers, params);
    if (cost < best_cost) {
      best_cost = cost;
      best = workers;
    }
  }
  return best;
}

}  // namespace sqopt

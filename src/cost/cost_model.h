// The "conventional optimizer" cost model the paper delegates to for the
// profitability function in §3.4 and for class elimination decisions.
// Estimates the I/O + CPU cost of evaluating a query as a greedy
// left-deep traversal of its relationship graph: pick the cheapest
// starting class (index access when an indexed selective predicate
// exists), then expand one relationship at a time, carrying intermediate
// cardinalities.
#ifndef SQOPT_COST_COST_MODEL_H_
#define SQOPT_COST_COST_MODEL_H_

#include <vector>

#include "cost/selectivity.h"
#include "cost/stats.h"
#include "query/query.h"

namespace sqopt {

struct CostModelParams {
  double page_instances = 32;    // objects per page (blocking factor)
  double cpu_weight = 0.02;      // cost units per predicate evaluation
  double probe_weight = 0.05;    // cost units per index/pointer probe
  double output_weight = 0.001;  // cost units per result row materialized
  // Fixed overhead added to the optimized side when profitability is
  // judged (models the transformation cost the paper includes in the
  // optimized query's cost).
  double optimization_overhead = 0.0;

  // --- Morsel-parallel scan (exec/ fan-out of the driving step) ---
  // Driving candidates per morsel when judging whether a scan is large
  // enough to fan out. Deliberately its own knob (seeded from the
  // executor default, kDefaultMorselSize) rather than tied to the
  // ServeOptions morsel size: this one only gates the planner's
  // decision.
  double morsel_rows = 2048;
  // Cost units charged per additional scan worker (thread wake-up,
  // per-morsel scheduling, and the merge of its row batch).
  double parallel_fanout_overhead = 0.25;
};

// Interface so the optimizer core can be tested with stub models.
class CostModelInterface {
 public:
  virtual ~CostModelInterface() = default;

  // Estimated execution cost of `query`, in abstract cost units.
  virtual double QueryCost(const Query& query) const = 0;
};

class CostModel : public CostModelInterface {
 public:
  CostModel(const Schema* schema, const DatabaseStats* stats,
            CostModelParams params = {})
      : schema_(schema), stats_(stats), params_(params) {}

  double QueryCost(const Query& query) const override;

  // Estimated cardinality of the query result.
  double ResultCardinality(const Query& query) const;

  // Cost of accessing one class given the selective predicates that
  // apply to it: index scan when an indexed predicate exists, else a
  // full extent scan. `multiplier` = how many times the access runs
  // (1 for the driving class, intermediate-size for inner classes).
  double ClassAccessCost(ClassId id,
                         const std::vector<Predicate>& predicates,
                         double multiplier) const;

  const CostModelParams& params() const { return params_; }

 private:
  double Pages(double instances) const {
    double pages = instances / params_.page_instances;
    return pages < 1.0 ? 1.0 : pages;
  }
  bool HasIndexedPredicate(ClassId id,
                           const std::vector<Predicate>& predicates) const;

  const Schema* schema_;
  const DatabaseStats* stats_;
  CostModelParams params_;
};

// Decision helpers shared by the SQO formulation step and the baselines.

// True if dropping `p` from `query` does not increase estimated cost,
// i.e. retaining p is NOT profitable. Exposed for symmetric use.
bool RetainIsProfitable(const CostModelInterface& model, const Query& query,
                        const Predicate& p);

// True if `without` (the query after a candidate class elimination) is
// estimated cheaper than `with`.
bool EliminationIsProfitable(const CostModelInterface& model,
                             const Query& with, const Query& without);

// Parallelism-aware scan cost: `instances` driving candidates fanned
// across `workers` morsel workers. The page cost divides across the
// workers; each additional worker charges a fixed fan-out overhead, so
// small scans are never cheaper parallel.
double ParallelScanCost(double instances, int workers,
                        const CostModelParams& params);

// The degree of parallelism in [1, max_parallelism] minimizing
// ParallelScanCost, additionally capped at one worker per morsel
// (fewer morsels than workers would leave workers idle). `morsel_size`
// is the executor's ACTUAL morsel size for the cap; non-positive falls
// back to params.morsel_rows. Returns 1 (sequential) for small scans
// or max_parallelism <= 1.
int ChooseScanParallelism(double instances, int max_parallelism,
                          const CostModelParams& params,
                          int64_t morsel_size = 0);

}  // namespace sqopt

#endif  // SQOPT_COST_COST_MODEL_H_

#include "cost/histogram.h"

#include <algorithm>
#include <cmath>

namespace sqopt {

Histogram Histogram::Build(const std::vector<Value>& values,
                           int num_buckets) {
  Histogram h;
  if (num_buckets < 1) num_buckets = 1;

  std::vector<double> xs;
  xs.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_numeric()) xs.push_back(v.AsDouble());
  }
  if (xs.size() < 2) return h;
  auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
  if (*lo_it == *hi_it) return h;  // constant attribute: no spread

  h.lo_ = *lo_it;
  h.hi_ = *hi_it;
  h.counts_.assign(num_buckets, 0);
  h.width_ = (h.hi_ - h.lo_) / num_buckets;
  for (double x : xs) {
    int b = static_cast<int>((x - h.lo_) / h.width_);
    if (b >= num_buckets) b = num_buckets - 1;  // x == hi
    if (b < 0) b = 0;
    h.counts_[b] += 1;
  }
  h.total_ = static_cast<int64_t>(xs.size());
  return h;
}

Histogram Histogram::FromParts(double lo, double hi, int64_t total,
                               std::vector<int64_t> counts) {
  Histogram h;
  if (total <= 0 || counts.empty() || hi <= lo) return h;
  h.lo_ = lo;
  h.hi_ = hi;
  h.width_ = (hi - lo) / static_cast<double>(counts.size());
  h.total_ = total;
  h.counts_ = std::move(counts);
  return h;
}

bool Histogram::Add(double x) {
  if (empty() || x < lo_ || x > hi_) return false;
  int b = static_cast<int>((x - lo_) / width_);
  if (b >= num_buckets()) b = num_buckets() - 1;
  if (b < 0) b = 0;
  counts_[b] += 1;
  total_ += 1;
  return true;
}

bool Histogram::Remove(double x) {
  if (empty() || x < lo_ || x > hi_) return false;
  int b = static_cast<int>((x - lo_) / width_);
  if (b >= num_buckets()) b = num_buckets() - 1;
  if (b < 0) b = 0;
  if (counts_[b] <= 0) return false;
  counts_[b] -= 1;
  total_ -= 1;
  return true;
}

double Histogram::Selectivity(CompareOp op, const Value& constant,
                              double fallback) const {
  if (empty() || !constant.is_numeric()) return fallback;
  double c = constant.AsDouble();
  double total = static_cast<double>(total_);

  // Mass strictly below c, with linear interpolation inside c's bucket.
  auto mass_below = [&](double x) {
    if (x <= lo_) return 0.0;
    if (x >= hi_) return total;
    int b = static_cast<int>((x - lo_) / width_);
    if (b >= num_buckets()) b = num_buckets() - 1;
    double below = 0.0;
    for (int i = 0; i < b; ++i) below += static_cast<double>(counts_[i]);
    double bucket_lo = lo_ + b * width_;
    double frac = (x - bucket_lo) / width_;
    below += frac * static_cast<double>(counts_[b]);
    return below;
  };

  // Mass equal to c, approximated as the bucket's share of one
  // "distinct step" — we spread a bucket's mass uniformly and charge an
  // epsilon slice. Without distinct counts per bucket the convention
  // below (bucket mass / bucket span in steps) is the textbook choice;
  // a simple bucket_count/total/8 works well at our scales.
  auto mass_equal = [&](double x) {
    if (x < lo_ || x > hi_) return 0.0;
    int b = static_cast<int>((x - lo_) / width_);
    if (b >= num_buckets()) b = num_buckets() - 1;
    return static_cast<double>(counts_[b]) / 8.0;
  };

  double sel = fallback * total;
  switch (op) {
    case CompareOp::kLt:
      sel = mass_below(c);
      break;
    case CompareOp::kLe:
      sel = mass_below(c) + mass_equal(c);
      break;
    case CompareOp::kGt:
      sel = total - mass_below(c) - mass_equal(c);
      break;
    case CompareOp::kGe:
      sel = total - mass_below(c);
      break;
    case CompareOp::kEq:
      sel = mass_equal(c);
      break;
    case CompareOp::kNe:
      sel = total - mass_equal(c);
      break;
  }
  return std::clamp(sel / total, 0.0, 1.0);
}

}  // namespace sqopt

// Equi-width histograms over numeric attributes. When attached to
// DatabaseStats they refine the selectivity estimates beyond the
// min/max-interpolation default, which sharpens the profitability
// analysis of optional predicates (§3.4) on skewed data.
#ifndef SQOPT_COST_HISTOGRAM_H_
#define SQOPT_COST_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "expr/predicate.h"
#include "types/value.h"

namespace sqopt {

class Histogram {
 public:
  // Builds an equi-width histogram with `num_buckets` buckets over the
  // numeric values in `values` (non-numeric values are ignored).
  // Returns an empty histogram (total() == 0) when fewer than 2
  // distinct numeric values exist.
  static Histogram Build(const std::vector<Value>& values,
                         int num_buckets = 16);

  // Persistence hook (src/persist/snapshot.cc): reassembles a
  // histogram from its serialized parts. `counts` empty or `total` 0
  // produce an empty histogram; the bucket width is recomputed from
  // [lo, hi] exactly as Build derives it.
  static Histogram FromParts(double lo, double hi, int64_t total,
                             std::vector<int64_t> counts);

  bool empty() const { return total_ == 0; }
  int64_t total() const { return total_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int64_t bucket_count(int b) const { return counts_[b]; }

  // Estimated fraction of values satisfying `x op constant`, assuming
  // uniform distribution within each bucket. Clamped to [0, 1]. Returns
  // `fallback` when the histogram is empty or the constant is not
  // numeric.
  double Selectivity(CompareOp op, const Value& constant,
                     double fallback) const;

  // Incremental maintenance for the commit path: adds/removes one
  // observation in place (touched bucket + total only). Returns false
  // when the update cannot be absorbed without a rebuild — the
  // histogram is empty, `x` falls outside [lo, hi] (the bucket range
  // would have to grow), or a removal would drive a count negative.
  // The caller falls back to a full recollection in that case.
  bool Add(double x);
  bool Remove(double x);

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  double width_ = 0.0;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;
};

}  // namespace sqopt

#endif  // SQOPT_COST_HISTOGRAM_H_

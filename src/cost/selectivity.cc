#include "cost/selectivity.h"

#include <algorithm>
#include <cmath>

namespace sqopt {

namespace {

double RangeFraction(const AttrStatsData& stats, CompareOp op,
                     const Value& constant) {
  if (!stats.min.has_value() || !stats.max.has_value() ||
      !constant.is_numeric() || !stats.min->is_numeric() ||
      !stats.max->is_numeric()) {
    return kDefaultRangeSelectivity;
  }
  double lo = stats.min->AsDouble();
  double hi = stats.max->AsDouble();
  double c = constant.AsDouble();
  if (hi <= lo) return kDefaultRangeSelectivity;
  double below = std::clamp((c - lo) / (hi - lo), 0.0, 1.0);
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return std::max(below, kMinSelectivity);
    case CompareOp::kGt:
    case CompareOp::kGe:
      return std::max(1.0 - below, kMinSelectivity);
    default:
      return kDefaultRangeSelectivity;
  }
}

}  // namespace

double EstimateSelectivity(const Schema& schema, const DatabaseStats& stats,
                           const Predicate& p) {
  if (p.is_attr_attr()) {
    if (p.op() == CompareOp::kEq) {
      const AttrStatsData* l = stats.AttrStatsFor(p.lhs());
      const AttrStatsData* r = stats.AttrStatsFor(p.rhs_attr());
      int64_t ndv_l = (l != nullptr && l->distinct_values > 0)
                          ? l->distinct_values
                          : 10;
      int64_t ndv_r = (r != nullptr && r->distinct_values > 0)
                          ? r->distinct_values
                          : 10;
      return std::max(1.0 / static_cast<double>(std::max(ndv_l, ndv_r)),
                      kMinSelectivity);
    }
    return kDefaultRangeSelectivity;
  }

  const AttrStatsData* attr_stats = stats.AttrStatsFor(p.lhs());
  const Attribute& attr = schema.attribute(p.lhs());
  int64_t ndv = 0;
  if (attr_stats != nullptr && attr_stats->distinct_values > 0) {
    ndv = attr_stats->distinct_values;
  } else if (attr.distinct_values > 0) {
    ndv = attr.distinct_values;
  }

  switch (p.op()) {
    case CompareOp::kEq:
      if (ndv > 0) {
        return std::max(1.0 / static_cast<double>(ndv), kMinSelectivity);
      }
      return kDefaultEqSelectivity;
    case CompareOp::kNe:
      if (ndv > 0) {
        return std::clamp(1.0 - 1.0 / static_cast<double>(ndv),
                          kMinSelectivity, 1.0);
      }
      return 1.0 - kDefaultEqSelectivity;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      // A histogram, when collected, beats min/max interpolation.
      if (attr_stats != nullptr && !attr_stats->histogram.empty()) {
        return std::max(
            attr_stats->histogram.Selectivity(p.op(), p.rhs_value(),
                                              kDefaultRangeSelectivity),
            kMinSelectivity);
      }
      if (attr_stats != nullptr) {
        return RangeFraction(*attr_stats, p.op(), p.rhs_value());
      }
      return kDefaultRangeSelectivity;
  }
  return kDefaultRangeSelectivity;
}

double ClassSelectivity(const Schema& schema, const DatabaseStats& stats,
                        const std::vector<Predicate>& predicates,
                        ClassId class_id) {
  double sel = 1.0;
  for (const Predicate& p : predicates) {
    if (!p.is_attr_const()) continue;
    if (p.lhs().class_id != class_id) continue;
    sel *= EstimateSelectivity(schema, stats, p);
  }
  return std::clamp(sel, kMinSelectivity, 1.0);
}

}  // namespace sqopt

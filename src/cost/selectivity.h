// Textbook selectivity estimation (System R defaults where statistics
// are missing). Drives both the cost model's profitability analysis and
// the executor's plan builder.
#ifndef SQOPT_COST_SELECTIVITY_H_
#define SQOPT_COST_SELECTIVITY_H_

#include <vector>

#include "cost/stats.h"
#include "expr/predicate.h"

namespace sqopt {

// Defaults used when statistics are unavailable.
inline constexpr double kDefaultEqSelectivity = 0.1;
inline constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

// Fraction of a class's instances satisfying `p` (attr-const). For
// attr-attr predicates, returns the join selectivity estimate
// 1/max(ndv(lhs), ndv(rhs)) for equality and the range default
// otherwise. Always in (0, 1].
double EstimateSelectivity(const Schema& schema, const DatabaseStats& stats,
                           const Predicate& p);

// Product of selectivities of the given predicates restricted to those
// whose lhs class is `class_id` (attr-const only). Clamped to
// [kMinSelectivity, 1].
double ClassSelectivity(const Schema& schema, const DatabaseStats& stats,
                        const std::vector<Predicate>& predicates,
                        ClassId class_id);

inline constexpr double kMinSelectivity = 1e-6;

}  // namespace sqopt

#endif  // SQOPT_COST_SELECTIVITY_H_

#include "cost/stats.h"

namespace sqopt {

int64_t DatabaseStats::ClassCardinality(ClassId id) const {
  auto it = class_cardinality_.find(id);
  if (it == class_cardinality_.end()) return kDefaultCardinality;
  return it->second < 1 ? 1 : it->second;
}

int64_t DatabaseStats::RelationshipCardinality(RelId id) const {
  auto it = rel_cardinality_.find(id);
  if (it == rel_cardinality_.end()) return kDefaultCardinality;
  return it->second < 0 ? 0 : it->second;
}

const AttrStatsData* DatabaseStats::AttrStatsFor(const AttrRef& ref) const {
  auto it = attr_stats_.find(ref);
  return it == attr_stats_.end() ? nullptr : &it->second;
}

}  // namespace sqopt

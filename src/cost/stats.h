// Database statistics consumed by selectivity estimation and the cost
// model: class cardinalities, relationship cardinalities, and
// per-attribute distinct-value counts / value ranges. Populated from an
// ObjectStore by exec::CollectStats or synthesized directly in tests.
#ifndef SQOPT_COST_STATS_H_
#define SQOPT_COST_STATS_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "catalog/schema.h"
#include "cost/histogram.h"
#include "types/value.h"

namespace sqopt {

struct AttrStatsData {
  int64_t distinct_values = 0;  // 0 = unknown
  std::optional<Value> min;     // populated for ordered types
  std::optional<Value> max;
  // Optional equi-width histogram (numeric attributes); empty() when
  // not collected. Refines range/equality selectivity when present.
  Histogram histogram;
};

class DatabaseStats {
 public:
  DatabaseStats() = default;

  void SetClassCardinality(ClassId id, int64_t cardinality) {
    class_cardinality_[id] = cardinality;
  }
  // Unknown classes default to kDefaultCardinality: the estimator must
  // never divide by zero or treat missing stats as empty.
  int64_t ClassCardinality(ClassId id) const;

  void SetRelationshipCardinality(RelId id, int64_t cardinality) {
    rel_cardinality_[id] = cardinality;
  }
  int64_t RelationshipCardinality(RelId id) const;

  void SetAttrStats(const AttrRef& ref, AttrStatsData data) {
    attr_stats_[ref] = std::move(data);
  }
  const AttrStatsData* AttrStatsFor(const AttrRef& ref) const;
  // In-place handle for incremental maintenance on the commit path;
  // null when no stats were ever collected for `ref` (the caller must
  // then collect from scratch instead of patching).
  AttrStatsData* MutableAttrStats(const AttrRef& ref) {
    auto it = attr_stats_.find(ref);
    return it == attr_stats_.end() ? nullptr : &it->second;
  }

  static constexpr int64_t kDefaultCardinality = 100;

  // Persistence hooks (src/persist/snapshot.cc): the raw maps, so a
  // snapshot can serialize collected statistics instead of forcing a
  // cold open to re-scan every extent.
  const std::unordered_map<ClassId, int64_t>& class_cardinalities() const {
    return class_cardinality_;
  }
  const std::unordered_map<RelId, int64_t>& rel_cardinalities() const {
    return rel_cardinality_;
  }
  const std::unordered_map<AttrRef, AttrStatsData, AttrRefHash>&
  attr_stats() const {
    return attr_stats_;
  }

 private:
  std::unordered_map<ClassId, int64_t> class_cardinality_;
  std::unordered_map<RelId, int64_t> rel_cardinality_;
  std::unordered_map<AttrRef, AttrStatsData, AttrRefHash> attr_stats_;
};

}  // namespace sqopt

#endif  // SQOPT_COST_STATS_H_

// The scan kernels live alone in this TU so the build can verify they
// vectorize (scripts/check_vectorize.sh greps the compiler's
// vectorization report for this file). Keep the Dense*/Sum/And loops
// free of calls and branches.
#include "exec/batch_filter.h"

#include <algorithm>

namespace sqopt {

namespace {

// ---------------------------------------------------------------------------
// Comparison functors. Doubles use IEEE compares, whose NaN behavior
// (every compare false) matches Value::Compare's "incomparable =>
// predicate false" — EXCEPT !=, where IEEE says true for NaN operands
// but EvalCompare says false; OpNeF encodes != as (a<b)|(a>b) so NaN
// still yields false. Int-vs-double comparisons convert the int side
// exactly as Value::AsDouble does.
// ---------------------------------------------------------------------------
struct OpEq {
  template <typename T>
  bool operator()(T a, T b) const {
    return a == b;
  }
};
struct OpNeI {
  bool operator()(int64_t a, int64_t b) const { return a != b; }
};
struct OpNeF {
  bool operator()(double a, double b) const { return a < b || a > b; }
};
struct OpLt {
  template <typename T>
  bool operator()(T a, T b) const {
    return a < b;
  }
};
struct OpLe {
  template <typename T>
  bool operator()(T a, T b) const {
    return a <= b;
  }
};
struct OpGt {
  template <typename T>
  bool operator()(T a, T b) const {
    return a > b;
  }
};
struct OpGe {
  template <typename T>
  bool operator()(T a, T b) const {
    return a >= b;
  }
};

// ---------------------------------------------------------------------------
// Dense kernels: byte mask over a contiguous typed run. These are the
// loops that must auto-vectorize.
// ---------------------------------------------------------------------------
template <typename T, typename Op>
void DenseMask(const T* __restrict v, int64_t n, T c, uint8_t* __restrict m) {
  for (int64_t i = 0; i < n; ++i) {
    m[i] = static_cast<uint8_t>(Op{}(v[i], c));
  }
}

// Int column compared against a double constant: element-wise convert,
// exactly Value::AsDouble.
template <typename Op>
void DenseMaskIntAsDouble(const int64_t* __restrict v, int64_t n, double c,
                          uint8_t* __restrict m) {
  for (int64_t i = 0; i < n; ++i) {
    m[i] = static_cast<uint8_t>(Op{}(static_cast<double>(v[i]), c));
  }
}

void AndMask(uint8_t* __restrict m, const uint8_t* __restrict m2,
             int64_t n) {
  for (int64_t i = 0; i < n; ++i) m[i] &= m2[i];
}

uint64_t SumMask(const uint8_t* __restrict m, int64_t n) {
  uint64_t sum = 0;
  for (int64_t i = 0; i < n; ++i) sum += m[i];
  return sum;
}

// Branch-free mask -> selection-vector compaction. `base` is added to
// every emitted offset (mask index 0 == segment offset `base`).
int64_t CompressMask(const uint8_t* __restrict m, int64_t n, int32_t base,
                     int32_t* __restrict sel) {
  int64_t out = 0;
  for (int64_t i = 0; i < n; ++i) {
    sel[out] = base + static_cast<int32_t>(i);
    out += (m[i] != 0);
  }
  return out;
}

// Branch-free selective (gather) kernels for later conjuncts, where
// the selection is already sparse.
template <typename T, typename Op>
int64_t GatherFilter(const T* __restrict v, T c,
                     const int32_t* __restrict sel_in, int64_t n,
                     int32_t* __restrict sel_out) {
  int64_t out = 0;
  for (int64_t k = 0; k < n; ++k) {
    const int32_t r = sel_in[k];
    sel_out[out] = r;
    out += Op{}(v[r], c) ? 1 : 0;
  }
  return out;
}

template <typename Op>
int64_t GatherFilterIntAsDouble(const int64_t* __restrict v, double c,
                                const int32_t* __restrict sel_in, int64_t n,
                                int32_t* __restrict sel_out) {
  int64_t out = 0;
  for (int64_t k = 0; k < n; ++k) {
    const int32_t r = sel_in[k];
    sel_out[out] = r;
    out += Op{}(static_cast<double>(v[r]), c) ? 1 : 0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Op dispatch
// ---------------------------------------------------------------------------
void MaskI64(const int64_t* v, int64_t n, int64_t c, CompareOp op,
             uint8_t* m) {
  switch (op) {
    case CompareOp::kEq:
      return DenseMask<int64_t, OpEq>(v, n, c, m);
    case CompareOp::kNe:
      return DenseMask<int64_t, OpNeI>(v, n, c, m);
    case CompareOp::kLt:
      return DenseMask<int64_t, OpLt>(v, n, c, m);
    case CompareOp::kLe:
      return DenseMask<int64_t, OpLe>(v, n, c, m);
    case CompareOp::kGt:
      return DenseMask<int64_t, OpGt>(v, n, c, m);
    case CompareOp::kGe:
      return DenseMask<int64_t, OpGe>(v, n, c, m);
  }
}

void MaskF64(const double* v, int64_t n, double c, CompareOp op,
             uint8_t* m) {
  switch (op) {
    case CompareOp::kEq:
      return DenseMask<double, OpEq>(v, n, c, m);
    case CompareOp::kNe:
      return DenseMask<double, OpNeF>(v, n, c, m);
    case CompareOp::kLt:
      return DenseMask<double, OpLt>(v, n, c, m);
    case CompareOp::kLe:
      return DenseMask<double, OpLe>(v, n, c, m);
    case CompareOp::kGt:
      return DenseMask<double, OpGt>(v, n, c, m);
    case CompareOp::kGe:
      return DenseMask<double, OpGe>(v, n, c, m);
  }
}

void MaskI64AsF64(const int64_t* v, int64_t n, double c, CompareOp op,
                  uint8_t* m) {
  switch (op) {
    case CompareOp::kEq:
      return DenseMaskIntAsDouble<OpEq>(v, n, c, m);
    case CompareOp::kNe:
      return DenseMaskIntAsDouble<OpNeF>(v, n, c, m);
    case CompareOp::kLt:
      return DenseMaskIntAsDouble<OpLt>(v, n, c, m);
    case CompareOp::kLe:
      return DenseMaskIntAsDouble<OpLe>(v, n, c, m);
    case CompareOp::kGt:
      return DenseMaskIntAsDouble<OpGt>(v, n, c, m);
    case CompareOp::kGe:
      return DenseMaskIntAsDouble<OpGe>(v, n, c, m);
  }
}

int64_t GatherI64(const int64_t* v, int64_t c, CompareOp op,
                  const int32_t* sel_in, int64_t n, int32_t* sel_out) {
  switch (op) {
    case CompareOp::kEq:
      return GatherFilter<int64_t, OpEq>(v, c, sel_in, n, sel_out);
    case CompareOp::kNe:
      return GatherFilter<int64_t, OpNeI>(v, c, sel_in, n, sel_out);
    case CompareOp::kLt:
      return GatherFilter<int64_t, OpLt>(v, c, sel_in, n, sel_out);
    case CompareOp::kLe:
      return GatherFilter<int64_t, OpLe>(v, c, sel_in, n, sel_out);
    case CompareOp::kGt:
      return GatherFilter<int64_t, OpGt>(v, c, sel_in, n, sel_out);
    case CompareOp::kGe:
      return GatherFilter<int64_t, OpGe>(v, c, sel_in, n, sel_out);
  }
  return 0;
}

int64_t GatherF64(const double* v, double c, CompareOp op,
                  const int32_t* sel_in, int64_t n, int32_t* sel_out) {
  switch (op) {
    case CompareOp::kEq:
      return GatherFilter<double, OpEq>(v, c, sel_in, n, sel_out);
    case CompareOp::kNe:
      return GatherFilter<double, OpNeF>(v, c, sel_in, n, sel_out);
    case CompareOp::kLt:
      return GatherFilter<double, OpLt>(v, c, sel_in, n, sel_out);
    case CompareOp::kLe:
      return GatherFilter<double, OpLe>(v, c, sel_in, n, sel_out);
    case CompareOp::kGt:
      return GatherFilter<double, OpGt>(v, c, sel_in, n, sel_out);
    case CompareOp::kGe:
      return GatherFilter<double, OpGe>(v, c, sel_in, n, sel_out);
  }
  return 0;
}

int64_t GatherI64AsF64(const int64_t* v, double c, CompareOp op,
                       const int32_t* sel_in, int64_t n, int32_t* sel_out) {
  switch (op) {
    case CompareOp::kEq:
      return GatherFilterIntAsDouble<OpEq>(v, c, sel_in, n, sel_out);
    case CompareOp::kNe:
      return GatherFilterIntAsDouble<OpNeF>(v, c, sel_in, n, sel_out);
    case CompareOp::kLt:
      return GatherFilterIntAsDouble<OpLt>(v, c, sel_in, n, sel_out);
    case CompareOp::kLe:
      return GatherFilterIntAsDouble<OpLe>(v, c, sel_in, n, sel_out);
    case CompareOp::kGt:
      return GatherFilterIntAsDouble<OpGt>(v, c, sel_in, n, sel_out);
    case CompareOp::kGe:
      return GatherFilterIntAsDouble<OpGe>(v, c, sel_in, n, sel_out);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Per-conjunct dispatch glue
// ---------------------------------------------------------------------------

// A conjunct gets a typed kernel iff it was classified kNumericConst
// AND the chunk at hand is typed (a demoted chunk silently falls back
// to the generic path — correctness never depends on encodings).
bool KernelEligible(PredicateClass cls, const ColumnView& col) {
  return cls == PredicateClass::kNumericConst &&
         col.encoding != ColumnEncoding::kGeneric;
}

// Dense mask for conjunct `p` over col[lo, lo+n). Pre: KernelEligible.
void DenseMaskFor(const ColumnView& col, const Predicate& p, int64_t lo,
                  int64_t n, uint8_t* m) {
  const Value& c = p.rhs_value();
  if (col.encoding == ColumnEncoding::kInt64) {
    if (c.type() == ValueType::kInt) {
      MaskI64(col.i64 + lo, n, c.int_value(), p.op(), m);
    } else {
      MaskI64AsF64(col.i64 + lo, n, c.double_value(), p.op(), m);
    }
  } else {
    MaskF64(col.f64 + lo, n, c.AsDouble(), p.op(), m);
  }
}

// Gather filter for conjunct `p` over the selection. Pre: KernelEligible.
int64_t GatherFor(const ColumnView& col, const Predicate& p,
                  const int32_t* sel_in, int64_t n, int32_t* sel_out) {
  const Value& c = p.rhs_value();
  if (col.encoding == ColumnEncoding::kInt64) {
    if (c.type() == ValueType::kInt) {
      return GatherI64(col.i64, c.int_value(), p.op(), sel_in, n, sel_out);
    }
    return GatherI64AsF64(col.i64, c.double_value(), p.op(), sel_in, n,
                          sel_out);
  }
  return GatherF64(col.f64, c.AsDouble(), p.op(), sel_in, n, sel_out);
}

// Row-at-a-time fallback over the selection: exact EvalCompare
// semantics for whatever the chunk holds.
int64_t GenericFilter(const ColumnView& col, const Predicate& p,
                      const int32_t* sel_in, int64_t n, int32_t* sel_out) {
  int64_t out = 0;
  if (col.encoding == ColumnEncoding::kGeneric) {
    for (int64_t k = 0; k < n; ++k) {
      const int32_t r = sel_in[k];
      if (EvalCompare(col.generic[r], p.op(), p.rhs_value())) {
        sel_out[out++] = r;
      }
    }
    return out;
  }
  for (int64_t k = 0; k < n; ++k) {
    const int32_t r = sel_in[k];
    if (EvalCompare(col.Get(r), p.op(), p.rhs_value())) {
      sel_out[out++] = r;
    }
  }
  return out;
}

// The null column a conjunct on an unresolvable attribute reads:
// every comparison is false, but the evals still count.
ColumnView NullColumn() { return ColumnView{}; }

// Filters segment offsets [lo, hi) of `batch`, appending surviving
// GLOBAL row ids to *out. `slots` parallels conjuncts (-1 =
// unresolvable attribute).
void FilterSegmentRange(const SegmentBatch& batch,
                        const std::vector<Predicate>& conjuncts,
                        const std::vector<PredicateClass>& classes,
                        const std::vector<int>& slots, int64_t lo,
                        int64_t hi, FilterScratch* scratch,
                        std::vector<int64_t>* out,
                        uint64_t* predicate_evals) {
  const int64_t n = hi - lo;
  if (n <= 0) return;
  scratch->mask.resize(static_cast<size_t>(n));
  scratch->mask2.resize(static_cast<size_t>(n));
  scratch->sel.resize(static_cast<size_t>(n));
  scratch->sel2.resize(static_cast<size_t>(n));
  uint8_t* mask = scratch->mask.data();
  uint8_t* mask2 = scratch->mask2.data();
  int32_t* sel = scratch->sel.data();
  int32_t* sel2 = scratch->sel2.data();

  auto column_of = [&](size_t k) {
    return slots[k] < 0 ? NullColumn()
                        : batch.column(static_cast<size_t>(slots[k]));
  };

  // Tombstoned rows never reach a conjunct. A fully-live run stays
  // "dense" (no selection vector) so the first conjunct can run as a
  // contiguous SIMD mask; otherwise start from the live offsets.
  const uint64_t live_in_range = SumMask(batch.live + lo, n);
  bool dense = live_in_range == static_cast<uint64_t>(n);
  int64_t count;
  size_t k = 0;
  if (dense) {
    count = n;
    // Dense phase: first conjunct (or fused adjacent pair) as
    // contiguous mask kernels, then compress once.
    if (k < conjuncts.size()) {
      const ColumnView col = column_of(k);
      if (KernelEligible(classes[k], col)) {
        DenseMaskFor(col, conjuncts[k], lo, n, mask);
        *predicate_evals += static_cast<uint64_t>(n);
        bool fused = false;
        if (k + 1 < conjuncts.size()) {
          const ColumnView col2 = column_of(k + 1);
          if (KernelEligible(classes[k + 1], col2)) {
            // Fused pair: both masks in one pass over the segment —
            // the optimizer's interval predicates (lo <= a AND
            // a <= hi) become a branch-free min/max check. The second
            // conjunct "ran" only on the first's survivors, so it
            // counts SumMask(mask) evals, same as short-circuiting.
            DenseMaskFor(col2, conjuncts[k + 1], lo, n, mask2);
            *predicate_evals += SumMask(mask, n);
            AndMask(mask, mask2, n);
            fused = true;
          }
        }
        count = CompressMask(mask, n, static_cast<int32_t>(lo), sel);
        k += fused ? 2 : 1;
        dense = false;
      } else {
        // No dense kernel for the first conjunct: materialize the
        // trivial selection and let the gather phase handle it.
        for (int64_t i = 0; i < n; ++i) {
          sel[i] = static_cast<int32_t>(lo + i);
        }
        dense = false;
      }
    }
  } else {
    count = CompressMask(batch.live + lo, n, static_cast<int32_t>(lo), sel);
  }

  if (dense) {
    // No conjuncts at all: every row in the fully-live range survives.
    out->reserve(out->size() + static_cast<size_t>(n));
    for (int64_t i = lo; i < hi; ++i) out->push_back(batch.base_row + i);
    return;
  }

  for (; k < conjuncts.size() && count > 0; ++k) {
    *predicate_evals += static_cast<uint64_t>(count);
    if (slots[k] < 0) {
      // Unresolvable attribute: the lhs is null for every row, so every
      // comparison is false — the evals above still count.
      count = 0;
      continue;
    }
    const ColumnView col = column_of(k);
    if (KernelEligible(classes[k], col)) {
      count = GatherFor(col, conjuncts[k], sel, count, sel2);
    } else {
      count = GenericFilter(col, conjuncts[k], sel, count, sel2);
    }
    std::swap(sel, sel2);
  }

  out->reserve(out->size() + static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    out->push_back(batch.base_row + sel[i]);
  }
}

}  // namespace

void FilterRows(const Extent& extent,
                const std::vector<Predicate>& conjuncts,
                const std::vector<PredicateClass>& classes, int64_t begin,
                int64_t end, FilterScratch* scratch,
                std::vector<int64_t>* out, uint64_t* predicate_evals) {
  if (begin < 0) begin = 0;
  if (end > extent.size()) end = extent.size();
  if (begin >= end) return;

  std::vector<PredicateClass> local_classes;
  const std::vector<PredicateClass>* effective = &classes;
  if (classes.size() != conjuncts.size()) {
    local_classes.reserve(conjuncts.size());
    for (const Predicate& p : conjuncts) {
      local_classes.push_back(ClassifyPredicate(p));
    }
    effective = &local_classes;
  }
  std::vector<int> slots;
  slots.reserve(conjuncts.size());
  for (const Predicate& p : conjuncts) {
    slots.push_back(extent.SlotOf(p.lhs().attr_id));
  }

  const int64_t first_seg = begin / Extent::kSegmentRows;
  const int64_t last_seg = (end - 1) / Extent::kSegmentRows;
  for (int64_t s = first_seg; s <= last_seg; ++s) {
    const SegmentBatch batch = extent.Batch(s);
    const int64_t lo = std::max<int64_t>(0, begin - batch.base_row);
    const int64_t hi = std::min<int64_t>(batch.rows, end - batch.base_row);
    FilterSegmentRange(batch, conjuncts, *effective, slots, lo, hi, scratch,
                       out, predicate_evals);
  }
}

void FilterCandidates(const Extent& extent,
                      const std::vector<Predicate>& conjuncts,
                      const std::vector<int64_t>& candidates, int64_t begin,
                      int64_t end, std::vector<int64_t>* out,
                      uint64_t* predicate_evals) {
  Value scratch;
  for (int64_t i = begin; i < end; ++i) {
    const int64_t row = candidates[static_cast<size_t>(i)];
    bool keep = true;
    for (const Predicate& p : conjuncts) {
      ++*predicate_evals;
      const Value& lhs = extent.ValueRef(row, p.lhs().attr_id, &scratch);
      if (!EvalCompare(lhs, p.op(), p.rhs_value())) {
        keep = false;
        break;
      }
    }
    if (keep) out->push_back(row);
  }
}

}  // namespace sqopt

// Batch-at-a-time driving-step filter: evaluates a step's residual
// conjuncts (attr-const predicates) over whole segment ranges instead
// of row-at-a-time, producing the surviving row ids in row order.
//
// Dense ranges (every row of a contiguous run live) run each numeric
// conjunct as a branch-free compare loop over the segment's contiguous
// typed column — the auto-vectorizable kernels this TU exists to
// isolate (CI greps the compiler's vectorization report for it) — then
// compress the byte mask into a selection vector. Adjacent numeric
// conjuncts fuse into a single two-mask pass, so the optimizer's
// interval predicates (lo <= attr AND attr <= hi) become one
// branch-free min/max check per row. Sparse selections, generic-
// encoded chunks, and non-numeric constants fall back to per-row
// EvalCompare over the selection vector.
//
// Counting contract: predicate_evals advances exactly as the
// short-circuiting row-at-a-time loop would — conjunct k counts one
// eval per row that survived conjuncts 0..k-1, dead rows count
// nothing — so per-morsel meters still sum to the sequential meter and
// differential tests against reference_executor stay exact.
#ifndef SQOPT_EXEC_BATCH_FILTER_H_
#define SQOPT_EXEC_BATCH_FILTER_H_

#include <cstdint>
#include <vector>

#include "exec/plan.h"
#include "expr/predicate.h"
#include "storage/extent.h"

namespace sqopt {

// Reusable per-worker scratch buffers so the per-segment masks and
// selection vectors never reallocate inside the scan loop.
struct FilterScratch {
  std::vector<uint8_t> mask;
  std::vector<uint8_t> mask2;
  std::vector<int32_t> sel;
  std::vector<int32_t> sel2;
};

// Filters extent rows [begin, end) through `conjuncts`, appending the
// surviving row ids to *out in ascending row order. Tombstoned rows
// are skipped before any conjunct runs. `classes` parallels
// `conjuncts` (see ClassifyPredicate); pass an empty vector to have
// the filter classify on the fly. Adds the evaluations performed to
// *predicate_evals under the counting contract above.
void FilterRows(const Extent& extent,
                const std::vector<Predicate>& conjuncts,
                const std::vector<PredicateClass>& classes, int64_t begin,
                int64_t end, FilterScratch* scratch,
                std::vector<int64_t>* out, uint64_t* predicate_evals);

// Same contract over an explicit candidate row list (index range
// scans): rows `candidates[begin..end)` are already live and already
// counted as scanned by the caller; conjuncts run per row in candidate
// order with short-circuit counting.
void FilterCandidates(const Extent& extent,
                      const std::vector<Predicate>& conjuncts,
                      const std::vector<int64_t>& candidates, int64_t begin,
                      int64_t end, std::vector<int64_t>* out,
                      uint64_t* predicate_evals);

}  // namespace sqopt

#endif  // SQOPT_EXEC_BATCH_FILTER_H_

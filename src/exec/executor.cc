#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "exec/batch_filter.h"
#include "exec/plan_builder.h"
#include "storage/morsel.h"

namespace sqopt {

double ExecutionMeter::CostUnits(const CostModelParams& params) const {
  double pages =
      static_cast<double>(instances_scanned) / params.page_instances;
  if (instances_scanned > 0 && pages < 1.0) pages = 1.0;
  return pages +
         params.cpu_weight * static_cast<double>(predicate_evals) +
         params.probe_weight *
             static_cast<double>(index_probes + pointer_traversals) +
         params.output_weight * static_cast<double>(rows_out);
}

double ExecutionMeter::ParallelSpeedup() const {
  if (parallel_wall_micros == 0) return 0.0;
  return static_cast<double>(parallel_busy_micros) /
         static_cast<double>(parallel_wall_micros);
}

namespace {

std::string RowKey(const std::vector<Value>& row) {
  std::string k;
  for (const Value& v : row) {
    k += v.ToString();
    k += '\x1f';
  }
  return k;
}

}  // namespace

bool ResultSet::SameRows(const ResultSet& other) const {
  if (rows.size() != other.rows.size()) return false;
  std::multiset<std::string> a, b;
  for (const auto& row : rows) a.insert(RowKey(row));
  for (const auto& row : other.rows) b.insert(RowKey(row));
  return a == b;
}

bool ResultSet::SameDistinctRows(const ResultSet& other) const {
  std::set<std::string> a, b;
  for (const auto& row : rows) a.insert(RowKey(row));
  for (const auto& row : other.rows) b.insert(RowKey(row));
  return a == b;
}

namespace {

using Binding = std::vector<int64_t>;  // class id -> row (-1 unbound)

bool EvalPredicate(const ObjectStore& store, const Binding& binding,
                   const Predicate& p, ExecutionMeter* meter) {
  ++meter->predicate_evals;
  Value lhs_scratch, rhs_scratch;
  const Value& lhs =
      store.extent(p.lhs().class_id)
          .ValueRef(binding[p.lhs().class_id], p.lhs().attr_id,
                    &lhs_scratch);
  if (p.is_attr_const()) {
    return EvalCompare(lhs, p.op(), p.rhs_value());
  }
  const Value& rhs =
      store.extent(p.rhs_attr().class_id)
          .ValueRef(binding[p.rhs_attr().class_id], p.rhs_attr().attr_id,
                    &rhs_scratch);
  return EvalCompare(lhs, p.op(), rhs);
}

// Which join predicates / residual (cycle-closing) relationships
// become checkable after each step: both endpoint classes bound, and
// not checkable earlier. Immutable once built; shared by every morsel.
struct StepSchedule {
  std::vector<std::vector<Predicate>> joins_at;
  std::vector<std::vector<RelId>> rels_at;
};

Result<StepSchedule> BuildStepSchedule(const Schema& schema,
                                       const Plan& plan) {
  StepSchedule sched;
  sched.joins_at.resize(plan.steps.size());
  sched.rels_at.resize(plan.steps.size());
  std::set<ClassId> bound;
  std::vector<bool> placed(plan.join_predicates.size(), false);
  std::vector<bool> rel_placed(plan.residual_relationships.size(), false);
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    bound.insert(plan.steps[s].class_id);
    for (size_t j = 0; j < plan.join_predicates.size(); ++j) {
      if (placed[j]) continue;
      const Predicate& p = plan.join_predicates[j];
      if (bound.count(p.lhs().class_id) > 0 &&
          bound.count(p.rhs_attr().class_id) > 0) {
        sched.joins_at[s].push_back(p);
        placed[j] = true;
      }
    }
    for (size_t r = 0; r < plan.residual_relationships.size(); ++r) {
      if (rel_placed[r]) continue;
      const Relationship& rel =
          schema.relationship(plan.residual_relationships[r]);
      if (bound.count(rel.a) > 0 && bound.count(rel.b) > 0) {
        sched.rels_at[s].push_back(rel.id);
        rel_placed[r] = true;
      }
    }
  }
  for (size_t j = 0; j < plan.join_predicates.size(); ++j) {
    if (!placed[j]) {
      return Status::InvalidArgument(
          "join predicate references a class not covered by the plan");
    }
  }
  for (size_t r = 0; r < plan.residual_relationships.size(); ++r) {
    if (!rel_placed[r]) {
      return Status::InvalidArgument(
          "residual relationship not covered by the plan's steps");
    }
  }
  return sched;
}

// Runs driving candidates [begin, end) through the whole pipeline —
// driving residual filters, expansion steps, join predicates, cycle
// filters, projection — appending result rows to `out` and work counts
// to `meter`. `candidates` null means the identity scan (candidate
// position IS the extent row), so full scans never materialize a
// 0..n-1 vector. Candidate-generation accounting (index probe,
// instances scanned at the driving step) is the CALLER's job, so
// per-morsel meters sum exactly to a sequential run's meter. Output
// row order is lexicographic in (candidate position, partner position
// per step), so concatenating per-morsel outputs in morsel order
// reproduces the sequential order. `prov` (optional) receives the
// driving row of every appended output row, in output order.
void RunPipeline(const ObjectStore& store, const Plan& plan,
                 const StepSchedule& sched,
                 const std::vector<int64_t>* candidates, int64_t begin,
                 int64_t end, ResultSet* out, ExecutionMeter* meter,
                 std::vector<int64_t>* prov = nullptr) {
  const Schema& schema = store.schema();
  size_t num_classes = schema.num_classes();

  // Membership filter for a cycle-closing relationship.
  auto linked = [&](RelId rel_id, const Binding& binding) {
    const Relationship& rel = schema.relationship(rel_id);
    const std::vector<int64_t>& partners =
        store.Partners(rel_id, rel.a, binding[rel.a]);
    ++meter->pointer_traversals;
    return std::find(partners.begin(), partners.end(), binding[rel.b]) !=
           partners.end();
  };

  // Driving step, batch-at-a-time: residual conjuncts run over whole
  // segment column ranges (selection vectors + vectorized kernels, see
  // exec/batch_filter.h) instead of row-at-a-time. An identity scan
  // walks row SLOTS, so tombstoned rows are skipped inside the filter;
  // index candidates never contain dead rows (Delete drops their
  // entries). The eval-counting contract keeps per-morsel meters
  // summing exactly to a sequential run's.
  const AccessStep& drive = plan.steps[0];
  const Extent& drive_extent = store.extent(drive.class_id);
  std::vector<int64_t> survivors;
  if (candidates == nullptr) {
    FilterScratch scratch;
    FilterRows(drive_extent, drive.residual_predicates,
               drive.residual_classes, begin, end, &scratch, &survivors,
               &meter->predicate_evals);
  } else {
    FilterCandidates(drive_extent, drive.residual_predicates, *candidates,
                     begin, end, &survivors, &meter->predicate_evals);
  }

  // Join predicates and cycle filters placed at step 0 reference only
  // the driving class; apply them per surviving row, in the same order
  // (and with the same short-circuit counting) as the expansion steps
  // apply theirs.
  if (!sched.joins_at[0].empty() || !sched.rels_at[0].empty()) {
    auto eval_at_drive_row = [&](const Predicate& p, int64_t row) {
      ++meter->predicate_evals;
      Value lhs_scratch, rhs_scratch;
      const Value& lhs =
          drive_extent.ValueRef(row, p.lhs().attr_id, &lhs_scratch);
      if (p.is_attr_const()) return EvalCompare(lhs, p.op(), p.rhs_value());
      const Value& rhs =
          drive_extent.ValueRef(row, p.rhs_attr().attr_id, &rhs_scratch);
      return EvalCompare(lhs, p.op(), rhs);
    };
    size_t w = 0;
    for (int64_t row : survivors) {
      bool keep = true;
      for (const Predicate& p : sched.joins_at[0]) {
        if (!eval_at_drive_row(p, row)) {
          keep = false;
          break;
        }
      }
      for (RelId rel_id : sched.rels_at[0]) {
        if (!keep) break;
        const Relationship& rel = schema.relationship(rel_id);
        const std::vector<int64_t>& partners =
            store.Partners(rel_id, rel.a, row);
        ++meter->pointer_traversals;
        if (std::find(partners.begin(), partners.end(), row) ==
            partners.end()) {
          keep = false;
        }
      }
      if (keep) survivors[w++] = row;
    }
    survivors.resize(w);
  }

  // Single-step plan: fuse filter→project per morsel — project the
  // surviving rows straight out of the columns, no Binding vectors.
  if (plan.steps.size() == 1) {
    std::vector<int> proj_slots;
    proj_slots.reserve(plan.projection.size());
    for (const AttrRef& ref : plan.projection) {
      proj_slots.push_back(drive_extent.SlotOf(ref.attr_id));
    }
    out->rows.reserve(out->rows.size() + survivors.size());
    for (int64_t row : survivors) {
      const SegmentBatch batch =
          drive_extent.Batch(row / Extent::kSegmentRows);
      const size_t offset = static_cast<size_t>(row - batch.base_row);
      std::vector<Value> result_row;
      result_row.reserve(proj_slots.size());
      for (int slot : proj_slots) {
        result_row.push_back(slot < 0
                                 ? Value::Null()
                                 : batch.cols[static_cast<size_t>(slot)]
                                       .Get(offset));
      }
      out->rows.push_back(std::move(result_row));
      if (prov != nullptr) prov->push_back(row);
    }
    return;
  }

  std::vector<Binding> bindings;
  bindings.reserve(survivors.size());
  for (int64_t row : survivors) {
    Binding binding(num_classes, -1);
    binding[drive.class_id] = row;
    bindings.push_back(std::move(binding));
  }

  // Expansion steps.
  for (size_t s = 1; s < plan.steps.size(); ++s) {
    const AccessStep& step = plan.steps[s];
    std::vector<Binding> next;
    for (const Binding& binding : bindings) {
      int64_t from_row = binding[step.from_class];
      const std::vector<int64_t>& partners =
          store.Partners(step.via_rel, step.from_class, from_row);
      ++meter->pointer_traversals;
      meter->instances_scanned += partners.size();
      for (int64_t partner : partners) {
        Binding extended = binding;
        extended[step.class_id] = partner;
        bool keep = true;
        for (const Predicate& p : step.residual_predicates) {
          if (!EvalPredicate(store, extended, p, meter)) {
            keep = false;
            break;
          }
        }
        for (const Predicate& p : sched.joins_at[s]) {
          if (!keep) break;
          if (!EvalPredicate(store, extended, p, meter)) keep = false;
        }
        for (RelId rel_id : sched.rels_at[s]) {
          if (!keep) break;
          if (!linked(rel_id, extended)) keep = false;
        }
        if (keep) next.push_back(std::move(extended));
      }
    }
    bindings = std::move(next);
  }

  // Projection.
  out->rows.reserve(out->rows.size() + bindings.size());
  for (const Binding& binding : bindings) {
    std::vector<Value> row;
    row.reserve(plan.projection.size());
    for (const AttrRef& ref : plan.projection) {
      row.push_back(store.extent(ref.class_id)
                        .ValueAt(binding[ref.class_id], ref.attr_id));
    }
    out->rows.push_back(std::move(row));
    if (prov != nullptr) prov->push_back(binding[drive.class_id]);
  }
}

// Shared state of one parallel scan. Heap-allocated behind shared_ptr:
// helper tasks that the pool dequeues after the query already finished
// (every morsel claimed) find no work and only touch the atomic
// cursor, which this object keeps alive.
struct MorselRun {
  const ObjectStore* store = nullptr;
  const Plan* plan = nullptr;
  const StepSchedule* sched = nullptr;
  const std::vector<int64_t>* candidates = nullptr;  // null = identity scan
  std::vector<Morsel> morsels;

  std::atomic<int64_t> next{0};  // morsel claim cursor
  std::vector<ResultSet> results;       // per-morsel, slot-owned
  std::vector<ExecutionMeter> meters;   // per-morsel, slot-owned
  bool want_provenance = false;
  std::vector<std::vector<int64_t>> provenance;  // per-morsel, slot-owned

  std::atomic<size_t> completed{0};
  // Distinct threads that ran >= 1 morsel; each bumps it once, before
  // completing its first morsel, so the count is final by the time the
  // submitter wakes on the last completion.
  std::atomic<uint64_t> worker_count{0};
  std::mutex mu;  // serves only the final cv handshake
  std::condition_variable cv;
};

// Claims and runs morsels until the cursor is exhausted. Runs on pool
// workers AND on the submitting thread, so progress never depends on
// pool capacity.
void WorkMorsels(const std::shared_ptr<MorselRun>& run) {
  const size_t total = run->morsels.size();
  bool registered = false;
  for (;;) {
    const int64_t i = run->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= static_cast<int64_t>(total)) break;
    // Register once, BEFORE completing the claimed morsel: the
    // submitter only wakes after every claimed morsel completes, so by
    // then every thread that ran one is counted.
    if (!registered) {
      registered = true;
      run->worker_count.fetch_add(1, std::memory_order_relaxed);
    }
    const size_t slot = static_cast<size_t>(i);
    const Morsel& morsel = run->morsels[slot];
    const auto start = std::chrono::steady_clock::now();
    RunPipeline(*run->store, *run->plan, *run->sched, run->candidates,
                morsel.begin, morsel.end, &run->results[slot],
                &run->meters[slot],
                run->want_provenance ? &run->provenance[slot] : nullptr);
    run->meters[slot].parallel_busy_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    // acq_rel keeps the increment chain a release sequence: the
    // submitter's acquire load of the final count sees every worker's
    // slot writes. Only the last morsel pays the lock + notify.
    const size_t done =
        run->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == total) {
      std::lock_guard<std::mutex> lock(run->mu);
      run->cv.notify_all();
    }
  }
}

}  // namespace

Result<ResultSet> ExecutePlan(const ObjectStore& store, const Plan& plan,
                              ExecutionMeter* meter) {
  return ExecutePlan(store, plan, meter, ExecContext{});
}

Result<ResultSet> ExecutePlan(const ObjectStore& store, const Plan& plan,
                              ExecutionMeter* meter,
                              const ExecContext& context) {
  ExecutionMeter local;
  if (meter == nullptr) meter = &local;
  ResultSet result;
  if (plan.empty_result) return result;
  if (plan.steps.empty()) {
    return Status::InvalidArgument("plan has no access steps");
  }

  SQOPT_ASSIGN_OR_RETURN(StepSchedule sched,
                         BuildStepSchedule(store.schema(), plan));

  // Driving candidates: the ordered sequence the morsels slice. A full
  // scan morselizes the extent itself (PartitionExtent) and never
  // materializes the 0..n-1 list — position IS the row; an index range
  // scan morselizes the lookup result. Candidate accounting happens
  // here, once, whatever the fan-out.
  const AccessStep& drive = plan.steps[0];
  std::vector<int64_t> index_candidates;
  const std::vector<int64_t>* candidates = nullptr;  // null = identity
  int64_t count = 0;
  if (drive.index_predicate.has_value()) {
    const Predicate& ip = *drive.index_predicate;
    const AttributeIndex* index = store.GetIndex(ip.lhs());
    if (index == nullptr) {
      return Status::Internal("plan chose a nonexistent index");
    }
    index_candidates = index->Lookup(ip.op(), ip.rhs_value());
    // Canonical candidate order: ascending row id. Full scans already
    // visit rows in ascending slot order; sorting index results makes
    // EVERY plan's output order a function of driving-row order alone,
    // which is what lets (a) morsel merge stay concatenation and (b)
    // the sharded engine reproduce single-engine output order by
    // k-way-merging per-shard results on global driving row.
    std::sort(index_candidates.begin(), index_candidates.end());
    ++meter->index_probes;
    candidates = &index_candidates;
    count = static_cast<int64_t>(index_candidates.size());
  } else {
    count = store.NumObjects(drive.class_id);
  }
  meter->instances_scanned += static_cast<uint64_t>(count);

  // Partition only when a fan-out is actually possible — the default
  // sequential configuration never pays for the morsel vector.
  std::vector<Morsel> morsels;
  int workers = 1;
  if (context.pool != nullptr && plan.parallelism > 1) {
    morsels = candidates == nullptr
                  ? store.PartitionExtent(drive.class_id, plan.morsel_size)
                  : MakeMorsels(count, plan.morsel_size);
    workers = plan.parallelism;
    if (workers > static_cast<int>(morsels.size())) {
      workers = static_cast<int>(morsels.size());
    }
    // This thread works too, so more helpers than pool threads would
    // only queue guaranteed no-op tasks behind other queries' work.
    if (workers > context.pool->threads() + 1) {
      workers = context.pool->threads() + 1;
    }
  }

  if (workers <= 1 || morsels.size() <= 1) {
    // Sequential: one pipeline pass over the whole candidate list.
    RunPipeline(store, plan, sched, candidates, 0, count, &result, meter,
                context.driving_rows);
    meter->rows_out += result.rows.size();
    return result;
  }

  // Morsel-parallel: (workers - 1) helper tasks on the shared pool plus
  // this thread, all pulling from one claim cursor.
  auto run = std::make_shared<MorselRun>();
  run->store = &store;
  run->plan = &plan;
  run->sched = &sched;
  run->candidates = candidates;
  run->morsels = std::move(morsels);
  run->results.resize(run->morsels.size());
  run->meters.resize(run->morsels.size());
  run->want_provenance = context.driving_rows != nullptr;
  if (run->want_provenance) run->provenance.resize(run->morsels.size());

  const auto wall_start = std::chrono::steady_clock::now();
  for (int w = 1; w < workers; ++w) {
    context.pool->Submit([run] { WorkMorsels(run); });
  }
  WorkMorsels(run);
  {
    std::unique_lock<std::mutex> lock(run->mu);
    run->cv.wait(lock, [&] {
      return run->completed.load(std::memory_order_acquire) ==
             run->morsels.size();
    });
  }
  const uint64_t wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  // Deterministic merge: morsel order IS candidate order, so the
  // concatenation is exactly the sequential result.
  size_t total_rows = 0;
  for (const ResultSet& part : run->results) total_rows += part.rows.size();
  result.rows.reserve(total_rows);
  for (ResultSet& part : run->results) {
    for (auto& row : part.rows) result.rows.push_back(std::move(row));
  }
  if (context.driving_rows != nullptr) {
    context.driving_rows->reserve(context.driving_rows->size() +
                                  total_rows);
    for (const std::vector<int64_t>& part : run->provenance) {
      context.driving_rows->insert(context.driving_rows->end(),
                                   part.begin(), part.end());
    }
  }
  for (const ExecutionMeter& part : run->meters) {
    meter->instances_scanned += part.instances_scanned;
    meter->pointer_traversals += part.pointer_traversals;
    meter->predicate_evals += part.predicate_evals;
    meter->index_probes += part.index_probes;
    meter->parallel_busy_micros += part.parallel_busy_micros;
  }
  meter->morsels += run->morsels.size();
  meter->morsel_workers +=
      run->worker_count.load(std::memory_order_relaxed);
  meter->parallel_wall_micros += wall_micros;
  meter->rows_out += result.rows.size();
  return result;
}

Result<ResultSet> ExecuteQuery(const ObjectStore& store, const Query& query,
                               ExecutionMeter* meter) {
  DatabaseStats stats = CollectStats(store);
  SQOPT_ASSIGN_OR_RETURN(Plan plan,
                         BuildPlan(store.schema(), stats, query));
  return ExecutePlan(store, plan, meter);
}

}  // namespace sqopt

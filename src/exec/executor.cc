#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "exec/plan_builder.h"

namespace sqopt {

double ExecutionMeter::CostUnits(const CostModelParams& params) const {
  double pages =
      static_cast<double>(instances_scanned) / params.page_instances;
  if (instances_scanned > 0 && pages < 1.0) pages = 1.0;
  return pages +
         params.cpu_weight * static_cast<double>(predicate_evals) +
         params.probe_weight *
             static_cast<double>(index_probes + pointer_traversals) +
         params.output_weight * static_cast<double>(rows_out);
}

namespace {

std::string RowKey(const std::vector<Value>& row) {
  std::string k;
  for (const Value& v : row) {
    k += v.ToString();
    k += '\x1f';
  }
  return k;
}

}  // namespace

bool ResultSet::SameRows(const ResultSet& other) const {
  if (rows.size() != other.rows.size()) return false;
  std::multiset<std::string> a, b;
  for (const auto& row : rows) a.insert(RowKey(row));
  for (const auto& row : other.rows) b.insert(RowKey(row));
  return a == b;
}

bool ResultSet::SameDistinctRows(const ResultSet& other) const {
  std::set<std::string> a, b;
  for (const auto& row : rows) a.insert(RowKey(row));
  for (const auto& row : other.rows) b.insert(RowKey(row));
  return a == b;
}

namespace {

using Binding = std::vector<int64_t>;  // class id -> row (-1 unbound)

const Value& AttrValue(const ObjectStore& store, const Binding& binding,
                       const AttrRef& ref) {
  return store.extent(ref.class_id)
      .ValueAt(binding[ref.class_id], ref.attr_id);
}

bool EvalPredicate(const ObjectStore& store, const Binding& binding,
                   const Predicate& p, ExecutionMeter* meter) {
  ++meter->predicate_evals;
  const Value& lhs = AttrValue(store, binding, p.lhs());
  if (p.is_attr_const()) {
    return EvalCompare(lhs, p.op(), p.rhs_value());
  }
  const Value& rhs = AttrValue(store, binding, p.rhs_attr());
  return EvalCompare(lhs, p.op(), rhs);
}

}  // namespace

Result<ResultSet> ExecutePlan(const ObjectStore& store, const Plan& plan,
                              ExecutionMeter* meter) {
  ExecutionMeter local;
  if (meter == nullptr) meter = &local;
  ResultSet result;
  if (plan.empty_result) return result;
  if (plan.steps.empty()) {
    return Status::InvalidArgument("plan has no access steps");
  }

  const Schema& schema = store.schema();
  size_t num_classes = schema.num_classes();

  // Which join predicates / residual (cycle-closing) relationships
  // become checkable after each step: both endpoint classes bound, and
  // not checkable earlier.
  std::vector<std::vector<Predicate>> joins_at(plan.steps.size());
  std::vector<std::vector<RelId>> rels_at(plan.steps.size());
  {
    std::set<ClassId> bound;
    std::vector<bool> placed(plan.join_predicates.size(), false);
    std::vector<bool> rel_placed(plan.residual_relationships.size(),
                                 false);
    for (size_t s = 0; s < plan.steps.size(); ++s) {
      bound.insert(plan.steps[s].class_id);
      for (size_t j = 0; j < plan.join_predicates.size(); ++j) {
        if (placed[j]) continue;
        const Predicate& p = plan.join_predicates[j];
        if (bound.count(p.lhs().class_id) > 0 &&
            bound.count(p.rhs_attr().class_id) > 0) {
          joins_at[s].push_back(p);
          placed[j] = true;
        }
      }
      for (size_t r = 0; r < plan.residual_relationships.size(); ++r) {
        if (rel_placed[r]) continue;
        const Relationship& rel =
            schema.relationship(plan.residual_relationships[r]);
        if (bound.count(rel.a) > 0 && bound.count(rel.b) > 0) {
          rels_at[s].push_back(rel.id);
          rel_placed[r] = true;
        }
      }
    }
    for (size_t j = 0; j < plan.join_predicates.size(); ++j) {
      if (!placed[j]) {
        return Status::InvalidArgument(
            "join predicate references a class not covered by the plan");
      }
    }
    for (size_t r = 0; r < plan.residual_relationships.size(); ++r) {
      if (!rel_placed[r]) {
        return Status::InvalidArgument(
            "residual relationship not covered by the plan's steps");
      }
    }
  }

  // Membership filter for a cycle-closing relationship.
  auto linked = [&](RelId rel_id, const Binding& binding) {
    const Relationship& rel = schema.relationship(rel_id);
    const std::vector<int64_t>& partners =
        store.Partners(rel_id, rel.a, binding[rel.a]);
    ++meter->pointer_traversals;
    return std::find(partners.begin(), partners.end(), binding[rel.b]) !=
           partners.end();
  };

  // Driving step: candidate rows.
  const AccessStep& drive = plan.steps[0];
  std::vector<Binding> bindings;
  {
    std::vector<int64_t> candidates;
    if (drive.index_predicate.has_value()) {
      const Predicate& ip = *drive.index_predicate;
      const AttributeIndex* index = store.GetIndex(ip.lhs());
      if (index == nullptr) {
        return Status::Internal("plan chose a nonexistent index");
      }
      candidates = index->Lookup(ip.op(), ip.rhs_value());
      ++meter->index_probes;
      meter->instances_scanned += candidates.size();
    } else {
      int64_t n = store.NumObjects(drive.class_id);
      candidates.reserve(n);
      for (int64_t row = 0; row < n; ++row) candidates.push_back(row);
      meter->instances_scanned += static_cast<uint64_t>(n);
    }
    for (int64_t row : candidates) {
      Binding binding(num_classes, -1);
      binding[drive.class_id] = row;
      bool keep = true;
      for (const Predicate& p : drive.residual_predicates) {
        if (!EvalPredicate(store, binding, p, meter)) {
          keep = false;
          break;
        }
      }
      for (const Predicate& p : joins_at[0]) {
        if (!keep) break;
        if (!EvalPredicate(store, binding, p, meter)) keep = false;
      }
      for (RelId rel_id : rels_at[0]) {
        if (!keep) break;
        if (!linked(rel_id, binding)) keep = false;
      }
      if (keep) bindings.push_back(std::move(binding));
    }
  }

  // Expansion steps.
  for (size_t s = 1; s < plan.steps.size(); ++s) {
    const AccessStep& step = plan.steps[s];
    std::vector<Binding> next;
    for (const Binding& binding : bindings) {
      int64_t from_row = binding[step.from_class];
      const std::vector<int64_t>& partners =
          store.Partners(step.via_rel, step.from_class, from_row);
      ++meter->pointer_traversals;
      meter->instances_scanned += partners.size();
      for (int64_t partner : partners) {
        Binding extended = binding;
        extended[step.class_id] = partner;
        bool keep = true;
        for (const Predicate& p : step.residual_predicates) {
          if (!EvalPredicate(store, extended, p, meter)) {
            keep = false;
            break;
          }
        }
        for (const Predicate& p : joins_at[s]) {
          if (!keep) break;
          if (!EvalPredicate(store, extended, p, meter)) keep = false;
        }
        for (RelId rel_id : rels_at[s]) {
          if (!keep) break;
          if (!linked(rel_id, extended)) keep = false;
        }
        if (keep) next.push_back(std::move(extended));
      }
    }
    bindings = std::move(next);
  }

  // Projection.
  result.rows.reserve(bindings.size());
  for (const Binding& binding : bindings) {
    std::vector<Value> row;
    row.reserve(plan.projection.size());
    for (const AttrRef& ref : plan.projection) {
      row.push_back(AttrValue(store, binding, ref));
    }
    result.rows.push_back(std::move(row));
  }
  meter->rows_out += result.rows.size();
  return result;
}

Result<ResultSet> ExecuteQuery(const ObjectStore& store, const Query& query,
                               ExecutionMeter* meter) {
  DatabaseStats stats = CollectStats(store);
  SQOPT_ASSIGN_OR_RETURN(Plan plan,
                         BuildPlan(store.schema(), stats, query));
  return ExecutePlan(store, plan, meter);
}

}  // namespace sqopt

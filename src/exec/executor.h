// Plan execution with cost metering. The meter's unit accounting is the
// measured counterpart of the CostModel's estimates, and is what the
// Table 4.2 bench reports as "query cost".
#ifndef SQOPT_EXEC_EXECUTOR_H_
#define SQOPT_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "exec/plan.h"
#include "storage/object_store.h"

namespace sqopt {

struct ExecutionMeter {
  uint64_t instances_scanned = 0;   // extent objects touched
  uint64_t index_probes = 0;        // index lookups
  uint64_t pointer_traversals = 0;  // relationship partner fetches
  uint64_t predicate_evals = 0;     // predicate evaluations
  uint64_t rows_out = 0;            // result rows

  // Measured cost in the same units the CostModel estimates.
  double CostUnits(const CostModelParams& params = {}) const;

  void Reset() { *this = ExecutionMeter{}; }
};

struct ResultSet {
  std::vector<std::vector<Value>> rows;  // projection order

  // Order-insensitive multiset equality (queries are unordered).
  bool SameRows(const ResultSet& other) const;

  // Set-semantics equality: same distinct rows. Class elimination (and
  // 1991-era query semantics generally) preserves the distinct result
  // set, not bag multiplicities — see DESIGN.md.
  bool SameDistinctRows(const ResultSet& other) const;
};

Result<ResultSet> ExecutePlan(const ObjectStore& store, const Plan& plan,
                              ExecutionMeter* meter);

// Convenience: plan + execute in one call using the store's own stats.
Result<ResultSet> ExecuteQuery(const ObjectStore& store, const Query& query,
                               ExecutionMeter* meter);

}  // namespace sqopt

#endif  // SQOPT_EXEC_EXECUTOR_H_

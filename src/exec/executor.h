// Plan execution with cost metering. The meter's unit accounting is the
// measured counterpart of the CostModel's estimates, and is what the
// Table 4.2 bench reports as "query cost".
//
// Execution is morsel-driven when the plan asks for it: the driving
// step's candidates (extent rows or index-lookup results) are split
// into fixed-size morsels, each morsel runs the ENTIRE pipeline —
// residual filters, relationship expansions, join predicates, cycle
// filters, projection — and the per-morsel row batches are merged in
// morsel order. Because morsels are positional slices of the ordered
// candidate list and every pipeline stage preserves per-binding order,
// the merged result is byte-identical (rows AND order) to a sequential
// run of the same plan; see DESIGN.md "Morsel-driven parallel scans".
#ifndef SQOPT_EXEC_EXECUTOR_H_
#define SQOPT_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "common/worker_pool.h"
#include "cost/cost_model.h"
#include "exec/plan.h"
#include "storage/object_store.h"

namespace sqopt {

struct ExecutionMeter {
  uint64_t instances_scanned = 0;   // extent objects touched
  uint64_t index_probes = 0;        // index lookups
  uint64_t pointer_traversals = 0;  // relationship partner fetches
  uint64_t predicate_evals = 0;     // predicate evaluations
  uint64_t rows_out = 0;            // result rows

  // --- Morsel-parallel counters (all zero on sequential runs). The
  // work counters above are exact sums over morsels, so they are
  // identical to a sequential run of the same plan; only the four
  // below depend on the fan-out. ---
  uint64_t morsels = 0;          // morsels the driving scan was split into
  uint64_t morsel_workers = 0;   // distinct threads that ran >= 1 morsel
  uint64_t parallel_busy_micros = 0;  // summed per-morsel execution time
  uint64_t parallel_wall_micros = 0;  // wall time of the morsel phase

  // Measured cost in the same units the CostModel estimates.
  double CostUnits(const CostModelParams& params = {}) const;

  // Busy/wall ratio of the morsel phase — the measured intra-query
  // speedup (>1 when morsels genuinely overlapped). 0 for sequential
  // runs.
  double ParallelSpeedup() const;

  void Reset() { *this = ExecutionMeter{}; }
};

struct ResultSet {
  std::vector<std::vector<Value>> rows;  // projection order

  // Order-insensitive multiset equality (queries are unordered).
  bool SameRows(const ResultSet& other) const;

  // Set-semantics equality: same distinct rows. Class elimination (and
  // 1991-era query semantics generally) preserves the distinct result
  // set, not bag multiplicities — see DESIGN.md.
  bool SameDistinctRows(const ResultSet& other) const;
};

// How to run a plan: hand the executor a pool and it honors the plan's
// parallelism; without a pool every plan runs sequentially. The
// submitting thread always participates in morsel work, so a saturated
// (or undersized) pool degrades throughput, never deadlocks.
struct ExecContext {
  WorkerPool* pool = nullptr;

  // Optional provenance channel: when non-null, receives one entry per
  // output row — the DRIVING-step row that produced it, in result-row
  // order. Rows produced by multi-partner expansion share their driving
  // row, so the vector is non-decreasing per morsel. The scatter-gather
  // sharded engine uses this to k-way-merge per-shard partial results
  // back into single-engine global order (see DESIGN.md "Sharding").
  std::vector<int64_t>* driving_rows = nullptr;
};

Result<ResultSet> ExecutePlan(const ObjectStore& store, const Plan& plan,
                              ExecutionMeter* meter);
Result<ResultSet> ExecutePlan(const ObjectStore& store, const Plan& plan,
                              ExecutionMeter* meter,
                              const ExecContext& context);

// Convenience: plan + execute in one call using the store's own stats.
Result<ResultSet> ExecuteQuery(const ObjectStore& store, const Query& query,
                               ExecutionMeter* meter);

}  // namespace sqopt

#endif  // SQOPT_EXEC_EXECUTOR_H_

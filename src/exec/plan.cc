#include "exec/plan.h"

#include <sstream>

namespace sqopt {

PredicateClass ClassifyPredicate(const Predicate& p) {
  if (p.is_attr_const() && p.rhs_value().is_numeric()) {
    return PredicateClass::kNumericConst;
  }
  return PredicateClass::kGeneric;
}

void ClassifyResiduals(AccessStep* step) {
  step->residual_classes.clear();
  step->residual_classes.reserve(step->residual_predicates.size());
  for (const Predicate& p : step->residual_predicates) {
    step->residual_classes.push_back(ClassifyPredicate(p));
  }
}

std::string Plan::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (empty_result) {
    os << "EmptyResult (contradiction detected)\n";
    return os.str();
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    const AccessStep& step = steps[i];
    os << (i == 0 ? "Drive " : "Expand ");
    os << schema.object_class(step.class_id).name;
    if (i == 0) {
      if (step.index_predicate.has_value()) {
        os << " via index[" << step.index_predicate->ToString(schema) << "]";
      } else {
        os << " via scan";
      }
    } else {
      os << " via " << schema.relationship(step.via_rel).name << " from "
         << schema.object_class(step.from_class).name;
    }
    if (!step.residual_predicates.empty()) {
      os << " filter(";
      for (size_t j = 0; j < step.residual_predicates.size(); ++j) {
        if (j) os << " and ";
        os << step.residual_predicates[j].ToString(schema);
      }
      os << ")";
    }
    os << "\n";
  }
  if (!join_predicates.empty()) {
    os << "Join predicates:";
    for (const Predicate& p : join_predicates) {
      os << " [" << p.ToString(schema) << "]";
    }
    os << "\n";
  }
  if (!residual_relationships.empty()) {
    os << "Cycle filters:";
    for (RelId rel_id : residual_relationships) {
      os << " [" << schema.relationship(rel_id).name << "]";
    }
    os << "\n";
  }
  if (parallelism > 1) {
    os << "Parallel scan: " << parallelism << " workers, morsel "
       << morsel_size << "\n";
  }
  return os.str();
}

}  // namespace sqopt

// Physical plans: a left-deep traversal of the query's relationship
// graph. The first step accesses the driving class (index probe or
// extent scan); each later step expands one relationship from a bound
// class to a new one, filtering with that class's residual predicates.
#ifndef SQOPT_EXEC_PLAN_H_
#define SQOPT_EXEC_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "expr/predicate.h"
#include "query/query.h"
#include "storage/morsel.h"

namespace sqopt {

// How the batch filter may evaluate one residual conjunct over a
// morsel (see exec/batch_filter.h). Carried on the plan so the
// executor never re-derives it per morsel.
enum class PredicateClass : uint8_t {
  // Row-at-a-time EvalCompare on materialized values: attr-attr
  // conjuncts, non-numeric constants, null constants.
  kGeneric = 0,
  // attr <op> numeric constant: eligible for the dense typed kernels
  // (branch-free compare loops over a contiguous int64/double column).
  kNumericConst = 1,
};

// Classification rule, shared by the planner and by executors handed a
// hand-built plan without classifications.
PredicateClass ClassifyPredicate(const Predicate& p);

struct AccessStep {
  ClassId class_id = kInvalidClass;

  // Driving step only: the index predicate chosen as access path, if
  // any. Absent => full extent scan.
  std::optional<Predicate> index_predicate;

  // Non-driving steps: the relationship used to reach this class and
  // the already-bound class on its other end.
  RelId via_rel = kInvalidRel;
  ClassId from_class = kInvalidClass;

  // attr-const predicates on this class evaluated on each candidate
  // (the index predicate, when present, is not repeated here).
  std::vector<Predicate> residual_predicates;
  // Parallel to residual_predicates: the batch filter's evaluation
  // strategy per conjunct. The planner fills it (ClassifyResiduals);
  // an empty vector (hand-built plan) makes the executor classify on
  // the fly.
  std::vector<PredicateClass> residual_classes;
};

// Fills step->residual_classes from step->residual_predicates.
void ClassifyResiduals(AccessStep* step);

struct Plan {
  std::vector<AccessStep> steps;
  // attr-attr predicates, each applied at the first step where both
  // classes are bound.
  std::vector<Predicate> join_predicates;
  // Relationships not used for expansion (cycles in the query graph):
  // enforced as membership filters once both endpoints are bound.
  std::vector<RelId> residual_relationships;
  std::vector<AttrRef> projection;
  // Set by the optimizer's contradiction short-circuit: executor
  // returns an empty result without touching the store.
  bool empty_result = false;

  // Intra-query parallelism chosen by the planner (cost-gated; see
  // ChooseScanParallelism): how many workers the executor should fan
  // the driving step's morsels across. 1 = sequential. The executor
  // honors it only when handed a worker pool (ExecContext), so a plan
  // is always safe to run sequentially.
  int parallelism = 1;
  // Driving candidates per morsel; non-positive falls back to the
  // default.
  int64_t morsel_size = kDefaultMorselSize;

  std::string ToString(const Schema& schema) const;
};

}  // namespace sqopt

#endif  // SQOPT_EXEC_PLAN_H_

#include "exec/plan_builder.h"

#include <algorithm>
#include <set>

#include "cost/selectivity.h"

namespace sqopt {

void CollectAttrStats(const ObjectStore& store, const AttrRef& ref,
                      DatabaseStats* stats) {
  AttrStatsData data;
  data.distinct_values = store.DistinctValues(ref);
  if (store.NumLiveObjects(ref.class_id) > 0) {
    auto [min, max] = store.MinMax(ref);
    if (!min.is_null() && min.is_numeric()) {
      data.min = min;
      data.max = max;
      // Numeric attribute: collect an equi-width histogram too.
      data.histogram = Histogram::Build(store.LiveValues(ref));
    }
  }
  stats->SetAttrStats(ref, std::move(data));
}

void CollectClassStats(const ObjectStore& store, ClassId class_id,
                       DatabaseStats* stats) {
  const Schema& schema = store.schema();
  stats->SetClassCardinality(class_id, store.NumLiveObjects(class_id));
  for (AttrId attr_id : schema.LayoutOf(class_id)) {
    CollectAttrStats(store, AttrRef{class_id, attr_id}, stats);
  }
}

void CollectRelationshipStats(const ObjectStore& store, RelId rel_id,
                              DatabaseStats* stats) {
  stats->SetRelationshipCardinality(rel_id, store.NumPairs(rel_id));
}

DatabaseStats CollectStats(const ObjectStore& store) {
  const Schema& schema = store.schema();
  DatabaseStats stats;
  for (const ObjectClass& oc : schema.classes()) {
    CollectClassStats(store, oc.id, &stats);
  }
  for (const Relationship& rel : schema.relationships()) {
    CollectRelationshipStats(store, rel.id, &stats);
  }
  return stats;
}

Result<Plan> BuildPlan(const Schema& schema, const DatabaseStats& stats,
                       const Query& query) {
  return BuildPlan(schema, stats, query, PlanningOptions{});
}

Result<Plan> BuildPlan(const Schema& schema, const DatabaseStats& stats,
                       const Query& query, const PlanningOptions& options) {
  SQOPT_RETURN_IF_ERROR(ValidateQuery(schema, query));

  Plan plan;
  plan.projection = query.projection;
  plan.join_predicates = query.join_predicates;

  auto preds_on = [&](ClassId id) {
    std::vector<Predicate> out;
    for (const Predicate& p : query.selective_predicates) {
      if (p.lhs().class_id == id) out.push_back(p);
    }
    return out;
  };

  // Driving class: estimated candidate count after its best access
  // path; indexed predicates shrink the candidates to card * sel.
  auto driving_estimate = [&](ClassId id, std::optional<Predicate>* best) {
    double card = static_cast<double>(stats.ClassCardinality(id));
    double best_cost = card;  // full scan candidate count
    std::optional<Predicate> best_pred;
    for (const Predicate& p : preds_on(id)) {
      if (!schema.attribute(p.lhs()).indexed) continue;
      if (p.op() == CompareOp::kNe) continue;  // index not useful
      double matches = card * EstimateSelectivity(schema, stats, p);
      if (matches < best_cost) {
        best_cost = matches;
        best_pred = p;
      }
    }
    *best = best_pred;
    return best_cost;
  };

  ClassId start = query.classes[0];
  std::optional<Predicate> start_index;
  double start_cost = 0.0;
  // The winner's pre-residual candidate estimate, kept for the
  // parallel-scan decision below (residuals filter inside the scan,
  // they don't shrink it).
  double start_candidates = 0.0;
  {
    bool first = true;
    for (ClassId id : query.classes) {
      std::optional<Predicate> candidate_index;
      double est_candidates = driving_estimate(id, &candidate_index);
      // Apply residual selectivity so a heavily filtered class is
      // preferred even without an index.
      double cost =
          est_candidates * ClassSelectivity(schema, stats, preds_on(id), id);
      if (first || cost < start_cost) {
        first = false;
        start = id;
        start_cost = cost;
        start_candidates = est_candidates;
        start_index = candidate_index;
      }
    }
  }

  AccessStep drive;
  drive.class_id = start;
  drive.index_predicate = start_index;
  for (const Predicate& p : preds_on(start)) {
    if (start_index.has_value() && p == *start_index) continue;
    drive.residual_predicates.push_back(p);
  }
  ClassifyResiduals(&drive);
  plan.steps.push_back(std::move(drive));

  // Morsel-parallel scan decision: the driving candidate count (the
  // work the morsels split — full cardinality on a scan, card *
  // selectivity behind an index) was estimated during driving-class
  // selection; let the cost model pick a degree that amortizes the
  // fan-out.
  if (options.max_parallelism > 1) {
    plan.parallelism =
        ChooseScanParallelism(start_candidates, options.max_parallelism,
                              options.cost_params, options.morsel_size);
  }
  plan.morsel_size = options.morsel_size;

  std::set<ClassId> bound = {start};
  std::set<RelId> used;
  while (bound.size() < query.classes.size()) {
    RelId best_rel = kInvalidRel;
    ClassId best_from = kInvalidClass, best_to = kInvalidClass;
    double best_size = 0.0;
    for (RelId rel_id : query.relationships) {
      if (used.count(rel_id) > 0) continue;
      const Relationship& rel = schema.relationship(rel_id);
      ClassId from, to;
      if (bound.count(rel.a) > 0 && bound.count(rel.b) == 0) {
        from = rel.a;
        to = rel.b;
      } else if (bound.count(rel.b) > 0 && bound.count(rel.a) == 0) {
        from = rel.b;
        to = rel.a;
      } else {
        continue;
      }
      double fanout =
          static_cast<double>(stats.RelationshipCardinality(rel_id)) /
          std::max(1.0, static_cast<double>(stats.ClassCardinality(from)));
      double size =
          fanout * ClassSelectivity(schema, stats, preds_on(to), to);
      if (best_rel == kInvalidRel || size < best_size) {
        best_rel = rel_id;
        best_from = from;
        best_to = to;
        best_size = size;
      }
    }
    if (best_rel == kInvalidRel) {
      return Status::InvalidArgument(
          "cannot plan: query relationship graph is disconnected");
    }
    AccessStep step;
    step.class_id = best_to;
    step.via_rel = best_rel;
    step.from_class = best_from;
    step.residual_predicates = preds_on(best_to);
    ClassifyResiduals(&step);
    plan.steps.push_back(std::move(step));
    bound.insert(best_to);
    used.insert(best_rel);
  }

  // Relationships not used for expansion close cycles in the query
  // graph; the executor enforces them as membership filters once both
  // endpoints are bound.
  for (RelId rel_id : query.relationships) {
    if (used.count(rel_id) == 0) {
      plan.residual_relationships.push_back(rel_id);
    }
  }
  return plan;
}

}  // namespace sqopt

// Builds a physical Plan for a (possibly semantically optimized) query:
// picks the cheapest driving class — preferring indexed selective
// predicates — then greedily expands relationships by estimated
// intermediate size. This is the "conventional optimizer" layer under
// the semantic optimizer.
#ifndef SQOPT_EXEC_PLAN_BUILDER_H_
#define SQOPT_EXEC_PLAN_BUILDER_H_

#include "common/status.h"
#include "cost/cost_model.h"
#include "cost/stats.h"
#include "exec/plan.h"
#include "query/query.h"
#include "storage/object_store.h"

namespace sqopt {

// Physical-planning knobs beyond the query itself. Defaults plan
// sequential execution (the historical behavior).
struct PlanningOptions {
  // Fan-out ceiling for the driving step's morsel-parallel scan
  // (<= 1 plans sequential execution). The planner picks the actual
  // degree per plan with ChooseScanParallelism, so small scans stay
  // sequential regardless of this ceiling.
  int max_parallelism = 1;
  // Driving candidates per morsel, stamped into the plan for the
  // executor. Non-positive falls back to the default.
  int64_t morsel_size = kDefaultMorselSize;
  // Supplies morsel_rows and parallel_fanout_overhead for the parallel
  // decision (and keeps it consistent with the engine's cost model).
  CostModelParams cost_params;
};

// `stats` drives access-path choice; use CollectStats(store) for
// actuals or synthesize for tests.
Result<Plan> BuildPlan(const Schema& schema, const DatabaseStats& stats,
                       const Query& query);
Result<Plan> BuildPlan(const Schema& schema, const DatabaseStats& stats,
                       const Query& query, const PlanningOptions& options);

// Gathers cardinalities, relationship cardinalities, and per-attribute
// distinct counts + min/max + histograms from a store (live rows only).
DatabaseStats CollectStats(const ObjectStore& store);

// Recollects the statistics of ONE class (cardinality + every attribute's
// distinct count / min-max / histogram) into `stats`, leaving all other
// classes untouched. The write path's incremental alternative to a full
// CollectStats after a commit that mutated only a few classes.
void CollectClassStats(const ObjectStore& store, ClassId class_id,
                       DatabaseStats* stats);

// Same for one relationship's pair cardinality.
void CollectRelationshipStats(const ObjectStore& store, RelId rel_id,
                              DatabaseStats* stats);

// Recollects ONE attribute's statistics (distinct count / min-max /
// histogram), leaving the rest of `stats` untouched — the fallback when
// the commit path's incremental histogram patch cannot absorb a change
// (value outside the bucket range, or no stats collected yet).
void CollectAttrStats(const ObjectStore& store, const AttrRef& ref,
                      DatabaseStats* stats);

}  // namespace sqopt

#endif  // SQOPT_EXEC_PLAN_BUILDER_H_

// Builds a physical Plan for a (possibly semantically optimized) query:
// picks the cheapest driving class — preferring indexed selective
// predicates — then greedily expands relationships by estimated
// intermediate size. This is the "conventional optimizer" layer under
// the semantic optimizer.
#ifndef SQOPT_EXEC_PLAN_BUILDER_H_
#define SQOPT_EXEC_PLAN_BUILDER_H_

#include "common/status.h"
#include "cost/stats.h"
#include "exec/plan.h"
#include "query/query.h"
#include "storage/object_store.h"

namespace sqopt {

// `stats` drives access-path choice; use CollectStats(store) for
// actuals or synthesize for tests.
Result<Plan> BuildPlan(const Schema& schema, const DatabaseStats& stats,
                       const Query& query);

// Gathers cardinalities, relationship cardinalities, and per-attribute
// distinct counts + min/max from a store.
DatabaseStats CollectStats(const ObjectStore& store);

}  // namespace sqopt

#endif  // SQOPT_EXEC_PLAN_BUILDER_H_

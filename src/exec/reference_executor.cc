#include "exec/reference_executor.h"

#include <algorithm>

namespace sqopt {

namespace {

bool Linked(const ObjectStore& store, const Relationship& rel,
            int64_t row_a, int64_t row_b) {
  const std::vector<int64_t>& partners =
      store.Partners(rel.id, rel.a, row_a);
  return std::find(partners.begin(), partners.end(), row_b) !=
         partners.end();
}

}  // namespace

Result<ResultSet> ExecuteReference(const ObjectStore& store,
                                   const Query& query) {
  SQOPT_RETURN_IF_ERROR(ValidateQuery(store.schema(), query));
  const Schema& schema = store.schema();

  ResultSet result;
  std::vector<int64_t> binding(schema.num_classes(), -1);
  std::vector<Predicate> preds = query.AllPredicates();

  // By value: Extent::ValueAt materializes from columnar segments, so
  // there is no stored row to lend a reference into.
  auto attr_value = [&](const AttrRef& ref) -> Value {
    return store.extent(ref.class_id)
        .ValueAt(binding[ref.class_id], ref.attr_id);
  };

  // Recursive enumeration over query.classes.
  auto enumerate = [&](auto&& self, size_t depth) -> void {
    if (depth == query.classes.size()) {
      // All bound: check relationships and predicates.
      for (RelId rel_id : query.relationships) {
        const Relationship& rel = schema.relationship(rel_id);
        if (!Linked(store, rel, binding[rel.a], binding[rel.b])) return;
      }
      for (const Predicate& p : preds) {
        const Value lhs = attr_value(p.lhs());
        bool ok = p.is_attr_const()
                      ? EvalCompare(lhs, p.op(), p.rhs_value())
                      : EvalCompare(lhs, p.op(), attr_value(p.rhs_attr()));
        if (!ok) return;
      }
      std::vector<Value> row;
      row.reserve(query.projection.size());
      for (const AttrRef& ref : query.projection) {
        row.push_back(attr_value(ref));
      }
      result.rows.push_back(std::move(row));
      return;
    }
    ClassId cid = query.classes[depth];
    int64_t n = store.NumObjects(cid);
    for (int64_t row = 0; row < n; ++row) {
      if (!store.IsLive(cid, row)) continue;
      binding[cid] = row;
      self(self, depth + 1);
    }
    binding[cid] = -1;
  };
  enumerate(enumerate, 0);
  return result;
}

}  // namespace sqopt

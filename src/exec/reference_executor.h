// Reference query evaluator: brute-force nested loops over the full
// cross product of the query's class extents, filtering by relationship
// membership and all predicates. Exponentially slower than the planned
// executor and used only as a differential-testing oracle — if
// ExecutePlan and ExecuteReference ever disagree, the planner or
// executor has a bug.
#ifndef SQOPT_EXEC_REFERENCE_EXECUTOR_H_
#define SQOPT_EXEC_REFERENCE_EXECUTOR_H_

#include "common/status.h"
#include "exec/executor.h"
#include "query/query.h"
#include "storage/object_store.h"

namespace sqopt {

Result<ResultSet> ExecuteReference(const ObjectStore& store,
                                   const Query& query);

}  // namespace sqopt

#endif  // SQOPT_EXEC_REFERENCE_EXECUTOR_H_

#include "expr/implication.h"

#include "expr/interval.h"

namespace sqopt {

namespace {

// Implication between `x opA c` and `x opB d` over a densely ordered
// domain, given cmp = Compare(c, d) in {-1, 0, 1}.
bool AttrConstImplies(CompareOp op_a, CompareOp op_b, int cmp) {
  switch (op_b) {
    case CompareOp::kEq:
      return op_a == CompareOp::kEq && cmp == 0;
    case CompareOp::kNe:
      switch (op_a) {
        case CompareOp::kEq:
          return cmp != 0;
        case CompareOp::kNe:
          return cmp == 0;
        case CompareOp::kLt:
          return cmp <= 0;  // x < c and d >= c  ->  x != d
        case CompareOp::kLe:
          return cmp < 0;  // x <= c and d > c  ->  x != d
        case CompareOp::kGt:
          return cmp >= 0;
        case CompareOp::kGe:
          return cmp > 0;
      }
      return false;
    case CompareOp::kLt:
      switch (op_a) {
        case CompareOp::kEq:
          return cmp < 0;
        case CompareOp::kLt:
          return cmp <= 0;
        case CompareOp::kLe:
          return cmp < 0;
        default:
          return false;
      }
    case CompareOp::kLe:
      switch (op_a) {
        case CompareOp::kEq:
        case CompareOp::kLt:
        case CompareOp::kLe:
          return cmp <= 0;
        default:
          return false;
      }
    case CompareOp::kGt:
      switch (op_a) {
        case CompareOp::kEq:
          return cmp > 0;
        case CompareOp::kGt:
          return cmp >= 0;
        case CompareOp::kGe:
          return cmp > 0;
        default:
          return false;
      }
    case CompareOp::kGe:
      switch (op_a) {
        case CompareOp::kEq:
        case CompareOp::kGt:
        case CompareOp::kGe:
          return cmp >= 0;
        default:
          return false;
      }
  }
  return false;
}

// Implication between two attr-attr predicates over the same canonical
// attribute pair: does `x opA y` imply `x opB y`?
bool AttrAttrImplies(CompareOp op_a, CompareOp op_b) {
  if (op_a == op_b) return true;
  switch (op_a) {
    case CompareOp::kEq:
      return op_b == CompareOp::kLe || op_b == CompareOp::kGe;
    case CompareOp::kLt:
      return op_b == CompareOp::kLe || op_b == CompareOp::kNe;
    case CompareOp::kGt:
      return op_b == CompareOp::kGe || op_b == CompareOp::kNe;
    default:
      return false;
  }
}

}  // namespace

bool Implies(const Predicate& a, const Predicate& b) {
  if (a == b) return true;
  if (a.is_attr_const() && b.is_attr_const()) {
    if (a.lhs() != b.lhs()) return false;
    std::optional<int> cmp = a.rhs_value().Compare(b.rhs_value());
    if (!cmp.has_value()) return false;
    return AttrConstImplies(a.op(), b.op(), *cmp);
  }
  if (a.is_attr_attr() && b.is_attr_attr()) {
    // Both are canonicalized (smaller AttrRef left), so equal pairs line
    // up directly.
    if (a.lhs() != b.lhs() || a.rhs_attr() != b.rhs_attr()) return false;
    return AttrAttrImplies(a.op(), b.op());
  }
  return false;
}

bool ConjunctionImplies(const std::vector<Predicate>& premises,
                        const Predicate& conclusion) {
  for (const Predicate& p : premises) {
    if (Implies(p, conclusion)) return true;
  }
  if (!conclusion.is_attr_const()) return false;
  // Interval refutation: premises ∧ ¬conclusion unsatisfiable ⇒ implied.
  Interval region;
  bool narrowed = false;
  for (const Predicate& p : premises) {
    if (p.is_attr_const() && p.lhs() == conclusion.lhs()) {
      narrowed = true;
      if (!region.Add(p.op(), p.rhs_value())) return true;  // premises unsat
    }
  }
  if (!narrowed) return false;
  return !region.Add(NegateCompareOp(conclusion.op()),
                     conclusion.rhs_value());
}

bool MutuallyExclusive(const Predicate& a, const Predicate& b) {
  if (a.is_attr_const() && b.is_attr_const() && a.lhs() == b.lhs()) {
    Interval region;
    if (!region.Add(a.op(), a.rhs_value())) return true;
    return !region.Add(b.op(), b.rhs_value());
  }
  if (a.is_attr_attr() && b.is_attr_attr() && a.lhs() == b.lhs() &&
      a.rhs_attr() == b.rhs_attr()) {
    // a ∧ b unsat iff a implies ¬b.
    return AttrAttrImplies(a.op(), NegateCompareOp(b.op())) ||
           AttrAttrImplies(b.op(), NegateCompareOp(a.op()));
  }
  return false;
}

}  // namespace sqopt

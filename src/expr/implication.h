// Logical implication between predicates. Used by (a) the transitive
// closure precompilation (chaining c1's consequent into c2's antecedent
// requires consequent ⊨ antecedent) and (b) the optimizer's implied
// antecedent matching mode, where a query predicate stronger than a
// constraint antecedent still satisfies it (x > 30 satisfies x > 10).
#ifndef SQOPT_EXPR_IMPLICATION_H_
#define SQOPT_EXPR_IMPLICATION_H_

#include <vector>

#include "expr/predicate.h"

namespace sqopt {

// True iff every tuple satisfying `a` also satisfies `b`.
// Decides exactly for:
//   * identical predicates;
//   * attr-const pairs on the same attribute with comparable constants;
//   * attr-attr pairs on the same attribute pair.
// Returns false (conservative) in all other cases.
bool Implies(const Predicate& a, const Predicate& b);

// True iff the conjunction of `premises` implies `conclusion`, using
// only single-premise reasoning plus interval narrowing on the
// conclusion's attribute. Conservative.
bool ConjunctionImplies(const std::vector<Predicate>& premises,
                        const Predicate& conclusion);

// True iff a and b can never both hold (e.g. x = 1 and x = 2).
// Conservative: false when undecided.
bool MutuallyExclusive(const Predicate& a, const Predicate& b);

}  // namespace sqopt

#endif  // SQOPT_EXPR_IMPLICATION_H_

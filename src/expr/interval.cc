#include "expr/interval.h"

#include <map>

namespace sqopt {

namespace {

// -1, 0, 1 comparison that asserts comparability. Values fed into one
// Interval come from predicates on one attribute, so they share a type
// class; incomparable pairs (string vs int) make the interval
// indeterminate and we bail out conservatively before calling this.
std::optional<int> Cmp(const Value& a, const Value& b) { return a.Compare(b); }

}  // namespace

bool Interval::Add(CompareOp op, const Value& value) {
  if (empty_) return false;
  switch (op) {
    case CompareOp::kEq:
      // x = v: both bounds collapse to v.
      if (lo_.has_value()) {
        std::optional<int> c = Cmp(value, *lo_);
        if (!c.has_value() || *c < 0 || (*c == 0 && !lo_inclusive_)) {
          empty_ = true;
          return false;
        }
      }
      if (hi_.has_value()) {
        std::optional<int> c = Cmp(value, *hi_);
        if (!c.has_value() || *c > 0 || (*c == 0 && !hi_inclusive_)) {
          empty_ = true;
          return false;
        }
      }
      lo_ = value;
      hi_ = value;
      lo_inclusive_ = hi_inclusive_ = true;
      break;
    case CompareOp::kNe:
      excluded_.push_back(value);
      break;
    case CompareOp::kLt:
    case CompareOp::kLe: {
      bool inclusive = (op == CompareOp::kLe);
      if (!hi_.has_value()) {
        hi_ = value;
        hi_inclusive_ = inclusive;
      } else {
        std::optional<int> c = Cmp(value, *hi_);
        if (!c.has_value()) {
          empty_ = true;
          return false;
        }
        if (*c < 0 || (*c == 0 && !inclusive)) {
          hi_ = value;
          hi_inclusive_ = inclusive;
        }
      }
      break;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      bool inclusive = (op == CompareOp::kGe);
      if (!lo_.has_value()) {
        lo_ = value;
        lo_inclusive_ = inclusive;
      } else {
        std::optional<int> c = Cmp(value, *lo_);
        if (!c.has_value()) {
          empty_ = true;
          return false;
        }
        if (*c > 0 || (*c == 0 && !inclusive)) {
          lo_ = value;
          lo_inclusive_ = inclusive;
        }
      }
      break;
    }
  }
  Collapse();
  return !empty_;
}

void Interval::Collapse() {
  if (empty_) return;
  if (lo_.has_value() && hi_.has_value()) {
    std::optional<int> c = Cmp(*lo_, *hi_);
    if (!c.has_value()) {
      empty_ = true;
      return;
    }
    if (*c > 0) {
      empty_ = true;
      return;
    }
    if (*c == 0 && (!lo_inclusive_ || !hi_inclusive_)) {
      empty_ = true;
      return;
    }
    // Point interval excluded by a != constant.
    if (*c == 0) {
      for (const Value& ex : excluded_) {
        std::optional<int> ce = Cmp(ex, *lo_);
        if (ce.has_value() && *ce == 0) {
          empty_ = true;
          return;
        }
      }
    }
  }
}

bool Interval::IsPoint() const {
  if (empty_ || !lo_.has_value() || !hi_.has_value()) return false;
  std::optional<int> c = Cmp(*lo_, *hi_);
  return c.has_value() && *c == 0 && lo_inclusive_ && hi_inclusive_;
}

std::optional<Value> Interval::PointValue() const {
  if (!IsPoint()) return std::nullopt;
  return lo_;
}

bool Interval::Contains(const Value& value) const {
  if (empty_) return false;
  if (lo_.has_value()) {
    std::optional<int> c = Cmp(value, *lo_);
    if (!c.has_value()) return false;
    if (*c < 0 || (*c == 0 && !lo_inclusive_)) return false;
  }
  if (hi_.has_value()) {
    std::optional<int> c = Cmp(value, *hi_);
    if (!c.has_value()) return false;
    if (*c > 0 || (*c == 0 && !hi_inclusive_)) return false;
  }
  for (const Value& ex : excluded_) {
    std::optional<int> c = Cmp(value, ex);
    if (c.has_value() && *c == 0) return false;
  }
  return true;
}

bool ConjunctionSatisfiable(const std::vector<Predicate>& predicates) {
  std::map<AttrRef, Interval> regions;
  for (const Predicate& p : predicates) {
    if (p.is_attr_attr()) {
      // x op x self-contradictions (possible after attr canonicalization
      // only when both sides are literally the same attribute).
      if (p.lhs() == p.rhs_attr()) {
        if (p.op() == CompareOp::kNe || p.op() == CompareOp::kLt ||
            p.op() == CompareOp::kGt) {
          return false;
        }
      }
      continue;  // cross-attribute reasoning is out of scope; conservative
    }
    Interval& region = regions[p.lhs()];
    if (!region.Add(p.op(), p.rhs_value())) return false;
  }
  return true;
}

}  // namespace sqopt

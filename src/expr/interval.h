// Interval reasoning over one attribute: the satisfiability core used for
// contradiction detection (the "answer without going to the database"
// short-circuit the paper alludes to in Section 4) and for implication
// checks between attr-constant predicates.
#ifndef SQOPT_EXPR_INTERVAL_H_
#define SQOPT_EXPR_INTERVAL_H_

#include <optional>
#include <vector>

#include "expr/predicate.h"
#include "types/value.h"

namespace sqopt {

// The feasible region of a single attribute under a conjunction of
// attr-constant predicates: a (possibly unbounded) interval with
// open/closed endpoints, intersected with a set of excluded points.
class Interval {
 public:
  Interval() = default;

  // Narrows the region by `attr op value`. Returns false if the region
  // becomes empty (conjunction unsatisfiable).
  bool Add(CompareOp op, const Value& value);

  // True if no values remain.
  bool empty() const { return empty_; }

  // True if the region is pinned to exactly one value (lo == hi, both
  // inclusive, not excluded).
  bool IsPoint() const;
  std::optional<Value> PointValue() const;

  // True if `value` lies in the region.
  bool Contains(const Value& value) const;

  const std::optional<Value>& lower() const { return lo_; }
  const std::optional<Value>& upper() const { return hi_; }
  bool lower_inclusive() const { return lo_inclusive_; }
  bool upper_inclusive() const { return hi_inclusive_; }

 private:
  void Collapse();  // re-derives empty_ after a bound update

  std::optional<Value> lo_;
  std::optional<Value> hi_;
  bool lo_inclusive_ = true;
  bool hi_inclusive_ = true;
  std::vector<Value> excluded_;  // from != predicates
  bool empty_ = false;
};

// Decides whether the conjunction of `predicates` restricted to
// attr-constant predicates is satisfiable. Attr-attr predicates are
// checked only for trivial self-contradictions (x < x). Conservative:
// returns true when undecided.
bool ConjunctionSatisfiable(const std::vector<Predicate>& predicates);

}  // namespace sqopt

#endif  // SQOPT_EXPR_INTERVAL_H_

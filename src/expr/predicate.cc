#include "expr/predicate.h"

#include <algorithm>

#include "common/string_util.h"

namespace sqopt {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<CompareOp> ParseCompareOp(std::string_view symbol) {
  std::string_view s = StripWhitespace(symbol);
  if (s == "=" || s == "==") return CompareOp::kEq;
  if (s == "!=" || s == "<>") return CompareOp::kNe;
  if (s == "<") return CompareOp::kLt;
  if (s == "<=") return CompareOp::kLe;
  if (s == ">") return CompareOp::kGt;
  if (s == ">=") return CompareOp::kGe;
  return Status::ParseError("unknown comparison operator '" +
                            std::string(symbol) + "'");
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  std::optional<int> cmp = lhs.Compare(rhs);
  if (!cmp.has_value()) return false;
  switch (op) {
    case CompareOp::kEq:
      return *cmp == 0;
    case CompareOp::kNe:
      return *cmp != 0;
    case CompareOp::kLt:
      return *cmp < 0;
    case CompareOp::kLe:
      return *cmp <= 0;
    case CompareOp::kGt:
      return *cmp > 0;
    case CompareOp::kGe:
      return *cmp >= 0;
  }
  return false;
}

Predicate Predicate::AttrConst(AttrRef attr, CompareOp op, Value constant) {
  Predicate p;
  p.lhs_ = attr;
  p.op_ = op;
  p.rhs_is_attr_ = false;
  p.rhs_value_ = std::move(constant);
  return p;
}

Predicate Predicate::AttrAttr(AttrRef lhs, CompareOp op, AttrRef rhs) {
  Predicate p;
  if (rhs < lhs) {
    std::swap(lhs, rhs);
    op = FlipCompareOp(op);
  }
  p.lhs_ = lhs;
  p.op_ = op;
  p.rhs_is_attr_ = true;
  p.rhs_attr_ = rhs;
  return p;
}

std::vector<ClassId> Predicate::ReferencedClasses() const {
  std::vector<ClassId> out;
  out.push_back(lhs_.class_id);
  if (rhs_is_attr_ && rhs_attr_.class_id != lhs_.class_id) {
    out.push_back(rhs_attr_.class_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Predicate::operator==(const Predicate& other) const {
  if (lhs_ != other.lhs_ || op_ != other.op_ ||
      rhs_is_attr_ != other.rhs_is_attr_) {
    return false;
  }
  if (rhs_is_attr_) return rhs_attr_ == other.rhs_attr_;
  return rhs_value_ == other.rhs_value_;
}

size_t Predicate::Hash() const {
  AttrRefHash ah;
  size_t h = ah(lhs_);
  h = h * 31 + static_cast<size_t>(op_);
  h = h * 31 + (rhs_is_attr_ ? 1 : 0);
  if (rhs_is_attr_) {
    h = h * 31 + ah(rhs_attr_);
  } else {
    h = h * 31 + rhs_value_.Hash();
  }
  return h;
}

std::string Predicate::ToString(const Schema& schema) const {
  std::string out = schema.AttrRefName(lhs_);
  out += " ";
  out += CompareOpSymbol(op_);
  out += " ";
  if (rhs_is_attr_) {
    out += schema.AttrRefName(rhs_attr_);
  } else {
    out += rhs_value_.ToString();
  }
  return out;
}

Result<Predicate> ParsePredicate(const Schema& schema,
                                 std::string_view text) {
  std::string_view s = StripWhitespace(text);
  // Find the operator at depth 0, scanning left to right but skipping
  // characters inside quoted strings. Two-char ops checked first.
  static constexpr std::string_view kTwoCharOps[] = {"<=", ">=", "!=", "<>",
                                                     "=="};
  static constexpr std::string_view kOneCharOps[] = {"=", "<", ">"};
  bool in_quote = false;
  char quote = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_quote) {
      if (c == quote) in_quote = false;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_quote = true;
      quote = c;
      continue;
    }
    std::string_view op_text;
    for (std::string_view two : kTwoCharOps) {
      if (s.substr(i, 2) == two) {
        op_text = two;
        break;
      }
    }
    if (op_text.empty()) {
      for (std::string_view one : kOneCharOps) {
        if (s.substr(i, 1) == one) {
          op_text = one;
          break;
        }
      }
    }
    if (op_text.empty()) continue;

    SQOPT_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(op_text));
    std::string_view lhs_text = StripWhitespace(s.substr(0, i));
    std::string_view rhs_text =
        StripWhitespace(s.substr(i + op_text.size()));
    if (lhs_text.empty() || rhs_text.empty()) {
      return Status::ParseError("malformed predicate '" + std::string(s) +
                                "'");
    }

    // LHS must be class.attr; a constant LHS is normalized by flipping.
    auto lhs_ref = schema.ResolveQualified(lhs_text);
    if (!lhs_ref.ok()) {
      // Try constant op attr.
      auto rhs_ref = schema.ResolveQualified(rhs_text);
      if (!rhs_ref.ok()) {
        return Status::ParseError("predicate '" + std::string(s) +
                                  "': neither side is a known attribute");
      }
      SQOPT_ASSIGN_OR_RETURN(Value lhs_val, Value::Parse(lhs_text));
      return Predicate::AttrConst(*rhs_ref, FlipCompareOp(op),
                                  std::move(lhs_val));
    }

    // RHS: attribute if it resolves AND contains a dot with a known class
    // prefix; otherwise constant.
    size_t dot = rhs_text.find('.');
    if (dot != std::string_view::npos) {
      std::string_view cls = StripWhitespace(rhs_text.substr(0, dot));
      if (schema.FindClass(cls) != kInvalidClass) {
        SQOPT_ASSIGN_OR_RETURN(AttrRef rhs_ref,
                               schema.ResolveQualified(rhs_text));
        return Predicate::AttrAttr(*lhs_ref, op, rhs_ref);
      }
    }
    SQOPT_ASSIGN_OR_RETURN(Value rhs_val, Value::Parse(rhs_text));
    return Predicate::AttrConst(*lhs_ref, op, std::move(rhs_val));
  }
  return Status::ParseError("no comparison operator in '" + std::string(s) +
                            "'");
}

}  // namespace sqopt

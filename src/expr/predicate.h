// Predicates: the atoms the semantic optimizer classifies and rewrites.
// A predicate compares an attribute against either a constant (selective
// predicate, e.g. vehicle.desc = "refrigerated truck") or another
// attribute (join/comparison predicate, e.g. driver.licenseClass >=
// vehicle.class). Predicates are value types with canonical form, total
// identity, and hashing, because the transformation table keys on them.
#ifndef SQOPT_EXPR_PREDICATE_H_
#define SQOPT_EXPR_PREDICATE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "types/value.h"

namespace sqopt {

enum class CompareOp {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

// "=", "!=", "<", "<=", ">", ">=".
const char* CompareOpSymbol(CompareOp op);
Result<CompareOp> ParseCompareOp(std::string_view symbol);

// The mirrored operator: a op b  <=>  b op' a.
CompareOp FlipCompareOp(CompareOp op);
// The logical negation: !(a op b) <=> a op' b.
CompareOp NegateCompareOp(CompareOp op);

// Evaluates `lhs op rhs`. Incomparable values (nulls, type mismatch)
// evaluate to false for every op, including !=, mirroring SQL's
// unknown-is-not-true semantics.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

class Predicate {
 public:
  Predicate() = default;

  // attr op constant.
  static Predicate AttrConst(AttrRef attr, CompareOp op, Value constant);
  // attr op attr. Canonicalized so the smaller AttrRef is on the left.
  static Predicate AttrAttr(AttrRef lhs, CompareOp op, AttrRef rhs);

  bool is_attr_const() const { return !rhs_is_attr_; }
  bool is_attr_attr() const { return rhs_is_attr_; }

  const AttrRef& lhs() const { return lhs_; }
  CompareOp op() const { return op_; }
  const AttrRef& rhs_attr() const { return rhs_attr_; }
  const Value& rhs_value() const { return rhs_value_; }

  // The object classes this predicate references (1 for attr-const or
  // same-class attr-attr, 2 otherwise). Sorted, deduplicated.
  std::vector<ClassId> ReferencedClasses() const;

  // True if the predicate references only one object class. Mirrors the
  // paper's intra-class / inter-class distinction at predicate level.
  bool IsSingleClass() const { return ReferencedClasses().size() == 1; }

  bool operator==(const Predicate& other) const;
  size_t Hash() const;

  // Rendering requires the schema for attribute names.
  std::string ToString(const Schema& schema) const;

 private:
  AttrRef lhs_;
  CompareOp op_ = CompareOp::kEq;
  bool rhs_is_attr_ = false;
  AttrRef rhs_attr_;
  Value rhs_value_;
};

struct PredicateHash {
  size_t operator()(const Predicate& p) const { return p.Hash(); }
};

// Parses "class.attr op literal" or "class.attr op class.attr".
// Accepted ops: = == != <> < <= > >=.
Result<Predicate> ParsePredicate(const Schema& schema,
                                 std::string_view text);

}  // namespace sqopt

#endif  // SQOPT_EXPR_PREDICATE_H_

#include "persist/crash_point.h"

#include <unistd.h>

#include <atomic>
#include <cstring>

namespace sqopt::persist {

namespace {
// The armed point name. Arming happens once, before the code path under
// test runs, in a single-threaded harness process — a plain atomic
// pointer swap is all the synchronization this needs.
std::atomic<const char*> g_armed{nullptr};
char g_point_buf[64];
}  // namespace

void ArmCrashPoint(const char* point) {
  std::strncpy(g_point_buf, point, sizeof(g_point_buf) - 1);
  g_point_buf[sizeof(g_point_buf) - 1] = '\0';
  g_armed.store(g_point_buf, std::memory_order_release);
}

void DisarmCrashPoint() { g_armed.store(nullptr, std::memory_order_release); }

void MaybeCrash(const char* point) {
  const char* armed = g_armed.load(std::memory_order_acquire);
  if (armed == nullptr) return;
  if (std::strcmp(armed, point) != 0) return;
  // Simulate the kill: no atexit handlers, no stream flushes, no
  // destructors. 137 = 128 + SIGKILL, what a real kill -9 reports.
  _exit(137);
}

}  // namespace sqopt::persist

// Crash injection for the crash-recovery harness: the persistence code
// calls MaybeCrash(point) at the instants a real crash is interesting
// (mid-WAL-append, between a checkpoint's rename and its log truncate,
// ...). In production nothing is armed and the calls are a branch on a
// relaxed atomic. The harness's writer process arms exactly one point
// (ArmCrashPoint) and the next time execution reaches it the process
// _exit(137)s — no destructors, no flushes, like a kill -9 at that
// offset.
#ifndef SQOPT_PERSIST_CRASH_POINT_H_
#define SQOPT_PERSIST_CRASH_POINT_H_

namespace sqopt::persist {

// Known points: wal_pre_write, wal_pre_sync, wal_post_sync,
// group_post_wal (between a commit group's WAL append and its
// in-memory publish), snapshot_pre_tmp_sync, snapshot_pre_rename,
// checkpoint_post_rename, checkpoint_post_truncate.
void ArmCrashPoint(const char* point);
void DisarmCrashPoint();
void MaybeCrash(const char* point);

}  // namespace sqopt::persist

#endif  // SQOPT_PERSIST_CRASH_POINT_H_

#include "persist/serde.h"

#include <array>
#include <cstring>

namespace sqopt::persist {

namespace {

// Slicing-by-4 tables: table[0] is the classic byte-at-a-time table,
// table[k][b] extends it by k extra zero bytes, letting the hot loop
// fold 4 input bytes per iteration (snapshot sections run to megabytes
// — the cold-open path checksums the whole file).
std::array<std::array<uint32_t, 256>, 4> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 4> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int t = 1; t < 4; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 4> kTables =
      MakeCrcTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  while (len >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = kTables[3][c & 0xFFu] ^ kTables[2][(c >> 8) & 0xFFu] ^
        kTables[1][(c >> 16) & 0xFFu] ^ kTables[0][(c >> 24) & 0xFFu];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.bool_value() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutI64(v.int_value());
      break;
    case ValueType::kDouble:
      PutF64(v.double_value());
      break;
    case ValueType::kString:
      PutString(v.string_value());
      break;
    case ValueType::kRef:
      PutI32(v.ref_value().class_id);
      PutI64(v.ref_value().row);
      break;
  }
}

Status ByteReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("serialized data truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::U8() {
  SQOPT_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::U32() {
  SQOPT_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

Result<uint64_t> ByteReader::U64() {
  SQOPT_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

Result<int32_t> ByteReader::I32() {
  SQOPT_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> ByteReader::I64() {
  SQOPT_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::F64() {
  SQOPT_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::String() {
  SQOPT_ASSIGN_OR_RETURN(uint32_t len, U32());
  SQOPT_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<std::string_view> ByteReader::Raw(size_t n) {
  SQOPT_RETURN_IF_ERROR(Need(n));
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

Result<Value> ByteReader::ReadValue() {
  SQOPT_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      SQOPT_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      SQOPT_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      SQOPT_ASSIGN_OR_RETURN(double v, F64());
      return Value::Double(v);
    }
    case ValueType::kString: {
      SQOPT_ASSIGN_OR_RETURN(std::string s, String());
      return Value::String(std::move(s));
    }
    case ValueType::kRef: {
      SQOPT_ASSIGN_OR_RETURN(int32_t class_id, I32());
      SQOPT_ASSIGN_OR_RETURN(int64_t row, I64());
      return Value::Ref(Oid{class_id, row});
    }
  }
  return Status::Corruption("unknown value type tag " +
                            std::to_string(static_cast<int>(tag)));
}

}  // namespace sqopt::persist

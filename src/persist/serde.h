// Byte-level encoding for the durable on-disk format: a little-endian
// append-only writer, a bounds-checked reader that turns every overrun
// or malformed field into a typed kCorruption status (never UB), and
// the CRC-32 the snapshot sections and WAL records are framed with.
// Values are encoded byte by byte, so the format is identical across
// compilers, optimization levels, and host endianness — the
// cross-compiler CI leg holds this by construction.
#ifndef SQOPT_PERSIST_SERDE_H_
#define SQOPT_PERSIST_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "types/value.h"

namespace sqopt::persist {

// CRC-32 (IEEE 802.3 polynomial, reflected) of `len` bytes. `seed`
// chains partial computations: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// Appends little-endian fixed-width fields to an in-memory buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);  // IEEE-754 bit pattern as u64
  void PutString(std::string_view s);  // u32 length + raw bytes
  void PutValue(const Value& v);       // u8 type tag + payload
  // Raw bytes, no length prefix (section framing carries its own).
  void PutRaw(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Consumes a byte range front to back. Every accessor bounds-checks and
// returns kCorruption instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> F64();
  // Rejects lengths larger than the remaining bytes, so a corrupt
  // length field can never trigger a huge allocation.
  Result<std::string> String();
  Result<Value> ReadValue();
  // `n` raw bytes, zero-copy view into the underlying buffer.
  Result<std::string_view> Raw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  // Caps a deserialized element count by the bytes actually left:
  // every encoded element consumes at least `min_bytes` (>= 1), so a
  // larger count is corrupt and will fail a bounds-checked read soon
  // anyway — but reserve()ing it first would abort the process on
  // std::length_error instead of surfacing the typed kCorruption this
  // module promises. Use for every reserve() fed by untrusted input.
  size_t CappedCount(uint64_t n, size_t min_bytes = 1) const {
    const uint64_t cap = remaining() / (min_bytes == 0 ? 1 : min_bytes);
    return static_cast<size_t>(n < cap ? n : cap);
  }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sqopt::persist

#endif  // SQOPT_PERSIST_SERDE_H_

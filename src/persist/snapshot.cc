#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "catalog/schema_builder.h"
#include "persist/crash_point.h"
#include "persist/serde.h"

namespace sqopt::persist {

namespace {

constexpr char kMagic[8] = {'S', 'Q', 'O', 'P', 'S', 'N', 'P', '1'};

enum SectionId : uint32_t {
  kSectionSchema = 1,
  kSectionCatalog = 2,
  kSectionExtents = 3,
  kSectionRels = 4,
  kSectionIndexes = 5,
  kSectionStats = 6,
};

// ---------------------------------------------------------------------
// Predicate / Horn-clause encoding (shared by the catalog section and,
// transitively, nothing else — the WAL encodes mutations, not rules).
// ---------------------------------------------------------------------

void PutAttrRef(ByteWriter* w, const AttrRef& ref) {
  w->PutI32(ref.class_id);
  w->PutI32(ref.attr_id);
}

Result<AttrRef> ReadAttrRef(ByteReader* r) {
  AttrRef ref;
  SQOPT_ASSIGN_OR_RETURN(ref.class_id, r->I32());
  SQOPT_ASSIGN_OR_RETURN(ref.attr_id, r->I32());
  return ref;
}

void PutPredicate(ByteWriter* w, const Predicate& p) {
  PutAttrRef(w, p.lhs());
  w->PutU8(static_cast<uint8_t>(p.op()));
  w->PutU8(p.is_attr_attr() ? 1 : 0);
  if (p.is_attr_attr()) {
    PutAttrRef(w, p.rhs_attr());
  } else {
    w->PutValue(p.rhs_value());
  }
}

Result<Predicate> ReadPredicate(ByteReader* r) {
  SQOPT_ASSIGN_OR_RETURN(AttrRef lhs, ReadAttrRef(r));
  SQOPT_ASSIGN_OR_RETURN(uint8_t op, r->U8());
  if (op > static_cast<uint8_t>(CompareOp::kGe)) {
    return Status::Corruption("unknown compare op tag " +
                              std::to_string(static_cast<int>(op)));
  }
  SQOPT_ASSIGN_OR_RETURN(uint8_t is_attr, r->U8());
  if (is_attr != 0) {
    SQOPT_ASSIGN_OR_RETURN(AttrRef rhs, ReadAttrRef(r));
    return Predicate::AttrAttr(lhs, static_cast<CompareOp>(op), rhs);
  }
  SQOPT_ASSIGN_OR_RETURN(Value rhs, r->ReadValue());
  return Predicate::AttrConst(lhs, static_cast<CompareOp>(op),
                              std::move(rhs));
}

void PutClause(ByteWriter* w, const HornClause& clause) {
  w->PutString(clause.label());
  w->PutU32(static_cast<uint32_t>(clause.antecedents().size()));
  for (const Predicate& p : clause.antecedents()) PutPredicate(w, p);
  PutPredicate(w, clause.consequent());
  w->PutU32(static_cast<uint32_t>(clause.derived_from().size()));
  for (ConstraintId id : clause.derived_from()) w->PutI32(id);
}

Result<HornClause> ReadClause(ByteReader* r) {
  SQOPT_ASSIGN_OR_RETURN(std::string label, r->String());
  SQOPT_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  std::vector<Predicate> antecedents;
  antecedents.reserve(r->CappedCount(n));
  for (uint32_t i = 0; i < n; ++i) {
    SQOPT_ASSIGN_OR_RETURN(Predicate p, ReadPredicate(r));
    antecedents.push_back(std::move(p));
  }
  SQOPT_ASSIGN_OR_RETURN(Predicate consequent, ReadPredicate(r));
  HornClause clause(std::move(label), std::move(antecedents),
                    std::move(consequent));
  SQOPT_ASSIGN_OR_RETURN(uint32_t d, r->U32());
  std::vector<ConstraintId> derived_from;
  derived_from.reserve(r->CappedCount(d, sizeof(ConstraintId)));
  for (uint32_t i = 0; i < d; ++i) {
    SQOPT_ASSIGN_OR_RETURN(ConstraintId id, r->I32());
    derived_from.push_back(id);
  }
  clause.set_derived_from(std::move(derived_from));
  return clause;
}

// ---------------------------------------------------------------------
// Section payloads.
// ---------------------------------------------------------------------

std::string EncodeSchema(const Schema& schema) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(schema.num_classes()));
  for (const ObjectClass& oc : schema.classes()) {
    w.PutString(oc.name);
    w.PutString(oc.parent == kInvalidClass
                    ? std::string()
                    : schema.object_class(oc.parent).name);
    w.PutU32(static_cast<uint32_t>(oc.attributes.size()));
    for (const Attribute& attr : oc.attributes) {
      w.PutString(attr.name);
      w.PutU8(static_cast<uint8_t>(attr.type));
      w.PutU8(attr.indexed ? 1 : 0);
      w.PutI64(attr.distinct_values);
    }
  }
  w.PutU32(static_cast<uint32_t>(schema.num_relationships()));
  for (const Relationship& rel : schema.relationships()) {
    w.PutString(rel.name);
    w.PutString(schema.object_class(rel.a).name);
    w.PutString(schema.object_class(rel.b).name);
  }
  return w.Take();
}

Result<Schema> DecodeSchema(std::string_view payload) {
  ByteReader r(payload);
  SchemaBuilder builder;
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_classes, r.U32());
  for (uint32_t i = 0; i < num_classes; ++i) {
    SQOPT_ASSIGN_OR_RETURN(std::string name, r.String());
    SQOPT_ASSIGN_OR_RETURN(std::string parent, r.String());
    auto cb = builder.AddClass(std::move(name));
    if (!parent.empty()) cb.Parent(std::move(parent));
    SQOPT_ASSIGN_OR_RETURN(uint32_t num_attrs, r.U32());
    for (uint32_t a = 0; a < num_attrs; ++a) {
      SQOPT_ASSIGN_OR_RETURN(std::string attr_name, r.String());
      SQOPT_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      if (type > static_cast<uint8_t>(ValueType::kRef)) {
        return Status::Corruption("unknown attribute type tag " +
                                  std::to_string(static_cast<int>(type)));
      }
      SQOPT_ASSIGN_OR_RETURN(uint8_t indexed, r.U8());
      SQOPT_ASSIGN_OR_RETURN(int64_t distinct, r.I64());
      cb.Attr(std::move(attr_name), static_cast<ValueType>(type),
              indexed != 0, distinct);
    }
  }
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_rels, r.U32());
  for (uint32_t i = 0; i < num_rels; ++i) {
    SQOPT_ASSIGN_OR_RETURN(std::string name, r.String());
    SQOPT_ASSIGN_OR_RETURN(std::string a, r.String());
    SQOPT_ASSIGN_OR_RETURN(std::string b, r.String());
    builder.AddRelationship(std::move(name), std::move(a), std::move(b));
  }
  auto built = builder.Build();
  if (!built.ok()) {
    return Status::Corruption("snapshot schema does not rebuild: " +
                              built.status().message());
  }
  return std::move(built).value();
}

std::string EncodeCatalog(const ConstraintCatalog& catalog) {
  // The base set is exactly the prefix of the closed clause list
  // (ComputeClosure moves the input in front and appends derivations),
  // so only the count is stored — serializing the base clauses again
  // would double the section for bytes a prefix slice reproduces.
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(catalog.num_base()));
  w.PutU32(static_cast<uint32_t>(catalog.clauses().size()));
  for (size_t i = 0; i < catalog.clauses().size(); ++i) {
    PutClause(&w, catalog.clauses()[i]);
    w.PutU8(static_cast<uint8_t>(
        catalog.classification(static_cast<ConstraintId>(i))));
    w.PutI32(catalog.grouping().GroupOf(static_cast<ConstraintId>(i)));
  }
  return w.Take();
}

Status DecodeCatalog(std::string_view payload, ConstraintCatalog* catalog) {
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_base, r.U32());
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_clauses, r.U32());
  if (num_base > num_clauses) {
    return Status::Corruption(
        "catalog snapshot claims more base clauses (" +
        std::to_string(num_base) + ") than clauses (" +
        std::to_string(num_clauses) + ")");
  }
  std::vector<HornClause> clauses;
  std::vector<ConstraintClass> classifications;
  std::vector<ClassId> assignment;
  const size_t clause_cap = r.CappedCount(num_clauses);
  clauses.reserve(clause_cap);
  classifications.reserve(clause_cap);
  assignment.reserve(clause_cap);
  for (uint32_t i = 0; i < num_clauses; ++i) {
    SQOPT_ASSIGN_OR_RETURN(HornClause clause, ReadClause(&r));
    clauses.push_back(std::move(clause));
    SQOPT_ASSIGN_OR_RETURN(uint8_t cls, r.U8());
    if (cls > static_cast<uint8_t>(ConstraintClass::kInter)) {
      return Status::Corruption("unknown constraint classification tag");
    }
    classifications.push_back(static_cast<ConstraintClass>(cls));
    SQOPT_ASSIGN_OR_RETURN(ClassId group, r.I32());
    assignment.push_back(group);
  }
  std::vector<HornClause> base(clauses.begin(), clauses.begin() + num_base);
  return catalog->RestorePrecompiled(std::move(base), std::move(clauses),
                                     std::move(classifications),
                                     std::move(assignment));
}

// Extents section, column-major (format v3): per class, the live
// bitmap as one raw run, then each attribute slot as one contiguous
// column — a u8 encoding tag followed by `rows` raw i64/f64 payloads
// (typed columns) or tagged Values (generic). A slot is written typed
// only when every segment's chunk holds that typed encoding, so decode
// can bulk-build the whole-extent ColumnData without per-row dispatch.
std::string EncodeExtents(const Schema& schema, const ObjectStore& store) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(schema.num_classes()));
  for (const ObjectClass& oc : schema.classes()) {
    const Extent& extent = store.extent(oc.id);
    const size_t num_slots = extent.num_slots();
    const int64_t num_segments = extent.num_segments();
    w.PutU32(static_cast<uint32_t>(num_slots));
    w.PutU64(static_cast<uint64_t>(extent.size()));
    std::string live_bytes;
    live_bytes.reserve(static_cast<size_t>(extent.size()));
    for (int64_t s = 0; s < num_segments; ++s) {
      const SegmentBatch batch = extent.Batch(s);
      live_bytes.append(reinterpret_cast<const char*>(batch.live),
                        static_cast<size_t>(batch.rows));
    }
    w.PutRaw(live_bytes);
    for (size_t slot = 0; slot < num_slots; ++slot) {
      ColumnEncoding enc =
          num_segments > 0 ? extent.Batch(0).column(slot).encoding
                           : ColumnEncoding::kGeneric;
      for (int64_t s = 1; s < num_segments; ++s) {
        if (extent.Batch(s).column(slot).encoding != enc) {
          enc = ColumnEncoding::kGeneric;
          break;
        }
      }
      w.PutU8(static_cast<uint8_t>(enc));
      for (int64_t s = 0; s < num_segments; ++s) {
        const ColumnView col = extent.Batch(s).column(slot);
        switch (enc) {
          case ColumnEncoding::kInt64:
            for (int64_t i = 0; i < col.size; ++i) w.PutI64(col.i64[i]);
            break;
          case ColumnEncoding::kFloat64:
            for (int64_t i = 0; i < col.size; ++i) w.PutF64(col.f64[i]);
            break;
          case ColumnEncoding::kGeneric:
            for (int64_t i = 0; i < col.size; ++i) w.PutValue(col.Get(i));
            break;
        }
      }
    }
  }
  return w.Take();
}

Status DecodeExtents(std::string_view payload, ObjectStore* store) {
  const Schema& schema = store->schema();
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_classes, r.U32());
  if (num_classes != schema.num_classes()) {
    return Status::Corruption("snapshot has " + std::to_string(num_classes) +
                              " extents for a schema with " +
                              std::to_string(schema.num_classes()) +
                              " classes");
  }
  for (const ObjectClass& oc : schema.classes()) {
    SQOPT_ASSIGN_OR_RETURN(uint32_t num_slots, r.U32());
    SQOPT_ASSIGN_OR_RETURN(uint64_t rows, r.U64());
    SQOPT_ASSIGN_OR_RETURN(std::string_view live_raw,
                           r.Raw(static_cast<size_t>(rows)));
    std::vector<uint8_t> live(live_raw.begin(), live_raw.end());
    std::vector<ColumnData> cols;
    cols.reserve(r.CappedCount(num_slots));
    for (uint32_t slot = 0; slot < num_slots; ++slot) {
      SQOPT_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
      if (tag > static_cast<uint8_t>(ColumnEncoding::kFloat64)) {
        return Status::Corruption("unknown column encoding tag " +
                                  std::to_string(tag));
      }
      ColumnData col;
      col.encoding = static_cast<ColumnEncoding>(tag);
      switch (col.encoding) {
        case ColumnEncoding::kInt64:
          col.i64.reserve(r.CappedCount(rows, 8));
          for (uint64_t i = 0; i < rows; ++i) {
            SQOPT_ASSIGN_OR_RETURN(int64_t v, r.I64());
            col.i64.push_back(v);
          }
          break;
        case ColumnEncoding::kFloat64:
          col.f64.reserve(r.CappedCount(rows, 8));
          for (uint64_t i = 0; i < rows; ++i) {
            SQOPT_ASSIGN_OR_RETURN(double v, r.F64());
            col.f64.push_back(v);
          }
          break;
        case ColumnEncoding::kGeneric:
          col.generic.reserve(r.CappedCount(rows));
          for (uint64_t i = 0; i < rows; ++i) {
            SQOPT_ASSIGN_OR_RETURN(Value v, r.ReadValue());
            col.generic.push_back(std::move(v));
          }
          break;
      }
      cols.push_back(std::move(col));
    }
    SQOPT_RETURN_IF_ERROR(
        store->RestoreClassColumns(oc.id, std::move(cols), std::move(live)));
  }
  return Status::OK();
}

std::string EncodeRels(const Schema& schema, const ObjectStore& store) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(schema.num_relationships()));
  for (const Relationship& rel : schema.relationships()) {
    const auto& pairs = store.Pairs(rel.id);
    w.PutU64(static_cast<uint64_t>(pairs.size()));
    for (const auto& [a, b] : pairs) {
      w.PutI64(a);
      w.PutI64(b);
    }
  }
  return w.Take();
}

Status DecodeRels(std::string_view payload, ObjectStore* store) {
  const Schema& schema = store->schema();
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_rels, r.U32());
  if (num_rels != schema.num_relationships()) {
    return Status::Corruption("snapshot relationship count mismatch");
  }
  for (const Relationship& rel : schema.relationships()) {
    SQOPT_ASSIGN_OR_RETURN(uint64_t n, r.U64());
    std::vector<std::pair<int64_t, int64_t>> pairs;
    pairs.reserve(r.CappedCount(n, 16));
    for (uint64_t i = 0; i < n; ++i) {
      SQOPT_ASSIGN_OR_RETURN(int64_t a, r.I64());
      SQOPT_ASSIGN_OR_RETURN(int64_t b, r.I64());
      pairs.emplace_back(a, b);
    }
    SQOPT_RETURN_IF_ERROR(
        store->RestoreRelationshipPairs(rel.id, std::move(pairs)));
  }
  return Status::OK();
}

std::string EncodeIndexes(const Schema& schema, const ObjectStore& store) {
  ByteWriter w;
  // Count first (same enumeration as the store constructor's).
  uint32_t count = 0;
  for (const ObjectClass& oc : schema.classes()) {
    for (AttrId attr_id : schema.LayoutOf(oc.id)) {
      if (store.GetIndex({oc.id, attr_id}) != nullptr) ++count;
    }
  }
  w.PutU32(count);
  for (const ObjectClass& oc : schema.classes()) {
    for (AttrId attr_id : schema.LayoutOf(oc.id)) {
      const AttributeIndex* index = store.GetIndex({oc.id, attr_id});
      if (index == nullptr) continue;
      w.PutI32(oc.id);
      w.PutI32(attr_id);
      auto entries = index->tree().Scan();
      w.PutU64(static_cast<uint64_t>(entries.size()));
      for (const auto& [key, row] : entries) {
        w.PutValue(key);
        w.PutI64(row);
      }
    }
  }
  return w.Take();
}

Status DecodeIndexes(std::string_view payload, ObjectStore* store) {
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  for (uint32_t i = 0; i < count; ++i) {
    SQOPT_ASSIGN_OR_RETURN(ClassId class_id, r.I32());
    SQOPT_ASSIGN_OR_RETURN(AttrId attr_id, r.I32());
    SQOPT_ASSIGN_OR_RETURN(uint64_t n, r.U64());
    std::vector<std::pair<Value, int64_t>> entries;
    entries.reserve(r.CappedCount(n, 9));
    for (uint64_t e = 0; e < n; ++e) {
      SQOPT_ASSIGN_OR_RETURN(Value key, r.ReadValue());
      SQOPT_ASSIGN_OR_RETURN(int64_t row, r.I64());
      entries.emplace_back(std::move(key), row);
    }
    SQOPT_RETURN_IF_ERROR(
        store->RestoreIndexEntries(class_id, attr_id, std::move(entries)));
  }
  return Status::OK();
}

void PutHistogram(ByteWriter* w, const Histogram& h) {
  w->PutF64(h.lo());
  w->PutF64(h.hi());
  w->PutI64(h.total());
  w->PutU32(static_cast<uint32_t>(h.num_buckets()));
  for (int b = 0; b < h.num_buckets(); ++b) {
    w->PutI64(h.bucket_count(b));
  }
}

Result<Histogram> ReadHistogram(ByteReader* r) {
  SQOPT_ASSIGN_OR_RETURN(double lo, r->F64());
  SQOPT_ASSIGN_OR_RETURN(double hi, r->F64());
  SQOPT_ASSIGN_OR_RETURN(int64_t total, r->I64());
  SQOPT_ASSIGN_OR_RETURN(uint32_t buckets, r->U32());
  std::vector<int64_t> counts;
  counts.reserve(r->CappedCount(buckets, 8));
  for (uint32_t b = 0; b < buckets; ++b) {
    SQOPT_ASSIGN_OR_RETURN(int64_t c, r->I64());
    counts.push_back(c);
  }
  return Histogram::FromParts(lo, hi, total, std::move(counts));
}

std::string EncodeStats(const DatabaseStats& stats) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(stats.class_cardinalities().size()));
  for (const auto& [id, card] : stats.class_cardinalities()) {
    w.PutI32(id);
    w.PutI64(card);
  }
  w.PutU32(static_cast<uint32_t>(stats.rel_cardinalities().size()));
  for (const auto& [id, card] : stats.rel_cardinalities()) {
    w.PutI32(id);
    w.PutI64(card);
  }
  w.PutU32(static_cast<uint32_t>(stats.attr_stats().size()));
  for (const auto& [ref, data] : stats.attr_stats()) {
    PutAttrRef(&w, ref);
    w.PutI64(data.distinct_values);
    w.PutU8(data.min.has_value() ? 1 : 0);
    if (data.min.has_value()) w.PutValue(*data.min);
    w.PutU8(data.max.has_value() ? 1 : 0);
    if (data.max.has_value()) w.PutValue(*data.max);
    PutHistogram(&w, data.histogram);
  }
  return w.Take();
}

Result<DatabaseStats> DecodeStats(std::string_view payload) {
  ByteReader r(payload);
  DatabaseStats stats;
  SQOPT_ASSIGN_OR_RETURN(uint32_t classes, r.U32());
  for (uint32_t i = 0; i < classes; ++i) {
    SQOPT_ASSIGN_OR_RETURN(ClassId id, r.I32());
    SQOPT_ASSIGN_OR_RETURN(int64_t card, r.I64());
    stats.SetClassCardinality(id, card);
  }
  SQOPT_ASSIGN_OR_RETURN(uint32_t rels, r.U32());
  for (uint32_t i = 0; i < rels; ++i) {
    SQOPT_ASSIGN_OR_RETURN(RelId id, r.I32());
    SQOPT_ASSIGN_OR_RETURN(int64_t card, r.I64());
    stats.SetRelationshipCardinality(id, card);
  }
  SQOPT_ASSIGN_OR_RETURN(uint32_t attrs, r.U32());
  for (uint32_t i = 0; i < attrs; ++i) {
    SQOPT_ASSIGN_OR_RETURN(AttrRef ref, ReadAttrRef(&r));
    AttrStatsData data;
    SQOPT_ASSIGN_OR_RETURN(data.distinct_values, r.I64());
    SQOPT_ASSIGN_OR_RETURN(uint8_t has_min, r.U8());
    if (has_min != 0) {
      SQOPT_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      data.min = std::move(v);
    }
    SQOPT_ASSIGN_OR_RETURN(uint8_t has_max, r.U8());
    if (has_max != 0) {
      SQOPT_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      data.max = std::move(v);
    }
    SQOPT_ASSIGN_OR_RETURN(data.histogram, ReadHistogram(&r));
    stats.SetAttrStats(ref, std::move(data));
  }
  return stats;
}

// ---------------------------------------------------------------------
// File assembly.
// ---------------------------------------------------------------------

void AppendSection(ByteWriter* w, uint32_t id, const std::string& payload) {
  w->PutU32(id);
  w->PutU64(payload.size());
  w->PutU32(Crc32(payload.data(), payload.size()));
  w->PutRaw(payload);
}

Status WriteFileDurably(const std::string& path, const std::string& bytes,
                        bool fsync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create '" + tmp + "'");
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("short write to '" + tmp + "'");
    }
    written += static_cast<size_t>(n);
  }
  MaybeCrash("snapshot_pre_tmp_sync");
  if (fsync && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync failed on '" + tmp + "'");
  }
  ::close(fd);
  MaybeCrash("snapshot_pre_rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' over '" + path +
                            "'");
  }
  if (fsync) {
    SQOPT_RETURN_IF_ERROR(FsyncDirOf(path));
  }
  return Status::OK();
}

}  // namespace

Status FsyncDirOf(const std::string& file_path) {
  std::filesystem::path dir =
      std::filesystem::path(file_path).parent_path();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory '" + dir.string() +
                            "' for fsync");
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed on directory '" + dir.string() +
                            "'");
  }
  return Status::OK();
}

Status WriteSnapshotFile(const std::string& path, const Schema& schema,
                         const ConstraintCatalog& catalog,
                         const ObjectStore& store,
                         const DatabaseStats& stats, uint64_t data_version,
                         bool fsync) {
  ByteWriter w;
  for (char c : kMagic) w.PutU8(static_cast<uint8_t>(c));
  w.PutU32(kSnapshotFormatVersion);
  w.PutU64(data_version);
  w.PutU32(6);  // section count
  AppendSection(&w, kSectionSchema, EncodeSchema(schema));
  AppendSection(&w, kSectionCatalog, EncodeCatalog(catalog));
  AppendSection(&w, kSectionExtents, EncodeExtents(schema, store));
  AppendSection(&w, kSectionRels, EncodeRels(schema, store));
  AppendSection(&w, kSectionIndexes, EncodeIndexes(schema, store));
  AppendSection(&w, kSectionStats, EncodeStats(stats));
  return WriteFileDurably(path, w.buffer(), fsync);
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("no snapshot at '" + path + "'");
  }
  const auto size = in.tellg();
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(bytes.data(), size);
  if (!in) {
    return Status::Corruption("cannot read '" + path + "'");
  }
  in.close();

  ByteReader r(bytes);
  for (char expected : kMagic) {
    SQOPT_ASSIGN_OR_RETURN(uint8_t c, r.U8());
    if (static_cast<char>(c) != expected) {
      return Status::Corruption("'" + path + "' is not a sqopt snapshot");
    }
  }
  SQOPT_ASSIGN_OR_RETURN(uint32_t format, r.U32());
  if (format != kSnapshotFormatVersion) {
    // The file is structurally fine, just written by another format
    // generation (e.g. a pre-columnar v1 snapshot): surface the typed
    // version error, not kCorruption, so callers can distinguish
    // "re-ingest from sources" from "your disk is bad".
    return Status::UnsupportedVersion(
        "snapshot format version " + std::to_string(format) +
        " unsupported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  SnapshotReader reader;
  SQOPT_ASSIGN_OR_RETURN(reader.data_version_, r.U64());
  SQOPT_ASSIGN_OR_RETURN(uint32_t sections, r.U32());
  for (uint32_t i = 0; i < sections; ++i) {
    SQOPT_ASSIGN_OR_RETURN(uint32_t id, r.U32());
    SQOPT_ASSIGN_OR_RETURN(uint64_t len, r.U64());
    if (len > r.remaining()) {
      return Status::Corruption("snapshot section " + std::to_string(id) +
                                " truncated");
    }
    SQOPT_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
    SQOPT_ASSIGN_OR_RETURN(std::string_view payload,
                           r.Raw(static_cast<size_t>(len)));
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption("snapshot section " + std::to_string(id) +
                                " failed its checksum");
    }
    reader.sections_[id] = std::string(payload);
  }
  return reader;
}

Result<std::string_view> SnapshotReader::Section(uint32_t section_id) const {
  auto it = sections_.find(section_id);
  if (it == sections_.end()) {
    return Status::Corruption("snapshot is missing section " +
                              std::to_string(section_id));
  }
  return std::string_view(it->second);
}

Result<Schema> SnapshotReader::ReadSchema() const {
  SQOPT_ASSIGN_OR_RETURN(std::string_view payload, Section(kSectionSchema));
  return DecodeSchema(payload);
}

Status SnapshotReader::RestoreCatalog(ConstraintCatalog* catalog) const {
  SQOPT_ASSIGN_OR_RETURN(std::string_view payload, Section(kSectionCatalog));
  return DecodeCatalog(payload, catalog);
}

Result<std::unique_ptr<ObjectStore>> SnapshotReader::RestoreStore(
    const Schema* schema) const {
  auto store = std::make_unique<ObjectStore>(schema);
  SQOPT_ASSIGN_OR_RETURN(std::string_view extents, Section(kSectionExtents));
  SQOPT_RETURN_IF_ERROR(DecodeExtents(extents, store.get()));
  SQOPT_ASSIGN_OR_RETURN(std::string_view rels, Section(kSectionRels));
  SQOPT_RETURN_IF_ERROR(DecodeRels(rels, store.get()));
  SQOPT_ASSIGN_OR_RETURN(std::string_view indexes,
                         Section(kSectionIndexes));
  SQOPT_RETURN_IF_ERROR(DecodeIndexes(indexes, store.get()));
  return store;
}

Result<DatabaseStats> SnapshotReader::RestoreStats() const {
  SQOPT_ASSIGN_OR_RETURN(std::string_view payload, Section(kSectionStats));
  return DecodeStats(payload);
}

}  // namespace sqopt::persist

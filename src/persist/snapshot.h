// The versioned binary snapshot format behind Engine::Save / Open(dir)
// / Checkpoint: one file holding everything a cold open needs to come
// back without re-parsing sources, re-running constraint closure
// ("rule mining"), or re-collecting statistics —
//
//   header   magic "SQOPSNP1", format version, data version, #sections
//   section  u32 id | u64 payload length | u32 CRC-32 | payload
//
// with one section each for the schema, the precompiled constraint
// catalog (base + derived clauses, classifications, grouping), the
// per-class extents (column-major: a live bitmap plus one contiguous
// typed-or-generic array per attribute slot), the relationship pair
// lists, the B-tree attribute indexes (entries in key order), and the
// database statistics (cardinalities, attr stats, histograms). Every
// field is little-endian and byte-addressed (see serde.h), so a
// snapshot written by gcc/Release opens under clang/Debug and across
// host endianness. Any checksum or structural mismatch surfaces as a
// typed kCorruption status — never UB, never a partial load.
//
// Writing is atomic: the bytes go to `path.tmp`, are fsync'd, and the
// tmp is renamed over `path` (then the directory is fsync'd), so a
// kill at any point leaves either the old snapshot or the new one.
#ifndef SQOPT_PERSIST_SNAPSHOT_H_
#define SQOPT_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "catalog/schema.h"
#include "common/status.h"
#include "constraints/constraint_catalog.h"
#include "cost/stats.h"
#include "storage/object_store.h"

namespace sqopt::persist {

// v3: extents went column-major (one contiguous array per attribute
// slot — see storage/column.h); older row-major snapshots are rejected
// with a typed kUnsupportedVersion status, never misread.
inline constexpr uint32_t kSnapshotFormatVersion = 3;

// File names inside a persistence directory.
inline constexpr const char* kSnapshotFileName = "snapshot.sqopt";
inline constexpr const char* kWalFileName = "wal.sqopt";

// Serializes the full engine state and atomically replaces `path`.
// `data_version` is the LoadedData version the snapshot captures;
// recovery skips WAL records at or below it. `fsync` controls whether
// the tmp file and directory are flushed before/after the rename (off
// only makes sense in benchmarks).
Status WriteSnapshotFile(const std::string& path, const Schema& schema,
                         const ConstraintCatalog& catalog,
                         const ObjectStore& store,
                         const DatabaseStats& stats, uint64_t data_version,
                         bool fsync = true);

// Reads and checksum-verifies a snapshot file up front, then hands out
// its parts. Restore order matters only in that RestoreStore needs the
// schema the caller rebuilt via ReadSchema (the store holds a pointer
// to it, so the caller must give it a stable address first).
class SnapshotReader {
 public:
  static Result<SnapshotReader> Open(const std::string& path);

  uint64_t data_version() const { return data_version_; }

  Result<Schema> ReadSchema() const;

  // `catalog` must have been constructed over the schema ReadSchema
  // returned (same class/attribute ids).
  Status RestoreCatalog(ConstraintCatalog* catalog) const;

  // `schema` must outlive the returned store.
  Result<std::unique_ptr<ObjectStore>> RestoreStore(
      const Schema* schema) const;

  Result<DatabaseStats> RestoreStats() const;

 private:
  SnapshotReader() = default;

  // Returns the payload of `section_id` or kCorruption when absent.
  Result<std::string_view> Section(uint32_t section_id) const;

  std::map<uint32_t, std::string> sections_;
  uint64_t data_version_ = 0;
};

// Flushes a file descriptor's directory so a rename is durable. Shared
// with the WAL (wal.cc).
Status FsyncDirOf(const std::string& file_path);

}  // namespace sqopt::persist

#endif  // SQOPT_PERSIST_SNAPSHOT_H_

#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <utility>

#include "persist/crash_point.h"
#include "persist/serde.h"

namespace sqopt::persist {

namespace {

constexpr char kMagic[8] = {'S', 'Q', 'O', 'P', 'W', 'A', 'L', '1'};
constexpr size_t kHeaderBytes = kWalHeaderBytes;
// "WREC" — every record frame opens with it.
constexpr uint32_t kRecordSentinel = 0x57524543;

// ---------------------------------------------------------------------
// Mutation encoding. Only the fields the op kind uses are written.
// ---------------------------------------------------------------------

void PutMutation(ByteWriter* w, const Mutation& op) {
  w->PutU8(static_cast<uint8_t>(op.kind));
  switch (op.kind) {
    case Mutation::Kind::kInsert:
      w->PutI32(op.class_id);
      w->PutU32(static_cast<uint32_t>(op.object.values.size()));
      for (const Value& v : op.object.values) w->PutValue(v);
      break;
    case Mutation::Kind::kUpdate:
      w->PutI32(op.class_id);
      w->PutI64(op.row);
      w->PutI32(op.attr_id);
      w->PutValue(op.value);
      break;
    case Mutation::Kind::kDelete:
      w->PutI32(op.class_id);
      w->PutI64(op.row);
      break;
    case Mutation::Kind::kLink:
    case Mutation::Kind::kUnlink:
      w->PutI32(op.rel_id);
      w->PutI64(op.row_a);
      w->PutI64(op.row_b);
      break;
  }
}

// Re-stages one op into `batch` (MutationBatch rebuilds its own
// pending-insert handle numbering from the staging order, which the
// log preserves).
Status ReadMutationInto(ByteReader* r, MutationBatch* batch) {
  SQOPT_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  switch (static_cast<Mutation::Kind>(kind)) {
    case Mutation::Kind::kInsert: {
      SQOPT_ASSIGN_OR_RETURN(ClassId class_id, r->I32());
      SQOPT_ASSIGN_OR_RETURN(uint32_t n, r->U32());
      Object obj;
      obj.values.reserve(r->CappedCount(n));
      for (uint32_t i = 0; i < n; ++i) {
        SQOPT_ASSIGN_OR_RETURN(Value v, r->ReadValue());
        obj.values.push_back(std::move(v));
      }
      batch->Insert(class_id, std::move(obj));
      return Status::OK();
    }
    case Mutation::Kind::kUpdate: {
      SQOPT_ASSIGN_OR_RETURN(ClassId class_id, r->I32());
      SQOPT_ASSIGN_OR_RETURN(int64_t row, r->I64());
      SQOPT_ASSIGN_OR_RETURN(AttrId attr_id, r->I32());
      SQOPT_ASSIGN_OR_RETURN(Value value, r->ReadValue());
      batch->Update(class_id, row, attr_id, std::move(value));
      return Status::OK();
    }
    case Mutation::Kind::kDelete: {
      SQOPT_ASSIGN_OR_RETURN(ClassId class_id, r->I32());
      SQOPT_ASSIGN_OR_RETURN(int64_t row, r->I64());
      batch->Delete(class_id, row);
      return Status::OK();
    }
    case Mutation::Kind::kLink:
    case Mutation::Kind::kUnlink: {
      SQOPT_ASSIGN_OR_RETURN(RelId rel_id, r->I32());
      SQOPT_ASSIGN_OR_RETURN(int64_t row_a, r->I64());
      SQOPT_ASSIGN_OR_RETURN(int64_t row_b, r->I64());
      if (static_cast<Mutation::Kind>(kind) == Mutation::Kind::kLink) {
        batch->Link(rel_id, row_a, row_b);
      } else {
        batch->Unlink(rel_id, row_a, row_b);
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown mutation kind tag " +
                            std::to_string(static_cast<int>(kind)));
}

std::string EncodeRecordPayload(uint64_t first_version,
                                const std::vector<MutationBatch>& batches) {
  ByteWriter w;
  w.PutU64(first_version);
  w.PutU32(static_cast<uint32_t>(batches.size()));
  for (const MutationBatch& batch : batches) {
    w.PutU32(static_cast<uint32_t>(batch.ops().size()));
    for (const Mutation& op : batch.ops()) PutMutation(&w, op);
  }
  return w.Take();
}

Result<WalRecord> DecodeRecordPayload(std::string_view payload) {
  ByteReader r(payload);
  WalRecord record;
  SQOPT_ASSIGN_OR_RETURN(record.first_version, r.U64());
  SQOPT_ASSIGN_OR_RETURN(uint32_t num_batches, r.U32());
  record.batches.reserve(r.CappedCount(num_batches));
  for (uint32_t b = 0; b < num_batches; ++b) {
    MutationBatch batch;
    SQOPT_ASSIGN_OR_RETURN(uint32_t ops, r.U32());
    for (uint32_t i = 0; i < ops; ++i) {
      SQOPT_RETURN_IF_ERROR(ReadMutationInto(&r, &batch));
    }
    record.batches.push_back(std::move(batch));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("WAL record has trailing bytes");
  }
  return record;
}

std::string HeaderBytes() {
  ByteWriter w;
  for (char c : kMagic) w.PutU8(static_cast<uint8_t>(c));
  w.PutU32(kWalFormatVersion);
  return w.Take();
}

}  // namespace

std::string EncodeWalRecordPayload(const WalRecord& record) {
  return EncodeRecordPayload(record.first_version, record.batches);
}

Result<WalRecord> DecodeWalRecordPayload(std::string_view payload) {
  return DecodeRecordPayload(payload);
}

std::string EncodeMutationBatch(const MutationBatch& batch) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(batch.ops().size()));
  for (const Mutation& op : batch.ops()) PutMutation(&w, op);
  return w.Take();
}

Result<MutationBatch> DecodeMutationBatch(std::string_view bytes) {
  ByteReader r(bytes);
  MutationBatch batch;
  SQOPT_ASSIGN_OR_RETURN(uint32_t ops, r.U32());
  for (uint32_t i = 0; i < ops; ++i) {
    SQOPT_RETURN_IF_ERROR(ReadMutationInto(&r, &batch));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after mutation batch");
  }
  return batch;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult out;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    // Fresh directory: an absent log is an empty log.
    out.valid_bytes = static_cast<int64_t>(kHeaderBytes);
    return out;
  }
  const auto size = in.tellg();
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(bytes.data(), size);
  if (!in) {
    return Status::Corruption("cannot read '" + path + "'");
  }
  in.close();

  if (bytes.size() < kHeaderBytes) {
    // A header cut short (kill during the log's very creation): no
    // record can exist yet, so the log is empty. valid_bytes = 0 tells
    // WalWriter::Open to rebuild the header from scratch.
    out.valid_bytes = 0;
    out.torn_tail = !bytes.empty();
    return out;
  }

  ByteReader r(bytes);
  for (char expected : kMagic) {
    auto c = r.U8();
    if (!c.ok() || static_cast<char>(*c) != expected) {
      return Status::Corruption("'" + path + "' is not a sqopt WAL");
    }
  }
  {
    auto format = r.U32();
    if (!format.ok() || *format != kWalFormatVersion) {
      return Status::Corruption("WAL format version unsupported in '" +
                                path + "'");
    }
  }
  out.valid_bytes = static_cast<int64_t>(kHeaderBytes);

  while (!r.AtEnd()) {
    auto sentinel = r.U32();
    if (!sentinel.ok() || *sentinel != kRecordSentinel) break;
    auto len = r.U32();
    if (!len.ok()) break;
    auto crc = r.U32();
    if (!crc.ok()) break;
    auto payload = r.Raw(*len);
    if (!payload.ok()) break;  // torn tail: record cut short
    if (Crc32(payload->data(), payload->size()) != *crc) break;
    auto record = DecodeRecordPayload(*payload);
    if (!record.ok()) break;
    out.records.push_back(std::move(*record));
    out.valid_bytes =
        static_cast<int64_t>(bytes.size() - r.remaining());
  }
  out.torn_tail =
      out.valid_bytes < static_cast<int64_t>(bytes.size());
  return out;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      size_bytes_(other.size_bytes_) {
  other.fd_ = -1;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   int64_t truncate_to) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open WAL '" + path + "'");
  }
  int64_t size = static_cast<int64_t>(::lseek(fd, 0, SEEK_END));
  if (size > 0 && truncate_to == 0) {
    // ReadWal found no valid header (kill during log creation): wipe
    // and rebuild below as if the file were fresh.
    if (::ftruncate(fd, 0) != 0 || ::lseek(fd, 0, SEEK_SET) < 0) {
      ::close(fd);
      return Status::Internal("cannot reset WAL '" + path + "'");
    }
    size = 0;
  }
  if (size == 0) {
    // Fresh file: stamp the header.
    const std::string header = HeaderBytes();
    if (::write(fd, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      ::close(fd);
      return Status::Internal("cannot write WAL header to '" + path + "'");
    }
    size = static_cast<int64_t>(header.size());
  } else if (truncate_to >= static_cast<int64_t>(kHeaderBytes) &&
             truncate_to < size) {
    if (::ftruncate(fd, truncate_to) != 0) {
      ::close(fd);
      return Status::Internal("cannot truncate WAL tail of '" + path + "'");
    }
    size = truncate_to;
  }
  if (::lseek(fd, size, SEEK_SET) < 0) {
    ::close(fd);
    return Status::Internal("cannot seek WAL '" + path + "'");
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, path, size));
}

Status WalWriter::Append(uint64_t first_version,
                         const std::vector<MutationBatch>& batches,
                         bool fsync, uint64_t* fsync_micros) {
  if (fsync_micros != nullptr) *fsync_micros = 0;
  const std::string payload = EncodeRecordPayload(first_version, batches);
  ByteWriter w;
  w.PutU32(kRecordSentinel);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload.data(), payload.size()));
  w.PutRaw(payload);
  const std::string& frame = w.buffer();

  MaybeCrash("wal_pre_write");
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      // Roll the partial frame back so the file never carries a
      // half-record the next recovery must tolerate.
      (void)::ftruncate(fd_, size_bytes_);
      (void)::lseek(fd_, size_bytes_, SEEK_SET);
      return Status::Internal("WAL append failed on '" + path_ + "'");
    }
    written += static_cast<size_t>(n);
  }
  MaybeCrash("wal_pre_sync");
  if (fsync) {
    const auto sync_start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0) {
      (void)::ftruncate(fd_, size_bytes_);
      (void)::lseek(fd_, size_bytes_, SEEK_SET);
      return Status::Internal("WAL fsync failed on '" + path_ + "'");
    }
    if (fsync_micros != nullptr) {
      *fsync_micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - sync_start)
              .count());
    }
  }
  MaybeCrash("wal_post_sync");
  size_bytes_ += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Status WalWriter::Truncate(bool fsync) {
  if (::ftruncate(fd_, static_cast<int64_t>(kHeaderBytes)) != 0) {
    return Status::Internal("WAL truncate failed on '" + path_ + "'");
  }
  if (::lseek(fd_, static_cast<int64_t>(kHeaderBytes), SEEK_SET) < 0) {
    return Status::Internal("cannot seek WAL '" + path_ + "'");
  }
  if (fsync && ::fsync(fd_) != 0) {
    return Status::Internal("WAL fsync failed on '" + path_ + "'");
  }
  size_bytes_ = static_cast<int64_t>(kHeaderBytes);
  return Status::OK();
}

}  // namespace sqopt::persist

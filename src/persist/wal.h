// The write-ahead log behind durable Engine::Apply. One append-only
// file per persistence directory:
//
//   header   magic "SQOPWAL1", u32 format version
//   record   u32 sentinel | u32 payload length | u32 CRC-32 | payload
//   payload  u64 version | u32 op count | ops (see wal.cc)
//
// `version` is the LoadedData version the batch committed as, which
// makes replay idempotent: recovery skips records at or below the
// snapshot's version (a checkpoint killed between its rename and its
// truncate leaves exactly that state behind) and requires the rest to
// be gap-free. A torn tail — a record cut short by a crash, or whose
// checksum fails — ends the valid prefix: ReadWal returns the records
// before it plus the byte offset where the prefix ends, and WalWriter
// truncates there before appending, so one crash never poisons the
// next.
#ifndef SQOPT_PERSIST_WAL_H_
#define SQOPT_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/mutation.h"
#include "common/status.h"

namespace sqopt::persist {

inline constexpr uint32_t kWalFormatVersion = 1;

// Bytes before the first record frame (magic + u32 format version).
// Exposed so tests and the crash harness can sweep "every offset in
// the record region" without hardcoding the header size.
inline constexpr size_t kWalHeaderBytes = 12;

struct WalRecord {
  uint64_t version = 0;  // snapshot version this batch committed as
  MutationBatch batch;
};

struct WalReadResult {
  std::vector<WalRecord> records;  // the valid prefix, in file order
  int64_t valid_bytes = 0;         // file offset where the prefix ends
  bool torn_tail = false;          // bytes past valid_bytes were ignored
};

// Reads the valid prefix of the log at `path`. A missing file is an
// empty log (fresh directory); a bad header is kCorruption. Structural
// damage past the first valid record only shortens the prefix — WAL
// semantics cannot distinguish a torn append from later corruption, so
// both end the log there.
Result<WalReadResult> ReadWal(const std::string& path);

// Append handle. Exactly one writer per directory (the engine holds it
// behind its commit lock).
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&&) = delete;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `path` for appending, creating it (with a fresh header) when
  // absent. `truncate_to` >= 0 cuts the file there first — the caller
  // passes ReadWal's valid_bytes so a torn tail is discarded before
  // the first new append.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 int64_t truncate_to = -1);

  // Appends one CRC-framed record; flushes to the OS always, fsyncs
  // when `fsync` (DurabilityOptions::fsync). On any error the file is
  // truncated back to its pre-append length, so a failed append never
  // leaves a half-record for recovery to trip on.
  Status Append(uint64_t version, const MutationBatch& batch, bool fsync);

  // Cuts the log back to just its header — the checkpoint's final act,
  // after the new snapshot is durably in place.
  Status Truncate(bool fsync);

  int64_t size_bytes() const { return size_bytes_; }

 private:
  WalWriter(int fd, std::string path, int64_t size)
      : fd_(fd), path_(std::move(path)), size_bytes_(size) {}

  int fd_ = -1;
  std::string path_;
  int64_t size_bytes_ = 0;
};

}  // namespace sqopt::persist

#endif  // SQOPT_PERSIST_WAL_H_

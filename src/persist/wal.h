// The write-ahead log behind durable Engine::Apply. One append-only
// file per persistence directory:
//
//   header   magic "SQOPWAL1", u32 format version
//   record   u32 sentinel | u32 payload length | u32 CRC-32 | payload
//   payload  u64 first_version | u32 batch count
//            | per batch: u32 op count | ops (see wal.cc)
//
// Format v2: one record carries a whole COMMIT GROUP — the batches a
// group-commit leader made durable with a single append + fsync. Batch
// i of a record committed as snapshot version `first_version + i`, so
// a record spans the version range [first_version,
// first_version + batches.size() - 1]. The single CRC frame makes the
// group all-or-nothing on recovery: either every batch of the group
// replays or none does (whole-group atomicity).
//
// Versioning keeps replay idempotent: recovery skips records whose
// whole range is at or below the snapshot's version (a checkpoint
// killed between its rename and its truncate leaves exactly that state
// behind) and requires the rest to continue gap-free. A torn tail — a
// record cut short by a crash, or whose checksum fails — ends the
// valid prefix: ReadWal returns the records before it plus the byte
// offset where the prefix ends, and WalWriter truncates there before
// appending, so one crash never poisons the next.
#ifndef SQOPT_PERSIST_WAL_H_
#define SQOPT_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/mutation.h"
#include "common/status.h"

namespace sqopt::persist {

// v2 = group records (one record per commit group). v1 logs (single
// batch per record) are rejected as unsupported: WAL files never
// outlive a checkpoint in normal operation, and the snapshot format is
// the compatibility surface, not the log.
inline constexpr uint32_t kWalFormatVersion = 2;

// Bytes before the first record frame (magic + u32 format version).
// Exposed so tests and the crash harness can sweep "every offset in
// the record region" without hardcoding the header size.
inline constexpr size_t kWalHeaderBytes = 12;

struct WalRecord {
  // Snapshot version batches[0] committed as; batches[i] committed as
  // first_version + i.
  uint64_t first_version = 0;
  std::vector<MutationBatch> batches;
};

struct WalReadResult {
  std::vector<WalRecord> records;  // the valid prefix, in file order
  int64_t valid_bytes = 0;         // file offset where the prefix ends
  bool torn_tail = false;          // bytes past valid_bytes were ignored
};

// Reads the valid prefix of the log at `path`. A missing file is an
// empty log (fresh directory); a bad header is kCorruption. Structural
// damage past the first valid record only shortens the prefix — WAL
// semantics cannot distinguish a torn append from later corruption, so
// both end the log there.
Result<WalReadResult> ReadWal(const std::string& path);

// The record payload codec, exposed for replication: the leader ships
// exactly these bytes over the wire (inside a kReplicate response) and
// the follower decodes them with the same rules recovery uses, so the
// wire payload and the on-disk record body are byte-identical.
// Decoding a truncated or mangled payload returns kCorruption.
std::string EncodeWalRecordPayload(const WalRecord& record);
Result<WalRecord> DecodeWalRecordPayload(std::string_view payload);

// One batch's ops on the same codec record bodies use (u32 op count +
// ops) — the kApply wire serde, so a batch that crossed the wire and a
// batch replayed from the log decode through identical paths.
std::string EncodeMutationBatch(const MutationBatch& batch);
Result<MutationBatch> DecodeMutationBatch(std::string_view bytes);

// Append handle. Exactly one writer per directory (the engine holds it
// behind its commit lock).
class WalWriter {
 public:
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&&) = delete;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `path` for appending, creating it (with a fresh header) when
  // absent. `truncate_to` >= 0 cuts the file there first — the caller
  // passes ReadWal's valid_bytes so a torn tail is discarded before
  // the first new append.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 int64_t truncate_to = -1);

  // Appends one CRC-framed group record covering `batches` (batch i
  // commits as version `first_version + i`); flushes to the OS always,
  // fsyncs when `fsync` (DurabilityOptions::fsync). On any error the
  // file is truncated back to its pre-append length, so a failed
  // append never leaves a half-record for recovery to trip on. When
  // `fsync_micros` is non-null it receives the wall-clock microseconds
  // the fsync call took (0 with fsync off) — the bench's bottleneck
  // attribution hook.
  Status Append(uint64_t first_version,
                const std::vector<MutationBatch>& batches, bool fsync,
                uint64_t* fsync_micros = nullptr);

  // Cuts the log back to just its header — the checkpoint's final act,
  // after the new snapshot is durably in place.
  Status Truncate(bool fsync);

  int64_t size_bytes() const { return size_bytes_; }

 private:
  WalWriter(int fd, std::string path, int64_t size)
      : fd_(fd), path_(std::move(path)), size_bytes_(size) {}

  int fd_ = -1;
  std::string path_;
  int64_t size_bytes_ = 0;
};

}  // namespace sqopt::persist

#endif  // SQOPT_PERSIST_WAL_H_

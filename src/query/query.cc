#include "query/query.h"

#include <algorithm>
#include <queue>
#include <set>

namespace sqopt {

std::vector<Predicate> Query::AllPredicates() const {
  std::vector<Predicate> out = join_predicates;
  out.insert(out.end(), selective_predicates.begin(),
             selective_predicates.end());
  return out;
}

bool Query::ReferencesClass(ClassId id) const {
  return std::find(classes.begin(), classes.end(), id) != classes.end();
}

int Query::RelationshipDegree(ClassId id, const Schema& schema) const {
  int degree = 0;
  for (RelId rel_id : relationships) {
    if (schema.relationship(rel_id).Involves(id)) ++degree;
  }
  return degree;
}

bool Query::ProjectsFrom(ClassId id) const {
  for (const AttrRef& ref : projection) {
    if (ref.class_id == id) return true;
  }
  return false;
}

void Query::Normalize() {
  std::sort(projection.begin(), projection.end());
  auto pred_less = [](const Predicate& a, const Predicate& b) {
    return a.Hash() < b.Hash();
  };
  std::stable_sort(join_predicates.begin(), join_predicates.end(),
                   pred_less);
  std::stable_sort(selective_predicates.begin(), selective_predicates.end(),
                   pred_less);
  std::sort(relationships.begin(), relationships.end());
  std::sort(classes.begin(), classes.end());
}

Status ValidateQuery(const Schema& schema, const Query& query) {
  if (query.classes.empty()) {
    return Status::InvalidArgument("query has no object classes");
  }
  std::set<ClassId> listed(query.classes.begin(), query.classes.end());
  if (listed.size() != query.classes.size()) {
    return Status::InvalidArgument("duplicate class in class list");
  }
  for (ClassId id : query.classes) {
    if (id < 0 || static_cast<size_t>(id) >= schema.num_classes()) {
      return Status::OutOfRange("class id out of range");
    }
  }

  auto check_ref = [&](const AttrRef& ref) -> Status {
    if (!ref.valid()) return Status::InvalidArgument("invalid AttrRef");
    if (listed.count(ref.class_id) == 0) {
      return Status::InvalidArgument(
          "attribute " + schema.AttrRefName(ref) +
          " references a class not in the query's class list");
    }
    return Status::OK();
  };

  for (const AttrRef& ref : query.projection) {
    SQOPT_RETURN_IF_ERROR(check_ref(ref));
  }
  for (const Predicate& p : query.join_predicates) {
    if (!p.is_attr_attr()) {
      return Status::InvalidArgument(
          "join predicate list contains a selective predicate: " +
          p.ToString(schema));
    }
    SQOPT_RETURN_IF_ERROR(check_ref(p.lhs()));
    SQOPT_RETURN_IF_ERROR(check_ref(p.rhs_attr()));
  }
  for (const Predicate& p : query.selective_predicates) {
    if (!p.is_attr_const()) {
      return Status::InvalidArgument(
          "selective predicate list contains a join predicate: " +
          p.ToString(schema));
    }
    SQOPT_RETURN_IF_ERROR(check_ref(p.lhs()));
  }

  std::set<RelId> listed_rels(query.relationships.begin(),
                              query.relationships.end());
  if (listed_rels.size() != query.relationships.size()) {
    return Status::InvalidArgument("duplicate relationship in query");
  }
  for (RelId rel_id : query.relationships) {
    if (rel_id < 0 ||
        static_cast<size_t>(rel_id) >= schema.num_relationships()) {
      return Status::OutOfRange("relationship id out of range");
    }
    const Relationship& rel = schema.relationship(rel_id);
    if (listed.count(rel.a) == 0 || listed.count(rel.b) == 0) {
      return Status::InvalidArgument(
          "relationship '" + rel.name +
          "' connects a class not in the query's class list");
    }
  }

  // Connectivity: single-class queries are trivially connected; otherwise
  // the relationship edges must span all listed classes.
  if (query.classes.size() > 1) {
    std::set<ClassId> visited;
    std::queue<ClassId> frontier;
    frontier.push(query.classes[0]);
    visited.insert(query.classes[0]);
    while (!frontier.empty()) {
      ClassId cur = frontier.front();
      frontier.pop();
      for (RelId rel_id : query.relationships) {
        const Relationship& rel = schema.relationship(rel_id);
        if (!rel.Involves(cur)) continue;
        ClassId next = rel.Other(cur);
        if (visited.insert(next).second) frontier.push(next);
      }
    }
    if (visited.size() != listed.size()) {
      return Status::InvalidArgument(
          "query graph is disconnected: relationships do not span the "
          "class list");
    }
  }
  return Status::OK();
}

}  // namespace sqopt

// The query representation from Section 2 of the paper:
//
//   (SELECT {projectList} {joinPredicateList} {selectivePredicateList}
//           {relationshipList} {classList})
//
// The five parts name the projected attributes, the attr-attr (join)
// predicates, the attr-constant (selective) predicates, the named
// relationships traversed, and the object classes accessed.
#ifndef SQOPT_QUERY_QUERY_H_
#define SQOPT_QUERY_QUERY_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "expr/predicate.h"

namespace sqopt {

struct Query {
  std::vector<AttrRef> projection;
  std::vector<Predicate> join_predicates;       // attr-attr form
  std::vector<Predicate> selective_predicates;  // attr-const form
  std::vector<RelId> relationships;
  std::vector<ClassId> classes;

  // All predicates, joins first. The semantic optimizer treats both
  // kinds uniformly as "predicates in the query".
  std::vector<Predicate> AllPredicates() const;

  bool ReferencesClass(ClassId id) const;

  // Number of relationships in the query that touch `id` — the "links"
  // count used by the class elimination rule (a dangling class is linked
  // to exactly one other class).
  int RelationshipDegree(ClassId id, const Schema& schema) const;

  // True if any projected attribute belongs to `id`.
  bool ProjectsFrom(ClassId id) const;

  // Structural equality (order-sensitive; use Normalize() before
  // comparing queries built through different paths).
  bool operator==(const Query& other) const = default;

  // Sorts each component into canonical order so that structurally
  // identical queries compare equal.
  void Normalize();
};

// Checks referential consistency of `query` against `schema`:
//  * every projected/predicated class appears in the class list;
//  * every relationship connects two listed classes;
//  * join predicates are attr-attr, selective predicates attr-const;
//  * the query graph (classes + relationships) is connected.
Status ValidateQuery(const Schema& schema, const Query& query);

}  // namespace sqopt

#endif  // SQOPT_QUERY_QUERY_H_

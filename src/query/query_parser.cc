#include "query/query_parser.h"

#include <vector>

#include "common/string_util.h"

namespace sqopt {

namespace {

// Extracts the contents of the next "{...}" group starting at *pos,
// respecting quoted strings. Advances *pos past the closing brace.
Result<std::string> NextBraceGroup(std::string_view s, size_t* pos) {
  size_t i = *pos;
  while (i < s.size() && s[i] != '{') ++i;
  if (i == s.size()) {
    return Status::ParseError("expected '{' in query text");
  }
  size_t start = ++i;
  bool in_quote = false;
  char quote = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (in_quote) {
      if (c == quote) in_quote = false;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_quote = true;
      quote = c;
      continue;
    }
    if (c == '}') {
      *pos = i + 1;
      return std::string(s.substr(start, i - start));
    }
  }
  return Status::ParseError("unterminated '{' group in query text");
}

// Splits a brace-group body on commas, respecting quotes. Empty body
// yields no items.
std::vector<std::string> SplitItems(std::string_view body) {
  std::vector<std::string> out;
  bool in_quote = false;
  char quote = 0;
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size()) {
      char c = body[i];
      if (in_quote) {
        if (c == quote) in_quote = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        in_quote = true;
        quote = c;
        continue;
      }
      if (c != ',') continue;
    }
    std::string_view piece = StripWhitespace(body.substr(start, i - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = i + 1;
  }
  return out;
}

}  // namespace

Result<Query> ParseQuery(const Schema& schema, std::string_view text) {
  std::string_view s = StripWhitespace(text);
  // Strip optional outer parens and SELECT keyword.
  if (!s.empty() && s.front() == '(' && s.back() == ')') {
    s = StripWhitespace(s.substr(1, s.size() - 2));
  }
  if (StartsWith(ToLower(std::string(s.substr(0, 6))), "select")) {
    s = StripWhitespace(s.substr(6));
  }

  size_t pos = 0;
  std::string groups[5];
  for (std::string& group : groups) {
    SQOPT_ASSIGN_OR_RETURN(group, NextBraceGroup(s, &pos));
  }
  if (!StripWhitespace(s.substr(pos)).empty()) {
    return Status::ParseError("trailing text after fifth query group");
  }

  Query query;

  // Group 5 first: classes, so predicate parsing can resolve names.
  for (const std::string& item : SplitItems(groups[4])) {
    ClassId id = schema.FindClass(item);
    if (id == kInvalidClass) {
      return Status::NotFound("unknown class '" + item + "' in class list");
    }
    query.classes.push_back(id);
  }

  // Group 1: projection. The paper sometimes annotates projections with
  // introduced predicates ("cargo.desc=\"frozen food\""); we accept and
  // ignore any "=..." suffix, keeping only the attribute.
  for (const std::string& item : SplitItems(groups[0])) {
    std::string attr_part = item;
    // Scan for '=' outside quotes.
    bool in_quote = false;
    char quote = 0;
    for (size_t i = 0; i < item.size(); ++i) {
      char c = item[i];
      if (in_quote) {
        if (c == quote) in_quote = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        in_quote = true;
        quote = c;
        continue;
      }
      if (c == '=') {
        attr_part = item.substr(0, i);
        break;
      }
    }
    SQOPT_ASSIGN_OR_RETURN(
        AttrRef ref,
        schema.ResolveQualified(StripWhitespace(attr_part)));
    query.projection.push_back(ref);
  }

  // Group 2: join predicates.
  for (const std::string& item : SplitItems(groups[1])) {
    SQOPT_ASSIGN_OR_RETURN(Predicate p, ParsePredicate(schema, item));
    if (!p.is_attr_attr()) {
      return Status::ParseError("join predicate group contains '" + item +
                                "', which is not attr-attr");
    }
    query.join_predicates.push_back(std::move(p));
  }

  // Group 3: selective predicates.
  for (const std::string& item : SplitItems(groups[2])) {
    SQOPT_ASSIGN_OR_RETURN(Predicate p, ParsePredicate(schema, item));
    if (!p.is_attr_const()) {
      return Status::ParseError("selective predicate group contains '" +
                                item + "', which is not attr-const");
    }
    query.selective_predicates.push_back(std::move(p));
  }

  // Group 4: relationships.
  for (const std::string& item : SplitItems(groups[3])) {
    RelId id = schema.FindRelationship(item);
    if (id == kInvalidRel) {
      return Status::NotFound("unknown relationship '" + item + "'");
    }
    query.relationships.push_back(id);
  }

  SQOPT_RETURN_IF_ERROR(ValidateQuery(schema, query));
  return query;
}

}  // namespace sqopt

// Parser for the paper's textual query form:
//
//   (SELECT {vehicle.vehicle#, cargo.desc}
//           {}
//           {vehicle.desc = "refrigerated truck"}
//           {collects, supplies}
//           {supplier, cargo, vehicle})
//
// Outer parentheses and the SELECT keyword are optional; the five brace
// groups are required (empty groups allowed).
#ifndef SQOPT_QUERY_QUERY_PARSER_H_
#define SQOPT_QUERY_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace sqopt {

// Parses and validates. Predicates found in the join group must be
// attr-attr, those in the selective group attr-const.
Result<Query> ParseQuery(const Schema& schema, std::string_view text);

}  // namespace sqopt

#endif  // SQOPT_QUERY_QUERY_PARSER_H_

#include "query/query_printer.h"

#include <sstream>

namespace sqopt {

namespace {

std::string ProjectionList(const Schema& schema, const Query& query) {
  std::string out;
  for (size_t i = 0; i < query.projection.size(); ++i) {
    if (i) out += ", ";
    out += schema.AttrRefName(query.projection[i]);
  }
  return out;
}

std::string PredicateList(const Schema& schema,
                          const std::vector<Predicate>& preds) {
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) out += ", ";
    out += preds[i].ToString(schema);
  }
  return out;
}

std::string RelationshipList(const Schema& schema, const Query& query) {
  std::string out;
  for (size_t i = 0; i < query.relationships.size(); ++i) {
    if (i) out += ", ";
    out += schema.relationship(query.relationships[i]).name;
  }
  return out;
}

std::string ClassList(const Schema& schema, const Query& query) {
  std::string out;
  for (size_t i = 0; i < query.classes.size(); ++i) {
    if (i) out += ", ";
    out += schema.object_class(query.classes[i]).name;
  }
  return out;
}

}  // namespace

std::string PrintQuery(const Schema& schema, const Query& query) {
  std::ostringstream os;
  os << "(SELECT {" << ProjectionList(schema, query) << "} {"
     << PredicateList(schema, query.join_predicates) << "} {"
     << PredicateList(schema, query.selective_predicates) << "} {"
     << RelationshipList(schema, query) << "} {" << ClassList(schema, query)
     << "})";
  return os.str();
}

std::string PrintQueryPretty(const Schema& schema, const Query& query) {
  std::ostringstream os;
  os << "(SELECT {" << ProjectionList(schema, query) << "}\n"
     << "        {" << PredicateList(schema, query.join_predicates) << "}\n"
     << "        {" << PredicateList(schema, query.selective_predicates)
     << "}\n"
     << "        {" << RelationshipList(schema, query) << "}\n"
     << "        {" << ClassList(schema, query) << "})";
  return os.str();
}

std::string CanonicalQueryKey(const Schema& schema, const Query& query) {
  Query normalized = query;
  normalized.Normalize();
  return PrintQuery(schema, normalized);
}

}  // namespace sqopt

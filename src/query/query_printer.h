// Renders queries back into the paper's textual form. Round-trips with
// ParseQuery (modulo whitespace).
#ifndef SQOPT_QUERY_QUERY_PRINTER_H_
#define SQOPT_QUERY_QUERY_PRINTER_H_

#include <string>

#include "query/query.h"

namespace sqopt {

// Single-line form:
//   (SELECT {a, b} {j} {s} {rels} {classes})
std::string PrintQuery(const Schema& schema, const Query& query);

// Multi-line indented form for logs and examples.
std::string PrintQueryPretty(const Schema& schema, const Query& query);

// Canonical cache key: the single-line form of the Normalize()d query.
// Two query texts that parse to the same normalized structure (same
// parts in any order, any whitespace) map to the same key, so the plan
// cache coalesces them onto one entry.
std::string CanonicalQueryKey(const Schema& schema, const Query& query);

}  // namespace sqopt

#endif  // SQOPT_QUERY_QUERY_PRINTER_H_

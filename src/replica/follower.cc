#include "replica/follower.h"

#include <chrono>
#include <utility>
#include <vector>

#include "persist/wal.h"
#include "server/client.h"

namespace sqopt::replica {

namespace {
using std::chrono::milliseconds;
}  // namespace

Result<std::unique_ptr<FollowerApplier>> FollowerApplier::Start(
    Engine* engine, FollowerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("follower engine must not be null");
  }
  if (!engine->has_data()) {
    return Status::FailedPrecondition(
        "follower engine has no data loaded: open it from a leader "
        "snapshot (or Load a matching fixture) before following");
  }
  if (options.leader_port <= 0) {
    return Status::InvalidArgument("leader_port must be set");
  }
  if (options.poll_interval_ms <= 0) options.poll_interval_ms = 200;
  if (options.reconnect_backoff_ms <= 0) options.reconnect_backoff_ms = 200;
  auto applier = std::unique_ptr<FollowerApplier>(
      new FollowerApplier(engine, std::move(options)));
  applier->thread_ = std::thread([raw = applier.get()] { raw->Run(); });
  return applier;
}

FollowerApplier::FollowerApplier(Engine* engine, FollowerOptions options)
    : engine_(engine), opts_(std::move(options)) {}

FollowerApplier::~FollowerApplier() { Stop(); }

void FollowerApplier::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Status FollowerApplier::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

FollowerStats FollowerApplier::stats() const {
  FollowerStats s;
  s.records_applied = records_applied_.load(std::memory_order_relaxed);
  s.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  s.records_skipped = records_skipped_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.last_applied_version = engine_->data_version();
  s.connected = connected_.load(std::memory_order_relaxed);
  return s;
}

bool FollowerApplier::WaitForVersion(uint64_t version,
                                     int timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() + milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (engine_->data_version() >= version) return true;
    if (halted_) return false;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return engine_->data_version() >= version;
    }
  }
}

void FollowerApplier::Halt(Status why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = std::move(why);
    halted_ = true;
  }
  cv_.notify_all();
}

void FollowerApplier::Run() {
  int consecutive_failures = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!RunSession()) return;  // halted with a typed status
    connected_.store(false, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_relaxed)) return;
    ++consecutive_failures;
    if (opts_.max_reconnect_failures > 0 &&
        consecutive_failures >= opts_.max_reconnect_failures) {
      Halt(Status::Internal(
          "follower gave up after " + std::to_string(consecutive_failures) +
          " failed attempts to reach the leader at " + opts_.leader_host +
          ":" + std::to_string(opts_.leader_port)));
      return;
    }
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    // Interruptible backoff.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, milliseconds(opts_.reconnect_backoff_ms), [&] {
      return stopping_.load(std::memory_order_relaxed);
    });
  }
}

bool FollowerApplier::RunSession() {
  Result<server::Client> client = server::Client::Connect(
      opts_.leader_host, opts_.leader_port, opts_.poll_interval_ms);
  if (!client.ok()) return true;  // transport: retry

  Result<server::Response> hello = client->Hello();
  if (!hello.ok()) return true;  // transport: retry
  if (!hello->ok()) {
    // The leader answered but refused: version gap or not a leader.
    // That is configuration, not transport — halt with its words.
    Halt(hello->ToStatus());
    return false;
  }

  Result<server::Response> sub = client->Subscribe(engine_->data_version());
  if (!sub.ok()) return true;
  if (!sub->ok()) {
    Halt(sub->ToStatus());
    return false;
  }
  connected_.store(true, std::memory_order_relaxed);

  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<server::Response> pushed = client->ReceiveResponse();
    if (!pushed.ok()) {
      // Receive timeout = no records yet: keep waiting. Anything else
      // is transport: reconnect and re-subscribe from our version.
      if (pushed.status().code() == StatusCode::kTimeout) continue;
      return true;
    }
    if (pushed->type != server::RequestType::kReplicate) {
      continue;  // e.g. a stray subscribe ack after re-delivery
    }
    if (!pushed->ok()) {
      // Typed push failure — kOutOfRange when the leader's retention
      // no longer covers us. Divergence/fatal either way.
      Halt(pushed->ToStatus());
      return false;
    }

    Result<persist::WalRecord> record =
        persist::DecodeWalRecordPayload(pushed->wal_record);
    if (!record.ok()) {
      Halt(record.status());
      return false;
    }
    if (record->batches.empty()) continue;

    // Recovery's version rules, verbatim (engine.cc Open replay).
    const uint64_t current = engine_->data_version();
    const uint64_t last =
        record->first_version + record->batches.size() - 1;
    if (last <= current) {
      records_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (record->first_version != current + 1) {
      Halt(Status::Corruption(
          "replication gap: leader shipped versions [" +
          std::to_string(record->first_version) + ", " +
          std::to_string(last) + "] but this follower is at version " +
          std::to_string(current) +
          " — leader and follower have diverged; re-seed the follower"));
      return false;
    }

    std::vector<Result<ApplyOutcome>> outcomes =
        engine_->ApplyGroup(record->batches);
    for (const Result<ApplyOutcome>& outcome : outcomes) {
      if (!outcome.ok()) {
        Halt(Status::Corruption(
            "replicated batch rejected on replay (" +
            outcome.status().message() +
            "): deterministic replay of a committed group cannot fail — "
            "leader and follower have diverged; re-seed the follower"));
        return false;
      }
    }
    records_applied_.fetch_add(1, std::memory_order_relaxed);
    batches_applied_.fetch_add(outcomes.size(), std::memory_order_relaxed);
    cv_.notify_all();
    if (opts_.on_record_applied) {
      opts_.on_record_applied(engine_->data_version());
    }
  }
  return true;  // stopping
}

}  // namespace sqopt::replica

// The follower side of WAL-shipping replication: a background thread
// that connects to a leader, negotiates wire v2, subscribes from the
// local engine's own data_version(), and replays every received WAL
// group record through the ordinary Apply path — a crash-recovery in
// slow motion, over a socket.
//
// Version rules are EXACTLY recovery's (engine.cc Open replay):
//   - a record whose whole range is at or below the local version is
//     skipped (idempotent replay: the subscribe raced a commit, or a
//     reconnect re-shipped a record the follower already applied);
//   - a record starting past version + 1 is a GAP — on disk that is
//     corruption, over the wire it means leader and follower have
//     diverged, and the applier stops with a typed kCorruption status
//     rather than apply out of order;
//   - anything else applies as one atomic group (Engine::ApplyGroup),
//     so the follower's version only ever sits on leader group
//     boundaries — and when the follower engine was opened from a
//     durable directory, each applied group lands in the follower's
//     OWN WAL before publishing, which is what makes a SIGKILLed
//     follower restartable from exactly its committed prefix.
//
// A rejected batch (constraint violation on the follower that the
// leader committed) is also divergence: deterministic replay of a
// committed group cannot legitimately fail.
//
// Transport errors are NOT fatal: the applier reconnects with backoff
// and re-subscribes from its current version. Stop() (and the
// destructor) shut the loop down cleanly.
#ifndef SQOPT_REPLICA_FOLLOWER_H_
#define SQOPT_REPLICA_FOLLOWER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/engine.h"
#include "common/status.h"

namespace sqopt::replica {

struct FollowerOptions {
  std::string leader_host = "127.0.0.1";
  int leader_port = 0;

  // Socket receive timeout; also the applier's stop-latency bound.
  int poll_interval_ms = 200;
  // Backoff between reconnect attempts after a transport failure.
  int reconnect_backoff_ms = 200;
  // Give up after this many consecutive failed connect attempts
  // (0 = retry forever until Stop()).
  int max_reconnect_failures = 0;

  // Test/bench hook: called after each applied record with the new
  // local version (on the applier thread).
  std::function<void(uint64_t version)> on_record_applied;
};

struct FollowerStats {
  uint64_t records_applied = 0;
  uint64_t batches_applied = 0;
  uint64_t records_skipped = 0;  // idempotent re-delivery skips
  uint64_t reconnects = 0;
  uint64_t last_applied_version = 0;
  bool connected = false;
};

class FollowerApplier {
 public:
  // Spawns the applier thread. `engine` must outlive the applier and
  // must not receive writes from anyone else (the leader stream is
  // its single writer). Connection failures are retried in the
  // background — Start only fails on argument errors.
  static Result<std::unique_ptr<FollowerApplier>> Start(
      Engine* engine, FollowerOptions options);

  ~FollowerApplier();  // implies Stop()
  FollowerApplier(const FollowerApplier&) = delete;
  FollowerApplier& operator=(const FollowerApplier&) = delete;

  // Shuts the stream down and joins the thread. Idempotent.
  void Stop();

  // kOk while healthy (including while reconnecting); a typed error
  // once the applier halted: kCorruption for a version gap or a
  // rejected replayed batch (divergence), kOutOfRange when the leader
  // no longer retains this follower's position (re-seed), kInternal
  // when reconnect attempts were exhausted.
  Status status() const;

  FollowerStats stats() const;

  // Blocks until the local engine reached `version` (or the applier
  // halted / `timeout_ms` elapsed); true iff the version was reached.
  bool WaitForVersion(uint64_t version, int timeout_ms) const;

 private:
  FollowerApplier(Engine* engine, FollowerOptions options);
  void Run();
  // One connect → hello → subscribe → stream session. Returns true to
  // reconnect, false to halt.
  bool RunSession();
  void Halt(Status why);

  Engine* engine_;
  FollowerOptions opts_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  Status status_;  // guarded by mu_
  bool halted_ = false;

  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> records_skipped_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<bool> connected_{false};
};

}  // namespace sqopt::replica

#endif  // SQOPT_REPLICA_FOLLOWER_H_

#include "replica/replication_log.h"

#include <utility>

#include "persist/wal.h"

namespace sqopt::replica {

ReplicationLog::ReplicationLog(size_t max_records)
    : max_records_(max_records == 0 ? 1 : max_records) {}

void ReplicationLog::Append(uint64_t first_version,
                            const std::vector<MutationBatch>& batches) {
  if (batches.empty()) return;
  persist::WalRecord record;
  record.first_version = first_version;
  record.batches = batches;

  EncodedRecord encoded;
  encoded.first_version = first_version;
  encoded.last_version = first_version + batches.size() - 1;
  encoded.payload = persist::EncodeWalRecordPayload(record);

  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The very first record pins the retention floor: a WAL primed
    // after a checkpoint starts mid-history, and a subscriber below
    // that point needs a re-seed, not a bogus "divergence" gap.
    if (last_ == 0 && first_version > 0) floor_ = first_version - 1;
    records_.push_back(std::move(encoded));
    last_ = records_.back().last_version;
    while (records_.size() > max_records_) {
      floor_ = records_.front().last_version;
      records_.pop_front();
    }
    notify = notifier_;
  }
  if (notify) notify();
}

Status ReplicationLog::PrimeFromWal(const std::string& path) {
  SQOPT_ASSIGN_OR_RETURN(persist::WalReadResult wal, persist::ReadWal(path));
  for (const persist::WalRecord& record : wal.records) {
    if (record.batches.empty()) continue;
    Append(record.first_version, record.batches);
  }
  return Status::OK();
}

void ReplicationLog::AttachTo(Engine* engine) {
  engine->SetCommitListener(
      [this](uint64_t first_version,
             const std::vector<MutationBatch>& batches) {
        Append(first_version, batches);
      });
}

Result<std::vector<EncodedRecord>> ReplicationLog::ReadFrom(
    uint64_t from_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from_version < floor_) {
    return Status::OutOfRange(
        "subscriber at version " + std::to_string(from_version) +
        " is behind the replication log's retention floor (version " +
        std::to_string(floor_) +
        "): re-seed the follower from a leader snapshot");
  }
  std::vector<EncodedRecord> out;
  for (const EncodedRecord& record : records_) {
    if (record.last_version <= from_version) continue;
    out.push_back(record);
  }
  return out;
}

uint64_t ReplicationLog::last_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

uint64_t ReplicationLog::floor_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return floor_;
}

size_t ReplicationLog::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void ReplicationLog::SetNotifier(std::function<void()> notifier) {
  std::lock_guard<std::mutex> lock(mu_);
  notifier_ = std::move(notifier);
}

}  // namespace sqopt::replica

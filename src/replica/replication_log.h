// The leader side of WAL-shipping replication: an in-memory tail of
// committed commit-group records, encoded exactly as the on-disk WAL
// frames them (persist::EncodeWalRecordPayload), so what a follower
// receives over the wire is byte-identical to what crash recovery
// would read from the leader's log.
//
// Feed it two ways, both totally ordered:
//   - AttachTo(engine): taps Engine::SetCommitListener, so every
//     published commit group appends one record (under the engine's
//     commit lock — gap-free by construction).
//   - PrimeFromWal(path): loads the committed suffix a restarted
//     leader still has on disk, so followers that were mid-stream can
//     resume without a re-seed as long as the leader hasn't
//     checkpointed past them.
//
// Retention is bounded (max_records): the log drops its oldest records
// and advances floor_version. A subscriber whose version is below the
// floor gets a typed kOutOfRange — it must re-seed from a snapshot
// copy of the leader's directory, exactly like a new follower.
// See DESIGN.md "Replication".
#ifndef SQOPT_REPLICA_REPLICATION_LOG_H_
#define SQOPT_REPLICA_REPLICATION_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/mutation.h"
#include "common/status.h"

namespace sqopt::replica {

// One encoded commit group: the record covers snapshot versions
// [first_version, last_version]; payload is the WAL record body.
struct EncodedRecord {
  uint64_t first_version = 0;
  uint64_t last_version = 0;
  std::string payload;
};

class ReplicationLog {
 public:
  explicit ReplicationLog(size_t max_records = 65536);

  // Appends one committed group (batch i committed as
  // first_version + i). Thread-safe; calls the notifier (outside the
  // lock) after the record is readable.
  void Append(uint64_t first_version,
              const std::vector<MutationBatch>& batches);

  // Loads the valid record prefix of the WAL at `path` (a restarted
  // leader's committed suffix). Must be called before subscribers
  // attach and before new commits; records must continue gap-free
  // from what's already retained.
  Status PrimeFromWal(const std::string& path);

  // Wires this log as `engine`'s commit listener. Call after Open so
  // recovery replay (which bypasses the listener by design) never
  // double-feeds records that PrimeFromWal already loaded.
  void AttachTo(Engine* engine);

  // Every retained record covering versions past `from_version`, in
  // order. A subscriber below the retention floor gets kOutOfRange
  // (re-seed from snapshot); a subscriber at or past the tip gets an
  // empty vector (nothing to ship yet).
  Result<std::vector<EncodedRecord>> ReadFrom(uint64_t from_version) const;

  // Version the newest retained record commits up to (0 = empty).
  uint64_t last_version() const;
  // Subscribers must be at a version >= the floor to be servable.
  uint64_t floor_version() const;
  size_t record_count() const;

  // Called (with no lock held) after every Append — the server uses it
  // to pump subscriber connections. Pass nullptr to detach; detach
  // BEFORE destroying whatever the notifier captures.
  void SetNotifier(std::function<void()> notifier);

 private:
  mutable std::mutex mu_;
  std::deque<EncodedRecord> records_;
  // Highest version dropped by retention (0 = nothing dropped):
  // subscribers at a version < floor_ cannot be served.
  uint64_t floor_ = 0;
  uint64_t last_ = 0;
  size_t max_records_;
  std::function<void()> notifier_;
};

}  // namespace sqopt::replica

#endif  // SQOPT_REPLICA_REPLICATION_LOG_H_

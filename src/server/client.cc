#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sqopt::server {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port,
                               int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      protocol_(other.protocol_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    protocol_ = other.protocol_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<Response> Client::ReceiveResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  std::string payload;
  char buf[16384];
  for (;;) {
    switch (reader_.Next(&payload)) {
      case FrameReader::Outcome::kFrame:
        return DecodeResponse(payload);
      case FrameReader::Outcome::kBadCrc:
        return Status::Corruption("response frame failed CRC check");
      case FrameReader::Outcome::kTooLarge:
        return Status::Corruption("response frame exceeds maximum size");
      case FrameReader::Outcome::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal("connection closed while awaiting response");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("receive timed out awaiting response");
    }
    return Errno("recv");
  }
}

Result<Response> Client::Call(const Request& request) {
  SQOPT_RETURN_IF_ERROR(SendRaw(EncodeRequest(request, protocol_)));
  return ReceiveResponse();
}

Result<Response> Client::Query(std::string_view text, uint32_t deadline_ms) {
  Request request;
  request.type = RequestType::kQuery;
  request.deadline_ms = deadline_ms;
  request.query_text = std::string(text);
  return Call(request);
}

Result<std::string> Client::Stats() {
  Request request;
  request.type = RequestType::kStats;
  SQOPT_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.ok()) return response.ToStatus();
  return std::move(response.stats_text);
}

Status Client::Ping() {
  Request request;
  request.type = RequestType::kPing;
  SQOPT_ASSIGN_OR_RETURN(Response response, Call(request));
  return response.ToStatus();
}

Result<Response> Client::Hello(uint32_t version) {
  Request request;
  request.type = RequestType::kHello;
  request.protocol_version = version;
  SQOPT_ASSIGN_OR_RETURN(Response response, Call(request));
  if (response.ok()) protocol_ = response.protocol_version;
  return response;
}

Result<Response> Client::Apply(const MutationBatch& batch,
                               uint32_t deadline_ms) {
  if (protocol_ < 2) {
    return Status::UnsupportedVersion(
        "Apply requires wire protocol v2: call Hello() first");
  }
  Request request;
  request.type = RequestType::kApply;
  request.deadline_ms = deadline_ms;
  request.batch = batch;
  return Call(request);
}

Status Client::Checkpoint(uint32_t deadline_ms) {
  if (protocol_ < 2) {
    return Status::UnsupportedVersion(
        "Checkpoint requires wire protocol v2: call Hello() first");
  }
  Request request;
  request.type = RequestType::kCheckpoint;
  request.deadline_ms = deadline_ms;
  SQOPT_ASSIGN_OR_RETURN(Response response, Call(request));
  return response.ToStatus();
}

Result<Response> Client::Subscribe(uint64_t from_version) {
  if (protocol_ < 2) {
    return Status::UnsupportedVersion(
        "Subscribe requires wire protocol v2: call Hello() first");
  }
  Request request;
  request.type = RequestType::kSubscribe;
  request.from_version = from_version;
  return Call(request);
}

}  // namespace sqopt::server

// A small blocking client for the sqopt wire protocol: one TCP
// connection, synchronous request/response. This is what the load
// generator, the server bench, and the integration tests speak; it is
// deliberately simple — open-loop concurrency comes from running many
// clients, not from pipelining one.
#ifndef SQOPT_SERVER_CLIENT_H_
#define SQOPT_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "api/mutation.h"
#include "common/status.h"
#include "server/wire.h"

namespace sqopt::server {

class Client {
 public:
  // Connects (blocking, with `timeout_ms` for both the connect and
  // every subsequent send/receive).
  static Result<Client> Connect(const std::string& host, int port,
                                int timeout_ms = 5000);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Sends one request and blocks for its response. Transport failures
  // (reset, timeout, unframeable bytes) surface as error Results; a
  // typed server-side rejection (kOverloaded, kTimeout, execution
  // errors) is a SUCCESSFUL Result whose Response carries the code.
  Result<Response> Call(const Request& request);

  // Convenience wrappers.
  Result<Response> Query(std::string_view text, uint32_t deadline_ms = 0);
  Result<std::string> Stats();
  Status Ping();

  // Negotiates the wire protocol up (v2 by default). On success every
  // subsequent request encodes with the negotiated version — required
  // before Apply/Subscribe/Checkpoint. A v2-only server answers any
  // pre-HELLO request with kUnsupportedVersion and closes.
  Result<Response> Hello(uint32_t version = kProtocolVersionMax);

  // v2 write surface. The Response carries the typed outcome
  // (snapshot_version, inserted rows) or the server's rejection code.
  Result<Response> Apply(const MutationBatch& batch,
                         uint32_t deadline_ms = 0);
  Status Checkpoint(uint32_t deadline_ms = 0);

  // Starts the replication stream: the server acks with its current
  // version, then pushes kReplicate responses (read them with
  // ReceiveResponse) starting at from_version + 1.
  Result<Response> Subscribe(uint64_t from_version);

  // The protocol this connection negotiated (1 until Hello succeeds).
  uint32_t protocol() const { return protocol_; }

  // Raw access for protocol tests: send arbitrary bytes / read one
  // framed response off the wire.
  Status SendRaw(std::string_view bytes);
  Result<Response> ReceiveResponse();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader reader_;
  uint32_t protocol_ = kProtocolVersionMin;
};

}  // namespace sqopt::server

#endif  // SQOPT_SERVER_CLIENT_H_

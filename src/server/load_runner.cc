#include "server/load_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "server/client.h"

namespace sqopt::server {

namespace {

using Clock = std::chrono::steady_clock;

struct SharedCounts {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> overloaded{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> protocol_errors{0};
};

void CountOutcome(const Result<Response>& response, SharedCounts* counts) {
  if (!response.ok()) {
    counts->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (response->code) {
    case StatusCode::kOk:
      counts->ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kOverloaded:
      counts->overloaded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kTimeout:
      counts->timed_out.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      counts->failed.fetch_add(1, std::memory_order_relaxed);
  }
}

void Percentiles(std::vector<uint64_t>* latencies, LoadReport* report) {
  if (latencies->empty()) return;
  std::sort(latencies->begin(), latencies->end());
  report->p50_us = (*latencies)[latencies->size() / 2];
  report->p95_us = (*latencies)[latencies->size() * 95 / 100];
  report->p99_us = (*latencies)[latencies->size() * 99 / 100];
  report->max_us = latencies->back();
}

}  // namespace

Result<LoadReport> RunOpenLoop(const std::string& host, int port,
                               const std::vector<std::string>& queries,
                               const LoadOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("open-loop run needs a query pool");
  }
  if (options.target_qps <= 0.0 || options.connections < 1) {
    return Status::InvalidArgument(
        "target_qps must be positive and connections >= 1");
  }
  const uint64_t total = std::max<uint64_t>(
      1, static_cast<uint64_t>(options.target_qps *
                               (static_cast<double>(options.duration_ms) /
                                1000.0)));
  const double micros_per_slot = 1e6 / options.target_qps;

  // Probe once so a dead server is an error, not a report of failures.
  {
    auto probe = Client::Connect(host, port);
    if (!probe.ok()) return probe.status();
    SQOPT_RETURN_IF_ERROR(probe->Ping());
  }

  SharedCounts counts;
  std::atomic<uint64_t> next_slot{0};
  std::mutex latencies_mu;
  std::vector<uint64_t> latencies;
  latencies.reserve(total);

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.connections));
  for (int t = 0; t < options.connections; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(host, port);
      if (!client.ok()) {
        // Connection refused mid-run: every slot this thread would
        // have served becomes a protocol error.
        for (;;) {
          if (next_slot.fetch_add(1, std::memory_order_relaxed) >= total) {
            return;
          }
          counts.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
      Rng rng(options.seed * 1315423911u + static_cast<uint64_t>(t));
      std::vector<uint64_t> local_latencies;
      for (;;) {
        const uint64_t slot =
            next_slot.fetch_add(1, std::memory_order_relaxed);
        if (slot >= total) break;
        const Clock::time_point due =
            start + std::chrono::microseconds(static_cast<int64_t>(
                        static_cast<double>(slot) * micros_per_slot));
        std::this_thread::sleep_until(due);
        const size_t qi =
            options.zipf_theta > 0.0
                ? rng.SkewedIndex(queries.size(), options.zipf_theta)
                : rng.Index(queries.size());
        Result<Response> response =
            client->Query(queries[qi], options.deadline_ms);
        // Open-loop latency: measured from the SCHEDULED arrival, so
        // generator backlog and server queueing both land in the tail.
        local_latencies.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - due)
                .count()));
        CountOutcome(response, &counts);
        if (!response.ok()) {
          // The transport broke (reset, timeout); reconnect so the
          // remaining slots still get offered.
          client = Client::Connect(host, port);
          if (!client.ok()) {
            for (;;) {
              if (next_slot.fetch_add(1, std::memory_order_relaxed) >=
                  total) {
                break;
              }
              counts.protocol_errors.fetch_add(1,
                                               std::memory_order_relaxed);
            }
            break;
          }
        }
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& th : threads) th.join();

  LoadReport report;
  report.sent = total;
  report.ok = counts.ok.load();
  report.overloaded = counts.overloaded.load();
  report.timed_out = counts.timed_out.load();
  report.failed = counts.failed.load();
  report.protocol_errors = counts.protocol_errors.load();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (report.wall_seconds > 0.0) {
    report.offered_qps =
        static_cast<double>(report.sent) / report.wall_seconds;
    report.achieved_qps =
        static_cast<double>(report.ok) / report.wall_seconds;
  }
  Percentiles(&latencies, &report);
  return report;
}

Result<double> MeasureCapacityQps(const std::string& host, int port,
                                  const std::vector<std::string>& queries,
                                  int connections, uint64_t duration_ms,
                                  uint64_t seed) {
  if (queries.empty() || connections < 1) {
    return Status::InvalidArgument("capacity probe needs queries + clients");
  }
  std::atomic<uint64_t> completed{0};
  std::atomic<bool> stop{false};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(host, port);
      if (!client.ok()) return;
      Rng rng(seed * 2654435761u + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        Result<Response> response =
            client->Query(queries[rng.Index(queries.size())]);
        if (!response.ok()) return;
        if (response->ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (wall <= 0.0 || completed.load() == 0) {
    return Status::Internal("capacity probe completed no requests");
  }
  return static_cast<double>(completed.load()) / wall;
}

}  // namespace sqopt::server

// The open-loop load engine shared by tools/loadgen and
// bench/bench_server. Open-loop means arrivals are scheduled on a
// fixed clock (target QPS), NOT gated on completions: request i is due
// at start + i/qps whether or not earlier requests have finished, and
// each request's recorded latency runs from its SCHEDULED arrival to
// its completion. A server that falls behind therefore shows the
// backlog in its tail latencies instead of silently slowing the
// generator down — the closed-loop coordinated-omission trap the
// in-process serve bench cannot avoid.
//
// The query mix is Zipfian over a fixed pool (few hot templates, long
// cold tail — the heavy-traffic shape the plan cache exists for),
// deterministic in the seed.
#ifndef SQOPT_SERVER_LOAD_RUNNER_H_
#define SQOPT_SERVER_LOAD_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqopt::server {

struct LoadOptions {
  double target_qps = 500.0;
  uint64_t duration_ms = 2000;
  // Concurrent connections (one thread each). The open-loop schedule
  // is shared: a connection grabs the next due slot, sleeps until its
  // arrival time, and fires. More connections = more headroom before
  // the generator itself becomes the bottleneck.
  int connections = 8;
  // Zipf skew of the query mix (Rng::SkewedIndex theta). 0 = uniform.
  double zipf_theta = 0.9;
  // Per-request deadline forwarded to the server; 0 = server default.
  uint32_t deadline_ms = 0;
  uint64_t seed = 20260807;
};

struct LoadReport {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;       // typed kOverloaded rejections
  uint64_t timed_out = 0;        // typed kTimeout responses
  uint64_t failed = 0;           // other typed server-side errors
  uint64_t protocol_errors = 0;  // transport/framing failures
  double wall_seconds = 0.0;
  double offered_qps = 0.0;   // sent / wall
  double achieved_qps = 0.0;  // ok / wall

  // Latency from scheduled arrival to completion, all outcomes.
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;

  // Every response was either OK or a typed rejection — nothing broke
  // at the protocol level.
  bool clean() const { return protocol_errors == 0; }
};

// Drives `queries` at the target open-loop rate against host:port.
// Fails (error Result) only when no connection could be established;
// per-request failures are counted in the report.
Result<LoadReport> RunOpenLoop(const std::string& host, int port,
                               const std::vector<std::string>& queries,
                               const LoadOptions& options);

// Closed-loop capacity probe: `connections` clients hammer the server
// back-to-back for `duration_ms` and the achieved throughput estimates
// the server's saturation capacity (used by the overload bench to pick
// "2x overload" relative to the machine it runs on).
Result<double> MeasureCapacityQps(const std::string& host, int port,
                                  const std::vector<std::string>& queries,
                                  int connections, uint64_t duration_ms,
                                  uint64_t seed);

}  // namespace sqopt::server

#endif  // SQOPT_SERVER_LOAD_RUNNER_H_

#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "replica/replication_log.h"
#include "server/wire.h"

namespace sqopt::server {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

uint64_t MicrosSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

// One TCP connection. The I/O thread owns the fd, the FrameReader, and
// the idle/flush bookkeeping; the write buffer is shared with workers
// (they append encoded responses) and guarded by `mu` together with
// `closed`, which tells a late worker the fd is already gone.
struct Conn {
  int fd = -1;

  // --- I/O-thread-only state. ---
  FrameReader reader;
  Clock::time_point last_activity;
  bool close_after_flush = false;
  // Wire protocol this connection negotiated (HELLO upgrades it).
  uint32_t protocol = kProtocolVersionMin;

  // --- Shared with workers, guarded by mu. ---
  std::mutex mu;
  std::string outbuf;
  bool closed = false;

  // Requests admitted for this connection and not yet answered; the
  // reaper never closes a connection with one pending.
  std::atomic<int> inflight{0};

  // Replication subscriber: a caught-up follower is quiet by design,
  // so the idle reaper leaves it alone.
  std::atomic<bool> subscribed{false};
};

Response ErrorResponse(RequestType type, const Status& status) {
  Response r;
  r.type = type;
  r.code = status.code();
  r.message = status.message();
  return r;
}

}  // namespace

// ---------------------------------------------------------------------
// Impl.
// ---------------------------------------------------------------------

struct Server::Impl {
  EngineInterface* engine = nullptr;
  ServerOptions opts;
  replica::ReplicationLog* replication = nullptr;

  int listen_fd = -1;
  int bound_port = 0;
  int wake_rd = -1;  // self-pipe: workers and RequestDrain nudge poll()
  int wake_wr = -1;

  std::thread io_thread;
  std::vector<std::thread> workers;

  // Admission queue (I/O thread pushes, workers pop).
  struct Task {
    std::shared_ptr<Conn> conn;
    Request request;
    Clock::time_point deadline;
  };
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Task> queue;
  bool stop_workers = false;

  // Connection registry; I/O thread only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  // Replication subscribers. Pumped from the I/O thread (at subscribe
  // time) AND from committing threads (the log's notifier), so the
  // registry has its own lock. `version` is the subscriber's current
  // applied version; the next record shipped starts at version + 1.
  struct Subscriber {
    std::shared_ptr<Conn> conn;
    uint64_t version = 0;
  };
  std::mutex sub_mu;
  std::vector<Subscriber> subscribers;

  std::atomic<bool> draining{false};
  // Admitted requests not yet answered (queued + executing).
  std::atomic<uint64_t> inflight{0};

  // Counters (see ServerStats).
  std::atomic<uint64_t> accepted{0}, active{0}, reaped_idle{0};
  std::atomic<uint64_t> requests_received{0}, responses_sent{0};
  std::atomic<uint64_t> queries_ok{0}, queries_failed{0};
  std::atomic<uint64_t> rejected_overloaded{0}, timed_out{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> queue_depth{0}, queue_depth_hwm{0};
  std::atomic<uint64_t> applies_ok{0}, applies_rejected{0};
  std::atomic<uint64_t> records_replicated{0}, subscribers_active{0};
  std::atomic<uint64_t> unsupported_version{0};

  // Await/join latch.
  std::mutex join_mu;
  bool joined = false;

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }

  void Wake() {
    const char b = 'w';
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_wr, &b, 1);
  }

  // Appends an encoded response to the connection (unless it died) and
  // nudges the poller so POLLOUT gets registered.
  void Respond(const std::shared_ptr<Conn>& conn, const Response& response) {
    const std::string frame = EncodeResponse(response);
    bool delivered = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed) {
        conn->outbuf.append(frame);
        delivered = true;
      }
    }
    if (delivered) {
      responses_sent.fetch_add(1, std::memory_order_relaxed);
      Wake();
    }
  }

  // ------------------------------------------------------------------
  // Worker side.
  // ------------------------------------------------------------------

  // Executes one admitted request against the engine; fills the
  // response (whose type is already set).
  void Execute(const Request& request, Response* response) {
    switch (request.type) {
      case RequestType::kQuery: {
        const Clock::time_point t0 = Clock::now();
        Result<QueryOutcome> outcome = engine->Execute(request.query_text);
        response->exec_micros = MicrosSince(t0);
        if (!outcome.ok()) {
          queries_failed.fetch_add(1, std::memory_order_relaxed);
          response->code = outcome.status().code();
          response->message = outcome.status().message();
        } else {
          queries_ok.fetch_add(1, std::memory_order_relaxed);
          response->plan_cache_hit = outcome->plan_cache_hit;
          response->answered_without_database =
              outcome->answered_without_database;
          response->rows = std::move(outcome->rows.rows);
        }
        break;
      }
      case RequestType::kStats:
        response->stats_text = MetricsText();
        break;
      case RequestType::kPing:
        break;
      case RequestType::kApply: {
        if (opts.read_only) {
          applies_rejected.fetch_add(1, std::memory_order_relaxed);
          response->code = StatusCode::kFailedPrecondition;
          response->message =
              "read-only follower: send mutations to the leader";
          break;
        }
        const Clock::time_point t0 = Clock::now();
        Result<ApplyOutcome> outcome = engine->Apply(request.batch);
        response->exec_micros = MicrosSince(t0);
        if (!outcome.ok()) {
          applies_rejected.fetch_add(1, std::memory_order_relaxed);
          response->code = outcome.status().code();
          response->message = outcome.status().message();
        } else {
          applies_ok.fetch_add(1, std::memory_order_relaxed);
          response->snapshot_version = outcome->snapshot_version;
          response->inserted_rows = std::move(outcome->inserted_rows);
          response->group_size = static_cast<uint32_t>(outcome->group_size);
        }
        break;
      }
      case RequestType::kCheckpoint: {
        // Legal on a follower too: checkpointing folds ITS OWN WAL
        // into a snapshot — local compaction, not a mutation.
        const Status status = engine->Checkpoint();
        response->code = status.code();
        response->message = status.message();
        break;
      }
      default:
        // kHello/kSubscribe are handled inline on the I/O thread and
        // kReplicate is never admitted; an entry here is a bug.
        response->code = StatusCode::kInternal;
        response->message = "request type cannot be executed by a worker";
        break;
    }
  }

  void WorkerLoop() {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [&] { return stop_workers || !queue.empty(); });
        if (queue.empty()) return;  // only reachable when stopping
        task = std::move(queue.front());
        queue.pop_front();
        queue_depth.store(queue.size(), std::memory_order_relaxed);
      }

      // The deadline covers queue wait for EVERY request type, not
      // just queries: a saturated server answers an expired kStats or
      // kApply with kTimeout instead of executing it late.
      Response response;
      response.type = task.request.type;
      if (Clock::now() > task.deadline) {
        timed_out.fetch_add(1, std::memory_order_relaxed);
        response.code = StatusCode::kTimeout;
        response.message = "deadline expired before execution started";
      } else {
        if (opts.execute_delay_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opts.execute_delay_ms));
        }
        Execute(task.request, &response);
      }
      Respond(task.conn, response);
      task.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      inflight.fetch_sub(1, std::memory_order_relaxed);
      Wake();  // drain progress: the poller rechecks its exit condition
    }
  }

  // ------------------------------------------------------------------
  // I/O side (single thread).
  // ------------------------------------------------------------------

  void Admit(const std::shared_ptr<Conn>& conn, Request request) {
    if (draining.load(std::memory_order_relaxed)) {
      rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, ErrorResponse(request.type,
                                  Status::Overloaded("server is draining")));
      return;
    }
    if (queue_depth.load(std::memory_order_relaxed) >= opts.max_queue) {
      rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
      Respond(conn,
              ErrorResponse(
                  request.type,
                  Status::Overloaded(
                      "admission queue full (" +
                      std::to_string(opts.max_queue) + " requests)")));
      return;
    }
    uint32_t deadline_ms = request.deadline_ms == 0
                               ? opts.default_deadline_ms
                               : std::min(request.deadline_ms,
                                          opts.max_deadline_ms);
    Task task;
    task.conn = conn;
    task.request = std::move(request);
    task.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    inflight.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      queue.push_back(std::move(task));
      const uint64_t depth = queue.size();
      queue_depth.store(depth, std::memory_order_relaxed);
      if (depth > queue_depth_hwm.load(std::memory_order_relaxed)) {
        queue_depth_hwm.store(depth, std::memory_order_relaxed);
      }
    }
    queue_cv.notify_one();
  }

  void HandleFrame(const std::shared_ptr<Conn>& conn,
                   std::string_view payload) {
    requests_received.fetch_add(1, std::memory_order_relaxed);
    Result<Request> request = DecodeRequest(payload, conn->protocol);
    if (!request.ok()) {
      // Echo the type byte when it at least parsed, so the client can
      // match the error to its request.
      RequestType echo = RequestType::kQuery;
      if (!payload.empty()) {
        const auto raw = static_cast<uint8_t>(payload[0]);
        if (raw >= 1 && raw <= 8) echo = static_cast<RequestType>(raw);
      }
      if (request.status().code() == StatusCode::kUnsupportedVersion) {
        unsupported_version.fetch_add(1, std::memory_order_relaxed);
      } else {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      Respond(conn, ErrorResponse(echo, request.status()));
      return;
    }

    if (request->type == RequestType::kHello) {
      // Version-invariant layout, answered inline: negotiate down to
      // what both sides speak; below the endpoint's minimum gets one
      // typed kUnsupportedVersion naming both versions, then a clean
      // close (the snapshot-v3 precedent: a version gap is not
      // corruption).
      const uint32_t negotiated =
          std::min(request->protocol_version, kProtocolVersionMax);
      if (negotiated < opts.min_protocol ||
          request->protocol_version < kProtocolVersionMin) {
        unsupported_version.fetch_add(1, std::memory_order_relaxed);
        Respond(conn,
                ErrorResponse(
                    RequestType::kHello,
                    Status::UnsupportedVersion(
                        "client speaks wire protocol v" +
                        std::to_string(request->protocol_version) +
                        " but this endpoint requires v" +
                        std::to_string(opts.min_protocol) + " through v" +
                        std::to_string(kProtocolVersionMax))));
        conn->close_after_flush = true;
        return;
      }
      conn->protocol = negotiated;
      Response r;
      r.type = RequestType::kHello;
      r.protocol_version = negotiated;
      if (replication != nullptr) r.feature_bits |= kFeatureReplication;
      Respond(conn, r);
      return;
    }

    if (conn->protocol < opts.min_protocol) {
      unsupported_version.fetch_add(1, std::memory_order_relaxed);
      Respond(conn,
              ErrorResponse(
                  request->type,
                  Status::UnsupportedVersion(
                      "this endpoint requires wire protocol v" +
                      std::to_string(opts.min_protocol) +
                      " but the connection is still v" +
                      std::to_string(conn->protocol) +
                      ": send HELLO first (server speaks up to v" +
                      std::to_string(kProtocolVersionMax) + ")")));
      conn->close_after_flush = true;
      return;
    }

    if (request->type == RequestType::kSubscribe) {
      // Connection state, so handled inline by the I/O thread: ack
      // with the leader's version, register, then pump — the ack
      // always precedes the first kReplicate frame in the outbuf.
      if (replication == nullptr) {
        Respond(conn,
                ErrorResponse(RequestType::kSubscribe,
                              Status::FailedPrecondition(
                                  "this server is not a replication "
                                  "leader (no replication log attached)")));
        return;
      }
      Response r;
      r.type = RequestType::kSubscribe;
      r.leader_version = engine->data_version();
      Respond(conn, r);
      conn->subscribed.store(true, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(sub_mu);
        subscribers.push_back({conn, request->from_version});
        subscribers_active.store(subscribers.size(),
                                 std::memory_order_relaxed);
      }
      PumpReplication();
      return;
    }

    // Everything else — queries, stats, pings, applies, checkpoints —
    // goes through admission, so backpressure, overload rejection,
    // and the dequeue-time deadline check apply uniformly.
    Admit(conn, std::move(*request));
  }

  // Ships every retained record past each subscriber's version.
  // Called from the I/O thread (subscribe) and from committing
  // threads (the replication log's notifier); sub_mu serializes them,
  // so each subscriber's stream stays in order and gap-free.
  void PumpReplication() {
    if (replication == nullptr) return;
    std::lock_guard<std::mutex> lock(sub_mu);
    bool changed = false;
    for (auto it = subscribers.begin(); it != subscribers.end();) {
      {
        std::lock_guard<std::mutex> conn_lock(it->conn->mu);
        if (it->conn->closed) {
          it = subscribers.erase(it);
          changed = true;
          continue;
        }
      }
      Result<std::vector<replica::EncodedRecord>> records =
          replication->ReadFrom(it->version);
      if (!records.ok()) {
        // Behind the retention floor: one typed error, then the
        // follower must re-seed from a snapshot.
        Respond(it->conn,
                ErrorResponse(RequestType::kReplicate, records.status()));
        it = subscribers.erase(it);
        changed = true;
        continue;
      }
      for (const replica::EncodedRecord& record : *records) {
        Response r;
        r.type = RequestType::kReplicate;
        r.first_version = record.first_version;
        r.wal_record = record.payload;
        Respond(it->conn, r);
        it->version = record.last_version;
        records_replicated.fetch_add(1, std::memory_order_relaxed);
      }
      ++it;
    }
    if (changed) {
      subscribers_active.store(subscribers.size(),
                               std::memory_order_relaxed);
    }
  }

  // Reads everything available; returns false when the connection is
  // finished and should be closed by the caller.
  bool ReadConn(const std::shared_ptr<Conn>& conn) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->last_activity = Clock::now();
        conn->reader.Append(buf, static_cast<size_t>(n));
        std::string payload;
        for (;;) {
          const FrameReader::Outcome outcome = conn->reader.Next(&payload);
          if (outcome == FrameReader::Outcome::kNeedMore) break;
          if (outcome == FrameReader::Outcome::kFrame) {
            HandleFrame(conn, payload);
          } else if (outcome == FrameReader::Outcome::kBadCrc) {
            // Recoverable: the frame boundary is known, so the stream
            // is still in sync — answer with a typed error and keep
            // serving this connection.
            protocol_errors.fetch_add(1, std::memory_order_relaxed);
            Respond(conn,
                    ErrorResponse(RequestType::kQuery,
                                  Status::Corruption(
                                      "request frame failed CRC check")));
          } else {  // kTooLarge: cannot resync; answer and hang up.
            protocol_errors.fetch_add(1, std::memory_order_relaxed);
            Respond(conn,
                    ErrorResponse(
                        RequestType::kQuery,
                        Status::Corruption("frame exceeds maximum size")));
            conn->close_after_flush = true;
            return true;  // keep alive until the error flushes
          }
        }
        continue;
      }
      if (n == 0) {
        // Peer closed. Bytes stuck mid-frame mean it died inside one.
        if (conn->reader.buffered() > 0) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // hard socket error
    }
  }

  // Flushes pending output; returns false when the connection died.
  bool FlushConn(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->outbuf.empty()) {
      const ssize_t n = ::send(conn->fd, conn->outbuf.data(),
                               conn->outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn->outbuf.erase(0, static_cast<size_t>(n));
        conn->last_activity = Clock::now();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    return !conn->close_after_flush;
  }

  void CloseConn(const std::shared_ptr<Conn>& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
      conn->outbuf.clear();
    }
    {
      std::lock_guard<std::mutex> lock(sub_mu);
      for (auto it = subscribers.begin(); it != subscribers.end();) {
        if (it->conn == conn) {
          it = subscribers.erase(it);
        } else {
          ++it;
        }
      }
      subscribers_active.store(subscribers.size(),
                               std::memory_order_relaxed);
    }
    ::close(conn->fd);
    conns.erase(conn->fd);
    active.fetch_sub(1, std::memory_order_relaxed);
  }

  void AcceptAll() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          return;
        }
        return;  // transient accept failure; retry on the next wakeup
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->last_activity = Clock::now();
      conns.emplace(fd, std::move(conn));
      accepted.fetch_add(1, std::memory_order_relaxed);
      active.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool AllFlushed() {
    for (auto& [fd, conn] : conns) {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->outbuf.empty()) return false;
    }
    return true;
  }

  void ReapIdle() {
    if (opts.idle_timeout_ms == 0) return;
    const Clock::time_point cutoff =
        Clock::now() - std::chrono::milliseconds(opts.idle_timeout_ms);
    std::vector<std::shared_ptr<Conn>> victims;
    for (auto& [fd, conn] : conns) {
      if (conn->last_activity > cutoff) continue;
      if (conn->inflight.load(std::memory_order_relaxed) > 0) continue;
      if (conn->subscribed.load(std::memory_order_relaxed)) continue;
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->outbuf.empty()) continue;
      victims.push_back(conn);
    }
    for (const auto& conn : victims) {
      reaped_idle.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn);
    }
  }

  void IoLoop() {
    const size_t watermark = opts.backpressure_watermark == 0
                                 ? opts.max_queue
                                 : opts.backpressure_watermark;
    bool reads_paused = false;
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Conn>> polled;
    for (;;) {
      const bool drain = draining.load(std::memory_order_relaxed);
      if (drain && queue_depth.load(std::memory_order_relaxed) == 0 &&
          inflight.load(std::memory_order_relaxed) == 0 && AllFlushed()) {
        break;
      }

      // Backpressure hysteresis: stop reading at the watermark, resume
      // once the workers have drained half of it.
      const size_t depth = queue_depth.load(std::memory_order_relaxed);
      if (!reads_paused && depth >= watermark) {
        reads_paused = true;
      } else if (reads_paused && depth <= watermark / 2) {
        reads_paused = false;
      }

      pfds.clear();
      polled.clear();
      pfds.push_back({wake_rd, POLLIN, 0});
      const bool poll_listen = !drain;
      if (poll_listen) pfds.push_back({listen_fd, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = 0;
        if (!drain && !reads_paused) events |= POLLIN;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (!conn->outbuf.empty()) events |= POLLOUT;
        }
        pfds.push_back({fd, events, 0});
        polled.push_back(conn);
      }

      if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50) < 0 &&
          errno != EINTR) {
        break;  // unrecoverable poll failure
      }

      size_t idx = 0;
      if (pfds[idx].revents & POLLIN) {
        char sink[256];
        while (::read(wake_rd, sink, sizeof(sink)) > 0) {
        }
      }
      ++idx;
      if (poll_listen) {
        if (pfds[idx].revents & POLLIN) AcceptAll();
        ++idx;
      }
      std::vector<std::shared_ptr<Conn>> dead;
      for (size_t i = 0; i < polled.size(); ++i) {
        const short revents = pfds[idx + i].revents;
        const std::shared_ptr<Conn>& conn = polled[i];
        bool alive = true;
        if (revents & POLLOUT) alive = FlushConn(conn);
        if (alive && (revents & (POLLIN | POLLERR | POLLHUP))) {
          alive = ReadConn(conn);
          // Frames handled above may have produced inline responses
          // (stats, ping, errors); try to push them out right away
          // instead of waiting one poll round-trip.
          if (alive) alive = FlushConn(conn);
        }
        if (!alive) dead.push_back(conn);
      }
      for (const auto& conn : dead) CloseConn(conn);
      ReapIdle();
    }

    // Drained: every admitted request was answered and flushed. Stop
    // the workers and close what's left.
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      stop_workers = true;
    }
    queue_cv.notify_all();
    std::vector<std::shared_ptr<Conn>> leftover;
    leftover.reserve(conns.size());
    for (auto& [fd, conn] : conns) leftover.push_back(conn);
    for (const auto& conn : leftover) CloseConn(conn);
    ::close(listen_fd);
    listen_fd = -1;
  }

  std::string MetricsText() const {
    char line[128];
    std::string out;
    auto put = [&](const char* name, uint64_t v) {
      std::snprintf(line, sizeof(line), "%s %llu\n", name,
                    static_cast<unsigned long long>(v));
      out += line;
    };
    put("server_connections_accepted", accepted.load());
    put("server_connections_active", active.load());
    put("server_connections_reaped_idle", reaped_idle.load());
    put("server_requests_received", requests_received.load());
    put("server_responses_sent", responses_sent.load());
    put("server_queries_ok", queries_ok.load());
    put("server_queries_failed", queries_failed.load());
    put("server_rejected_overloaded", rejected_overloaded.load());
    put("server_timed_out", timed_out.load());
    put("server_protocol_errors", protocol_errors.load());
    put("server_queue_depth", queue_depth.load());
    put("server_queue_depth_hwm", queue_depth_hwm.load());
    put("server_applies_ok", applies_ok.load());
    put("server_applies_rejected", applies_rejected.load());
    put("server_records_replicated", records_replicated.load());
    put("server_subscribers_active", subscribers_active.load());
    put("server_unsupported_version", unsupported_version.load());
    const EngineStats es = engine->stats();
    put("engine_queries_parsed", es.queries_parsed);
    put("engine_queries_executed", es.queries_executed);
    put("engine_queries_analyzed", es.queries_analyzed);
    put("engine_statements_prepared", es.statements_prepared);
    put("engine_prepared_executions", es.prepared_executions);
    put("engine_contradictions", es.contradictions);
    put("engine_batches_served", es.batches_served);
    put("engine_mutation_batches_applied", es.mutation_batches_applied);
    put("engine_mutation_ops_applied", es.mutation_ops_applied);
    put("engine_mutation_batches_rejected", es.mutation_batches_rejected);
    put("engine_checkpoints", es.checkpoints);
    put("engine_wal_records_replayed", es.wal_records_replayed);
    put("engine_data_version", engine->data_version());
    const PlanCacheStats pc = engine->plan_cache_stats();
    put("plan_cache_hits", pc.hits);
    put("plan_cache_misses", pc.misses);
    put("plan_cache_evictions", pc.evictions);
    put("plan_cache_invalidations", pc.invalidations);
    put("plan_cache_entries", pc.entries);
    put("plan_cache_aliases", pc.aliases);
    put("plan_cache_capacity", pc.capacity);
    put("plan_cache_shards", pc.shards);
    return out;
  }
};

// ---------------------------------------------------------------------
// Public surface.
// ---------------------------------------------------------------------

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Result<std::unique_ptr<Server>> Server::Start(
    EngineInterface* engine, ServerOptions options,
    replica::ReplicationLog* replication) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }
  if (!engine->has_data()) {
    return Status::FailedPrecondition(
        "engine has no data loaded: call Engine::Load before Server::Start");
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("ServerOptions::threads must be >= 1");
  }
  if (options.max_queue < 1) {
    return Status::InvalidArgument("ServerOptions::max_queue must be >= 1");
  }

  auto impl = std::make_unique<Impl>();
  impl->engine = engine;
  impl->opts = options;
  impl->replication = replication;

  impl->listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (impl->listen_fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host address: " +
                                   options.host);
  }
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(impl->listen_fd, 128) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Errno("getsockname");
  }
  impl->bound_port = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) return Errno("pipe2");
  impl->wake_rd = pipe_fds[0];
  impl->wake_wr = pipe_fds[1];

  Impl* raw = impl.get();
  if (replication != nullptr) {
    // Every committed group pumps the subscriber streams; detached in
    // Await() once the threads are joined.
    replication->SetNotifier([raw] { raw->PumpReplication(); });
  }
  impl->workers.reserve(static_cast<size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    impl->workers.emplace_back([raw] { raw->WorkerLoop(); });
  }
  impl->io_thread = std::thread([raw] { raw->IoLoop(); });

  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

Server::~Server() {
  if (impl_ != nullptr) Shutdown();
}

int Server::port() const { return impl_->bound_port; }

void Server::RequestDrain() {
  impl_->draining.store(true, std::memory_order_relaxed);
  impl_->Wake();
}

void Server::Await() {
  std::lock_guard<std::mutex> lock(impl_->join_mu);
  if (impl_->joined) return;
  impl_->joined = true;
  if (impl_->io_thread.joinable()) impl_->io_thread.join();
  for (std::thread& w : impl_->workers) {
    if (w.joinable()) w.join();
  }
  // Commits after shutdown must not pump a dead server.
  if (impl_->replication != nullptr) impl_->replication->SetNotifier(nullptr);
}

void Server::Shutdown() {
  RequestDrain();
  Await();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = impl_->accepted.load();
  s.connections_active = impl_->active.load();
  s.connections_reaped_idle = impl_->reaped_idle.load();
  s.requests_received = impl_->requests_received.load();
  s.responses_sent = impl_->responses_sent.load();
  s.queries_ok = impl_->queries_ok.load();
  s.queries_failed = impl_->queries_failed.load();
  s.rejected_overloaded = impl_->rejected_overloaded.load();
  s.timed_out = impl_->timed_out.load();
  s.protocol_errors = impl_->protocol_errors.load();
  s.queue_depth = impl_->queue_depth.load();
  s.queue_depth_hwm = impl_->queue_depth_hwm.load();
  s.applies_ok = impl_->applies_ok.load();
  s.applies_rejected = impl_->applies_rejected.load();
  s.records_replicated = impl_->records_replicated.load();
  s.subscribers_active = impl_->subscribers_active.load();
  s.unsupported_version = impl_->unsupported_version.load();
  return s;
}

std::string Server::MetricsText() const { return impl_->MetricsText(); }

}  // namespace sqopt::server

// The network serving layer: an async TCP front end over the const,
// thread-safe Engine read path. One I/O thread multiplexes every
// connection over non-blocking sockets + poll(2) (accept, per-
// connection read/write state machines, idle reaping); a fixed worker
// pool executes admitted queries against the shared engine — and
// therefore the shared plan cache, so concurrent clients sending the
// same query text serve from one cached plan exactly like ExecuteBatch
// slots do.
//
// Admission control: decoded query requests enter a bounded queue.
// A full queue rejects the request immediately with a typed
// kOverloaded response (the request is never executed, memory stays
// bounded); at the configurable backpressure watermark the I/O thread
// additionally stops reading request bytes until the queue drains,
// so a firehose client is throttled by TCP flow control instead of
// ballooning the input buffers.
//
// Deadlines: every query carries a deadline (client-supplied or the
// server default) covering queue wait. A request whose deadline has
// expired when a worker picks it up is answered with a typed kTimeout
// response without executing; execution itself is never interrupted.
//
// Graceful drain: RequestDrain() (async-signal-safe — SIGTERM handlers
// call it directly) stops accepting and stops reading, finishes every
// queued and in-flight request, flushes every response, then closes.
// See DESIGN.md "Network serving".
//
// Replication (v2): pass a replica::ReplicationLog to Start and the
// server becomes a LEADER — kSubscribe registers the connection as a
// follower and committed groups are pushed as kReplicate frames (the
// log's notifier pumps subscribers on every commit). With
// `read_only` set the server is a FOLLOWER front end: kApply gets a
// typed kFailedPrecondition pointing writers at the leader, while
// queries serve normally from whatever the local applier has caught
// up to. See DESIGN.md "Replication".
#ifndef SQOPT_SERVER_SERVER_H_
#define SQOPT_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "api/engine.h"
#include "common/status.h"
#include "server/wire.h"

namespace sqopt::replica {
class ReplicationLog;
}  // namespace sqopt::replica

namespace sqopt::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port from port()

  // Worker threads executing admitted queries. Independent of the
  // engine's internal ExecuteBatch/morsel pool.
  int threads = 4;

  // Admission bound: queued-but-not-started requests beyond which new
  // queries are rejected with kOverloaded.
  size_t max_queue = 128;

  // Stop reading request bytes when the queue reaches this depth;
  // resume below half of it. 0 = max_queue (reject-only backpressure).
  size_t backpressure_watermark = 0;

  // Deadline applied to requests that don't carry one; client-supplied
  // deadlines are clamped to max_deadline_ms.
  uint32_t default_deadline_ms = 5000;
  uint32_t max_deadline_ms = 60000;

  // Connections with no traffic and no pending work for this long are
  // reaped. 0 disables reaping.
  uint32_t idle_timeout_ms = 60000;

  // Fault injection: sleep this long inside each worker before
  // executing a query. Lets tests and the overload bench pin the
  // server's capacity deterministically. 0 in production.
  uint32_t execute_delay_ms = 0;

  // Lowest wire protocol version this endpoint serves. Connections
  // below it (including fresh v1 connections that never sent HELLO)
  // get one typed kUnsupportedVersion response naming both versions,
  // then a clean close. Default accepts v1 clients.
  uint32_t min_protocol = kProtocolVersionMin;

  // Follower mode: reject kApply with a typed kFailedPrecondition
  // (mutations must go to the leader). Queries serve normally.
  bool read_only = false;
};

// Cumulative server-side counters; reads are atomic snapshots.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_reaped_idle = 0;
  uint64_t requests_received = 0;   // decoded frames, all types
  uint64_t responses_sent = 0;      // responses written back to connections
  uint64_t queries_ok = 0;          // query responses with code kOk
  uint64_t queries_failed = 0;      // typed engine errors (parse etc.)
  uint64_t rejected_overloaded = 0; // admission-queue rejections
  uint64_t timed_out = 0;           // deadline expiries
  uint64_t protocol_errors = 0;     // bad CRC, bad payload, oversized frame
  uint64_t queue_depth = 0;         // instantaneous admitted-not-started
  uint64_t queue_depth_hwm = 0;     // high-water mark since start
  uint64_t applies_ok = 0;          // kApply responses with code kOk
  uint64_t applies_rejected = 0;    // typed kApply failures (incl. read-only)
  uint64_t records_replicated = 0;  // kReplicate frames pushed to followers
  uint64_t subscribers_active = 0;  // registered replication subscribers
  uint64_t unsupported_version = 0; // version-gap rejections
};

class Server {
 public:
  // Binds, listens, and spawns the I/O thread + workers. `engine` is
  // any EngineInterface backend — a single Engine, a ShardedEngine
  // fleet, or a RemoteShard — that must have data loaded and must
  // outlive the server. The read path stays const; kApply/kCheckpoint
  // drive the interface's write surface. A non-null `replication`
  // makes this server a replication leader (it must outlive the
  // server; the server installs itself as the log's notifier and
  // detaches on shutdown).
  static Result<std::unique_ptr<Server>> Start(
      EngineInterface* engine, ServerOptions options,
      replica::ReplicationLog* replication = nullptr);

  ~Server();  // implies Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound TCP port (resolves an ephemeral bind).
  int port() const;

  // Begins graceful drain: stop accepting, stop reading, finish queued
  // + in-flight requests, flush responses, close. Async-signal-safe
  // (an atomic store and a pipe write) — call it from a SIGTERM
  // handler.
  void RequestDrain();

  // Blocks until the drain completes and every thread has been joined.
  // Idempotent and safe from multiple threads.
  void Await();

  // RequestDrain + Await.
  void Shutdown();

  ServerStats stats() const;

  // The plaintext metrics snapshot the STATS request serves:
  // "name value" lines covering ServerStats, EngineStats, and the
  // plan-cache counters.
  std::string MetricsText() const;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace sqopt::server

#endif  // SQOPT_SERVER_SERVER_H_

#include "server/wire.h"

#include <utility>

#include "persist/serde.h"

namespace sqopt::server {

namespace {

using persist::ByteReader;
using persist::ByteWriter;
using persist::Crc32;

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

constexpr uint8_t kFlagCacheHit = 1u << 0;
constexpr uint8_t kFlagNoDatabase = 1u << 1;

Result<RequestType> ReadRequestType(uint8_t raw) {
  switch (raw) {
    case static_cast<uint8_t>(RequestType::kQuery):
      return RequestType::kQuery;
    case static_cast<uint8_t>(RequestType::kStats):
      return RequestType::kStats;
    case static_cast<uint8_t>(RequestType::kPing):
      return RequestType::kPing;
    default:
      return Status::Corruption("unknown request type byte " +
                                std::to_string(static_cast<int>(raw)));
  }
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload.data(), payload.size()));
  w.PutRaw(payload);
  return w.Take();
}

std::string EncodeRequest(const Request& request) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(request.type));
  if (request.type == RequestType::kQuery) {
    w.PutU32(request.deadline_ms);
    w.PutString(request.query_text);
  }
  return EncodeFrame(w.buffer());
}

std::string EncodeResponse(const Response& response) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(response.type));
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutString(response.message);
  if (response.ok()) {
    switch (response.type) {
      case RequestType::kQuery: {
        uint8_t flags = 0;
        if (response.plan_cache_hit) flags |= kFlagCacheHit;
        if (response.answered_without_database) flags |= kFlagNoDatabase;
        w.PutU8(flags);
        w.PutU64(response.exec_micros);
        w.PutU32(static_cast<uint32_t>(response.rows.size()));
        for (const std::vector<Value>& row : response.rows) {
          w.PutU32(static_cast<uint32_t>(row.size()));
          for (const Value& v : row) w.PutValue(v);
        }
        break;
      }
      case RequestType::kStats:
        w.PutString(response.stats_text);
        break;
      case RequestType::kPing:
        break;
    }
  }
  return EncodeFrame(w.buffer());
}

Result<Request> DecodeRequest(std::string_view payload) {
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint8_t raw_type, r.U8());
  Request request;
  SQOPT_ASSIGN_OR_RETURN(request.type, ReadRequestType(raw_type));
  if (request.type == RequestType::kQuery) {
    SQOPT_ASSIGN_OR_RETURN(request.deadline_ms, r.U32());
    SQOPT_ASSIGN_OR_RETURN(request.query_text, r.String());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after request payload");
  }
  return request;
}

Result<Response> DecodeResponse(std::string_view payload) {
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint8_t raw_type, r.U8());
  Response response;
  SQOPT_ASSIGN_OR_RETURN(response.type, ReadRequestType(raw_type));
  SQOPT_ASSIGN_OR_RETURN(uint8_t raw_code, r.U8());
  if (raw_code > static_cast<uint8_t>(StatusCode::kTimeout)) {
    return Status::Corruption("unknown status code byte " +
                              std::to_string(static_cast<int>(raw_code)));
  }
  response.code = static_cast<StatusCode>(raw_code);
  SQOPT_ASSIGN_OR_RETURN(response.message, r.String());
  if (response.ok()) {
    switch (response.type) {
      case RequestType::kQuery: {
        SQOPT_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
        response.plan_cache_hit = (flags & kFlagCacheHit) != 0;
        response.answered_without_database = (flags & kFlagNoDatabase) != 0;
        SQOPT_ASSIGN_OR_RETURN(response.exec_micros, r.U64());
        SQOPT_ASSIGN_OR_RETURN(uint32_t n_rows, r.U32());
        response.rows.reserve(r.CappedCount(n_rows, 4));
        for (uint32_t i = 0; i < n_rows; ++i) {
          SQOPT_ASSIGN_OR_RETURN(uint32_t n_values, r.U32());
          std::vector<Value> row;
          row.reserve(r.CappedCount(n_values, 1));
          for (uint32_t j = 0; j < n_values; ++j) {
            SQOPT_ASSIGN_OR_RETURN(Value v, r.ReadValue());
            row.push_back(std::move(v));
          }
          response.rows.push_back(std::move(row));
        }
        break;
      }
      case RequestType::kStats: {
        SQOPT_ASSIGN_OR_RETURN(response.stats_text, r.String());
        break;
      }
      case RequestType::kPing:
        break;
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after response payload");
  }
  return response;
}

FrameReader::Outcome FrameReader::Next(std::string* payload) {
  // Compact the consumed prefix away once it dominates the buffer, so
  // a long-lived connection doesn't grow its input buffer forever.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Outcome::kNeedMore;
  ByteReader header(std::string_view(buf_).substr(pos_, kFrameHeaderBytes));
  const uint32_t len = *header.U32();
  const uint32_t crc = *header.U32();
  if (len > kMaxFramePayload) return Outcome::kTooLarge;
  if (avail < kFrameHeaderBytes + len) return Outcome::kNeedMore;
  const std::string_view body =
      std::string_view(buf_).substr(pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  if (Crc32(body.data(), body.size()) != crc) return Outcome::kBadCrc;
  payload->assign(body.data(), body.size());
  return Outcome::kFrame;
}

}  // namespace sqopt::server

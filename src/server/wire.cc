#include "server/wire.h"

#include <utility>

#include "persist/serde.h"
#include "persist/wal.h"

namespace sqopt::server {

namespace {

using persist::ByteReader;
using persist::ByteWriter;
using persist::Crc32;

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

constexpr uint8_t kFlagCacheHit = 1u << 0;
constexpr uint8_t kFlagNoDatabase = 1u << 1;

Result<RequestType> ReadRequestType(uint8_t raw) {
  switch (raw) {
    case static_cast<uint8_t>(RequestType::kQuery):
      return RequestType::kQuery;
    case static_cast<uint8_t>(RequestType::kStats):
      return RequestType::kStats;
    case static_cast<uint8_t>(RequestType::kPing):
      return RequestType::kPing;
    case static_cast<uint8_t>(RequestType::kHello):
      return RequestType::kHello;
    case static_cast<uint8_t>(RequestType::kApply):
      return RequestType::kApply;
    case static_cast<uint8_t>(RequestType::kSubscribe):
      return RequestType::kSubscribe;
    case static_cast<uint8_t>(RequestType::kReplicate):
      return RequestType::kReplicate;
    case static_cast<uint8_t>(RequestType::kCheckpoint):
      return RequestType::kCheckpoint;
    default:
      return Status::Corruption("unknown request type byte " +
                                std::to_string(static_cast<int>(raw)));
  }
}

// Whether `type` exists at all under protocol `version` (a v2-only
// type on a v1 connection is a version gap, not corruption).
bool TypeInVersion(RequestType type, uint32_t version) {
  if (version >= 2) return true;
  switch (type) {
    case RequestType::kQuery:
    case RequestType::kStats:
    case RequestType::kPing:
    case RequestType::kHello:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload.data(), payload.size()));
  w.PutRaw(payload);
  return w.Take();
}

std::string EncodeMutationOps(const MutationBatch& batch) {
  return persist::EncodeMutationBatch(batch);
}

Result<MutationBatch> DecodeMutationOps(std::string_view bytes) {
  return persist::DecodeMutationBatch(bytes);
}

std::string EncodeRequest(const Request& request, uint32_t protocol_version) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(request.type));
  if (request.type == RequestType::kHello) {
    // Version-invariant layout: HELLO must be encodable before the
    // versions have been agreed.
    w.PutU32(request.protocol_version);
    w.PutU64(request.feature_bits);
    return EncodeFrame(w.buffer());
  }
  if (protocol_version >= 2) {
    w.PutU32(request.deadline_ms);
    switch (request.type) {
      case RequestType::kQuery:
        w.PutString(request.query_text);
        break;
      case RequestType::kApply:
        w.PutString(persist::EncodeMutationBatch(request.batch));
        break;
      case RequestType::kSubscribe:
        w.PutU64(request.from_version);
        break;
      default:
        break;  // kStats / kPing / kCheckpoint carry nothing further
    }
  } else if (request.type == RequestType::kQuery) {
    w.PutU32(request.deadline_ms);
    w.PutString(request.query_text);
  }
  return EncodeFrame(w.buffer());
}

std::string EncodeResponse(const Response& response) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(response.type));
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutString(response.message);
  if (response.ok()) {
    switch (response.type) {
      case RequestType::kQuery: {
        uint8_t flags = 0;
        if (response.plan_cache_hit) flags |= kFlagCacheHit;
        if (response.answered_without_database) flags |= kFlagNoDatabase;
        w.PutU8(flags);
        w.PutU64(response.exec_micros);
        w.PutU32(static_cast<uint32_t>(response.rows.size()));
        for (const std::vector<Value>& row : response.rows) {
          w.PutU32(static_cast<uint32_t>(row.size()));
          for (const Value& v : row) w.PutValue(v);
        }
        break;
      }
      case RequestType::kStats:
        w.PutString(response.stats_text);
        break;
      case RequestType::kHello:
        w.PutU32(response.protocol_version);
        w.PutU64(response.feature_bits);
        break;
      case RequestType::kApply:
        w.PutU64(response.snapshot_version);
        w.PutU64(response.exec_micros);
        w.PutU32(static_cast<uint32_t>(response.inserted_rows.size()));
        for (int64_t row : response.inserted_rows) w.PutI64(row);
        w.PutU32(response.group_size);
        break;
      case RequestType::kSubscribe:
        w.PutU64(response.leader_version);
        break;
      case RequestType::kReplicate:
        w.PutU64(response.first_version);
        w.PutString(response.wal_record);
        break;
      case RequestType::kPing:
      case RequestType::kCheckpoint:
        break;
    }
  }
  return EncodeFrame(w.buffer());
}

Result<Request> DecodeRequest(std::string_view payload,
                              uint32_t protocol_version) {
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint8_t raw_type, r.U8());
  Request request;
  SQOPT_ASSIGN_OR_RETURN(request.type, ReadRequestType(raw_type));
  if (request.type == RequestType::kReplicate) {
    return Status::Corruption(
        "kReplicate is a server-push response type, not a request");
  }
  if (!TypeInVersion(request.type, protocol_version)) {
    return Status::UnsupportedVersion(
        "request type " + std::to_string(static_cast<int>(raw_type)) +
        " requires wire protocol v2; this connection negotiated v" +
        std::to_string(protocol_version) +
        " (send HELLO to upgrade, server speaks up to v" +
        std::to_string(kProtocolVersionMax) + ")");
  }
  if (request.type == RequestType::kHello) {
    SQOPT_ASSIGN_OR_RETURN(request.protocol_version, r.U32());
    SQOPT_ASSIGN_OR_RETURN(request.feature_bits, r.U64());
    if (!r.AtEnd()) {
      return Status::Corruption("trailing bytes after request payload");
    }
    return request;
  }
  if (protocol_version >= 2) {
    SQOPT_ASSIGN_OR_RETURN(request.deadline_ms, r.U32());
    switch (request.type) {
      case RequestType::kQuery: {
        SQOPT_ASSIGN_OR_RETURN(request.query_text, r.String());
        break;
      }
      case RequestType::kApply: {
        SQOPT_ASSIGN_OR_RETURN(std::string encoded, r.String());
        SQOPT_ASSIGN_OR_RETURN(request.batch,
                               persist::DecodeMutationBatch(encoded));
        break;
      }
      case RequestType::kSubscribe: {
        SQOPT_ASSIGN_OR_RETURN(request.from_version, r.U64());
        break;
      }
      default:
        break;
    }
  } else if (request.type == RequestType::kQuery) {
    SQOPT_ASSIGN_OR_RETURN(request.deadline_ms, r.U32());
    SQOPT_ASSIGN_OR_RETURN(request.query_text, r.String());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after request payload");
  }
  return request;
}

Result<Response> DecodeResponse(std::string_view payload) {
  ByteReader r(payload);
  SQOPT_ASSIGN_OR_RETURN(uint8_t raw_type, r.U8());
  Response response;
  SQOPT_ASSIGN_OR_RETURN(response.type, ReadRequestType(raw_type));
  SQOPT_ASSIGN_OR_RETURN(uint8_t raw_code, r.U8());
  if (raw_code > static_cast<uint8_t>(StatusCode::kUnsupportedVersion)) {
    return Status::Corruption("unknown status code byte " +
                              std::to_string(static_cast<int>(raw_code)));
  }
  response.code = static_cast<StatusCode>(raw_code);
  SQOPT_ASSIGN_OR_RETURN(response.message, r.String());
  if (response.ok()) {
    switch (response.type) {
      case RequestType::kQuery: {
        SQOPT_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
        response.plan_cache_hit = (flags & kFlagCacheHit) != 0;
        response.answered_without_database = (flags & kFlagNoDatabase) != 0;
        SQOPT_ASSIGN_OR_RETURN(response.exec_micros, r.U64());
        SQOPT_ASSIGN_OR_RETURN(uint32_t n_rows, r.U32());
        response.rows.reserve(r.CappedCount(n_rows, 4));
        for (uint32_t i = 0; i < n_rows; ++i) {
          SQOPT_ASSIGN_OR_RETURN(uint32_t n_values, r.U32());
          std::vector<Value> row;
          row.reserve(r.CappedCount(n_values, 1));
          for (uint32_t j = 0; j < n_values; ++j) {
            SQOPT_ASSIGN_OR_RETURN(Value v, r.ReadValue());
            row.push_back(std::move(v));
          }
          response.rows.push_back(std::move(row));
        }
        break;
      }
      case RequestType::kStats: {
        SQOPT_ASSIGN_OR_RETURN(response.stats_text, r.String());
        break;
      }
      case RequestType::kHello: {
        SQOPT_ASSIGN_OR_RETURN(response.protocol_version, r.U32());
        SQOPT_ASSIGN_OR_RETURN(response.feature_bits, r.U64());
        break;
      }
      case RequestType::kApply: {
        SQOPT_ASSIGN_OR_RETURN(response.snapshot_version, r.U64());
        SQOPT_ASSIGN_OR_RETURN(response.exec_micros, r.U64());
        SQOPT_ASSIGN_OR_RETURN(uint32_t n_inserted, r.U32());
        response.inserted_rows.reserve(r.CappedCount(n_inserted, 8));
        for (uint32_t i = 0; i < n_inserted; ++i) {
          SQOPT_ASSIGN_OR_RETURN(int64_t row, r.I64());
          response.inserted_rows.push_back(row);
        }
        SQOPT_ASSIGN_OR_RETURN(response.group_size, r.U32());
        break;
      }
      case RequestType::kSubscribe: {
        SQOPT_ASSIGN_OR_RETURN(response.leader_version, r.U64());
        break;
      }
      case RequestType::kReplicate: {
        SQOPT_ASSIGN_OR_RETURN(response.first_version, r.U64());
        SQOPT_ASSIGN_OR_RETURN(response.wal_record, r.String());
        break;
      }
      case RequestType::kPing:
      case RequestType::kCheckpoint:
        break;
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after response payload");
  }
  return response;
}

FrameReader::Outcome FrameReader::Next(std::string* payload) {
  // Compact the consumed prefix away once it dominates the buffer, so
  // a long-lived connection doesn't grow its input buffer forever.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Outcome::kNeedMore;
  ByteReader header(std::string_view(buf_).substr(pos_, kFrameHeaderBytes));
  const uint32_t len = *header.U32();
  const uint32_t crc = *header.U32();
  if (len > kMaxFramePayload) return Outcome::kTooLarge;
  if (avail < kFrameHeaderBytes + len) return Outcome::kNeedMore;
  const std::string_view body =
      std::string_view(buf_).substr(pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  if (Crc32(body.data(), body.size()) != crc) return Outcome::kBadCrc;
  payload->assign(body.data(), body.size());
  return Outcome::kFrame;
}

}  // namespace sqopt::server

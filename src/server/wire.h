// The sqopt wire protocol: length-prefixed, CRC-framed request/response
// messages over a byte stream, encoded with the same little-endian
// ByteWriter/ByteReader conventions as the durable on-disk format
// (src/persist/serde.h) — so the wire bytes, like the snapshot bytes,
// are identical across compilers and host endianness.
//
// Frame layout (all fields little-endian):
//
//   u32 payload_len   bytes that follow the 8-byte header
//   u32 payload_crc   CRC-32 (persist::Crc32) of the payload bytes
//   [payload_len bytes of payload]
//
// A frame whose CRC does not match is RECOVERABLE: the reader knows the
// frame boundary, consumes the bad frame, and the connection survives —
// the server answers it with a typed kCorruption response. A frame
// whose length field exceeds kMaxFramePayload is NOT recoverable (the
// length itself cannot be trusted, so there is no boundary to resync
// at); the connection must be closed after one typed error response.
//
// PROTOCOL VERSIONS. A connection starts at v1. A HELLO request (whose
// layout is version-independent) negotiates up: the server answers
// with min(client version, kProtocolVersionMax) and both sides speak
// that from the next frame on. v2 adds the write/replication surface
// (kApply, kSubscribe, kReplicate, kCheckpoint, kHello) and
// generalizes deadline_ms to every request type. A v2-only request
// arriving on a v1 connection — or any request on a connection below
// the server's configured minimum — gets one typed
// kUnsupportedVersion response naming both versions (the snapshot-v3
// precedent: a version gap is NOT corruption).
//
// Request payload, v1:
//   u8  type           (RequestType: kQuery/kStats/kPing/kHello only)
//   u32 deadline_ms    kQuery only; 0 = server default
//   string query_text  kQuery only (u32 length + bytes)
//
// Request payload, v2:
//   u8  type           (any RequestType except kReplicate)
//   u32 deadline_ms    ALL types (0 = server default); absent for kHello
//   -- kQuery --    string query_text
//   -- kApply --    string batch  (persist serde, see EncodeMutationOps)
//   -- kSubscribe -- u64 from_version (subscriber's current snapshot
//                    version; streaming starts at from_version + 1)
//   -- kStats / kPing / kCheckpoint -- nothing further
//
// kHello request payload (identical under v1 and v2 decode rules —
// that is what makes the upgrade possible):
//   u8 type = kHello; u32 protocol_version; u64 feature_bits
//
// Response payload:
//   u8  type           echo of the request type
//   u8  code           StatusCode of the outcome
//   string message     empty when code == kOk
//   -- kQuery, code == kOk --
//   u8  flags          bit0 plan_cache_hit, bit1 answered_without_database
//   u64 exec_micros    server-side execution latency
//   u32 n_rows; per row: u32 n_values; per value: serde PutValue
//   -- kStats, code == kOk --
//   string stats_text  plaintext "name value\n" lines
//   -- kHello, code == kOk --
//   u32 protocol_version (negotiated); u64 feature_bits
//   -- kApply, code == kOk --
//   u64 snapshot_version; u64 exec_micros;
//   u32 n_inserted; per: i64 row; u32 group_size
//   -- kSubscribe, code == kOk --
//   u64 leader_version (the leader's version at subscribe time)
//   -- kReplicate (server-push after a kSubscribe OK), code == kOk --
//   u64 first_version; string wal_record (persist::EncodeWalRecordPayload
//   bytes — the WAL record body VERBATIM, CRC-framed by the frame layer)
//   -- kCheckpoint / kPing, code == kOk -- nothing further
#ifndef SQOPT_SERVER_WIRE_H_
#define SQOPT_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/mutation.h"
#include "common/status.h"
#include "types/value.h"

namespace sqopt::server {

// Hard ceiling on one frame's payload. Generous for query text and
// result sets at the experiment scale; prevents a corrupt or hostile
// length field from driving a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;  // 8 MiB

// Every connection starts at kProtocolVersionMin; HELLO negotiates up
// to min(client, kProtocolVersionMax).
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 2;

// Feature bits advertised in HELLO. None are load-bearing yet: the
// version number gates behavior, the bits exist so a future v2.x can
// advertise optional capability without another version bump.
inline constexpr uint64_t kFeatureReplication = 1u << 0;

enum class RequestType : uint8_t {
  kQuery = 1,       // execute one query, reply with rows
  kStats = 2,       // plaintext metrics snapshot
  kPing = 3,        // liveness probe, empty OK reply
  kHello = 4,       // version negotiation (layout is version-invariant)
  kApply = 5,       // v2: commit one MutationBatch
  kSubscribe = 6,   // v2: start the replication stream at from_version+1
  kReplicate = 7,   // v2: server-push WAL record (appears only as a
                    // Response type; a client must never send it)
  kCheckpoint = 8,  // v2: fold the WAL into a fresh snapshot
};

struct Request {
  RequestType type = RequestType::kQuery;
  // Total budget for queue wait + execution start, in milliseconds,
  // for EVERY request type under v2 (kQuery only under v1).
  // 0 = the server's configured default.
  uint32_t deadline_ms = 0;
  std::string query_text;

  // kHello.
  uint32_t protocol_version = kProtocolVersionMax;
  uint64_t feature_bits = 0;

  // kApply.
  MutationBatch batch;

  // kSubscribe: the subscriber's current snapshot version.
  uint64_t from_version = 0;
};

struct Response {
  RequestType type = RequestType::kQuery;
  StatusCode code = StatusCode::kOk;
  std::string message;

  // kQuery success payload.
  bool plan_cache_hit = false;
  bool answered_without_database = false;
  uint64_t exec_micros = 0;
  std::vector<std::vector<Value>> rows;

  // kStats success payload.
  std::string stats_text;

  // kHello success payload.
  uint32_t protocol_version = 0;
  uint64_t feature_bits = 0;

  // kApply success payload (exec_micros above is shared).
  uint64_t snapshot_version = 0;
  std::vector<int64_t> inserted_rows;
  uint32_t group_size = 0;

  // kSubscribe success payload.
  uint64_t leader_version = 0;

  // kReplicate payload: the WAL group record body, byte-identical to
  // what persist::WalWriter would frame on disk. first_version is
  // redundant with the record's own header — it rides along so a
  // follower can cheaply skip without decoding.
  uint64_t first_version = 0;
  std::string wal_record;

  bool ok() const { return code == StatusCode::kOk; }
  // The outcome as a Status (OK for success responses).
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }
};

// Wraps `payload` in a frame header (length + CRC).
std::string EncodeFrame(std::string_view payload);

// `protocol_version` selects the layout negotiated for the connection.
std::string EncodeRequest(const Request& request,
                          uint32_t protocol_version = kProtocolVersionMin);
std::string EncodeResponse(const Response& response);

// Payload decoding (the framing has already been stripped and CRC
// verified by FrameReader). Malformed payloads — unknown type byte,
// truncated fields, trailing bytes — return kCorruption; a
// structurally valid v2-only request decoded under v1 rules returns
// kUnsupportedVersion (the payload is fine, the connection isn't).
Result<Request> DecodeRequest(std::string_view payload,
                              uint32_t protocol_version = kProtocolVersionMin);
Result<Response> DecodeResponse(std::string_view payload);

// MutationBatch <-> bytes on the persist serde conventions (the same
// op encoding WAL records use). Exposed for kApply and its tests.
std::string EncodeMutationOps(const MutationBatch& batch);
Result<MutationBatch> DecodeMutationOps(std::string_view bytes);

// Incremental frame extraction from a byte stream: Append() received
// bytes, then call Next() until it returns kNeedMore. One FrameReader
// per connection direction.
class FrameReader {
 public:
  enum class Outcome {
    kFrame,     // *payload filled with one verified frame payload
    kNeedMore,  // no complete frame buffered yet
    kBadCrc,    // a full frame arrived but its CRC is wrong; the frame
                // was consumed and the stream is still in sync
    kTooLarge,  // length field exceeds kMaxFramePayload — the stream
                // cannot be resynced; close the connection
  };

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  Outcome Next(std::string* payload);

  // Bytes buffered but not yet consumed (a partial frame at connection
  // close means the peer truncated mid-frame).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace sqopt::server

#endif  // SQOPT_SERVER_WIRE_H_

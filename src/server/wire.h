// The sqopt wire protocol: length-prefixed, CRC-framed request/response
// messages over a byte stream, encoded with the same little-endian
// ByteWriter/ByteReader conventions as the durable on-disk format
// (src/persist/serde.h) — so the wire bytes, like the snapshot bytes,
// are identical across compilers and host endianness.
//
// Frame layout (all fields little-endian):
//
//   u32 payload_len   bytes that follow the 8-byte header
//   u32 payload_crc   CRC-32 (persist::Crc32) of the payload bytes
//   [payload_len bytes of payload]
//
// A frame whose CRC does not match is RECOVERABLE: the reader knows the
// frame boundary, consumes the bad frame, and the connection survives —
// the server answers it with a typed kCorruption response. A frame
// whose length field exceeds kMaxFramePayload is NOT recoverable (the
// length itself cannot be trusted, so there is no boundary to resync
// at); the connection must be closed after one typed error response.
//
// Request payload:
//   u8  type           (RequestType)
//   u32 deadline_ms    kQuery only; 0 = server default
//   string query_text  kQuery only (u32 length + bytes)
//
// Response payload:
//   u8  type           echo of the request type
//   u8  code           StatusCode of the outcome
//   string message     empty when code == kOk
//   -- kQuery, code == kOk --
//   u8  flags          bit0 plan_cache_hit, bit1 answered_without_database
//   u64 exec_micros    server-side execution latency
//   u32 n_rows; per row: u32 n_values; per value: serde PutValue
//   -- kStats, code == kOk --
//   string stats_text  plaintext "name value\n" lines
#ifndef SQOPT_SERVER_WIRE_H_
#define SQOPT_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace sqopt::server {

// Hard ceiling on one frame's payload. Generous for query text and
// result sets at the experiment scale; prevents a corrupt or hostile
// length field from driving a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;  // 8 MiB

enum class RequestType : uint8_t {
  kQuery = 1,  // execute one query, reply with rows
  kStats = 2,  // plaintext metrics snapshot
  kPing = 3,   // liveness probe, empty OK reply
};

struct Request {
  RequestType type = RequestType::kQuery;
  // Total budget for queue wait + execution start, in milliseconds.
  // 0 = the server's configured default.
  uint32_t deadline_ms = 0;
  std::string query_text;
};

struct Response {
  RequestType type = RequestType::kQuery;
  StatusCode code = StatusCode::kOk;
  std::string message;

  // kQuery success payload.
  bool plan_cache_hit = false;
  bool answered_without_database = false;
  uint64_t exec_micros = 0;
  std::vector<std::vector<Value>> rows;

  // kStats success payload.
  std::string stats_text;

  bool ok() const { return code == StatusCode::kOk; }
  // The outcome as a Status (OK for success responses).
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }
};

// Wraps `payload` in a frame header (length + CRC).
std::string EncodeFrame(std::string_view payload);

std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

// Payload decoding (the framing has already been stripped and CRC
// verified by FrameReader). Malformed payloads — unknown type byte,
// truncated fields — return kCorruption.
Result<Request> DecodeRequest(std::string_view payload);
Result<Response> DecodeResponse(std::string_view payload);

// Incremental frame extraction from a byte stream: Append() received
// bytes, then call Next() until it returns kNeedMore. One FrameReader
// per connection direction.
class FrameReader {
 public:
  enum class Outcome {
    kFrame,     // *payload filled with one verified frame payload
    kNeedMore,  // no complete frame buffered yet
    kBadCrc,    // a full frame arrived but its CRC is wrong; the frame
                // was consumed and the stream is still in sync
    kTooLarge,  // length field exceeds kMaxFramePayload — the stream
                // cannot be resynced; close the connection
  };

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  Outcome Next(std::string* payload);

  // Bytes buffered but not yet consumed (a partial frame at connection
  // close means the peer truncated mid-frame).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace sqopt::server

#endif  // SQOPT_SERVER_WIRE_H_

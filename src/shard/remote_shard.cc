#include "shard/remote_shard.h"

#include <cstdlib>
#include <utility>
#include <vector>

namespace sqopt::shard {

namespace {

// Parses one "name value" line out of a kStats metrics text; 0 when
// the metric is absent (an older server).
uint64_t ParseMetric(const std::string& text, std::string_view name) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    if (line.size() > name.size() + 1 &&
        line.substr(0, name.size()) == name && line[name.size()] == ' ') {
      return std::strtoull(line.data() + name.size() + 1, nullptr, 10);
    }
    pos = eol + 1;
  }
  return 0;
}

}  // namespace

RemoteShard::RemoteShard(server::Client client)
    : client_(std::move(client)) {}

Result<std::unique_ptr<RemoteShard>> RemoteShard::Connect(
    const std::string& host, int port, int timeout_ms) {
  SQOPT_ASSIGN_OR_RETURN(server::Client client,
                         server::Client::Connect(host, port, timeout_ms));
  SQOPT_ASSIGN_OR_RETURN(server::Response hello, client.Hello());
  if (!hello.ok()) return hello.ToStatus();
  if (client.protocol() < 2) {
    return Status::UnsupportedVersion(
        "remote shard at " + host + ":" + std::to_string(port) +
        " negotiated wire protocol v" + std::to_string(client.protocol()) +
        " but RemoteShard requires v2");
  }
  return std::unique_ptr<RemoteShard>(new RemoteShard(std::move(client)));
}

Result<QueryOutcome> RemoteShard::Execute(
    std::string_view query_text) const {
  std::lock_guard<std::mutex> lock(mu_);
  SQOPT_ASSIGN_OR_RETURN(server::Response response,
                         client_.Query(query_text));
  if (!response.ok()) return response.ToStatus();
  QueryOutcome outcome;
  outcome.executed = !response.answered_without_database;
  outcome.answered_without_database = response.answered_without_database;
  outcome.plan_cache_hit = response.plan_cache_hit;
  outcome.rows.rows = std::move(response.rows);
  outcome.meter.rows_out = outcome.rows.rows.size();
  return outcome;
}

Result<ApplyOutcome> RemoteShard::Apply(const MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  SQOPT_ASSIGN_OR_RETURN(server::Response response, client_.Apply(batch));
  if (!response.ok()) return response.ToStatus();
  ApplyOutcome outcome;
  outcome.snapshot_version = response.snapshot_version;
  outcome.inserted_rows = std::move(response.inserted_rows);
  outcome.group_size = response.group_size;
  for (const Mutation& op : batch.ops()) {
    switch (op.kind) {
      case Mutation::Kind::kInsert: ++outcome.inserts; break;
      case Mutation::Kind::kUpdate: ++outcome.updates; break;
      case Mutation::Kind::kDelete: ++outcome.deletes; break;
      case Mutation::Kind::kLink: ++outcome.links; break;
      case Mutation::Kind::kUnlink: ++outcome.unlinks; break;
    }
  }
  return outcome;
}

std::vector<Result<ApplyOutcome>> RemoteShard::ApplyGroup(
    std::span<const MutationBatch> batches) {
  // One kApply per batch, in order: the remote engine's own group
  // commit coalesces concurrent senders; a single client's group
  // rides sequentially.
  std::vector<Result<ApplyOutcome>> out;
  out.reserve(batches.size());
  for (const MutationBatch& batch : batches) {
    out.push_back(Apply(batch));
  }
  return out;
}

Status RemoteShard::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return client_.Checkpoint();
}

Result<std::string> RemoteShard::FetchStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return client_.Stats();
}

uint64_t RemoteShard::data_version() const {
  Result<std::string> text = FetchStats();
  if (!text.ok()) return 0;
  return ParseMetric(*text, "engine_data_version");
}

EngineStats RemoteShard::stats() const {
  EngineStats s;
  Result<std::string> text = FetchStats();
  if (!text.ok()) return s;
  s.queries_parsed = ParseMetric(*text, "engine_queries_parsed");
  s.queries_executed = ParseMetric(*text, "engine_queries_executed");
  s.queries_analyzed = ParseMetric(*text, "engine_queries_analyzed");
  s.statements_prepared = ParseMetric(*text, "engine_statements_prepared");
  s.prepared_executions = ParseMetric(*text, "engine_prepared_executions");
  s.contradictions = ParseMetric(*text, "engine_contradictions");
  s.batches_served = ParseMetric(*text, "engine_batches_served");
  s.mutation_batches_applied =
      ParseMetric(*text, "engine_mutation_batches_applied");
  s.mutation_ops_applied = ParseMetric(*text, "engine_mutation_ops_applied");
  s.mutation_batches_rejected =
      ParseMetric(*text, "engine_mutation_batches_rejected");
  s.checkpoints = ParseMetric(*text, "engine_checkpoints");
  s.wal_records_replayed =
      ParseMetric(*text, "engine_wal_records_replayed");
  return s;
}

PlanCacheStats RemoteShard::plan_cache_stats() const {
  PlanCacheStats s;
  Result<std::string> text = FetchStats();
  if (!text.ok()) return s;
  s.hits = ParseMetric(*text, "plan_cache_hits");
  s.misses = ParseMetric(*text, "plan_cache_misses");
  s.evictions = ParseMetric(*text, "plan_cache_evictions");
  s.invalidations = ParseMetric(*text, "plan_cache_invalidations");
  s.entries = ParseMetric(*text, "plan_cache_entries");
  s.aliases = ParseMetric(*text, "plan_cache_aliases");
  s.capacity = ParseMetric(*text, "plan_cache_capacity");
  s.shards = ParseMetric(*text, "plan_cache_shards");
  return s;
}

bool RemoteShard::has_data() const { return data_version() > 0; }

}  // namespace sqopt::shard

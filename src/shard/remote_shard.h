// A client-side EngineInterface that speaks wire protocol v2 to a
// remote sqopt_server — the shard-per-node transport seam. To a
// caller (the TCP front end, the sharded coordinator, a test) a
// RemoteShard is indistinguishable from an in-process Engine: Execute
// sends kQuery, Apply sends kApply, Checkpoint sends kCheckpoint, and
// stats()/data_version() parse the server's kStats metrics text. One
// connection, one outstanding request (the Engine read path's
// concurrency lives server-side in its worker pool); a mutex makes
// the handle safe to share the way tests share an Engine.
//
// Known limit (see DESIGN.md "Replication"): ShardedEngine's
// scatter-gather plans once and ships PLANS to in-process shards;
// plans don't cross the wire, so a RemoteShard executes from query
// TEXT and replans remotely. The interface seam is what this class
// establishes; plan shipping is future work.
#ifndef SQOPT_SHARD_REMOTE_SHARD_H_
#define SQOPT_SHARD_REMOTE_SHARD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "api/engine.h"
#include "api/engine_iface.h"
#include "common/status.h"
#include "server/client.h"

namespace sqopt::shard {

class RemoteShard : public EngineInterface {
 public:
  // Connects and negotiates v2. Fails with the server's typed
  // kUnsupportedVersion if the remote end cannot speak it.
  static Result<std::unique_ptr<RemoteShard>> Connect(
      const std::string& host, int port, int timeout_ms = 5000);

  Result<QueryOutcome> Execute(std::string_view query_text) const override;
  Result<ApplyOutcome> Apply(const MutationBatch& batch) override;
  std::vector<Result<ApplyOutcome>> ApplyGroup(
      std::span<const MutationBatch> batches) override;
  Status Checkpoint() override;

  // Parsed from the remote kStats text ("name value" lines); a
  // transport failure returns zeroed stats (the interface is
  // non-failing by design, matching in-process accessors).
  uint64_t data_version() const override;
  EngineStats stats() const override;
  PlanCacheStats plan_cache_stats() const override;
  bool has_data() const override;

 private:
  explicit RemoteShard(server::Client client);

  Result<std::string> FetchStats() const;

  mutable std::mutex mu_;  // one outstanding request per connection
  mutable server::Client client_;
};

}  // namespace sqopt::shard

#endif  // SQOPT_SHARD_REMOTE_SHARD_H_

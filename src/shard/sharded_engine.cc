#include "shard/sharded_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "api/engine_impl.h"
#include "common/worker_pool.h"
#include "exec/executor.h"
#include "persist/crash_point.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "workload/dbgen.h"

namespace sqopt::shard {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFileName = "MANIFEST";
constexpr const char* kCoordWalFileName = "coordinator.wal";
constexpr const char* kManifestMagic = "sqopt-shard-manifest";
constexpr int kMaxShards = 16;
constexpr const char* kShardDigits = "0123456789abcdef";

// Segment -> shard by contiguous ranges: exact for divisors of
// kNumSegments, empty trailing shards above it, balanced below it.
int ShardOfSegment(int segment, int shards) {
  return segment * shards / kNumSegments;
}

std::string ShardDirName(const std::string& dir, int k) {
  return (fs::path(dir) / ("shard" + std::to_string(k))).string();
}

// How one batch splits across the fleet: per-shard sub-batches with
// rows translated to shard-local ids and pending-insert handles
// renumbered per shard, plus the per-insert routing (which shard and
// class each staged insert lands in, in staging order).
struct SplitBatch {
  std::vector<MutationBatch> sub;  // one per shard, possibly empty
  std::vector<int> insert_shard;   // by original insert index
  std::vector<ClassId> insert_class;
};

}  // namespace

struct ShardedEngine::State {
  State(ShardOptions opts, Engine h, std::vector<Engine> s)
      : options(std::move(opts)),
        head(std::move(h)),
        shards(std::move(s)) {}

  ShardOptions options;

  // The planning head: a full Engine over the UNPARTITIONED store. It
  // plans every query (shared plan cache), validates and commits every
  // batch first (global constraint oracle), and serves the global-row
  // view (store(), schema()). Readers go through its snapshot pinning;
  // the coordinator only adds the routing tables below.
  Engine head;
  std::vector<Engine> shards;

  // Coordinator-level reader/writer isolation: Execute and the stats
  // readers take it shared; Load / Apply / ApplyGroup / Save /
  // Checkpoint take it exclusive, because a commit mutates the routing
  // tables mid-flight and those have no snapshot lineage for readers
  // to pin (coarser than Engine's MVCC, and documented as such).
  mutable std::shared_mutex data_lock;

  // Routing, all indexed by GLOBAL row id (the head's row ids).
  // shard_of[c][g] is the shard owning the row; local_row[c][g] its
  // row id inside that shard; global_row[k][c][l] the inverse map.
  // Local ids allocate in ascending-global-row order (loads iterate
  // rows ascending, inserts always append), which is what lets
  // recovery rebuild the maps from the manifest's digit strings alone.
  std::vector<std::vector<int8_t>> shard_of;
  std::vector<std::vector<int64_t>> local_row;
  std::vector<std::vector<std::vector<int64_t>>> global_row;

  bool loaded = false;
  // Coordinator-sequenced version: head.data_version() +
  // version_offset. The offset is 0 for an in-memory lifetime and
  // becomes the pre-recovery history length after Open(dir), where the
  // rebuilt head restarts its own lineage at 1.
  uint64_t global_version = 0;
  uint64_t version_offset = 0;

  // Durable attachment (Save / Open(dir)); empty/null when in-memory.
  std::string dir;
  std::unique_ptr<persist::WalWriter> coord_log;

  // Coordinator counters (stats() merges them with the head's and the
  // shards').
  mutable std::atomic<uint64_t> queries_executed{0};
  mutable std::atomic<uint64_t> contradictions{0};
  std::atomic<uint64_t> committed_batches{0};
  std::atomic<uint64_t> precheck_rejected{0};
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> coord_records_replayed{0};

  // Lazily-created scatter pool (one task per shard beyond the first).
  mutable std::shared_ptr<WorkerPool> pool;
  mutable std::mutex pool_mutex;

  std::shared_ptr<WorkerPool> GetPool() const {
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (pool == nullptr) {
      pool = std::make_shared<WorkerPool>(
          WorkerPool::ResolveThreads(options.engine.serve.threads));
    }
    return pool;
  }
};

namespace {

// Shard engines never plan (the head does) and never fsync (the
// coordinator log is the durability point; shard WALs only shortcut
// replay).
EngineOptions ShardEngineOptions(const EngineOptions& base) {
  EngineOptions opts = base;
  opts.serve.cache_capacity = 0;
  opts.serve.durability.fsync = false;
  return opts;
}

// Resolves which shard each op of `batch` touches and builds the
// per-shard sub-batches. Callers guarantee the batch was (or will be,
// for the pre-check subset) accepted by the head, so every row id is
// in routing range; anything else is an Internal invariant breach.
Result<SplitBatch> Split(const ShardedEngine::State& st,
                         const MutationBatch& batch) {
  const Schema& schema = st.head.schema();
  const int n = static_cast<int>(st.shards.size());
  SplitBatch split;
  split.sub.resize(static_cast<size_t>(n));

  // Pre-scan inserts: later (or earlier) ops may reference insert j
  // through handle -1-j, so insert shards must be known up front.
  for (const Mutation& op : batch.ops()) {
    if (op.kind != Mutation::Kind::kInsert) continue;
    split.insert_shard.push_back(ShardOfSegment(
        SegmentOfObject(schema, op.class_id, op.object), n));
    split.insert_class.push_back(op.class_id);
  }

  // Local pending handle of insert j inside its shard's sub-batch.
  std::vector<int64_t> local_handle(split.insert_shard.size(), 0);

  auto shard_of_row = [&](ClassId cid, int64_t row) -> Result<int> {
    if (row < 0) {
      const size_t j = static_cast<size_t>(-1 - row);
      if (j >= split.insert_shard.size()) {
        return Status::Internal("sharded split: dangling insert handle");
      }
      return split.insert_shard[j];
    }
    if (cid >= static_cast<ClassId>(st.shard_of.size()) ||
        row >= static_cast<int64_t>(st.shard_of[cid].size())) {
      return Status::Internal("sharded split: row outside routing table");
    }
    return static_cast<int>(st.shard_of[cid][row]);
  };
  auto local_of = [&](ClassId cid, int64_t row) -> int64_t {
    if (row < 0) return local_handle[static_cast<size_t>(-1 - row)];
    return st.local_row[cid][row];
  };

  size_t j = 0;
  for (const Mutation& op : batch.ops()) {
    switch (op.kind) {
      case Mutation::Kind::kInsert: {
        const int k = split.insert_shard[j];
        local_handle[j] = split.sub[k].Insert(op.class_id, op.object);
        ++j;
        break;
      }
      case Mutation::Kind::kUpdate: {
        SQOPT_ASSIGN_OR_RETURN(const int k,
                               shard_of_row(op.class_id, op.row));
        split.sub[k].Update(op.class_id, local_of(op.class_id, op.row),
                            op.attr_id, op.value);
        break;
      }
      case Mutation::Kind::kDelete: {
        SQOPT_ASSIGN_OR_RETURN(const int k,
                               shard_of_row(op.class_id, op.row));
        split.sub[k].Delete(op.class_id, local_of(op.class_id, op.row));
        break;
      }
      case Mutation::Kind::kLink:
      case Mutation::Kind::kUnlink: {
        const Relationship& rel = schema.relationship(op.rel_id);
        SQOPT_ASSIGN_OR_RETURN(const int ka, shard_of_row(rel.a, op.row_a));
        SQOPT_ASSIGN_OR_RETURN(const int kb, shard_of_row(rel.b, op.row_b));
        if (ka != kb) {
          return Status::Internal(
              "sharded split: cross-shard relationship instance slipped "
              "past the pre-check");
        }
        if (op.kind == Mutation::Kind::kLink) {
          split.sub[ka].Link(op.rel_id, local_of(rel.a, op.row_a),
                             local_of(rel.b, op.row_b));
        } else {
          split.sub[ka].Unlink(op.rel_id, local_of(rel.a, op.row_a),
                               local_of(rel.b, op.row_b));
        }
        break;
      }
    }
  }
  return split;
}

// The coordinator-level admission check run BEFORE the head commits:
// a link whose endpoints partition to different shards can never be
// represented by the fleet, so it is rejected up front with the same
// typed status a single engine's constraint validator produces for
// cross-segment links on the experiment workload. Ops the head would
// reject anyway (bad rows, dangling handles) are left for the head so
// its error codes pass through unchanged.
Status PrecheckCrossShard(const ShardedEngine::State& st,
                          const MutationBatch& batch) {
  const Schema& schema = st.head.schema();
  const int n = static_cast<int>(st.shards.size());
  if (n == 1) return Status::OK();

  std::vector<int> insert_shard;
  for (const Mutation& op : batch.ops()) {
    if (op.kind != Mutation::Kind::kInsert) continue;
    insert_shard.push_back(ShardOfSegment(
        SegmentOfObject(schema, op.class_id, op.object), n));
  }
  // -1 = unresolvable here (the head will reject the op itself).
  auto resolve = [&](ClassId cid, int64_t row) -> int {
    if (row < 0) {
      const size_t j = static_cast<size_t>(-1 - row);
      return j < insert_shard.size() ? insert_shard[j] : -1;
    }
    if (cid >= static_cast<ClassId>(st.shard_of.size()) ||
        row >= static_cast<int64_t>(st.shard_of[cid].size())) {
      return -1;
    }
    return static_cast<int>(st.shard_of[cid][row]);
  };
  for (const Mutation& op : batch.ops()) {
    if (op.kind != Mutation::Kind::kLink) continue;
    if (op.rel_id < 0 ||
        op.rel_id >= static_cast<RelId>(schema.num_relationships())) {
      continue;  // malformed; the head rejects it with its own code
    }
    const Relationship& rel = schema.relationship(op.rel_id);
    const int ka = resolve(rel.a, op.row_a);
    const int kb = resolve(rel.b, op.row_b);
    if (ka >= 0 && kb >= 0 && ka != kb) {
      return Status::ConstraintViolation(
          "relationship '" + rel.name +
          "' instance would span shards " + std::to_string(ka) + " and " +
          std::to_string(kb) + " (cross-shard links are unrepresentable)");
    }
  }
  return Status::OK();
}

// Applies one already-split, head-committed batch to the fleet and
// extends the routing tables for its inserts. Row allocation is
// deterministic on both sides (head and shards append slots
// monotonically), so the new global/local ids are computed, then
// cross-checked against what the engines actually allocated.
// `head_inserted` is null during recovery replay (the head is rebuilt
// afterwards).
Status DispatchToShards(ShardedEngine::State& st, const SplitBatch& split,
                        const std::vector<int64_t>* head_inserted) {
  const int n = static_cast<int>(st.shards.size());
  std::vector<std::vector<int64_t>> shard_inserted(static_cast<size_t>(n));
  bool first = true;
  for (int k = 0; k < n; ++k) {
    if (split.sub[k].empty()) continue;
    Result<ApplyOutcome> r = st.shards[k].Apply(split.sub[k]);
    if (!r.ok()) {
      return Status::Internal("shard " + std::to_string(k) +
                              " diverged from the coordinator: " +
                              r.status().message());
    }
    shard_inserted[k] = std::move(r->inserted_rows);
    if (first) {
      first = false;
      persist::MaybeCrash("coord_mid_dispatch");
    }
  }

  std::vector<size_t> next(static_cast<size_t>(n), 0);
  for (size_t j = 0; j < split.insert_shard.size(); ++j) {
    const int k = split.insert_shard[j];
    const ClassId cid = split.insert_class[j];
    const int64_t g = static_cast<int64_t>(st.shard_of[cid].size());
    const int64_t local =
        static_cast<int64_t>(st.global_row[k][cid].size());
    if (head_inserted != nullptr && (*head_inserted)[j] != g) {
      return Status::Internal("sharded commit: global row allocation "
                              "diverged between head and coordinator");
    }
    if (next[k] >= shard_inserted[k].size() ||
        shard_inserted[k][next[k]] != local) {
      return Status::Internal("sharded commit: local row allocation "
                              "diverged on shard " + std::to_string(k));
    }
    ++next[k];
    st.shard_of[cid].push_back(static_cast<int8_t>(k));
    st.local_row[cid].push_back(local);
    st.global_row[k][cid].push_back(g);
  }
  return Status::OK();
}

// --- Coordinator manifest: a small text file naming the fleet shape,
// the committed global version, each shard's version at write time
// (recovery's replay baseline), and the per-class routing digit
// strings. Written atomically (tmp + rename + directory fsync). ---

struct Manifest {
  int shards = 0;
  uint64_t version = 0;
  std::vector<uint64_t> shard_versions;
  std::vector<std::string> routing;  // per class, one hex digit per row
};

Status WriteManifest(const ShardedEngine::State& st,
                     const std::string& dir) {
  std::ostringstream out;
  out << kManifestMagic << " 1\n";
  out << "shards " << st.shards.size() << "\n";
  out << "version " << st.global_version << "\n";
  for (size_t k = 0; k < st.shards.size(); ++k) {
    out << "shard_version " << k << " " << st.shards[k].data_version()
        << "\n";
  }
  out << "classes " << st.shard_of.size() << "\n";
  for (size_t c = 0; c < st.shard_of.size(); ++c) {
    out << "routing " << c << " ";
    if (st.shard_of[c].empty()) {
      out << ".";
    } else {
      for (const int8_t k : st.shard_of[c]) out << kShardDigits[k];
    }
    out << "\n";
  }
  const std::string text = out.str();

  const std::string path = (fs::path(dir) / kManifestFileName).string();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create manifest tmp '" + tmp + "'");
  }
  size_t written = 0;
  while (written < text.size()) {
    const ssize_t m = ::write(fd, text.data() + written,
                              text.size() - written);
    if (m < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("manifest write failed");
    }
    written += static_cast<size_t>(m);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("manifest fsync failed");
  }
  ::close(fd);
  persist::MaybeCrash("manifest_pre_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("manifest rename failed");
  }
  SQOPT_RETURN_IF_ERROR(persist::FsyncDirOf(path));
  persist::MaybeCrash("manifest_post_rename");
  return Status::OK();
}

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = (fs::path(dir) / kManifestFileName).string();
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("no shard manifest at '" + path + "'");
  }
  Manifest m;
  std::string magic;
  int fmt = 0;
  std::string tag;
  if (!(in >> magic >> fmt) || magic != kManifestMagic || fmt != 1) {
    return Status::Corruption("bad shard manifest header in '" + path +
                              "'");
  }
  size_t num_classes = 0;
  if (!(in >> tag >> m.shards) || tag != "shards" || m.shards < 1 ||
      m.shards > kMaxShards) {
    return Status::Corruption("bad shard count in manifest");
  }
  if (!(in >> tag >> m.version) || tag != "version") {
    return Status::Corruption("bad version in manifest");
  }
  m.shard_versions.resize(static_cast<size_t>(m.shards), 0);
  for (int k = 0; k < m.shards; ++k) {
    int idx = -1;
    uint64_t v = 0;
    if (!(in >> tag >> idx >> v) || tag != "shard_version" || idx != k) {
      return Status::Corruption("bad shard_version line in manifest");
    }
    m.shard_versions[static_cast<size_t>(k)] = v;
  }
  if (!(in >> tag >> num_classes) || tag != "classes") {
    return Status::Corruption("bad class count in manifest");
  }
  m.routing.resize(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    size_t idx = 0;
    std::string digits;
    if (!(in >> tag >> idx >> digits) || tag != "routing" || idx != c) {
      return Status::Corruption("bad routing line in manifest");
    }
    if (digits == ".") digits.clear();
    for (const char d : digits) {
      const char* pos = std::strchr(kShardDigits, d);
      if (pos == nullptr ||
          pos - kShardDigits >= static_cast<ptrdiff_t>(m.shards)) {
        return Status::Corruption("bad routing digit in manifest");
      }
    }
    m.routing[c] = std::move(digits);
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------------
// Open / Load.
// ---------------------------------------------------------------------

Result<ShardedEngine> ShardedEngine::Open(SchemaSource schema_source,
                                          ConstraintSource constraint_source,
                                          ShardOptions options) {
  if (options.shards < 1 || options.shards > kMaxShards) {
    return Status::InvalidArgument("shard count must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  SQOPT_ASSIGN_OR_RETURN(
      Engine head,
      Engine::Open(schema_source, constraint_source, options.engine));
  const EngineOptions shard_opts = ShardEngineOptions(options.engine);
  std::vector<Engine> shards;
  shards.reserve(static_cast<size_t>(options.shards));
  for (int k = 0; k < options.shards; ++k) {
    SQOPT_ASSIGN_OR_RETURN(
        Engine s, Engine::Open(schema_source, constraint_source, shard_opts));
    shards.push_back(std::move(s));
  }
  return ShardedEngine(std::make_shared<State>(
      std::move(options), std::move(head), std::move(shards)));
}

Status ShardedEngine::Load(DataSource data_source) {
  State& st = *state_;
  std::unique_lock lock(st.data_lock);
  const Schema& schema = st.head.schema();
  const int n = static_cast<int>(st.shards.size());

  SQOPT_ASSIGN_OR_RETURN(std::unique_ptr<ObjectStore> global,
                         data_source.Build(schema));

  const size_t num_classes = schema.num_classes();
  std::vector<std::unique_ptr<ObjectStore>> stores;
  stores.reserve(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) {
    stores.push_back(
        std::make_unique<ObjectStore>(&st.shards[k].schema()));
  }
  std::vector<std::vector<int8_t>> shard_of(num_classes);
  std::vector<std::vector<int64_t>> local_row(num_classes);
  std::vector<std::vector<std::vector<int64_t>>> global_row(
      static_cast<size_t>(n),
      std::vector<std::vector<int64_t>>(num_classes));

  for (size_t c = 0; c < num_classes; ++c) {
    const ClassId cid = static_cast<ClassId>(c);
    const int64_t slots = global->NumObjects(cid);
    // Tombstones carry no partitionable identity and would break the
    // slot-count parity the merge depends on; every supported source
    // (generator output, snapshot-free rebuilds) is live-only.
    if (global->NumLiveObjects(cid) != slots) {
      return Status::InvalidArgument(
          "sharded Load requires a tombstone-free store (class '" +
          schema.object_class(cid).name + "' has dead rows)");
    }
    shard_of[c].reserve(static_cast<size_t>(slots));
    local_row[c].reserve(static_cast<size_t>(slots));
    for (int64_t row = 0; row < slots; ++row) {
      Object obj = global->extent(cid).MaterializeRow(row);
      const int k =
          ShardOfSegment(SegmentOfObject(schema, cid, obj), n);
      SQOPT_ASSIGN_OR_RETURN(const int64_t local,
                             stores[k]->Insert(cid, std::move(obj)));
      if (local != static_cast<int64_t>(global_row[k][c].size())) {
        return Status::Internal("sharded Load: non-monotonic local rows");
      }
      shard_of[c].push_back(static_cast<int8_t>(k));
      local_row[c].push_back(local);
      global_row[k][c].push_back(row);
    }
  }
  for (size_t r = 0; r < schema.num_relationships(); ++r) {
    const RelId rid = static_cast<RelId>(r);
    const Relationship& rel = schema.relationship(rid);
    for (const auto& [a, b] : global->Pairs(rid)) {
      const int ka = shard_of[rel.a][a];
      const int kb = shard_of[rel.b][b];
      if (ka != kb) {
        return Status::InvalidArgument(
            "data is not partitionable: relationship '" + rel.name +
            "' links rows across segments assigned to different shards");
      }
      SQOPT_RETURN_IF_ERROR(
          stores[ka]->Link(rid, local_row[rel.a][a], local_row[rel.b][b]));
    }
  }

  for (int k = 0; k < n; ++k) {
    SQOPT_RETURN_IF_ERROR(
        st.shards[k].Load(DataSource::FromStore(std::move(stores[k]))));
  }
  SQOPT_RETURN_IF_ERROR(
      st.head.Load(DataSource::FromStore(std::move(global))));

  st.shard_of = std::move(shard_of);
  st.local_row = std::move(local_row);
  st.global_row = std::move(global_row);
  st.loaded = true;
  st.global_version = 1;
  st.version_offset = 0;
  // Like Engine::Load, a wholesale data replacement invalidates any
  // on-disk lineage; Save() re-attaches.
  st.dir.clear();
  st.coord_log.reset();
  return Status::OK();
}

// ---------------------------------------------------------------------
// Read path.
// ---------------------------------------------------------------------

Result<QueryOutcome> ShardedEngine::Execute(
    std::string_view query_text) const {
  const State& st = *state_;
  std::shared_lock lock(st.data_lock);
  if (!st.loaded) {
    return Status::FailedPrecondition(
        "no data loaded: call ShardedEngine::Load before Execute");
  }
  // Plan ONCE on the head; every shard executes the same plan.
  SQOPT_ASSIGN_OR_RETURN(PlannedStatement stmt,
                         st.head.PlanStatement(query_text));
  const detail::PreparedState& prep = *stmt.prepared;

  QueryOutcome out;
  out.original = prep.original;
  out.transformed = prep.transformed;
  out.report = prep.report;
  out.plan_cache_hit = stmt.plan_cache_hit;
  if (prep.empty_result) {
    out.answered_without_database = true;
    st.contradictions.fetch_add(1, std::memory_order_relaxed);
    st.queries_executed.fetch_add(1, std::memory_order_relaxed);
    prep.executions.fetch_add(1, std::memory_order_relaxed);
    out.plan_cache = st.head.plan_cache_stats();
    return out;
  }
  if (!prep.plan.has_value()) {
    return Status::Internal("planned statement carries no physical plan");
  }
  const Plan& plan = *prep.plan;
  const int n = static_cast<int>(st.shards.size());

  // Scatter: the shard is the unit of parallelism, so each shard runs
  // the plan sequentially (ctx.pool stays null) with the provenance
  // channel recording which driving row produced each output row.
  struct Part {
    ResultSet rows;
    ExecutionMeter meter;
    std::vector<int64_t> prov;
    Status status;
  };
  std::vector<Part> parts(static_cast<size_t>(n));
  auto run_shard = [&](int k) {
    Part& p = parts[static_cast<size_t>(k)];
    ExecContext ctx;
    ctx.driving_rows = &p.prov;
    Result<ResultSet> r =
        ExecutePlan(*st.shards[static_cast<size_t>(k)].store(), plan,
                    &p.meter, ctx);
    if (r.ok()) {
      p.rows = std::move(*r);
    } else {
      p.status = r.status();
    }
  };
  if (n > 1) {
    std::shared_ptr<WorkerPool> pool = st.GetPool();
    std::mutex m;
    std::condition_variable cv;
    int pending = n - 1;
    for (int k = 1; k < n; ++k) {
      pool->Submit([&, k] {
        run_shard(k);
        // Notify under the lock: the waiter owns this stack latch and
        // may destroy it the instant the predicate is visible.
        std::lock_guard<std::mutex> g(m);
        --pending;
        cv.notify_one();
      });
    }
    run_shard(0);
    std::unique_lock<std::mutex> ul(m);
    cv.wait(ul, [&] { return pending == 0; });
  } else {
    run_shard(0);
  }
  for (const Part& p : parts) {
    SQOPT_RETURN_IF_ERROR(p.status);
    if (p.rows.rows.size() != p.prov.size()) {
      return Status::Internal("shard result/provenance size mismatch");
    }
  }

  // Gather: work counters are exact sums over disjoint row sets;
  // index_probes is the per-shard MAX because every shard issues the
  // plan's probes against its own index exactly once, as the single
  // engine does against its one global index.
  ExecutionMeter& meter = out.meter;
  uint64_t max_probes = 0;
  size_t total = 0;
  for (const Part& p : parts) {
    meter.instances_scanned += p.meter.instances_scanned;
    meter.pointer_traversals += p.meter.pointer_traversals;
    meter.predicate_evals += p.meter.predicate_evals;
    max_probes = std::max(max_probes, p.meter.index_probes);
    total += p.rows.rows.size();
  }
  meter.index_probes = max_probes;
  meter.rows_out = total;

  // Deterministic k-way merge on the GLOBAL id of each row's driving
  // row. A global row lives in exactly one shard, so cross-shard ties
  // are impossible; within a shard, runs of equal driving rows
  // (multi-partner expansion) stay in shard order. The result is the
  // exact row order a single engine produces, because the executor
  // emits rows in ascending driving-row order (full scans by
  // construction, index scans after the canonical candidate sort).
  const ClassId drive_class = plan.steps[0].class_id;
  std::vector<size_t> idx(static_cast<size_t>(n), 0);
  out.rows.rows.reserve(total);
  for (;;) {
    int best = -1;
    int64_t best_g = std::numeric_limits<int64_t>::max();
    for (int k = 0; k < n; ++k) {
      const Part& p = parts[static_cast<size_t>(k)];
      if (idx[static_cast<size_t>(k)] >= p.prov.size()) continue;
      const int64_t g =
          st.global_row[static_cast<size_t>(k)][drive_class]
                       [p.prov[idx[static_cast<size_t>(k)]]];
      if (g < best_g) {
        best_g = g;
        best = k;
      }
    }
    if (best < 0) break;
    size_t& i = idx[static_cast<size_t>(best)];
    out.rows.rows.push_back(
        std::move(parts[static_cast<size_t>(best)].rows.rows[i]));
    ++i;
  }

  out.executed = true;
  out.plan_cache = st.head.plan_cache_stats();
  prep.executions.fetch_add(1, std::memory_order_relaxed);
  st.queries_executed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<Query> ShardedEngine::Parse(std::string_view query_text) const {
  return state_->head.Parse(query_text);
}

// ---------------------------------------------------------------------
// Write path.
// ---------------------------------------------------------------------

Result<ApplyOutcome> ShardedEngine::Apply(const MutationBatch& batch) {
  State& st = *state_;
  std::unique_lock lock(st.data_lock);
  if (!st.loaded) {
    return Status::FailedPrecondition(
        "no data loaded: call ShardedEngine::Load before Apply");
  }
  if (batch.empty()) {  // no-op commit, exactly like Engine
    SQOPT_ASSIGN_OR_RETURN(ApplyOutcome out, st.head.Apply(batch));
    out.snapshot_version += st.version_offset;
    return out;
  }
  {
    Status precheck = PrecheckCrossShard(st, batch);
    if (!precheck.ok()) {
      st.precheck_rejected.fetch_add(1, std::memory_order_relaxed);
      return precheck;
    }
  }
  // The head is the constraint oracle: it validates and commits first,
  // and a rejection passes through with the head's own typed status
  // before anything touches the log or a shard.
  SQOPT_ASSIGN_OR_RETURN(ApplyOutcome out, st.head.Apply(batch));
  out.snapshot_version += st.version_offset;
  out.group_size = 1;
  st.global_version = out.snapshot_version;

  if (st.coord_log != nullptr) {
    SQOPT_RETURN_IF_ERROR(st.coord_log->Append(
        st.global_version, {batch},
        st.options.engine.serve.durability.fsync, &out.fsync_micros));
    persist::MaybeCrash("coord_post_log");
  }
  SQOPT_ASSIGN_OR_RETURN(SplitBatch split, Split(st, batch));
  SQOPT_RETURN_IF_ERROR(DispatchToShards(st, split, &out.inserted_rows));
  st.committed_batches.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::vector<Result<ApplyOutcome>> ShardedEngine::ApplyGroup(
    std::span<const MutationBatch> batches) {
  State& st = *state_;
  std::unique_lock lock(st.data_lock);
  std::vector<Result<ApplyOutcome>> results;
  if (batches.empty()) return results;
  results.reserve(batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    results.emplace_back(Status::Internal("unresolved group slot"));
  }
  if (!st.loaded) {
    for (auto& r : results) {
      r = Status::FailedPrecondition(
          "no data loaded: call ShardedEngine::Load before ApplyGroup");
    }
    return results;
  }

  // Coordinator pre-check first; only the surviving batches reach the
  // head, so a cross-shard batch never consumes a version.
  std::vector<MutationBatch> accepted;
  std::vector<size_t> slot;
  for (size_t i = 0; i < batches.size(); ++i) {
    Status precheck = PrecheckCrossShard(st, batches[i]);
    if (precheck.ok()) {
      accepted.push_back(batches[i]);
      slot.push_back(i);
    } else {
      st.precheck_rejected.fetch_add(1, std::memory_order_relaxed);
      results[i] = std::move(precheck);
    }
  }
  if (accepted.empty()) return results;

  std::vector<Result<ApplyOutcome>> head_results =
      st.head.ApplyGroup(accepted);

  // Survivors: committed, non-empty batches, in commit (= version)
  // order. They share one coordinator log record and dispatch in
  // order.
  struct Survivor {
    const MutationBatch* batch;
    size_t slot;
  };
  std::vector<Survivor> survivors;
  uint64_t first_version = 0;
  for (size_t a = 0; a < head_results.size(); ++a) {
    Result<ApplyOutcome>& hr = head_results[a];
    if (hr.ok()) {
      hr->snapshot_version += st.version_offset;
      if (!accepted[a].empty()) {
        if (survivors.empty()) first_version = hr->snapshot_version;
        survivors.push_back(Survivor{&batches[slot[a]], slot[a]});
      }
    }
    results[slot[a]] = std::move(hr);
  }
  if (survivors.empty()) return results;
  st.global_version =
      first_version + static_cast<uint64_t>(survivors.size()) - 1;

  if (st.coord_log != nullptr) {
    std::vector<MutationBatch> logged;
    logged.reserve(survivors.size());
    for (const Survivor& s : survivors) logged.push_back(*s.batch);
    Status append = st.coord_log->Append(
        first_version, logged, st.options.engine.serve.durability.fsync);
    if (!append.ok()) {
      // The head already committed; without a durable record the fleet
      // cannot follow. Surface the error on every survivor slot — the
      // caller must reopen from disk.
      for (const Survivor& s : survivors) results[s.slot] = append;
      return results;
    }
    persist::MaybeCrash("coord_post_log");
  }
  for (const Survivor& s : survivors) {
    Result<SplitBatch> split = Split(st, *s.batch);
    Status dispatched =
        split.ok() ? DispatchToShards(
                         st, *split, &results[s.slot]->inserted_rows)
                   : split.status();
    if (!dispatched.ok()) {
      results[s.slot] = dispatched;
      return results;  // fleet inconsistent; reopen from disk
    }
    st.committed_batches.fetch_add(1, std::memory_order_relaxed);
  }
  return results;
}

// ---------------------------------------------------------------------
// Durability.
// ---------------------------------------------------------------------

Status ShardedEngine::Save(const std::string& dir) {
  State& st = *state_;
  std::unique_lock lock(st.data_lock);
  if (!st.loaded) {
    return Status::FailedPrecondition(
        "no data loaded: call ShardedEngine::Load before Save");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + dir +
                                   "': " + ec.message());
  }
  for (size_t k = 0; k < st.shards.size(); ++k) {
    SQOPT_RETURN_IF_ERROR(
        st.shards[k].Save(ShardDirName(dir, static_cast<int>(k))));
  }
  SQOPT_RETURN_IF_ERROR(WriteManifest(st, dir));
  const std::string wal_path =
      (fs::path(dir) / kCoordWalFileName).string();
  SQOPT_ASSIGN_OR_RETURN(st.coord_log, persist::WalWriter::Open(wal_path));
  SQOPT_RETURN_IF_ERROR(st.coord_log->Truncate(/*fsync=*/true));
  st.dir = dir;
  return Status::OK();
}

Status ShardedEngine::Checkpoint() {
  State& st = *state_;
  std::unique_lock lock(st.data_lock);
  if (st.dir.empty() || st.coord_log == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint requires a durable sharded engine (Save or Open(dir))");
  }
  // Order matters but every cut point converges: shard checkpoints
  // fold shard WALs; the manifest rename then moves the replay
  // baseline; the coordinator truncate drops records the baseline
  // already covers. A kill between any two steps leaves recovery
  // either replaying forward from the old baseline (shard versions
  // skip already-applied sub-batches) or skipping stale records under
  // the new one.
  for (Engine& s : st.shards) {
    SQOPT_RETURN_IF_ERROR(s.Checkpoint());
  }
  SQOPT_RETURN_IF_ERROR(WriteManifest(st, st.dir));
  SQOPT_RETURN_IF_ERROR(st.coord_log->Truncate(/*fsync=*/true));
  st.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::string ShardedEngine::persist_dir() const {
  std::shared_lock lock(state_->data_lock);
  return state_->dir;
}

Result<ShardedEngine> ShardedEngine::Open(const std::string& dir,
                                          ShardOptions options) {
  SQOPT_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dir));
  options.shards = manifest.shards;
  const int n = manifest.shards;

  // Reopen every shard; each replays its own (non-fsynced) WAL first.
  const EngineOptions shard_opts = ShardEngineOptions(options.engine);
  std::vector<Engine> shards;
  shards.reserve(static_cast<size_t>(n));
  std::vector<uint64_t> v0(static_cast<size_t>(n), 0);
  for (int k = 0; k < n; ++k) {
    SQOPT_ASSIGN_OR_RETURN(Engine s,
                           Engine::Open(ShardDirName(dir, k), shard_opts));
    v0[static_cast<size_t>(k)] = s.data_version();
    if (v0[static_cast<size_t>(k)] <
        manifest.shard_versions[static_cast<size_t>(k)]) {
      return Status::Corruption("shard " + std::to_string(k) +
                                " is behind the manifest baseline");
    }
    shards.push_back(std::move(s));
  }

  // Rebuild the planning head's catalog from shard 0 (all shards carry
  // identical schema + base constraints).
  const ConstraintCatalog& cat0 = shards[0].catalog();
  std::vector<HornClause> base_clauses(
      cat0.clauses().begin(),
      cat0.clauses().begin() + static_cast<ptrdiff_t>(cat0.num_base()));
  SQOPT_ASSIGN_OR_RETURN(
      Engine head,
      Engine::Open(SchemaSource(Schema(shards[0].schema())),
                   ConstraintSource::FromClauses(std::move(base_clauses)),
                   options.engine));

  auto state = std::make_shared<State>(std::move(options), std::move(head),
                                       std::move(shards));
  State& st = *state;

  // Routing tables from the manifest digits: local ids rank same-shard
  // rows in ascending global order (the allocation invariant).
  const size_t num_classes = manifest.routing.size();
  if (num_classes != st.head.schema().num_classes()) {
    return Status::Corruption("manifest class count mismatch");
  }
  st.shard_of.assign(num_classes, {});
  st.local_row.assign(num_classes, {});
  st.global_row.assign(static_cast<size_t>(n),
                       std::vector<std::vector<int64_t>>(num_classes));
  for (size_t c = 0; c < num_classes; ++c) {
    const std::string& digits = manifest.routing[c];
    st.shard_of[c].reserve(digits.size());
    st.local_row[c].reserve(digits.size());
    for (size_t g = 0; g < digits.size(); ++g) {
      const int k = static_cast<int>(std::strchr(kShardDigits, digits[g]) -
                                     kShardDigits);
      st.shard_of[c].push_back(static_cast<int8_t>(k));
      st.local_row[c].push_back(
          static_cast<int64_t>(st.global_row[k][c].size()));
      st.global_row[k][c].push_back(static_cast<int64_t>(g));
    }
  }

  // Replay the coordinator log's committed suffix. Every non-empty
  // sub-batch advances the shard's EXPECTED version; the shard applies
  // it only when the expectation passes the version its own replay
  // already reached — the convergence rule that makes every crash
  // window (mid-dispatch included) land on the manifest's committed
  // prefix.
  const std::string wal_path =
      (fs::path(dir) / kCoordWalFileName).string();
  SQOPT_ASSIGN_OR_RETURN(persist::WalReadResult log,
                         persist::ReadWal(wal_path));
  std::vector<uint64_t> expected = manifest.shard_versions;
  uint64_t gv = manifest.version;
  for (const persist::WalRecord& record : log.records) {
    bool used = false;
    for (size_t i = 0; i < record.batches.size(); ++i) {
      const uint64_t v = record.first_version + i;
      if (v <= manifest.version) continue;  // pre-checkpoint history
      if (v != gv + 1) {
        return Status::Corruption("coordinator log version gap at " +
                                  std::to_string(v));
      }
      const MutationBatch& batch = record.batches[i];
      SQOPT_ASSIGN_OR_RETURN(SplitBatch split, Split(st, batch));
      std::vector<std::vector<int64_t>> shard_inserted(
          static_cast<size_t>(n));
      for (int k = 0; k < n; ++k) {
        if (split.sub[static_cast<size_t>(k)].empty()) continue;
        uint64_t& e = expected[static_cast<size_t>(k)];
        ++e;
        if (e > v0[static_cast<size_t>(k)]) {
          Result<ApplyOutcome> r = st.shards[static_cast<size_t>(k)].Apply(
              split.sub[static_cast<size_t>(k)]);
          if (!r.ok()) {
            return Status::Corruption(
                "coordinator replay rejected on shard " +
                std::to_string(k) + ": " + r.status().message());
          }
        }
      }
      // Extend routing deterministically (slot allocation is
      // append-only on every side, applied or skipped alike).
      std::vector<size_t> dummy;
      for (size_t j = 0; j < split.insert_shard.size(); ++j) {
        const int k = split.insert_shard[j];
        const ClassId cid = split.insert_class[j];
        st.shard_of[cid].push_back(static_cast<int8_t>(k));
        st.local_row[cid].push_back(
            static_cast<int64_t>(st.global_row[k][cid].size()));
        st.global_row[k][cid].push_back(
            static_cast<int64_t>(st.shard_of[cid].size()) - 1);
      }
      (void)dummy;
      gv = v;
      used = true;
      st.committed_batches.fetch_add(1, std::memory_order_relaxed);
    }
    if (used) {
      st.coord_records_replayed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (int k = 0; k < n; ++k) {
    const uint64_t want =
        std::max(expected[static_cast<size_t>(k)], v0[static_cast<size_t>(k)]);
    if (st.shards[static_cast<size_t>(k)].data_version() != want) {
      return Status::Corruption("shard " + std::to_string(k) +
                                " did not converge to the committed prefix");
    }
    if (v0[static_cast<size_t>(k)] > expected[static_cast<size_t>(k)]) {
      return Status::Corruption("shard " + std::to_string(k) +
                                " is ahead of the coordinator log");
    }
  }

  // Rebuild the head's global store from the recovered shards: every
  // global slot materializes from its shard (post-load tombstones are
  // re-tombstoned so slot counts and row ids match the pre-crash
  // global store), then relationship instances re-link through the
  // routing maps.
  {
    auto global = std::make_unique<ObjectStore>(&st.head.schema());
    for (size_t c = 0; c < num_classes; ++c) {
      const ClassId cid = static_cast<ClassId>(c);
      for (size_t g = 0; g < st.shard_of[c].size(); ++g) {
        const int k = st.shard_of[c][g];
        const int64_t local = st.local_row[c][g];
        const ObjectStore* shard_store =
            st.shards[static_cast<size_t>(k)].store();
        Object obj = shard_store->extent(cid).MaterializeRow(local);
        SQOPT_ASSIGN_OR_RETURN(const int64_t got,
                               global->Insert(cid, std::move(obj)));
        if (got != static_cast<int64_t>(g)) {
          return Status::Internal("head rebuild: slot misallocation");
        }
        if (!shard_store->IsLive(cid, local)) {
          SQOPT_RETURN_IF_ERROR(global->Delete(cid, got));
        }
      }
    }
    const Schema& schema = st.head.schema();
    for (size_t r = 0; r < schema.num_relationships(); ++r) {
      const RelId rid = static_cast<RelId>(r);
      const Relationship& rel = schema.relationship(rid);
      for (int k = 0; k < n; ++k) {
        const ObjectStore* shard_store =
            st.shards[static_cast<size_t>(k)].store();
        for (const auto& [a, b] : shard_store->Pairs(rid)) {
          SQOPT_RETURN_IF_ERROR(global->Link(
              rid, st.global_row[static_cast<size_t>(k)][rel.a][a],
              st.global_row[static_cast<size_t>(k)][rel.b][b]));
        }
      }
    }
    SQOPT_RETURN_IF_ERROR(
        st.head.Load(DataSource::FromStore(std::move(global))));
  }

  st.loaded = true;
  st.global_version = gv;
  st.version_offset = gv - st.head.data_version();
  st.dir = dir;
  SQOPT_ASSIGN_OR_RETURN(st.coord_log,
                         persist::WalWriter::Open(wal_path, log.valid_bytes));
  return ShardedEngine(std::move(state));
}

// ---------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------

EngineStats ShardedEngine::stats() const {
  const State& st = *state_;
  std::shared_lock lock(st.data_lock);
  // Planning counters (parses, analyzes, prepares) come from the head;
  // per-shard work sums; coordinator events count once.
  EngineStats out = st.head.stats();
  out.queries_executed =
      st.queries_executed.load(std::memory_order_relaxed);
  out.contradictions = st.contradictions.load(std::memory_order_relaxed);
  out.mutation_batches_applied =
      st.committed_batches.load(std::memory_order_relaxed);
  out.mutation_batches_rejected +=
      st.precheck_rejected.load(std::memory_order_relaxed);
  out.checkpoints = st.checkpoints.load(std::memory_order_relaxed);
  out.mutation_ops_applied = 0;
  out.wal_records_replayed =
      st.coord_records_replayed.load(std::memory_order_relaxed);
  for (const Engine& s : st.shards) {
    const EngineStats ss = s.stats();
    out.mutation_ops_applied += ss.mutation_ops_applied;
    out.wal_records_replayed += ss.wal_records_replayed;
  }
  return out;
}

PlanCacheStats ShardedEngine::plan_cache_stats() const {
  return state_->head.plan_cache_stats();
}

bool ShardedEngine::has_data() const {
  std::shared_lock lock(state_->data_lock);
  return state_->loaded;
}

const Schema& ShardedEngine::schema() const { return state_->head.schema(); }

const ObjectStore* ShardedEngine::store() const {
  return state_->head.store();
}

uint64_t ShardedEngine::data_version() const {
  std::shared_lock lock(state_->data_lock);
  return state_->loaded ? state_->global_version : 0;
}

int ShardedEngine::num_shards() const {
  return static_cast<int>(state_->shards.size());
}

int ShardedEngine::ShardOfRow(ClassId class_id, int64_t global_row) const {
  const State& st = *state_;
  std::shared_lock lock(st.data_lock);
  if (!st.loaded || class_id < 0 ||
      class_id >= static_cast<ClassId>(st.shard_of.size()) ||
      global_row < 0 ||
      global_row >= static_cast<int64_t>(st.shard_of[class_id].size())) {
    return -1;
  }
  return st.shard_of[class_id][global_row];
}

}  // namespace sqopt::shard

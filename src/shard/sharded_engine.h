// Shard-per-core scatter-gather execution: one coordinator fronting N
// in-process Engine shards, each owning a disjoint key range of every
// class (the dbgen segment is the partition key, so relationship
// instances never span shards and per-shard execution needs no data
// exchange).
//
// Reads plan ONCE on a global "planning head" — a full Engine holding
// the unpartitioned store, whose plan cache and optimizer the
// coordinator shares via Engine::PlanStatement — then scatter the one
// plan across every shard over a worker pool and k-way-merge the
// per-shard row batches by global driving row. The merge reproduces a
// single-engine run bit for bit: same rows, same order, and the same
// ExecutionMeter (work counters sum across shards; index_probes is the
// per-shard max, because every shard probes its local index exactly as
// the single engine probes its one global index).
//
// Writes route by partition key through per-shard sub-batches under a
// coordinator-sequenced global version: the head validates and commits
// the batch first (it is the constraint oracle), the coordinator log
// makes it durable with one fsync, then each shard applies its slice
// through its own group-commit path. Save/Open/Checkpoint extend to
// per-shard persist directories plus a coordinator MANIFEST +
// write-ahead log, and recovery replays every shard forward to the
// manifest's committed prefix (see DESIGN.md "Sharding").
//
// Limitations (documented, by construction): a batch staging a
// relationship instance across two shards is rejected with
// kConstraintViolation before anything commits (on the segmented
// experiment workload such links are constraint violations in a single
// engine too); Load() compacts tombstones the input store may carry,
// so meter parity is guaranteed for stores loaded live-only (fresh
// generator output) plus any sequence of mutations applied afterwards.
#ifndef SQOPT_SHARD_SHARDED_ENGINE_H_
#define SQOPT_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "api/engine_iface.h"
#include "api/mutation.h"
#include "common/status.h"

namespace sqopt::shard {

struct ShardOptions {
  // Shard count, 1..16. Segments map to shards by contiguous ranges
  // (shard = segment * shards / kNumSegments), so counts above
  // kNumSegments leave the excess shards empty but still correct.
  int shards = 2;

  // Options for the planning head AND (with the plan cache disabled
  // and per-shard fsync off — the coordinator log is the durability
  // point) every shard engine.
  EngineOptions engine;
};

// The coordinator. Thread-safety mirrors Engine: the read path
// (Execute) is const and concurrent; writers (Load / Apply /
// ApplyGroup / Save / Checkpoint) serialize against readers on a
// coordinator-level reader-writer lock — coarser than Engine's
// snapshot pinning, but the routing tables a commit extends have no
// snapshot lineage to pin.
class ShardedEngine : public EngineInterface {
 public:
  // Opens the planning head plus `options.shards` shard engines from
  // the same schema/constraint sources. Call Load() next.
  static Result<ShardedEngine> Open(SchemaSource schema_source,
                                    ConstraintSource constraint_source,
                                    ShardOptions options = {});

  // Opens a directory previously produced by Save()/Checkpoint():
  // reopens every shard (each replays its own WAL), replays the
  // coordinator log's committed suffix so every shard converges to the
  // manifest's committed prefix, and rebuilds the planning head from
  // the recovered shards. `options.shards` is overridden by the
  // manifest.
  static Result<ShardedEngine> Open(const std::string& dir,
                                    ShardOptions options = {});

  ShardedEngine(ShardedEngine&&) noexcept = default;
  ShardedEngine& operator=(ShardedEngine&&) noexcept = default;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine() override = default;

  // Builds the global store, partitions every live row to its shard by
  // segment (workload::SegmentOfObject), loads each shard and the
  // head, and resets the version sequence. Rejects stores holding a
  // relationship instance whose endpoints partition to different
  // shards. Like Engine::Load, a reload detaches any persist dir.
  Status Load(DataSource data_source);

  // Plan once on the head (shared plan cache), execute everywhere,
  // merge deterministically. Rows, order, and meter match a single
  // Engine executing the same text against the unpartitioned store.
  Result<QueryOutcome> Execute(std::string_view query_text) const override;

  Result<Query> Parse(std::string_view query_text) const;

  // Commits `batch` fleet-wide: cross-shard link pre-check, head
  // commit (constraint validation against the global store),
  // coordinator log append (one fsync), then per-shard sub-batch
  // dispatch. The outcome's snapshot_version is the coordinator's
  // global version.
  Result<ApplyOutcome> Apply(const MutationBatch& batch) override;

  // Group commit: the head decides every batch in one group (one
  // version range), the survivors share one coordinator log record,
  // and each survivor dispatches to its shards in commit order.
  std::vector<Result<ApplyOutcome>> ApplyGroup(
      std::span<const MutationBatch> batches) override;

  // Durability: per-shard persist dirs (dir/shard<k>) + coordinator
  // MANIFEST + coordinator.wal. See DESIGN.md "Sharding".
  Status Save(const std::string& dir);
  Status Checkpoint() override;
  std::string persist_dir() const;

  // Fleet totals (see EngineStats): per-shard counters sum, coordinator
  // events count once, planning counters come from the head.
  EngineStats stats() const override;
  PlanCacheStats plan_cache_stats() const override;  // the head's
  bool has_data() const override;

  const Schema& schema() const;
  // The head's UNPARTITIONED store — the global-row view tests and the
  // fuzzer's reference executor read. Same lifetime caveats as
  // Engine::store().
  const ObjectStore* store() const;
  // Coordinator-sequenced global version: 0 before Load, 1 after, +1
  // per committed non-empty batch (empty batches are no-op commits,
  // exactly like Engine).
  uint64_t data_version() const override;

  int num_shards() const;
  // Shard owning `global_row` of `class_id`; -1 when out of range.
  // Test/introspection hook.
  int ShardOfRow(ClassId class_id, int64_t global_row) const;

  // Opaque coordinator state; public only so the implementation's file-
  // local helpers can name it.
  struct State;

 private:
  explicit ShardedEngine(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

}  // namespace sqopt::shard

#endif  // SQOPT_SHARD_SHARDED_ENGINE_H_

#include "sqo/formulation.h"

#include <algorithm>

#include "expr/implication.h"
#include "expr/interval.h"

namespace sqopt {

namespace {

// True if `p` references class `id` (either side for attr-attr).
bool PredicateTouchesClass(const Predicate& p, ClassId id) {
  for (ClassId c : p.ReferencedClasses()) {
    if (c == id) return true;
  }
  return false;
}

// Removes class `id` from `query` along with its relationships and
// every predicate touching it.
void RemoveClass(const Schema& schema, Query* query, ClassId id) {
  query->classes.erase(
      std::remove(query->classes.begin(), query->classes.end(), id),
      query->classes.end());
  query->relationships.erase(
      std::remove_if(query->relationships.begin(),
                     query->relationships.end(),
                     [&](RelId rel_id) {
                       return schema.relationship(rel_id).Involves(id);
                     }),
      query->relationships.end());
  auto drop_preds = [&](std::vector<Predicate>* preds) {
    preds->erase(std::remove_if(preds->begin(), preds->end(),
                                [&](const Predicate& p) {
                                  return PredicateTouchesClass(p, id);
                                }),
                 preds->end());
  };
  drop_preds(&query->join_predicates);
  drop_preds(&query->selective_predicates);
}

// Entailment oracle: saturates `preds` by firing every relevant clause
// whose antecedents are implied by the accumulated set, then answers
// implication queries against the saturated set.
class EntailmentOracle {
 public:
  EntailmentOracle(const ConstraintCatalog& catalog,
                   const std::vector<ConstraintId>& relevant)
      : catalog_(catalog), relevant_(relevant) {}

  // Returns the saturated predicate set for `preds`.
  std::vector<Predicate> Saturate(std::vector<Predicate> preds) const {
    std::vector<bool> fired(relevant_.size(), false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < relevant_.size(); ++i) {
        if (fired[i]) continue;
        const HornClause& clause = catalog_.clause(relevant_[i]);
        bool all_present = true;
        for (const Predicate& a : clause.antecedents()) {
          if (!ConjunctionImplies(preds, a)) {
            all_present = false;
            break;
          }
        }
        if (!all_present) continue;
        fired[i] = true;
        preds.push_back(clause.consequent());
        changed = true;
      }
    }
    return preds;
  }

  // True if `target` is entailed by `saturated` (a Saturate() result).
  static bool Entails(const std::vector<Predicate>& saturated,
                      const Predicate& target) {
    return ConjunctionImplies(saturated, target);
  }

 private:
  const ConstraintCatalog& catalog_;
  const std::vector<ConstraintId>& relevant_;
};

}  // namespace

FormulationResult FormulateQuery(const Schema& schema,
                                 const Query& original,
                                 const TransformationTable& table,
                                 const ConstraintCatalog& catalog,
                                 const std::vector<ConstraintId>& relevant,
                                 const CostModelInterface* cost_model,
                                 const OptimizerOptions& options) {
  FormulationResult result;
  EntailmentOracle oracle(catalog, relevant);

  // 1. Final tag per pool predicate. A predicate participates in the
  // final query iff it was in the original query or was introduced
  // (its column acquired a tag cell).
  struct Tagged {
    PredId col;
    PredicateTag tag;
    bool in_query;
  };
  std::vector<Tagged> tagged;
  for (PredId col = 0; col < static_cast<PredId>(table.num_cols()); ++col) {
    bool in_query = table.InQuery(col);
    bool has_tag = table.HasTagCell(col);
    if (!in_query && !has_tag) continue;  // never materialized
    PredicateTag tag =
        has_tag ? table.FinalTag(col) : PredicateTag::kImperative;
    tagged.push_back(Tagged{col, tag, in_query});
  }

  // 2. Contradiction short-circuit (extension, §4 hint): everything
  // tagged — imperative, optional, or redundant — is entailed for any
  // qualifying tuple, so an unsatisfiable conjunction means the answer
  // is empty in every consistent database state.
  if (options.enable_contradiction_detection) {
    std::vector<Predicate> entailed;
    for (const Tagged& t : tagged) entailed.push_back(table.pool().Get(t.col));
    if (!ConjunctionSatisfiable(entailed)) {
      result.empty_result = true;
      result.query = original;
      for (const Tagged& t : tagged) {
        result.final_predicates.push_back(FinalPredicate{
            table.pool().Get(t.col), t.tag, t.in_query, false});
      }
      return result;
    }
  }

  // 3. Build the working query: imperative + optional predicates.
  // Redundant-tagged ORIGINAL predicates may only stay out while the
  // remaining predicates entail them (checked in step 6's guard loop).
  Query working = original;
  working.join_predicates.clear();
  working.selective_predicates.clear();
  for (const Tagged& t : tagged) {
    if (t.tag == PredicateTag::kRedundant) continue;
    const Predicate& p = table.pool().Get(t.col);
    if (p.is_attr_attr()) {
      working.join_predicates.push_back(p);
    } else {
      working.selective_predicates.push_back(p);
    }
  }

  // Original predicates, for the entailment guards.
  std::vector<Predicate> original_preds = original.AllPredicates();

  // 4. Class elimination (King's rule): a class with no projected
  // attributes, no imperative predicate, and exactly one relationship
  // link is dangling. Guard: every ORIGINAL predicate on the class must
  // remain entailed by the query that is left after the elimination.
  // Iterate: removals can expose new dangling classes.
  if (options.enable_class_elimination) {
    auto has_imperative_pred = [&](ClassId id) {
      for (const Tagged& t : tagged) {
        if (t.tag != PredicateTag::kImperative) continue;
        if (PredicateTouchesClass(table.pool().Get(t.col), id)) return true;
      }
      return false;
    };
    bool changed = true;
    while (changed && working.classes.size() > 1) {
      changed = false;
      for (ClassId id : working.classes) {
        if (working.ProjectsFrom(id)) continue;
        if (working.RelationshipDegree(id, schema) != 1) continue;
        if (has_imperative_pred(id)) continue;
        Query without = working;
        RemoveClass(schema, &without, id);

        // Soundness guard: the surviving predicates must still entail
        // every original predicate that touches the eliminated class.
        std::vector<Predicate> saturated =
            oracle.Saturate(without.AllPredicates());
        bool sound = true;
        for (const Predicate& p : original_preds) {
          if (!PredicateTouchesClass(p, id)) continue;
          if (!EntailmentOracle::Entails(saturated, p)) {
            sound = false;
            break;
          }
        }
        if (!sound) continue;

        if (cost_model != nullptr &&
            options.enable_profitability_analysis &&
            !EliminationIsProfitable(*cost_model, working, without)) {
          continue;
        }
        working = std::move(without);
        result.eliminated_classes.push_back(id);
        changed = true;
        break;  // class list changed; restart the scan
      }
    }
  }

  // 5. Profitability of the surviving optional predicates: greedily
  // drop any whose retention does not lower estimated cost. Optionals
  // on eliminated classes are already gone. Original-query optionals
  // additionally require the remaining predicates to entail them.
  auto still_in_working = [&](const Predicate& p) {
    const auto& list =
        p.is_attr_attr() ? working.join_predicates
                         : working.selective_predicates;
    return std::find(list.begin(), list.end(), p) != list.end();
  };
  for (Tagged& t : tagged) {
    if (t.tag != PredicateTag::kOptional) continue;
    const Predicate& p = table.pool().Get(t.col);
    if (!still_in_working(p)) continue;
    if (cost_model == nullptr || !options.enable_profitability_analysis) {
      continue;
    }
    if (RetainIsProfitable(*cost_model, working, p)) continue;
    if (t.in_query) {
      Query without = working;
      auto& wlist = without.join_predicates;
      auto& slist = without.selective_predicates;
      wlist.erase(std::remove(wlist.begin(), wlist.end(), p), wlist.end());
      slist.erase(std::remove(slist.begin(), slist.end(), p), slist.end());
      std::vector<Predicate> saturated =
          oracle.Saturate(without.AllPredicates());
      if (!EntailmentOracle::Entails(saturated, p)) continue;  // keep it
    }
    // §3.4: non-profitable optional predicates are re-classified as
    // redundant and dropped.
    t.tag = PredicateTag::kRedundant;
    auto& list = p.is_attr_attr() ? working.join_predicates
                                  : working.selective_predicates;
    list.erase(std::remove(list.begin(), list.end(), p), list.end());
  }

  // 6. Entailment guard for redundant-tagged original predicates on
  // surviving classes: re-add any that the final predicate set does not
  // entail (the mutual-implication cycle protection). Re-adding only
  // grows the entailed set, so a single fixpoint loop suffices.
  {
    bool readded = true;
    while (readded) {
      readded = false;
      std::vector<Predicate> saturated =
          oracle.Saturate(working.AllPredicates());
      for (Tagged& t : tagged) {
        if (!t.in_query || t.tag != PredicateTag::kRedundant) continue;
        const Predicate& p = table.pool().Get(t.col);
        // Skip predicates on eliminated classes (guarded in step 4).
        bool on_surviving = true;
        for (ClassId c : p.ReferencedClasses()) {
          if (!working.ReferencesClass(c)) on_surviving = false;
        }
        if (!on_surviving) continue;
        if (still_in_working(p)) continue;
        if (EntailmentOracle::Entails(saturated, p)) continue;
        // Not entailed: the drop was unsound — retain as optional.
        t.tag = PredicateTag::kOptional;
        if (p.is_attr_attr()) {
          working.join_predicates.push_back(p);
        } else {
          working.selective_predicates.push_back(p);
        }
        readded = true;
      }
    }
  }

  // 7. Emit.
  result.query = std::move(working);
  for (const Tagged& t : tagged) {
    const Predicate& p = table.pool().Get(t.col);
    bool retained =
        t.tag != PredicateTag::kRedundant &&
        [&] {
          const auto& list = p.is_attr_attr()
                                 ? result.query.join_predicates
                                 : result.query.selective_predicates;
          return std::find(list.begin(), list.end(), p) != list.end();
        }();
    result.final_predicates.push_back(
        FinalPredicate{p, t.tag, t.in_query, retained});
  }
  return result;
}

}  // namespace sqopt

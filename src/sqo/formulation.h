// Query formulation (§3.4): derive each predicate's final tag from the
// transformation table, apply class elimination, run the cost-benefit
// analysis on optional predicates, and emit the transformed query.
#ifndef SQOPT_SQO_FORMULATION_H_
#define SQOPT_SQO_FORMULATION_H_

#include "cost/cost_model.h"
#include "query/query.h"
#include "sqo/options.h"
#include "sqo/report.h"
#include "sqo/transformation_table.h"

namespace sqopt {

struct FormulationResult {
  Query query;  // the transformed query
  bool empty_result = false;
  std::vector<FinalPredicate> final_predicates;
  std::vector<ClassId> eliminated_classes;
};

// `cost_model` may be null: every optional predicate is then retained
// and class elimination is applied whenever structurally legal.
//
// Soundness guard (the §2 pitfall: "special effort needs to be taken to
// prevent the introduction of predicates which were previously
// eliminated and vice versa"): a predicate of the ORIGINAL query may
// only be dropped — by redundancy, by failed profitability, or together
// with an eliminated class — while it stays entailed by the predicates
// that remain, chained through the relevant constraints. This blocks
// the unsound mutual-implication cycle where A is dropped because B
// implies it and B is dropped because A implies it.
FormulationResult FormulateQuery(const Schema& schema, const Query& original,
                                 const TransformationTable& table,
                                 const ConstraintCatalog& catalog,
                                 const std::vector<ConstraintId>& relevant,
                                 const CostModelInterface* cost_model,
                                 const OptimizerOptions& options);

}  // namespace sqopt

#endif  // SQOPT_SQO_FORMULATION_H_

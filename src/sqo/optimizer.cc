#include "sqo/optimizer.h"

#include <chrono>

#include "expr/implication.h"
#include "sqo/formulation.h"
#include "sqo/transform_queue.h"

namespace sqopt {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The tag a firing of `row` would assign to target predicate `col`,
// per Tables 3.1/3.2. Intra-class constraints make the target redundant
// unless it sits on an indexed attribute (where it may still pay for
// itself via index access); inter-class constraints always yield
// optional (the target may be evaluated before the antecedents and cut
// intermediate results).
PredicateTag TargetTag(const Schema& schema,
                       const TransformationTable::Row& row, PredId col,
                       const PredicatePool& pool, TagPolicy policy) {
  if (row.classification == ConstraintClass::kInter) {
    return PredicateTag::kOptional;
  }
  if (policy == TagPolicy::kIgnoreIndexes) {
    return PredicateTag::kRedundant;
  }
  const Predicate& p = pool.Get(col);
  bool indexed =
      p.is_attr_const() && schema.attribute(p.lhs()).indexed;
  return indexed ? PredicateTag::kOptional : PredicateTag::kRedundant;
}

// Whether the cell state can still be lowered by a firing that assigns
// `target`.
bool Lowerable(CellState state, PredicateTag target) {
  switch (state) {
    case CellState::kImperative:
    case CellState::kAbsentConsequent:
      return true;  // any tag is a strict lowering / an introduction
    case CellState::kOptional:
      return target == PredicateTag::kRedundant;
    default:
      return false;
  }
}

}  // namespace

Result<OptimizeResult> SemanticOptimizer::Optimize(const Query& query) const {
  SQOPT_RETURN_IF_ERROR(ValidateQuery(*schema_, query));
  if (!catalog_->precompiled()) {
    return Status::FailedPrecondition(
        "ConstraintCatalog::Precompile must run before Optimize");
  }

  OptimizeResult result;
  OptimizationReport& report = result.report;
  int64_t t_start = NowNs();

  // ---- Initialization (§3.1): retrieval, relevance, table build. ----
  std::vector<ConstraintId> relevant =
      catalog_->RelevantForQuery(query.classes);
  TransformationTable table = TransformationTable::Build(
      *schema_, *catalog_, relevant, query, options_);
  report.num_relevant_constraints = relevant.size();
  report.num_distinct_predicates = table.num_cols();
  int64_t t_init = NowNs();
  report.init_ns = t_init - t_start;

  // ---- Update-queue / transformation loop (§3.2, §3.3). ----
  TransformQueue queue(options_.queue);

  // Scans C and enqueues every constraint that can fire. Returns the
  // number of rows enqueued.
  auto update_queue = [&]() -> size_t {
    size_t enqueued = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      TransformationTable::Row& row = table.mutable_row(r);
      if (row.removed || queue.Contains(r)) continue;

      bool any_lowerable = false;
      bool any_possible_later = false;
      TransformPriority priority =
          TransformPriority::kRestrictionIntroduction;
      for (PredId col : row.fire_targets) {
        CellState st = table.state(r, col);
        PredicateTag target =
            TargetTag(*schema_, row, col, table.pool(), options_.tag_policy);
        if (Lowerable(st, target)) {
          any_lowerable = true;
          // Rule priority for the priority-queue discipline.
          if (st == CellState::kAbsentConsequent) {
            const Predicate& p = table.pool().Get(col);
            bool indexed =
                p.is_attr_const() && schema_->attribute(p.lhs()).indexed;
            TransformPriority pr =
                indexed ? TransformPriority::kIndexIntroduction
                        : TransformPriority::kRestrictionIntroduction;
            if (pr < priority) priority = pr;
          } else {
            if (TransformPriority::kRestrictionElimination < priority) {
              priority = TransformPriority::kRestrictionElimination;
            }
          }
        }
      }
      if (!any_lowerable) {
        // Nothing this constraint could ever lower: remove it from C
        // (the paper's Redundant / inter-Optional removal cases).
        row.removed = true;
        continue;
      }
      any_possible_later = true;
      (void)any_possible_later;
      if (table.AllAntecedentsPresent(r)) {
        queue.Push(r, priority);
        ++enqueued;
      }
    }
    return enqueued;
  };

  // Fires row `r`: lowers each lowerable fire target and propagates the
  // new state down the target's column (§3.3).
  auto fire = [&](size_t r) {
    TransformationTable::Row& row = table.mutable_row(r);
    TransformStep step;
    step.constraint = row.constraint;
    step.constraint_label = catalog_->clause(row.constraint).label();

    for (PredId col : row.fire_targets) {
      CellState st = table.state(r, col);
      PredicateTag new_tag =
          TargetTag(*schema_, row, col, table.pool(), options_.tag_policy);
      if (!Lowerable(st, new_tag)) continue;  // already lowered by a
                                              // constraint ahead in Q

      bool introduction = (st == CellState::kAbsentConsequent);
      table.set_state(r, col, StateOfTag(new_tag));
      step.effects.emplace_back(table.pool().Get(col), new_tag);
      if (introduction) {
        step.introduced = true;
        const Predicate& p = table.pool().Get(col);
        if (p.is_attr_const() && schema_->attribute(p.lhs()).indexed) {
          step.index_introduction = true;
        }
      }

      // Column propagation: the predicate is now "present" with tag
      // new_tag for every constraint.
      for (size_t k = 0; k < table.num_rows(); ++k) {
        if (k == r) continue;
        CellState sk = table.state(k, col);
        switch (sk) {
          case CellState::kAbsentAntecedent:
            table.set_state(k, col, CellState::kPresentAntecedent);
            break;
          case CellState::kImperative:
          case CellState::kOptional:
          case CellState::kRedundant:
            // Monotone guard: never raise a tag (the paper's overwrite
            // can only run downward because Update-Queue removes rows
            // whose targets are already minimal).
            if (TagLowerThan(new_tag, TagOfState(sk))) {
              table.set_state(k, col, StateOfTag(new_tag));
            }
            break;
          case CellState::kAbsentConsequent:
            // The predicate is now present at new_tag; leaving the cell
            // as AbsentConsequent would let constraint k "re-introduce"
            // a predicate another constraint already lowered — the
            // pitfall §2 warns about ("prevent the introduction of
            // predicates which were previously eliminated"). Intra rows
            // can still lower an Optional cell to Redundant afterwards.
            table.set_state(k, col, StateOfTag(new_tag));
            break;
          default:
            break;
        }
      }

      // Implied antecedent matching: an introduced/lowered predicate may
      // satisfy antecedents in *other* columns (x = 5 satisfies x > 0).
      if (options_.match_mode == MatchMode::kImplied) {
        const Predicate& p = table.pool().Get(col);
        for (size_t k = 0; k < table.num_rows(); ++k) {
          for (PredId a : table.row(k).antecedents) {
            if (a == col) continue;
            if (table.state(k, a) != CellState::kAbsentAntecedent) continue;
            if (Implies(p, table.pool().Get(a))) {
              table.set_state(k, a, CellState::kPresentAntecedent);
            }
          }
        }
      }
    }

    if (!step.effects.empty()) {
      report.steps.push_back(std::move(step));
      ++report.num_firings;
    }
    row.fired = true;
  };

  // Main loop: update the queue, drain it, repeat until an update adds
  // nothing (Figure 3.1's "queue empty immediately after update").
  while (true) {
    ++report.queue_updates;
    update_queue();
    if (queue.empty()) break;
    while (!queue.empty()) {
      if (options_.transformation_budget > 0 &&
          report.num_firings >= options_.transformation_budget) {
        report.budget_exhausted = true;
        while (!queue.empty()) queue.Pop();
        break;
      }
      fire(queue.Pop());
    }
    if (report.budget_exhausted) break;
  }
  report.cell_writes = table.cell_writes();
  int64_t t_transform = NowNs();
  report.transform_ns = t_transform - t_init;

  // ---- Query formulation (§3.4). ----
  FormulationResult formulation = FormulateQuery(
      *schema_, query, table, *catalog_, relevant, cost_model_, options_);
  result.query = std::move(formulation.query);
  result.empty_result = formulation.empty_result;
  report.empty_result = formulation.empty_result;
  report.final_predicates = std::move(formulation.final_predicates);
  report.eliminated_classes = std::move(formulation.eliminated_classes);

  int64_t t_end = NowNs();
  report.formulate_ns = t_end - t_transform;
  report.total_ns = t_end - t_start;
  return result;
}

}  // namespace sqopt

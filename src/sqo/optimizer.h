// The semantic query optimizer (Sections 3.1–3.4): tentatively applies
// every possible transformation by re-classifying predicate tags in the
// transformation table, then formulates the transformed query once, at
// the end. Transformation order is immaterial and the transformation
// step runs in O(m·n) tag lowerings (m = distinct predicates, n =
// relevant constraints).
#ifndef SQOPT_SQO_OPTIMIZER_H_
#define SQOPT_SQO_OPTIMIZER_H_

#include "constraints/constraint_catalog.h"
#include "cost/cost_model.h"
#include "query/query.h"
#include "sqo/options.h"
#include "sqo/report.h"
#include "sqo/transformation_table.h"

namespace sqopt {

struct OptimizeResult {
  Query query;  // the transformed query (== input when nothing applied)
  bool empty_result = false;
  OptimizationReport report;
};

class SemanticOptimizer {
 public:
  // `catalog` must outlive the optimizer and be Precompile()d before
  // Optimize() is called. `cost_model` may be null (all optional
  // predicates retained; class elimination applied whenever legal).
  //
  // Optimize is const and touches no mutable optimizer state, so one
  // optimizer may serve concurrent callers (the Engine's read path).
  SemanticOptimizer(const Schema* schema, const ConstraintCatalog* catalog,
                    const CostModelInterface* cost_model,
                    OptimizerOptions options = {})
      : schema_(schema),
        catalog_(catalog),
        cost_model_(cost_model),
        options_(options) {}

  Result<OptimizeResult> Optimize(const Query& query) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const Schema* schema_;
  const ConstraintCatalog* catalog_;
  const CostModelInterface* cost_model_;
  OptimizerOptions options_;
};

}  // namespace sqopt

#endif  // SQOPT_SQO_OPTIMIZER_H_

// Tuning knobs of the semantic optimizer. Defaults reproduce the paper's
// design (index-aware tag tables, FIFO queue, class elimination on);
// non-default values exist for ablation benches and tests.
#ifndef SQOPT_SQO_OPTIONS_H_
#define SQOPT_SQO_OPTIONS_H_

#include <cstddef>

namespace sqopt {

// How firing a constraint chooses the consequent's new tag.
enum class TagPolicy {
  // Tables 3.1/3.2: intra-class + non-indexed consequent -> redundant;
  // intra-class + indexed -> optional; inter-class -> optional.
  kIndexAware,
  // §3.3 pseudocode simplification: intra -> redundant, inter ->
  // optional, ignoring indexes. Ablation only.
  kIgnoreIndexes,
};

// How "predicate appears in the query" is decided.
enum class MatchMode {
  // Syntactic identity, as in the paper's exposition.
  kExact,
  // Logical implication: a query predicate stronger than a constraint
  // antecedent satisfies it (x > 30 satisfies x > 10), and a consequent
  // that implies a query predicate can eliminate it. Sound and strictly
  // more effective; the default.
  kImplied,
};

// Order in which fireable constraints are processed (§4 discussion).
enum class QueueDiscipline {
  kFifo,
  // index introduction > restriction elimination > restriction
  // introduction; used with a budget to spend limited transformations on
  // the most promising rules first.
  kPriority,
};

struct OptimizerOptions {
  TagPolicy tag_policy = TagPolicy::kIndexAware;
  MatchMode match_mode = MatchMode::kImplied;
  QueueDiscipline queue = QueueDiscipline::kFifo;

  // Maximum number of constraint firings; 0 = unlimited. Meaningful
  // mostly with QueueDiscipline::kPriority (§4: "assign a budget and
  // limit the number of transformations").
  size_t transformation_budget = 0;

  bool enable_class_elimination = true;

  // Extension (§4 hint): detect unsatisfiable retained predicate sets
  // and answer the query without touching the database.
  bool enable_contradiction_detection = true;

  // When false, every optional predicate is retained (used by tests that
  // check tag mechanics without a cost model).
  bool enable_profitability_analysis = true;
};

}  // namespace sqopt

#endif  // SQOPT_SQO_OPTIONS_H_

#include "sqo/report.h"

#include <sstream>

namespace sqopt {

std::string OptimizationReport::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "semantic optimization report\n"
     << "  relevant constraints (n): " << num_relevant_constraints << "\n"
     << "  distinct predicates  (m): " << num_distinct_predicates << "\n"
     << "  firings: " << num_firings << ", cell writes: " << cell_writes
     << ", queue updates: " << queue_updates << "\n";
  if (budget_exhausted) os << "  (transformation budget exhausted)\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const TransformStep& step = steps[i];
    os << "  #" << (i + 1) << " fire " << step.constraint_label;
    if (step.index_introduction) {
      os << " [index introduction]";
    } else if (step.introduced) {
      os << " [restriction introduction]";
    } else {
      os << " [restriction elimination]";
    }
    os << ":";
    for (const auto& [pred, tag] : step.effects) {
      os << " {" << pred.ToString(schema) << " -> "
         << PredicateTagName(tag) << "}";
    }
    os << "\n";
  }
  os << "  final predicate tags:\n";
  for (const FinalPredicate& fp : final_predicates) {
    os << "    " << fp.predicate.ToString(schema) << ": "
       << PredicateTagName(fp.tag)
       << (fp.in_original_query ? " (from query)" : " (introduced)")
       << (fp.retained ? " [retained]" : " [dropped]") << "\n";
  }
  for (ClassId id : eliminated_classes) {
    os << "  eliminated class: " << schema.object_class(id).name << "\n";
  }
  if (empty_result) {
    os << "  contradiction detected: query answered without database "
          "access (empty result)\n";
  }
  os << "  timing: init " << init_ns / 1000 << "us, transform "
     << transform_ns / 1000 << "us, formulate " << formulate_ns / 1000
     << "us, total " << total_ns / 1000 << "us\n";
  return os.str();
}

}  // namespace sqopt

// Structured trace of one optimization run: which constraints fired,
// what each firing did, final predicate tags, and phase timings. The
// benches read counters from here; the examples pretty-print it.
#ifndef SQOPT_SQO_REPORT_H_
#define SQOPT_SQO_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "constraints/horn_clause.h"
#include "expr/predicate.h"
#include "sqo/tags.h"

namespace sqopt {

// One constraint firing.
struct TransformStep {
  ConstraintId constraint = kInvalidConstraint;
  std::string constraint_label;
  // Predicates whose tag this firing lowered/introduced, with the tag.
  std::vector<std::pair<Predicate, PredicateTag>> effects;
  // True if any effect introduced a predicate absent from the query.
  bool introduced = false;
  // True if any introduced predicate sits on an indexed attribute.
  bool index_introduction = false;
};

struct FinalPredicate {
  Predicate predicate;
  PredicateTag tag = PredicateTag::kImperative;
  bool in_original_query = false;
  bool retained = false;  // appears in the transformed query
};

struct OptimizationReport {
  // Sizes: m = distinct predicates (columns), n = relevant constraints
  // (rows) — the O(m·n) bound's parameters.
  size_t num_relevant_constraints = 0;
  size_t num_distinct_predicates = 0;

  size_t num_firings = 0;
  uint64_t cell_writes = 0;
  size_t queue_updates = 0;  // Update-Transformation-Queue passes

  std::vector<TransformStep> steps;
  std::vector<FinalPredicate> final_predicates;
  std::vector<ClassId> eliminated_classes;
  bool empty_result = false;
  bool budget_exhausted = false;

  // Phase timings, nanoseconds (steady clock).
  int64_t init_ns = 0;
  int64_t transform_ns = 0;
  int64_t formulate_ns = 0;
  int64_t total_ns = 0;

  std::string ToString(const Schema& schema) const;
};

}  // namespace sqopt

#endif  // SQOPT_SQO_REPORT_H_

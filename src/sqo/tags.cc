#include "sqo/tags.h"

namespace sqopt {

const char* PredicateTagName(PredicateTag tag) {
  switch (tag) {
    case PredicateTag::kImperative:
      return "imperative";
    case PredicateTag::kOptional:
      return "optional";
    case PredicateTag::kRedundant:
      return "redundant";
  }
  return "unknown";
}

const char* CellStateName(CellState state) {
  switch (state) {
    case CellState::kNotInConstraint:
      return "_";
    case CellState::kAbsentAntecedent:
      return "AbsentAntecedent";
    case CellState::kPresentAntecedent:
      return "PresentAntecedent";
    case CellState::kAbsentConsequent:
      return "AbsentConsequent";
    case CellState::kImperative:
      return "Imperative";
    case CellState::kOptional:
      return "Optional";
    case CellState::kRedundant:
      return "Redundant";
  }
  return "unknown";
}

}  // namespace sqopt

// Predicate tags and transformation-table cell states (Section 3.1).
//
// Tags form the lattice  imperative > optional > redundant ; every
// transformation lowers tags monotonically, which is what makes the
// order of transformations immaterial and the algorithm polynomial.
#ifndef SQOPT_SQO_TAGS_H_
#define SQOPT_SQO_TAGS_H_

#include <cstdint>

namespace sqopt {

// Final classification of a predicate (Definition, §3.1):
//  * imperative: removal would change the query's results;
//  * optional:   result-neutral, but may change execution efficiency
//                (index use, smaller intermediates) — kept only if the
//                cost model finds it profitable;
//  * redundant:  affects neither results nor efficiency — dropped.
enum class PredicateTag : uint8_t {
  kImperative = 0,
  kOptional = 1,
  kRedundant = 2,
};

const char* PredicateTagName(PredicateTag tag);

// Returns the lower (more discardable) of two tags.
inline PredicateTag LowerTag(PredicateTag a, PredicateTag b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}
// True if `a` is strictly lower than `b` in the lattice.
inline bool TagLowerThan(PredicateTag a, PredicateTag b) {
  return static_cast<uint8_t>(a) > static_cast<uint8_t>(b);
}

// Cell states of the transformation table T (§3.1). `_` in the paper is
// kNotInConstraint.
enum class CellState : uint8_t {
  kNotInConstraint = 0,  // predicate does not appear in the constraint
  kAbsentAntecedent,     // antecedent of the constraint, not in query
  kPresentAntecedent,    // antecedent of the constraint, in query
  kAbsentConsequent,     // consequent of the constraint, not in query
  kImperative,           // consequent, in query, currently imperative
  kOptional,             // consequent-related, currently optional
  kRedundant,            // consequent-related, currently redundant
};

const char* CellStateName(CellState state);

// True if the cell carries a predicate tag (imperative/optional/
// redundant) rather than a positional marker.
inline bool IsTagState(CellState state) {
  return state == CellState::kImperative || state == CellState::kOptional ||
         state == CellState::kRedundant;
}

inline PredicateTag TagOfState(CellState state) {
  switch (state) {
    case CellState::kOptional:
      return PredicateTag::kOptional;
    case CellState::kRedundant:
      return PredicateTag::kRedundant;
    default:
      return PredicateTag::kImperative;
  }
}

inline CellState StateOfTag(PredicateTag tag) {
  switch (tag) {
    case PredicateTag::kImperative:
      return CellState::kImperative;
    case PredicateTag::kOptional:
      return CellState::kOptional;
    case PredicateTag::kRedundant:
      return CellState::kRedundant;
  }
  return CellState::kImperative;
}

}  // namespace sqopt

#endif  // SQOPT_SQO_TAGS_H_

#include "sqo/transform_queue.h"

#include <algorithm>

namespace sqopt {

void TransformQueue::Push(size_t row, TransformPriority priority) {
  if (Contains(row)) return;
  entries_.push_back(Entry{row, priority, next_seq_++});
}

bool TransformQueue::Contains(size_t row) const {
  for (const Entry& e : entries_) {
    if (e.row == row) return true;
  }
  return false;
}

size_t TransformQueue::Pop() {
  if (discipline_ == QueueDiscipline::kFifo) {
    Entry e = entries_.front();
    entries_.pop_front();
    return e.row;
  }
  // Priority: lowest (priority, seq). Queue sizes are tiny (bounded by
  // the number of relevant constraints), so a linear scan is fine.
  auto best = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->priority < best->priority ||
        (it->priority == best->priority && it->seq < best->seq)) {
      best = it;
    }
  }
  Entry e = *best;
  entries_.erase(best);
  return e.row;
}

}  // namespace sqopt

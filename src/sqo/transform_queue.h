// The transformation queue Q (§3.2). FIFO by default; with
// QueueDiscipline::kPriority it becomes a priority queue ordered by
// transformation rule desirability (§4: index introduction, then
// restriction elimination, then restriction introduction), used together
// with a transformation budget.
#ifndef SQOPT_SQO_TRANSFORM_QUEUE_H_
#define SQOPT_SQO_TRANSFORM_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sqo/options.h"

namespace sqopt {

// Rule priorities; lower value = processed earlier.
enum class TransformPriority : uint8_t {
  kIndexIntroduction = 0,
  kRestrictionElimination = 1,
  kRestrictionIntroduction = 2,
};

class TransformQueue {
 public:
  explicit TransformQueue(QueueDiscipline discipline)
      : discipline_(discipline) {}

  // Enqueues table row `row`. Duplicate rows are ignored while queued.
  void Push(size_t row, TransformPriority priority);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Removes and returns the next row: insertion order under kFifo,
  // (priority, insertion order) under kPriority.
  size_t Pop();

  bool Contains(size_t row) const;

 private:
  struct Entry {
    size_t row;
    TransformPriority priority;
    uint64_t seq;
  };

  QueueDiscipline discipline_;
  std::deque<Entry> entries_;
  uint64_t next_seq_ = 0;
};

}  // namespace sqopt

#endif  // SQOPT_SQO_TRANSFORM_QUEUE_H_

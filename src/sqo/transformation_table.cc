#include "sqo/transformation_table.h"

#include <sstream>

#include "expr/implication.h"

namespace sqopt {

TransformationTable TransformationTable::Build(
    const Schema& /*schema*/, const ConstraintCatalog& catalog,
    const std::vector<ConstraintId>& relevant, const Query& query,
    const OptimizerOptions& options) {
  TransformationTable table;

  // Intern every predicate: query predicates first (their columns are
  // marked in-query), then constraint predicates.
  std::vector<Predicate> query_preds = query.AllPredicates();
  for (const Predicate& p : query_preds) {
    table.pool_.Intern(p);
  }
  for (ConstraintId id : relevant) {
    const HornClause& clause = catalog.clause(id);
    for (const Predicate& p : clause.antecedents()) table.pool_.Intern(p);
    table.pool_.Intern(clause.consequent());
  }
  table.num_cols_ = table.pool_.size();
  table.in_query_.assign(table.num_cols_, false);
  for (const Predicate& p : query_preds) {
    table.in_query_[table.pool_.Find(p)] = true;
  }

  // "Appears in the query" test per match mode.
  auto present_in_query = [&](const Predicate& p) {
    if (table.in_query_[table.pool_.Find(p)]) return true;
    if (options.match_mode == MatchMode::kImplied) {
      return ConjunctionImplies(query_preds, p);
    }
    return false;
  };

  table.rows_.reserve(relevant.size());
  table.cells_.assign(relevant.size() * table.num_cols_,
                      CellState::kNotInConstraint);

  for (size_t r = 0; r < relevant.size(); ++r) {
    const HornClause& clause = catalog.clause(relevant[r]);
    Row row;
    row.constraint = relevant[r];
    row.classification = catalog.classification(relevant[r]);
    for (const Predicate& a : clause.antecedents()) {
      row.antecedents.push_back(table.pool_.Find(a));
    }
    row.consequent = table.pool_.Find(clause.consequent());

    // Initialization algorithm (§3.1): consequent cell.
    if (table.in_query_[row.consequent]) {
      table.set_state(r, row.consequent, CellState::kImperative);
    } else {
      table.set_state(r, row.consequent, CellState::kAbsentConsequent);
    }
    row.fire_targets.push_back(row.consequent);

    // MatchMode::kImplied: the consequent can also eliminate weaker
    // query predicates it implies (constraint ⊨ consequent ⊨ q).
    if (options.match_mode == MatchMode::kImplied) {
      for (PredId col = 0; col < static_cast<PredId>(table.num_cols_);
           ++col) {
        if (!table.in_query_[col] || col == row.consequent) continue;
        if (Implies(clause.consequent(), table.pool_.Get(col))) {
          table.set_state(r, col, CellState::kImperative);
          row.fire_targets.push_back(col);
        }
      }
    }

    // Antecedent cells. A predicate that is both an antecedent and (per
    // implication) eliminable would be ambiguous; antecedent role wins
    // because firing requires it (the parser rejects the exact-duplicate
    // case already).
    for (PredId a : row.antecedents) {
      CellState st = present_in_query(table.pool_.Get(a))
                         ? CellState::kPresentAntecedent
                         : CellState::kAbsentAntecedent;
      table.set_state(r, a, st);
    }

    table.rows_.push_back(std::move(row));
  }
  table.cell_writes_ = 0;  // construction writes don't count as updates
  return table;
}

bool TransformationTable::AllAntecedentsPresent(size_t row) const {
  for (PredId a : rows_[row].antecedents) {
    if (state(row, a) != CellState::kPresentAntecedent) return false;
  }
  return true;
}

PredicateTag TransformationTable::FinalTag(PredId col) const {
  PredicateTag tag = PredicateTag::kImperative;
  for (size_t r = 0; r < rows_.size(); ++r) {
    CellState st = state(r, col);
    if (IsTagState(st)) tag = LowerTag(tag, TagOfState(st));
  }
  return tag;
}

bool TransformationTable::HasTagCell(PredId col) const {
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (IsTagState(state(r, col))) return true;
  }
  return false;
}

std::string TransformationTable::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << "c" << rows_[r].constraint << " ["
       << ConstraintClassName(rows_[r].classification) << "]:";
    for (PredId c = 0; c < static_cast<PredId>(num_cols_); ++c) {
      CellState st = state(r, c);
      if (st == CellState::kNotInConstraint) continue;
      os << "  (" << pool_.Get(c).ToString(schema) << " -> "
         << CellStateName(st) << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sqopt

// The transformation table T of Section 3.1: rows are the relevant
// semantic constraints, columns are the distinct predicates occurring in
// the query or in any relevant constraint (interned in a local
// PredicatePool). Cell t(c_i, p_j) records the role and current tag of
// p_j with respect to c_i. The optimizer mutates cells only downward
// (tag lattice), so the table doubles as the algorithm's entire state.
#ifndef SQOPT_SQO_TRANSFORMATION_TABLE_H_
#define SQOPT_SQO_TRANSFORMATION_TABLE_H_

#include <string>
#include <vector>

#include "constraints/constraint_catalog.h"
#include "constraints/predicate_pool.h"
#include "query/query.h"
#include "sqo/options.h"
#include "sqo/tags.h"

namespace sqopt {

class TransformationTable {
 public:
  struct Row {
    ConstraintId constraint = kInvalidConstraint;  // catalog id
    ConstraintClass classification = ConstraintClass::kInter;
    std::vector<PredId> antecedents;
    PredId consequent = kInvalidPred;
    // Columns this row lowers when fired: the consequent plus (in
    // MatchMode::kImplied) any query predicate the consequent implies.
    std::vector<PredId> fire_targets;
    bool removed = false;  // removed from C by Update-Queue
    bool fired = false;    // has effected its transformation
  };

  // Builds the initialized table per the §3.1 Initialization algorithm.
  // `relevant` indexes into catalog.clauses().
  static TransformationTable Build(const Schema& schema,
                                   const ConstraintCatalog& catalog,
                                   const std::vector<ConstraintId>& relevant,
                                   const Query& query,
                                   const OptimizerOptions& options);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return pool_.size(); }

  CellState state(size_t row, PredId col) const {
    return cells_[row * num_cols_ + static_cast<size_t>(col)];
  }
  void set_state(size_t row, PredId col, CellState state) {
    cells_[row * num_cols_ + static_cast<size_t>(col)] = state;
    ++cell_writes_;
  }

  const Row& row(size_t index) const { return rows_[index]; }
  Row& mutable_row(size_t index) { return rows_[index]; }

  const PredicatePool& pool() const { return pool_; }
  bool InQuery(PredId id) const { return in_query_[id]; }

  // True if every antecedent cell of `row` is PresentAntecedent.
  bool AllAntecedentsPresent(size_t row) const;

  // Final tag of a predicate column (§3.4 Query Formulation): the lowest
  // tag among the column's tag-bearing cells, or imperative when none.
  PredicateTag FinalTag(PredId col) const;

  // True if the column holds any tag-bearing cell, i.e. the predicate is
  // either a query predicate touched by some constraint or was
  // introduced during transformation.
  bool HasTagCell(PredId col) const;

  uint64_t cell_writes() const { return cell_writes_; }

  // Debug rendering of the full table.
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Row> rows_;
  std::vector<CellState> cells_;  // rows_ x pool_ row-major
  size_t num_cols_ = 0;
  PredicatePool pool_;
  std::vector<bool> in_query_;  // per pool predicate
  uint64_t cell_writes_ = 0;
};

}  // namespace sqopt

#endif  // SQOPT_SQO_TRANSFORMATION_TABLE_H_

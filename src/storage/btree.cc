#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace sqopt {

namespace {

// Total-order helpers over Value (operator< orders by type class then
// value; numerics interleave).
bool KeyLess(const Value& a, const Value& b) { return a < b; }
bool KeyEq(const Value& a, const Value& b) { return !(a < b) && !(b < a); }

}  // namespace

struct BTree::Node {
  bool leaf = true;
  // Leaf: entry keys (sorted, duplicates allowed) parallel to `rows`.
  // Internal: separator keys; children[i] holds keys <= keys[i] (with
  // duplicates allowed to sit on either side), children.back() the
  // rest.
  std::vector<Value> keys;
  std::vector<int64_t> rows;
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain
};

BTree::BTree(int order) : order_(order < 4 ? 4 : order) {
  root_ = std::make_unique<Node>();
}

BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

std::unique_ptr<BTree::Node> BTree::CloneSubtree(
    const Node& node, std::vector<Node*>* leaves) {
  auto copy = std::make_unique<Node>();
  copy->leaf = node.leaf;
  copy->keys = node.keys;
  copy->rows = node.rows;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(CloneSubtree(*child, leaves));
  }
  if (copy->leaf) leaves->push_back(copy.get());
  return copy;
}

BTree BTree::Clone() const {
  BTree copy(order_);
  std::vector<Node*> leaves;
  copy.root_ = CloneSubtree(*root_, &leaves);
  for (size_t i = 0; i + 1 < leaves.size(); ++i) {
    leaves[i]->next = leaves[i + 1];
  }
  copy.size_ = size_;
  return copy;
}

BTree BTree::BuildFromSorted(std::vector<std::pair<Value, int64_t>> entries,
                             int order) {
  BTree tree(order);
  if (entries.empty()) return tree;
  const size_t max_keys = static_cast<size_t>(tree.order_ - 1);

  // Leaves, left to right at full legal fill (Insert splits a node
  // BEFORE it exceeds max_keys, so full leaves stay mutable). `mins`
  // runs parallel to each level: the smallest key under that node,
  // which becomes the separator to its left one level up.
  std::vector<std::unique_ptr<Node>> level;
  std::vector<Value> mins;
  for (size_t begin = 0; begin < entries.size(); begin += max_keys) {
    const size_t end = std::min(begin + max_keys, entries.size());
    auto leaf = std::make_unique<Node>();
    leaf->keys.reserve(end - begin);
    leaf->rows.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      leaf->keys.push_back(std::move(entries[i].first));
      leaf->rows.push_back(entries[i].second);
    }
    mins.push_back(leaf->keys.front());
    if (!level.empty()) level.back()->next = leaf.get();
    level.push_back(std::move(leaf));
  }

  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    std::vector<Value> parent_mins;
    const size_t fanout = static_cast<size_t>(tree.order_);
    for (size_t begin = 0; begin < level.size(); begin += fanout) {
      const size_t end = std::min(begin + fanout, level.size());
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      parent_mins.push_back(mins[begin]);
      for (size_t i = begin; i < end; ++i) {
        // Separator between children i-1 and i = smallest key under
        // child i (the convention SplitChild's leaf case establishes).
        if (i > begin) parent->keys.push_back(std::move(mins[i]));
        parent->children.push_back(std::move(level[i]));
      }
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
    mins = std::move(parent_mins);
  }
  tree.root_ = std::move(level.front());
  tree.size_ = entries.size();
  return tree;
}

namespace {

// Child index for descending: first separator strictly greater than
// `key` (duplicates route left so searches find the leftmost run).
int RouteIndex(const std::vector<Value>& separators, const Value& key) {
  int idx = 0;
  while (idx < static_cast<int>(separators.size()) &&
         !KeyLess(key, separators[idx])) {
    ++idx;
  }
  return idx;
}

}  // namespace

void BTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[index].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  size_t mid = child->keys.size() / 2;

  if (child->leaf) {
    // Right leaf takes entries [mid, end); separator is a copy of the
    // right leaf's first key.
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->rows.assign(child->rows.begin() + mid, child->rows.end());
    child->keys.resize(mid);
    child->rows.resize(mid);
    right->next = child->next;
    child->next = right.get();
    parent->keys.insert(parent->keys.begin() + index, right->keys.front());
  } else {
    // Internal: median key moves up; right takes keys (mid, end) and
    // children [mid+1, end).
    Value median = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + index, std::move(median));
  }
  parent->children.insert(parent->children.begin() + index + 1,
                          std::move(right));
}

void BTree::Insert(const Value& key, int64_t row) {
  size_t max_keys = static_cast<size_t>(order_ - 1);

  if (root_->keys.size() >= max_keys) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }

  Node* node = root_.get();
  while (!node->leaf) {
    int idx = RouteIndex(node->keys, key);
    Node* child = node->children[idx].get();
    if (child->keys.size() >= max_keys) {
      SplitChild(node, idx);
      // The new separator sits at node->keys[idx]; re-route.
      if (!KeyLess(key, node->keys[idx])) ++idx;
      child = node->children[idx].get();
    }
    node = child;
  }

  // Insert after any equal run (stable for duplicates).
  auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                             KeyLess);
  size_t pos = static_cast<size_t>(it - node->keys.begin());
  node->keys.insert(it, key);
  node->rows.insert(node->rows.begin() + pos, row);
  ++size_;
}

bool BTree::Remove(const Value& key, int64_t row) {
  Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    bool past = false;
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (KeyLess(leaf->keys[i], key)) continue;
      if (!KeyEq(leaf->keys[i], key)) {
        past = true;
        break;
      }
      if (leaf->rows[i] == row) {
        leaf->keys.erase(leaf->keys.begin() + i);
        leaf->rows.erase(leaf->rows.begin() + i);
        --size_;
        return true;
      }
    }
    if (past) break;
    leaf = leaf->next;
  }
  return false;
}

BTree::Node* BTree::FindLeaf(const Value& key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    // Route duplicates LEFT on lookup so the leftmost equal entry is
    // reachable: first separator >= key bounds the left descent.
    int idx = 0;
    while (idx < static_cast<int>(node->keys.size()) &&
           KeyLess(node->keys[idx], key)) {
      ++idx;
    }
    node = node->children[idx].get();
  }
  return node;
}

std::vector<int64_t> BTree::Equal(const Value& key) const {
  std::vector<int64_t> out;
  const Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    bool past = false;
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (KeyLess(leaf->keys[i], key)) continue;
      if (KeyEq(leaf->keys[i], key)) {
        out.push_back(leaf->rows[i]);
      } else {
        past = true;
        break;
      }
    }
    if (past) break;
    leaf = leaf->next;
  }
  return out;
}

std::vector<int64_t> BTree::LessThan(const Value& bound,
                                     bool inclusive) const {
  std::vector<int64_t> out;
  // Leftmost leaf.
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      bool in = inclusive ? !KeyLess(bound, leaf->keys[i])
                          : KeyLess(leaf->keys[i], bound);
      if (in) {
        out.push_back(leaf->rows[i]);
      } else {
        return out;
      }
    }
  }
  return out;
}

std::vector<int64_t> BTree::GreaterThan(const Value& bound,
                                        bool inclusive) const {
  std::vector<int64_t> out;
  const Node* leaf = FindLeaf(bound);
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      bool in = inclusive ? !KeyLess(leaf->keys[i], bound)
                          : KeyLess(bound, leaf->keys[i]);
      if (in) out.push_back(leaf->rows[i]);
    }
  }
  return out;
}

std::vector<std::pair<Value, int64_t>> BTree::Scan() const {
  std::vector<std::pair<Value, int64_t>> out;
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      out.emplace_back(leaf->keys[i], leaf->rows[i]);
    }
  }
  return out;
}

int BTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

size_t BTree::num_nodes() const {
  size_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children) {
      stack.push_back(child.get());
    }
  }
  return count;
}

bool BTree::CheckInvariants() const {
  // 1. Uniform leaf depth + ordering within nodes + separator bounds.
  struct Frame {
    const Node* node;
    int depth;
    const Value* lo;  // keys must be >= *lo (or null)
    const Value* hi;  // keys must be <= *hi (or null)
  };
  int leaf_depth = -1;
  std::vector<Frame> stack = {{root_.get(), 0, nullptr, nullptr}};
  size_t leaf_entries = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node* node = f.node;
    // Keys sorted (non-strict: duplicates allowed).
    for (size_t i = 1; i < node->keys.size(); ++i) {
      if (KeyLess(node->keys[i], node->keys[i - 1])) return false;
    }
    for (const Value& key : node->keys) {
      if (f.lo != nullptr && KeyLess(key, *f.lo)) return false;
      if (f.hi != nullptr && KeyLess(*f.hi, key)) return false;
    }
    if (node->leaf) {
      if (node->keys.size() != node->rows.size()) return false;
      if (leaf_depth == -1) leaf_depth = f.depth;
      if (leaf_depth != f.depth) return false;
      leaf_entries += node->keys.size();
    } else {
      if (node->children.size() != node->keys.size() + 1) return false;
      for (size_t i = 0; i < node->children.size(); ++i) {
        const Value* lo = (i == 0) ? f.lo : &node->keys[i - 1];
        const Value* hi =
            (i == node->keys.size()) ? f.hi : &node->keys[i];
        stack.push_back({node->children[i].get(), f.depth + 1, lo, hi});
      }
    }
  }
  if (leaf_entries != size_) return false;

  // 2. Leaf chain yields a sorted full scan.
  auto scan = Scan();
  if (scan.size() != size_) return false;
  for (size_t i = 1; i < scan.size(); ++i) {
    if (KeyLess(scan[i].first, scan[i - 1].first)) return false;
  }
  return true;
}

}  // namespace sqopt

// In-memory B+-tree keyed by Value: the index structure behind
// AttributeIndex. Leaf-linked for range scans, fixed fanout, duplicate
// keys allowed (one entry per (key, row) pair). This replaces the
// std::multimap stand-in with the structure an actual database kernel
// would use, and exposes node/height statistics so benches and the cost
// model can reason about probe depth.
#ifndef SQOPT_STORAGE_BTREE_H_
#define SQOPT_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "types/value.h"

namespace sqopt {

class BTree {
 public:
  // Order = max children of an internal node; leaves hold up to
  // kOrder - 1 entries. 64 keeps trees shallow at our scales while
  // still exercising splits in tests (which use a smaller order).
  explicit BTree(int order = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept;             // defined in .cc (Node incomplete)
  BTree& operator=(BTree&&) noexcept;  // defined in .cc

  // Structural deep copy: identical node layout and leaf chain, no
  // shared storage with the source. O(entries); the copy-on-write
  // commit path clones an index once per touched class and then
  // maintains it incrementally instead of rebuilding from the extent.
  BTree Clone() const;

  // Persistence hook: builds a tree from entries already in key order
  // (the serialized form Scan() emits) in O(n) — leaves fill left to
  // right at maximum legal fanout and the internal levels assemble
  // bottom-up, instead of n root descents through Insert. The caller
  // must pass a sorted sequence (ObjectStore::RestoreIndexEntries
  // validates order and rejects unsorted snapshots as corrupt).
  static BTree BuildFromSorted(
      std::vector<std::pair<Value, int64_t>> entries, int order = 64);

  void Insert(const Value& key, int64_t row);

  // Removes one (key, row) entry. Returns false if no such entry
  // exists. Deletion is lazy: leaves may become underfull or empty (the
  // tree never rebalances downward), which preserves all lookup
  // invariants and suits the store's update-in-place workload where
  // deletes are immediately followed by a reinsertion.
  bool Remove(const Value& key, int64_t row);

  // All rows whose key compares equal to `key`.
  std::vector<int64_t> Equal(const Value& key) const;

  // All rows with key < / <= / > / >= bound, via leaf-chain scans.
  std::vector<int64_t> LessThan(const Value& bound, bool inclusive) const;
  std::vector<int64_t> GreaterThan(const Value& bound,
                                   bool inclusive) const;

  // Full in-order (key, row) traversal.
  std::vector<std::pair<Value, int64_t>> Scan() const;

  size_t size() const { return size_; }
  int height() const;
  size_t num_nodes() const;

  // Validates the B+-tree invariants (ordering, fill, uniform leaf
  // depth, leaf-chain consistency). Test hook; returns false on any
  // violation.
  bool CheckInvariants() const;

 private:
  struct Node;

  // Descends to the leaf that should contain `key`.
  Node* FindLeaf(const Value& key) const;
  // Recursively copies a subtree, appending each copied leaf to
  // `leaves` in left-to-right order so Clone can relink the leaf chain.
  static std::unique_ptr<Node> CloneSubtree(const Node& node,
                                            std::vector<Node*>* leaves);
  // Splits `node` (leaf or internal) known to be overfull.
  void SplitChild(Node* parent, int index);

  int order_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_BTREE_H_

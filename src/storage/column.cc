#include "storage/column.h"

namespace sqopt {

namespace {

bool Fits(const Value& v, ColumnEncoding enc) {
  switch (enc) {
    case ColumnEncoding::kInt64:
      return v.type() == ValueType::kInt;
    case ColumnEncoding::kFloat64:
      return v.type() == ValueType::kDouble;
    case ColumnEncoding::kGeneric:
      return true;
  }
  return false;
}

ColumnEncoding FastEncodingFor(ValueType declared) {
  switch (declared) {
    case ValueType::kInt:
      return ColumnEncoding::kInt64;
    case ValueType::kDouble:
      return ColumnEncoding::kFloat64;
    default:
      return ColumnEncoding::kGeneric;
  }
}

}  // namespace

ColumnChunk ColumnChunk::ForType(ValueType declared) {
  ColumnChunk chunk;
  chunk.enc_ = FastEncodingFor(declared);
  return chunk;
}

ColumnChunk ColumnChunk::FromSlice(const ColumnData& src, size_t begin,
                                   size_t end, ValueType declared) {
  ColumnChunk chunk;
  switch (src.encoding) {
    case ColumnEncoding::kInt64:
      chunk.enc_ = ColumnEncoding::kInt64;
      chunk.i64_.assign(src.i64.begin() + begin, src.i64.begin() + end);
      return chunk;
    case ColumnEncoding::kFloat64:
      chunk.enc_ = ColumnEncoding::kFloat64;
      chunk.f64_.assign(src.f64.begin() + begin, src.f64.begin() + end);
      return chunk;
    case ColumnEncoding::kGeneric:
      break;
  }
  // Re-promote a generic slice whose values all match the declared
  // type: a mixed extent serializes generically, but segments that are
  // actually homogeneous should scan fast after restore.
  const ColumnEncoding fast = FastEncodingFor(declared);
  if (fast != ColumnEncoding::kGeneric) {
    bool homogeneous = true;
    for (size_t i = begin; i < end; ++i) {
      if (!Fits(src.generic[i], fast)) {
        homogeneous = false;
        break;
      }
    }
    if (homogeneous) {
      chunk.enc_ = fast;
      if (fast == ColumnEncoding::kInt64) {
        chunk.i64_.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          chunk.i64_.push_back(src.generic[i].int_value());
        }
      } else {
        chunk.f64_.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          chunk.f64_.push_back(src.generic[i].double_value());
        }
      }
      return chunk;
    }
  }
  chunk.enc_ = ColumnEncoding::kGeneric;
  chunk.generic_.assign(src.generic.begin() + begin,
                        src.generic.begin() + end);
  return chunk;
}

size_t ColumnChunk::size() const {
  switch (enc_) {
    case ColumnEncoding::kInt64:
      return i64_.size();
    case ColumnEncoding::kFloat64:
      return f64_.size();
    case ColumnEncoding::kGeneric:
      return generic_.size();
  }
  return 0;
}

void ColumnChunk::Reserve(size_t n) {
  switch (enc_) {
    case ColumnEncoding::kInt64:
      i64_.reserve(n);
      break;
    case ColumnEncoding::kFloat64:
      f64_.reserve(n);
      break;
    case ColumnEncoding::kGeneric:
      generic_.reserve(n);
      break;
  }
}

void ColumnChunk::Demote() {
  std::vector<Value> values;
  values.reserve(size());
  switch (enc_) {
    case ColumnEncoding::kInt64:
      for (int64_t v : i64_) values.push_back(Value::Int(v));
      i64_.clear();
      i64_.shrink_to_fit();
      break;
    case ColumnEncoding::kFloat64:
      for (double v : f64_) values.push_back(Value::Double(v));
      f64_.clear();
      f64_.shrink_to_fit();
      break;
    case ColumnEncoding::kGeneric:
      return;
  }
  enc_ = ColumnEncoding::kGeneric;
  generic_ = std::move(values);
}

void ColumnChunk::Append(Value v) {
  if (!Fits(v, enc_)) Demote();
  switch (enc_) {
    case ColumnEncoding::kInt64:
      i64_.push_back(v.int_value());
      break;
    case ColumnEncoding::kFloat64:
      f64_.push_back(v.double_value());
      break;
    case ColumnEncoding::kGeneric:
      generic_.push_back(std::move(v));
      break;
  }
}

void ColumnChunk::Set(size_t i, Value v) {
  if (!Fits(v, enc_)) Demote();
  switch (enc_) {
    case ColumnEncoding::kInt64:
      i64_[i] = v.int_value();
      break;
    case ColumnEncoding::kFloat64:
      f64_[i] = v.double_value();
      break;
    case ColumnEncoding::kGeneric:
      generic_[i] = std::move(v);
      break;
  }
}

Value ColumnChunk::Get(size_t i) const {
  switch (enc_) {
    case ColumnEncoding::kInt64:
      return Value::Int(i64_[i]);
    case ColumnEncoding::kFloat64:
      return Value::Double(f64_[i]);
    case ColumnEncoding::kGeneric:
      return generic_[i];
  }
  return Value::Null();
}

}  // namespace sqopt

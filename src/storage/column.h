// Columnar segment storage: the value arrays behind Extent's segments.
//
// Each attribute slot of a segment is one ColumnChunk — a contiguous
// array in one of three encodings. Chunks whose declared attribute type
// is int or double store raw int64_t/double arrays (the batch filter's
// auto-vectorizable input); everything else, and any chunk that ever
// receives a value outside its declared type (including null), demotes
// to a generic Value array. Demotion is per chunk, so one odd value in
// one segment never slows scans over the rest of the extent.
//
// ColumnView / SegmentBatch are the read API the executor scans with:
// borrowed pointers into one segment's arrays, valid only while the
// owning snapshot (shared_ptr<Segment>) is alive — the same lifetime
// contract reads already rely on.
#ifndef SQOPT_STORAGE_COLUMN_H_
#define SQOPT_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "types/value.h"

namespace sqopt {

enum class ColumnEncoding : uint8_t {
  kGeneric = 0,  // std::vector<Value>: strings, refs, bools, mixed, nulls
  kInt64 = 1,    // raw int64_t array
  kFloat64 = 2,  // raw double array
};

// Whole-extent column in serialized/restore form: what snapshot decode
// hands Extent::RestoreColumns. One encoding for the whole column; the
// extent re-slices it into per-segment chunks (re-promoting generic
// slices that happen to match the declared type, so a restored store
// scans as fast as the one that was saved).
struct ColumnData {
  ColumnEncoding encoding = ColumnEncoding::kGeneric;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<Value> generic;

  size_t size() const {
    switch (encoding) {
      case ColumnEncoding::kInt64:
        return i64.size();
      case ColumnEncoding::kFloat64:
        return f64.size();
      case ColumnEncoding::kGeneric:
        return generic.size();
    }
    return 0;
  }
};

// Borrowed, read-only view of one chunk's array. Exactly one of
// i64/f64/generic is non-null, matching `encoding`.
struct ColumnView {
  ColumnEncoding encoding = ColumnEncoding::kGeneric;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const Value* generic = nullptr;
  int64_t size = 0;

  // Materializes element `i` whatever the encoding. Precondition:
  // 0 <= i < size.
  Value Get(int64_t i) const {
    switch (encoding) {
      case ColumnEncoding::kInt64:
        return Value::Int(i64[i]);
      case ColumnEncoding::kFloat64:
        return Value::Double(f64[i]);
      case ColumnEncoding::kGeneric:
        return generic[i];
    }
    return Value::Null();
  }
};

// One attribute slot of one segment: an append-only-ish typed array
// with per-element overwrite (SetValue) and on-mismatch demotion.
class ColumnChunk {
 public:
  ColumnChunk() = default;  // generic

  // Chunk whose fast encoding matches the attribute's declared type.
  static ColumnChunk ForType(ValueType declared);

  // Chunk over rows [begin, end) of a whole-extent column. A generic
  // source slice is re-promoted to `declared`'s fast encoding when
  // every value in the slice matches it.
  static ColumnChunk FromSlice(const ColumnData& src, size_t begin,
                               size_t end, ValueType declared);

  ColumnEncoding encoding() const { return enc_; }
  size_t size() const;
  void Reserve(size_t n);

  // Appends `v`, demoting the chunk to generic if `v` does not fit the
  // current typed encoding.
  void Append(Value v);

  // Overwrites element `i` (precondition: i < size()), demoting on
  // type mismatch.
  void Set(size_t i, Value v);

  // Materializes element `i` by value. Precondition: i < size().
  Value Get(size_t i) const;

  // Hot-path accessor that avoids copying strings: generic chunks
  // return a direct reference, typed chunks materialize into *scratch
  // and return it. The reference is invalidated by the next call with
  // the same scratch and by any mutation of the chunk.
  const Value& GetRef(size_t i, Value* scratch) const {
    switch (enc_) {
      case ColumnEncoding::kInt64:
        *scratch = Value::Int(i64_[i]);
        return *scratch;
      case ColumnEncoding::kFloat64:
        *scratch = Value::Double(f64_[i]);
        return *scratch;
      case ColumnEncoding::kGeneric:
        return generic_[i];
    }
    return *scratch;
  }

  ColumnView View() const {
    ColumnView view;
    view.encoding = enc_;
    view.size = static_cast<int64_t>(size());
    switch (enc_) {
      case ColumnEncoding::kInt64:
        view.i64 = i64_.data();
        break;
      case ColumnEncoding::kFloat64:
        view.f64 = f64_.data();
        break;
      case ColumnEncoding::kGeneric:
        view.generic = generic_.data();
        break;
    }
    return view;
  }

 private:
  // Rewrites the chunk as a generic Value array (int64/double are
  // exactly representable as Values, so reads are unchanged).
  void Demote();

  ColumnEncoding enc_ = ColumnEncoding::kGeneric;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<Value> generic_;
};

// One segment's worth of columns, borrowed from an Extent. `base_row`
// is the extent row id of element 0; `rows` is the number of row slots
// the segment currently holds (== each column's size and the live
// bitmap's length).
struct SegmentBatch {
  int64_t base_row = 0;
  int64_t rows = 0;
  const uint8_t* live = nullptr;       // 1 = live, 0 = tombstoned
  const ColumnChunk* cols = nullptr;   // num_slots chunks
  size_t num_slots = 0;

  ColumnView column(size_t slot) const { return cols[slot].View(); }
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_COLUMN_H_

#include "storage/extent.h"

#include <algorithm>
#include <iterator>

namespace sqopt {

Extent::Extent(const Schema* schema, ClassId class_id)
    : schema_(schema), class_id_(class_id) {
  std::vector<AttrId> layout = schema_->LayoutOf(class_id);
  for (size_t i = 0; i < layout.size(); ++i) {
    slot_of_[layout[i]] = static_cast<int>(i);
  }
}

Extent::Segment& Extent::MutableSegment(size_t seg_idx) {
  std::shared_ptr<Segment>& sp = segments_[seg_idx];
  if (sp.use_count() > 1) sp = std::make_shared<Segment>(*sp);
  return *sp;
}

Result<int64_t> Extent::Insert(Object obj) {
  if (obj.values.size() != slot_of_.size()) {
    return Status::InvalidArgument(
        "object for class '" + schema_->object_class(class_id_).name +
        "' has " + std::to_string(obj.values.size()) + " values, expected " +
        std::to_string(slot_of_.size()));
  }
  Segment* seg;
  if ((size_ & kSegmentMask) == 0) {
    segments_.push_back(std::make_shared<Segment>());
    seg = segments_.back().get();
    seg->objects.reserve(static_cast<size_t>(kSegmentRows));
    seg->live.reserve(static_cast<size_t>(kSegmentRows));
  } else {
    seg = &MutableSegment(segments_.size() - 1);
  }
  seg->objects.push_back(std::move(obj));
  seg->live.push_back(1);
  ++live_count_;
  return size_++;
}

Status Extent::Delete(int64_t row) {
  if (row < 0 || row >= size_) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  Segment& seg = MutableSegment(static_cast<size_t>(row >> kSegmentShift));
  uint8_t& live = seg.live[static_cast<size_t>(row & kSegmentMask)];
  if (live == 0) {
    return Status::NotFound("row " + std::to_string(row) + " of class '" +
                            schema_->object_class(class_id_).name +
                            "' is already deleted");
  }
  live = 0;
  --live_count_;
  return Status::OK();
}

Status Extent::RestoreSlots(std::vector<Object> objects,
                            std::vector<uint8_t> live) {
  if (objects.size() != live.size()) {
    return Status::Corruption(
        "extent of class '" + schema_->object_class(class_id_).name +
        "': live bitmap size does not match slot count");
  }
  int64_t live_count = 0;
  for (size_t row = 0; row < objects.size(); ++row) {
    if (objects[row].values.size() != slot_of_.size()) {
      return Status::Corruption(
          "extent of class '" + schema_->object_class(class_id_).name +
          "': serialized row " + std::to_string(row) + " has " +
          std::to_string(objects[row].values.size()) +
          " values, layout has " + std::to_string(slot_of_.size()));
    }
    if (live[row] != 0) ++live_count;
  }
  segments_.clear();
  for (size_t base = 0; base < objects.size();
       base += static_cast<size_t>(kSegmentRows)) {
    const size_t end =
        std::min(base + static_cast<size_t>(kSegmentRows), objects.size());
    auto seg = std::make_shared<Segment>();
    seg->objects.assign(std::make_move_iterator(objects.begin() + base),
                        std::make_move_iterator(objects.begin() + end));
    seg->live.assign(live.begin() + base, live.begin() + end);
    segments_.push_back(std::move(seg));
  }
  size_ = static_cast<int64_t>(objects.size());
  live_count_ = live_count;
  return Status::OK();
}

const Value& Extent::ValueAt(int64_t row, AttrId attr_id) const {
  static const Value kNull = Value::Null();
  int slot = SlotOf(attr_id);
  if (slot < 0) return kNull;
  return object(row).values[slot];
}

Status Extent::SetValue(int64_t row, AttrId attr_id, Value value) {
  if (row < 0 || row >= size_) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  int slot = SlotOf(attr_id);
  if (slot < 0) {
    return Status::NotFound("attribute does not belong to class '" +
                            schema_->object_class(class_id_).name + "'");
  }
  Segment& seg = MutableSegment(static_cast<size_t>(row >> kSegmentShift));
  seg.objects[static_cast<size_t>(row & kSegmentMask)].values[slot] =
      std::move(value);
  return Status::OK();
}

int Extent::SlotOf(AttrId attr_id) const {
  auto it = slot_of_.find(attr_id);
  return it == slot_of_.end() ? -1 : it->second;
}

}  // namespace sqopt

#include "storage/extent.h"

namespace sqopt {

Extent::Extent(const Schema* schema, ClassId class_id)
    : schema_(schema), class_id_(class_id) {
  std::vector<AttrId> layout = schema_->LayoutOf(class_id);
  for (size_t i = 0; i < layout.size(); ++i) {
    slot_of_[layout[i]] = static_cast<int>(i);
  }
}

Result<int64_t> Extent::Insert(Object obj) {
  if (obj.values.size() != slot_of_.size()) {
    return Status::InvalidArgument(
        "object for class '" + schema_->object_class(class_id_).name +
        "' has " + std::to_string(obj.values.size()) + " values, expected " +
        std::to_string(slot_of_.size()));
  }
  objects_.push_back(std::move(obj));
  live_.push_back(1);
  ++live_count_;
  return static_cast<int64_t>(objects_.size() - 1);
}

Status Extent::Delete(int64_t row) {
  if (row < 0 || row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  if (live_[static_cast<size_t>(row)] == 0) {
    return Status::NotFound("row " + std::to_string(row) + " of class '" +
                            schema_->object_class(class_id_).name +
                            "' is already deleted");
  }
  live_[static_cast<size_t>(row)] = 0;
  --live_count_;
  return Status::OK();
}

Status Extent::RestoreSlots(std::vector<Object> objects,
                            std::vector<uint8_t> live) {
  if (objects.size() != live.size()) {
    return Status::Corruption(
        "extent of class '" + schema_->object_class(class_id_).name +
        "': live bitmap size does not match slot count");
  }
  int64_t live_count = 0;
  for (size_t row = 0; row < objects.size(); ++row) {
    if (objects[row].values.size() != slot_of_.size()) {
      return Status::Corruption(
          "extent of class '" + schema_->object_class(class_id_).name +
          "': serialized row " + std::to_string(row) + " has " +
          std::to_string(objects[row].values.size()) +
          " values, layout has " + std::to_string(slot_of_.size()));
    }
    if (live[row] != 0) ++live_count;
  }
  objects_ = std::move(objects);
  live_ = std::move(live);
  live_count_ = live_count;
  return Status::OK();
}

const Value& Extent::ValueAt(int64_t row, AttrId attr_id) const {
  static const Value kNull = Value::Null();
  int slot = SlotOf(attr_id);
  if (slot < 0) return kNull;
  return objects_[row].values[slot];
}

Status Extent::SetValue(int64_t row, AttrId attr_id, Value value) {
  if (row < 0 || row >= size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  int slot = SlotOf(attr_id);
  if (slot < 0) {
    return Status::NotFound("attribute does not belong to class '" +
                            schema_->object_class(class_id_).name + "'");
  }
  objects_[row].values[slot] = std::move(value);
  return Status::OK();
}

int Extent::SlotOf(AttrId attr_id) const {
  auto it = slot_of_.find(attr_id);
  return it == slot_of_.end() ? -1 : it->second;
}

}  // namespace sqopt

#include "storage/extent.h"

#include <cstdio>
#include <cstdlib>

namespace sqopt {

Extent::Extent(const Schema* schema, ClassId class_id)
    : schema_(schema), class_id_(class_id) {
  std::vector<AttrId> layout = schema_->LayoutOf(class_id);
  slot_types_.reserve(layout.size());
  for (size_t i = 0; i < layout.size(); ++i) {
    slot_of_[layout[i]] = static_cast<int>(i);
    slot_types_.push_back(
        schema_->attribute(AttrRef{class_id, layout[i]}).type);
  }
}

Extent::Segment& Extent::MutableSegment(size_t seg_idx) {
  std::shared_ptr<Segment>& sp = segments_[seg_idx];
  if (sp.use_count() > 1) sp = std::make_shared<Segment>(*sp);
  return *sp;
}

void Extent::CheckRow(int64_t row) const {
  if (row >= 0 && row < size_) return;
  std::fprintf(stderr,
               "extent of class '%s': row %lld out of range [0, %lld)\n",
               schema_->object_class(class_id_).name.c_str(),
               static_cast<long long>(row), static_cast<long long>(size_));
  std::abort();
}

Result<int64_t> Extent::Insert(Object obj) {
  if (obj.values.size() != slot_types_.size()) {
    return Status::InvalidArgument(
        "object for class '" + schema_->object_class(class_id_).name +
        "' has " + std::to_string(obj.values.size()) + " values, expected " +
        std::to_string(slot_types_.size()));
  }
  Segment* seg;
  if ((size_ & kSegmentMask) == 0) {
    segments_.push_back(std::make_shared<Segment>());
    seg = segments_.back().get();
    seg->cols.reserve(slot_types_.size());
    for (ValueType type : slot_types_) {
      seg->cols.push_back(ColumnChunk::ForType(type));
      seg->cols.back().Reserve(static_cast<size_t>(kSegmentRows));
    }
    seg->live.reserve(static_cast<size_t>(kSegmentRows));
  } else {
    seg = &MutableSegment(segments_.size() - 1);
  }
  for (size_t slot = 0; slot < obj.values.size(); ++slot) {
    seg->cols[slot].Append(std::move(obj.values[slot]));
  }
  seg->live.push_back(1);
  ++live_count_;
  return size_++;
}

Status Extent::Delete(int64_t row) {
  if (row < 0 || row >= size_) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  Segment& seg = MutableSegment(static_cast<size_t>(row >> kSegmentShift));
  uint8_t& live = seg.live[static_cast<size_t>(row & kSegmentMask)];
  if (live == 0) {
    return Status::NotFound("row " + std::to_string(row) + " of class '" +
                            schema_->object_class(class_id_).name +
                            "' is already deleted");
  }
  live = 0;
  --live_count_;
  return Status::OK();
}

Status Extent::RestoreColumns(std::vector<ColumnData> cols,
                              std::vector<uint8_t> live) {
  if (cols.size() != slot_types_.size()) {
    return Status::Corruption(
        "extent of class '" + schema_->object_class(class_id_).name +
        "': serialized form has " + std::to_string(cols.size()) +
        " columns, layout has " + std::to_string(slot_types_.size()));
  }
  for (size_t slot = 0; slot < cols.size(); ++slot) {
    if (cols[slot].size() != live.size()) {
      return Status::Corruption(
          "extent of class '" + schema_->object_class(class_id_).name +
          "': column " + std::to_string(slot) + " has " +
          std::to_string(cols[slot].size()) + " rows, live bitmap has " +
          std::to_string(live.size()));
    }
  }
  int64_t live_count = 0;
  for (uint8_t l : live) {
    if (l != 0) ++live_count;
  }
  segments_.clear();
  const size_t rows = live.size();
  for (size_t base = 0; base < rows;
       base += static_cast<size_t>(kSegmentRows)) {
    const size_t end =
        std::min(base + static_cast<size_t>(kSegmentRows), rows);
    auto seg = std::make_shared<Segment>();
    seg->cols.reserve(cols.size());
    for (size_t slot = 0; slot < cols.size(); ++slot) {
      seg->cols.push_back(
          ColumnChunk::FromSlice(cols[slot], base, end, slot_types_[slot]));
    }
    seg->live.assign(live.begin() + base, live.begin() + end);
    segments_.push_back(std::move(seg));
  }
  size_ = static_cast<int64_t>(rows);
  live_count_ = live_count;
  return Status::OK();
}

Value Extent::ValueAt(int64_t row, AttrId attr_id) const {
  CheckRow(row);
  int slot = SlotOf(attr_id);
  if (slot < 0) return Value::Null();
  return segments_[static_cast<size_t>(row >> kSegmentShift)]
      ->cols[static_cast<size_t>(slot)]
      .Get(static_cast<size_t>(row & kSegmentMask));
}

const Value& Extent::ValueRef(int64_t row, AttrId attr_id,
                              Value* scratch) const {
  CheckRow(row);
  int slot = SlotOf(attr_id);
  if (slot < 0) {
    *scratch = Value::Null();
    return *scratch;
  }
  return segments_[static_cast<size_t>(row >> kSegmentShift)]
      ->cols[static_cast<size_t>(slot)]
      .GetRef(static_cast<size_t>(row & kSegmentMask), scratch);
}

Object Extent::MaterializeRow(int64_t row) const {
  CheckRow(row);
  const Segment& seg = *segments_[static_cast<size_t>(row >> kSegmentShift)];
  const size_t offset = static_cast<size_t>(row & kSegmentMask);
  Object obj;
  obj.values.reserve(seg.cols.size());
  for (const ColumnChunk& col : seg.cols) {
    obj.values.push_back(col.Get(offset));
  }
  return obj;
}

Status Extent::SetValue(int64_t row, AttrId attr_id, Value value) {
  if (row < 0 || row >= size_) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  int slot = SlotOf(attr_id);
  if (slot < 0) {
    return Status::NotFound("attribute does not belong to class '" +
                            schema_->object_class(class_id_).name + "'");
  }
  Segment& seg = MutableSegment(static_cast<size_t>(row >> kSegmentShift));
  seg.cols[static_cast<size_t>(slot)].Set(
      static_cast<size_t>(row & kSegmentMask), std::move(value));
  return Status::OK();
}

int Extent::SlotOf(AttrId attr_id) const {
  auto it = slot_of_.find(attr_id);
  return it == slot_of_.end() ? -1 : it->second;
}

}  // namespace sqopt

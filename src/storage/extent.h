// The extent of an object class: all its stored instances, with a slot
// layout covering inherited attributes (root ancestor's attributes
// first, then each subclass's own, declaration order within each).
#ifndef SQOPT_STORAGE_EXTENT_H_
#define SQOPT_STORAGE_EXTENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/object.h"

namespace sqopt {

class Extent {
 public:
  Extent(const Schema* schema, ClassId class_id);

  // Extents are deep-copyable: the copy-on-write commit path clones
  // the extents of mutated classes and leaves the rest shared.
  Extent(const Extent&) = default;
  Extent& operator=(const Extent&) = default;

  ClassId class_id() const { return class_id_; }

  // Total row SLOTS, live and deleted alike. Row ids are positional and
  // stable for the lifetime of the store (deletes tombstone, never
  // compact), so scans iterate [0, size()) and skip !IsLive rows.
  int64_t size() const { return static_cast<int64_t>(objects_.size()); }
  // Live rows only — the class cardinality statistics see.
  int64_t live_count() const { return live_count_; }
  bool IsLive(int64_t row) const {
    return row >= 0 && row < size() && live_[static_cast<size_t>(row)] != 0;
  }
  size_t num_slots() const { return slot_of_.size(); }

  // Inserts an object; `obj.values` must have exactly num_slots()
  // entries in layout order. Returns the new row id.
  Result<int64_t> Insert(Object obj);

  // Tombstones one live row. The slot (and its values) stay in place so
  // row ids never shift; kOutOfRange for bad rows, kNotFound when the
  // row is already deleted. Index + adjacency maintenance is the
  // ObjectStore's job (Delete there cascades).
  Status Delete(int64_t row);

  const Object& object(int64_t row) const { return objects_[row]; }

  // Value of attribute `ref.attr_id` in row `row`. `ref` must resolve on
  // this class (possibly via inheritance).
  const Value& ValueAt(int64_t row, AttrId attr_id) const;

  // Overwrites one attribute value. Returns kNotFound when the
  // attribute does not belong to this class, kOutOfRange for bad rows.
  // Index maintenance is the ObjectStore's job (UpdateAttribute).
  Status SetValue(int64_t row, AttrId attr_id, Value value);

  // Slot offset of an attribute id in this extent's layout, -1 if the
  // attribute does not belong to this class.
  int SlotOf(AttrId attr_id) const;

  // Persistence hook (src/persist/snapshot.cc): replaces this extent's
  // contents with deserialized slots. `live` runs parallel to `objects`
  // (1 = live, 0 = tombstoned); tombstoned slots keep their values, so
  // a restored extent is byte-for-byte the one that was saved. Rejects
  // size mismatches with kCorruption. Index maintenance is the caller's
  // job, as everywhere on this class.
  Status RestoreSlots(std::vector<Object> objects,
                      std::vector<uint8_t> live);

 private:
  const Schema* schema_;
  ClassId class_id_;
  std::vector<Object> objects_;
  // Parallel to objects_: 1 = live, 0 = tombstoned.
  std::vector<uint8_t> live_;
  int64_t live_count_ = 0;
  std::unordered_map<AttrId, int> slot_of_;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_EXTENT_H_

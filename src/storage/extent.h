// The extent of an object class: all its stored instances, with a slot
// layout covering inherited attributes (root ancestor's attributes
// first, then each subclass's own, declaration order within each).
//
// Rows live in fixed-size SEGMENTS held by shared_ptr, and each
// segment stores its rows COLUMN-MAJOR: one ColumnChunk (contiguous
// value array) per attribute slot, plus the live bitmap. Copying an
// Extent shares every segment; a mutation clones only the one segment
// it touches (see MutableSegment). That makes the commit path's
// copy-on-write clone O(touched segments), not O(class rows), while
// pinned old snapshots keep seeing their pre-image through the shared
// segment pointers — and scans read each attribute as a tight
// contiguous array (SegmentBatch / ColumnView).
#ifndef SQOPT_STORAGE_EXTENT_H_
#define SQOPT_STORAGE_EXTENT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/object.h"

namespace sqopt {

class Extent {
 public:
  // Rows per segment. A power of two so row -> (segment, offset) is a
  // shift and a mask on the hot read path.
  static constexpr int64_t kSegmentRows = 1024;

  Extent(const Schema* schema, ClassId class_id);

  // Extents are cheaply copyable: the copy shares all segments by
  // pointer. The copy-on-write commit path clones the extents of
  // mutated classes (sharing their segments) and leaves the rest
  // shared wholesale; segments split off lazily on first write.
  Extent(const Extent&) = default;
  Extent& operator=(const Extent&) = default;

  ClassId class_id() const { return class_id_; }

  // Total row SLOTS, live and deleted alike. Row ids are positional and
  // stable for the lifetime of the store (deletes tombstone, never
  // compact), so scans iterate [0, size()) and skip !IsLive rows.
  int64_t size() const { return size_; }
  // Live rows only — the class cardinality statistics see.
  int64_t live_count() const { return live_count_; }
  bool IsLive(int64_t row) const {
    return row >= 0 && row < size_ &&
           segments_[static_cast<size_t>(row >> kSegmentShift)]
                   ->live[static_cast<size_t>(row & kSegmentMask)] != 0;
  }
  size_t num_slots() const { return slot_types_.size(); }

  // Inserts an object; `obj.values` must have exactly num_slots()
  // entries in layout order. Returns the new row id.
  Result<int64_t> Insert(Object obj);

  // Tombstones one live row. The slot (and its values) stay in place so
  // row ids never shift; kOutOfRange for bad rows, kNotFound when the
  // row is already deleted. Index + adjacency maintenance is the
  // ObjectStore's job (Delete there cascades).
  Status Delete(int64_t row);

  // Value of attribute `ref.attr_id` in row `row`, by value (cold
  // path). Unknown attributes read as null; a row outside [0, size())
  // aborts the process — callers own the bounds, and silently reading
  // a neighbor's memory is worse than dying loudly.
  Value ValueAt(int64_t row, AttrId attr_id) const;

  // Hot-path variant that avoids copying strings: generic-encoded
  // columns return a direct reference into the segment, typed columns
  // materialize into *scratch. Same bounds behavior as ValueAt. The
  // reference is invalidated by the next call reusing `scratch` and by
  // any mutation of this extent.
  const Value& ValueRef(int64_t row, AttrId attr_id, Value* scratch) const;

  // Materializes one full row in layout order (the Insert/result
  // boundary; scans use Batch()). Same bounds behavior as ValueAt.
  Object MaterializeRow(int64_t row) const;

  // Overwrites one attribute value. Returns kNotFound when the
  // attribute does not belong to this class, kOutOfRange for bad rows.
  // Index maintenance is the ObjectStore's job (UpdateAttribute).
  Status SetValue(int64_t row, AttrId attr_id, Value value);

  // Slot offset of an attribute id in this extent's layout, -1 if the
  // attribute does not belong to this class.
  int SlotOf(AttrId attr_id) const;

  // Batch read API: borrowed views of segment `seg_idx`'s columns and
  // live bitmap. Rows [base_row, base_row + rows) of the extent.
  // Valid while this extent (or any copy sharing the segment) lives
  // and is not mutated.
  SegmentBatch Batch(int64_t seg_idx) const {
    const Segment& seg = *segments_[static_cast<size_t>(seg_idx)];
    SegmentBatch batch;
    batch.base_row = seg_idx << kSegmentShift;
    batch.rows = static_cast<int64_t>(seg.live.size());
    batch.live = seg.live.data();
    batch.cols = seg.cols.data();
    batch.num_slots = seg.cols.size();
    return batch;
  }

  // Persistence hook (src/persist/snapshot.cc): replaces this extent's
  // contents with deserialized whole-extent columns, one per slot in
  // layout order. `live` runs parallel to the columns (1 = live, 0 =
  // tombstoned); tombstoned rows keep their values, so a restored
  // extent is byte-for-byte the one that was saved. Rejects size
  // mismatches with kCorruption. Index maintenance is the caller's
  // job, as everywhere on this class.
  Status RestoreColumns(std::vector<ColumnData> cols,
                        std::vector<uint8_t> live);

  // Test hooks for the delta-clone contract: how many segments back
  // this extent, and the identity of the segment holding `row` (two
  // extents sharing a segment return the same pointer).
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  const void* SegmentIdentity(int64_t row) const {
    return segments_[static_cast<size_t>(row >> kSegmentShift)].get();
  }

 private:
  static constexpr int kSegmentShift = 10;  // log2(kSegmentRows)
  static constexpr int64_t kSegmentMask = kSegmentRows - 1;
  static_assert((int64_t{1} << kSegmentShift) == kSegmentRows);

  struct Segment {
    std::vector<ColumnChunk> cols;  // one per slot, layout order
    // Parallel to the columns: 1 = live, 0 = tombstoned.
    std::vector<uint8_t> live;
  };

  // Splits the segment off this extent if any other extent still
  // shares it; returns it writable either way. Safe without atomics:
  // mutation only happens on the single private clone the commit path
  // holds under the commit lock, and every other owner is an immutable
  // published snapshot.
  Segment& MutableSegment(size_t seg_idx);

  // Aborts unless 0 <= row < size(): the documented precondition of
  // the row accessors above.
  void CheckRow(int64_t row) const;

  const Schema* schema_;
  ClassId class_id_;
  std::vector<std::shared_ptr<Segment>> segments_;
  int64_t size_ = 0;
  int64_t live_count_ = 0;
  std::unordered_map<AttrId, int> slot_of_;
  std::vector<ValueType> slot_types_;  // declared type per slot
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_EXTENT_H_

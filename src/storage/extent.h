// The extent of an object class: all its stored instances, with a slot
// layout covering inherited attributes (root ancestor's attributes
// first, then each subclass's own, declaration order within each).
#ifndef SQOPT_STORAGE_EXTENT_H_
#define SQOPT_STORAGE_EXTENT_H_

#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/object.h"

namespace sqopt {

class Extent {
 public:
  Extent(const Schema* schema, ClassId class_id);

  ClassId class_id() const { return class_id_; }
  int64_t size() const { return static_cast<int64_t>(objects_.size()); }
  size_t num_slots() const { return slot_of_.size(); }

  // Inserts an object; `obj.values` must have exactly num_slots()
  // entries in layout order. Returns the new row id.
  Result<int64_t> Insert(Object obj);

  const Object& object(int64_t row) const { return objects_[row]; }

  // Value of attribute `ref.attr_id` in row `row`. `ref` must resolve on
  // this class (possibly via inheritance).
  const Value& ValueAt(int64_t row, AttrId attr_id) const;

  // Overwrites one attribute value. Returns kNotFound when the
  // attribute does not belong to this class, kOutOfRange for bad rows.
  // Index maintenance is the ObjectStore's job (UpdateAttribute).
  Status SetValue(int64_t row, AttrId attr_id, Value value);

  // Slot offset of an attribute id in this extent's layout, -1 if the
  // attribute does not belong to this class.
  int SlotOf(AttrId attr_id) const;

 private:
  const Schema* schema_;
  ClassId class_id_;
  std::vector<Object> objects_;
  std::unordered_map<AttrId, int> slot_of_;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_EXTENT_H_

// The extent of an object class: all its stored instances, with a slot
// layout covering inherited attributes (root ancestor's attributes
// first, then each subclass's own, declaration order within each).
//
// Rows live in fixed-size SEGMENTS held by shared_ptr. Copying an
// Extent shares every segment; a mutation clones only the one segment
// it touches (see MutableSegment). That makes the commit path's
// copy-on-write clone O(touched segments), not O(class rows), while
// pinned old snapshots keep seeing their pre-image through the shared
// segment pointers.
#ifndef SQOPT_STORAGE_EXTENT_H_
#define SQOPT_STORAGE_EXTENT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/object.h"

namespace sqopt {

class Extent {
 public:
  // Rows per segment. A power of two so row -> (segment, offset) is a
  // shift and a mask on the hot read path.
  static constexpr int64_t kSegmentRows = 1024;

  Extent(const Schema* schema, ClassId class_id);

  // Extents are cheaply copyable: the copy shares all segments by
  // pointer. The copy-on-write commit path clones the extents of
  // mutated classes (sharing their segments) and leaves the rest
  // shared wholesale; segments split off lazily on first write.
  Extent(const Extent&) = default;
  Extent& operator=(const Extent&) = default;

  ClassId class_id() const { return class_id_; }

  // Total row SLOTS, live and deleted alike. Row ids are positional and
  // stable for the lifetime of the store (deletes tombstone, never
  // compact), so scans iterate [0, size()) and skip !IsLive rows.
  int64_t size() const { return size_; }
  // Live rows only — the class cardinality statistics see.
  int64_t live_count() const { return live_count_; }
  bool IsLive(int64_t row) const {
    return row >= 0 && row < size_ &&
           segments_[static_cast<size_t>(row >> kSegmentShift)]
                   ->live[static_cast<size_t>(row & kSegmentMask)] != 0;
  }
  size_t num_slots() const { return slot_of_.size(); }

  // Inserts an object; `obj.values` must have exactly num_slots()
  // entries in layout order. Returns the new row id.
  Result<int64_t> Insert(Object obj);

  // Tombstones one live row. The slot (and its values) stay in place so
  // row ids never shift; kOutOfRange for bad rows, kNotFound when the
  // row is already deleted. Index + adjacency maintenance is the
  // ObjectStore's job (Delete there cascades).
  Status Delete(int64_t row);

  const Object& object(int64_t row) const {
    return segments_[static_cast<size_t>(row >> kSegmentShift)]
        ->objects[static_cast<size_t>(row & kSegmentMask)];
  }

  // Value of attribute `ref.attr_id` in row `row`. `ref` must resolve on
  // this class (possibly via inheritance).
  const Value& ValueAt(int64_t row, AttrId attr_id) const;

  // Overwrites one attribute value. Returns kNotFound when the
  // attribute does not belong to this class, kOutOfRange for bad rows.
  // Index maintenance is the ObjectStore's job (UpdateAttribute).
  Status SetValue(int64_t row, AttrId attr_id, Value value);

  // Slot offset of an attribute id in this extent's layout, -1 if the
  // attribute does not belong to this class.
  int SlotOf(AttrId attr_id) const;

  // Persistence hook (src/persist/snapshot.cc): replaces this extent's
  // contents with deserialized slots. `live` runs parallel to `objects`
  // (1 = live, 0 = tombstoned); tombstoned slots keep their values, so
  // a restored extent is byte-for-byte the one that was saved. Rejects
  // size mismatches with kCorruption. Index maintenance is the caller's
  // job, as everywhere on this class.
  Status RestoreSlots(std::vector<Object> objects,
                      std::vector<uint8_t> live);

  // Test hooks for the delta-clone contract: how many segments back
  // this extent, and the identity of the segment holding `row` (two
  // extents sharing a segment return the same pointer).
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  const void* SegmentIdentity(int64_t row) const {
    return segments_[static_cast<size_t>(row >> kSegmentShift)].get();
  }

 private:
  static constexpr int kSegmentShift = 10;  // log2(kSegmentRows)
  static constexpr int64_t kSegmentMask = kSegmentRows - 1;
  static_assert((int64_t{1} << kSegmentShift) == kSegmentRows);

  struct Segment {
    std::vector<Object> objects;
    // Parallel to objects: 1 = live, 0 = tombstoned.
    std::vector<uint8_t> live;
  };

  // Splits the segment off this extent if any other extent still
  // shares it; returns it writable either way. Safe without atomics:
  // mutation only happens on the single private clone the commit path
  // holds under the commit lock, and every other owner is an immutable
  // published snapshot.
  Segment& MutableSegment(size_t seg_idx);

  const Schema* schema_;
  ClassId class_id_;
  std::vector<std::shared_ptr<Segment>> segments_;
  int64_t size_ = 0;
  int64_t live_count_ = 0;
  std::unordered_map<AttrId, int> slot_of_;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_EXTENT_H_

#include "storage/index.h"

namespace sqopt {

std::vector<int64_t> AttributeIndex::Equal(const Value& key) const {
  ++probes;
  return tree_.Equal(key);
}

std::vector<int64_t> AttributeIndex::Lookup(CompareOp op,
                                            const Value& value) const {
  ++probes;
  switch (op) {
    case CompareOp::kEq:
      return tree_.Equal(value);
    case CompareOp::kLt:
      return tree_.LessThan(value, /*inclusive=*/false);
    case CompareOp::kLe:
      return tree_.LessThan(value, /*inclusive=*/true);
    case CompareOp::kGt:
      return tree_.GreaterThan(value, /*inclusive=*/false);
    case CompareOp::kGe:
      return tree_.GreaterThan(value, /*inclusive=*/true);
    case CompareOp::kNe: {
      std::vector<int64_t> out;
      for (const auto& [key, row] : tree_.Scan()) {
        if (EvalCompare(key, CompareOp::kNe, value)) out.push_back(row);
      }
      return out;
    }
  }
  return {};
}

}  // namespace sqopt

// Ordered attribute index: Value -> row ids, backed by the B+-tree in
// storage/btree.h. Supports equality probes and one-sided range scans,
// which is all the access planner needs.
#ifndef SQOPT_STORAGE_INDEX_H_
#define SQOPT_STORAGE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "expr/predicate.h"
#include "storage/btree.h"
#include "types/value.h"

namespace sqopt {

class AttributeIndex {
 public:
  AttributeIndex() = default;

  // Deep copy (tree structure and probe counter) for copy-on-write
  // store commits: the clone diverges under incremental maintenance
  // while readers keep probing the original.
  std::unique_ptr<AttributeIndex> Clone() const {
    auto copy = std::make_unique<AttributeIndex>();
    copy->tree_ = tree_.Clone();
    copy->probes.store(probes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return copy;
  }

  // Snapshot-restore hook: replaces the tree with one bulk-built from
  // entries already in key order (see BTree::BuildFromSorted).
  void LoadSorted(std::vector<std::pair<Value, int64_t>> entries) {
    tree_ = BTree::BuildFromSorted(std::move(entries));
  }

  void Insert(const Value& key, int64_t row) { tree_.Insert(key, row); }
  bool Remove(const Value& key, int64_t row) {
    return tree_.Remove(key, row);
  }

  size_t size() const { return tree_.size(); }
  int height() const { return tree_.height(); }

  // Rows whose key equals `key`.
  std::vector<int64_t> Equal(const Value& key) const;

  // Rows satisfying `key_attr op value` for op in {<, <=, >, >=, =}.
  // != falls back to a full leaf-chain walk (callers normally don't use
  // an index for it, but correctness first).
  std::vector<int64_t> Lookup(CompareOp op, const Value& value) const;

  const BTree& tree() const { return tree_; }

  // Probe count bookkeeping for the execution meter. Atomic so that
  // concurrent read-only executions can share one store.
  mutable std::atomic<uint64_t> probes{0};

 private:
  BTree tree_;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_INDEX_H_

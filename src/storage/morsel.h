// Morsels: fixed-size slices of a candidate sequence (extent rows or
// index-lookup results), the scheduling unit of the parallel executor.
// Partitioning is purely positional — a morsel is a [begin, end) range
// over an ordered candidate list — so re-concatenating per-morsel
// outputs in morsel order reproduces the sequential processing order
// exactly (see DESIGN.md "Morsel-driven parallel scans").
#ifndef SQOPT_STORAGE_MORSEL_H_
#define SQOPT_STORAGE_MORSEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sqopt {

// Rows per morsel when no explicit size is configured. Large enough
// that per-morsel scheduling cost is noise against the scan work,
// small enough that a handful of morsels exist on mid-size extents.
inline constexpr int64_t kDefaultMorselSize = 2048;

struct Morsel {
  int64_t begin = 0;  // first candidate position, inclusive
  int64_t end = 0;    // last candidate position, exclusive

  int64_t size() const { return end - begin; }
};

// Splits `count` candidates into consecutive morsels of `morsel_size`
// (the last one may be short). Empty for count <= 0; a non-positive
// morsel_size falls back to kDefaultMorselSize.
inline std::vector<Morsel> MakeMorsels(int64_t count, int64_t morsel_size) {
  std::vector<Morsel> morsels;
  if (count <= 0) return morsels;
  if (morsel_size <= 0) morsel_size = kDefaultMorselSize;
  morsels.reserve(static_cast<size_t>((count + morsel_size - 1) / morsel_size));
  for (int64_t begin = 0; begin < count; begin += morsel_size) {
    morsels.push_back(Morsel{begin, std::min(begin + morsel_size, count)});
  }
  return morsels;
}

}  // namespace sqopt

#endif  // SQOPT_STORAGE_MORSEL_H_

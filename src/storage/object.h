// An object instance: a row of attribute values belonging to one object
// class. Attribute slots follow the class's declaration order, with
// inherited attributes (parent chain) prepended root-first.
#ifndef SQOPT_STORAGE_OBJECT_H_
#define SQOPT_STORAGE_OBJECT_H_

#include <vector>

#include "types/value.h"

namespace sqopt {

struct Object {
  std::vector<Value> values;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_OBJECT_H_

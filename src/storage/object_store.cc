#include "storage/object_store.h"

#include <algorithm>
#include <set>

namespace sqopt {

const std::vector<int64_t> ObjectStore::kNoPartners = {};

ObjectStore::ObjectStore(const Schema* schema) : schema_(schema) {
  extents_.reserve(schema_->num_classes());
  for (size_t i = 0; i < schema_->num_classes(); ++i) {
    extents_.push_back(
        std::make_shared<Extent>(schema_, static_cast<ClassId>(i)));
  }
  rels_.reserve(schema_->num_relationships());
  for (size_t i = 0; i < schema_->num_relationships(); ++i) {
    rels_.push_back(std::make_shared<RelData>());
  }

  // One index per (class, indexed attribute), including inherited
  // indexed attributes on subclasses.
  for (const ObjectClass& oc : schema_->classes()) {
    for (AttrId attr_id : schema_->LayoutOf(oc.id)) {
      AttrRef ref{oc.id, attr_id};
      if (schema_->attribute(ref).indexed) {
        indexes_[{oc.id, attr_id}] = std::make_shared<AttributeIndex>();
      }
    }
  }
}

std::unique_ptr<ObjectStore> ObjectStore::CloneForWrite(
    const std::set<ClassId>& classes, const std::set<RelId>& rels) const {
  return CloneForWrite(classes, rels, classes);
}

std::unique_ptr<ObjectStore> ObjectStore::CloneForWrite(
    const std::set<ClassId>& classes, const std::set<RelId>& rels,
    const std::set<ClassId>& index_classes) const {
  // Start from a structural twin sharing every substructure, then
  // replace the to-be-mutated parts with private deep copies.
  std::unique_ptr<ObjectStore> clone(new ObjectStore());
  clone->schema_ = schema_;
  clone->extents_ = extents_;
  clone->rels_ = rels_;
  clone->indexes_ = indexes_;
  for (ClassId cid : classes) {
    clone->extents_[cid] = std::make_shared<Extent>(*extents_[cid]);
  }
  for (RelId rid : rels) {
    clone->rels_[rid] = std::make_shared<RelData>(*rels_[rid]);
  }
  for (auto& [key, index] : clone->indexes_) {
    if (index_classes.count(key.first) > 0) {
      index = std::shared_ptr<AttributeIndex>(index->Clone());
    }
  }
  return clone;
}

Result<int64_t> ObjectStore::Insert(ClassId class_id, Object obj) {
  SQOPT_ASSIGN_OR_RETURN(int64_t row,
                         extents_[class_id]->Insert(std::move(obj)));
  for (auto& [key, index] : indexes_) {
    if (key.first != class_id) continue;
    index->Insert(extents_[class_id]->ValueAt(row, key.second), row);
  }
  return row;
}

Status ObjectStore::Link(RelId rel_id, int64_t row_a, int64_t row_b) {
  const Relationship& rel = schema_->relationship(rel_id);
  if (row_a < 0 || row_a >= NumObjects(rel.a) || row_b < 0 ||
      row_b >= NumObjects(rel.b)) {
    return Status::OutOfRange("relationship '" + rel.name +
                              "' links a nonexistent row");
  }
  if (!IsLive(rel.a, row_a) || !IsLive(rel.b, row_b)) {
    return Status::FailedPrecondition("relationship '" + rel.name +
                                      "' links a deleted row");
  }
  RelData& data = *rels_[rel_id];
  // Relationship instances form a SET of pairs: a duplicate link would
  // silently double rows produced by pointer-traversal joins.
  auto it = data.adj_a.find(row_a);
  if (it != data.adj_a.end()) {
    for (int64_t existing : it->second) {
      if (existing == row_b) {
        return Status::AlreadyExists("relationship '" + rel.name +
                                     "' already links this pair");
      }
    }
  }
  data.pairs.emplace_back(row_a, row_b);
  data.adj_a[row_a].push_back(row_b);
  data.adj_b[row_b].push_back(row_a);
  return Status::OK();
}

Status ObjectStore::Unlink(RelId rel_id, int64_t row_a, int64_t row_b) {
  RelData& data = *rels_[rel_id];
  auto pair_it = std::find(data.pairs.begin(), data.pairs.end(),
                           std::make_pair(row_a, row_b));
  if (pair_it == data.pairs.end()) {
    return Status::NotFound("relationship '" +
                            schema_->relationship(rel_id).name +
                            "' has no such pair");
  }
  data.pairs.erase(pair_it);
  auto drop = [](std::unordered_map<int64_t, std::vector<int64_t>>& adj,
                 int64_t key, int64_t partner) {
    auto it = adj.find(key);
    if (it == adj.end()) return;
    auto& list = it->second;
    list.erase(std::find(list.begin(), list.end(), partner));
    if (list.empty()) adj.erase(it);
  };
  drop(data.adj_a, row_a, row_b);
  drop(data.adj_b, row_b, row_a);
  return Status::OK();
}

Status ObjectStore::UpdateAttribute(ClassId class_id, int64_t row,
                                    AttrId attr_id, Value value) {
  Extent& extent = *extents_[class_id];
  if (row < 0 || row >= extent.size()) {
    return Status::OutOfRange("row out of range");
  }
  if (!extent.IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " of class '" +
                            schema_->object_class(class_id).name +
                            "' is deleted");
  }
  auto it = indexes_.find({class_id, attr_id});
  if (it != indexes_.end()) {
    Value old = extent.ValueAt(row, attr_id);
    SQOPT_RETURN_IF_ERROR(extent.SetValue(row, attr_id, value));
    it->second->Remove(old, row);
    it->second->Insert(value, row);
    return Status::OK();
  }
  return extent.SetValue(row, attr_id, std::move(value));
}

Status ObjectStore::Delete(ClassId class_id, int64_t row) {
  Extent& extent = *extents_[class_id];
  SQOPT_RETURN_IF_ERROR(extent.Delete(row));
  // Index entries go first (values are still in the tombstoned slot).
  for (auto& [key, index] : indexes_) {
    if (key.first != class_id) continue;
    index->Remove(extent.ValueAt(row, key.second), row);
  }
  // Cascade: a dead row must never surface through Partners().
  for (RelId rel_id : schema_->RelationshipsOf(class_id)) {
    const Relationship& rel = schema_->relationship(rel_id);
    RelData& data = *rels_[rel_id];
    bool as_a = rel.a == class_id;
    bool as_b = rel.b == class_id;
    data.pairs.erase(
        std::remove_if(data.pairs.begin(), data.pairs.end(),
                       [&](const std::pair<int64_t, int64_t>& p) {
                         return (as_a && p.first == row) ||
                                (as_b && p.second == row);
                       }),
        data.pairs.end());
    auto scrub = [row](
        std::unordered_map<int64_t, std::vector<int64_t>>& forward,
        std::unordered_map<int64_t, std::vector<int64_t>>& reverse) {
      auto it = forward.find(row);
      if (it == forward.end()) return;
      for (int64_t partner : it->second) {
        auto rit = reverse.find(partner);
        if (rit == reverse.end()) continue;
        auto& list = rit->second;
        list.erase(std::remove(list.begin(), list.end(), row), list.end());
        if (list.empty()) reverse.erase(rit);
      }
      forward.erase(it);
    };
    if (as_a) scrub(data.adj_a, data.adj_b);
    if (as_b) scrub(data.adj_b, data.adj_a);
  }
  return Status::OK();
}

const std::vector<int64_t>& ObjectStore::Partners(RelId rel_id,
                                                  ClassId from_class,
                                                  int64_t row) const {
  const Relationship& rel = schema_->relationship(rel_id);
  const RelData& data = *rels_[rel_id];
  const auto& adjacency = (from_class == rel.a) ? data.adj_a : data.adj_b;
  auto it = adjacency.find(row);
  return it == adjacency.end() ? kNoPartners : it->second;
}

const AttributeIndex* ObjectStore::GetIndex(const AttrRef& ref) const {
  auto it = indexes_.find({ref.class_id, ref.attr_id});
  return it == indexes_.end() ? nullptr : it->second.get();
}

namespace {

// True when every segment of `extent` encodes `slot` as `enc` — the
// precondition for the typed statistics fast paths below. A single
// demoted (generic) chunk sends the whole attribute down the exact
// Value-based path instead, so mixed data keeps legacy semantics.
bool AllSegmentsEncoded(const Extent& extent, size_t slot,
                        ColumnEncoding enc) {
  for (int64_t s = 0; s < extent.num_segments(); ++s) {
    if (extent.Batch(s).cols[slot].encoding() != enc) return false;
  }
  return true;
}

}  // namespace

int64_t ObjectStore::DistinctValues(const AttrRef& ref) const {
  const Extent& extent = *extents_[ref.class_id];
  const int slot = extent.SlotOf(ref.attr_id);
  if (slot < 0) {
    // Unknown attributes read as null everywhere: one distinct value
    // if anything is live at all.
    return extent.live_count() > 0 ? 1 : 0;
  }
  const size_t uslot = static_cast<size_t>(slot);
  if (AllSegmentsEncoded(extent, uslot, ColumnEncoding::kInt64)) {
    std::set<int64_t> distinct;
    for (int64_t s = 0; s < extent.num_segments(); ++s) {
      const SegmentBatch batch = extent.Batch(s);
      const ColumnView col = batch.column(uslot);
      for (int64_t i = 0; i < batch.rows; ++i) {
        if (batch.live[i]) distinct.insert(col.i64[i]);
      }
    }
    return static_cast<int64_t>(distinct.size());
  }
  std::set<Value> distinct;
  for (int64_t s = 0; s < extent.num_segments(); ++s) {
    const SegmentBatch batch = extent.Batch(s);
    const ColumnView col = batch.column(uslot);
    for (int64_t i = 0; i < batch.rows; ++i) {
      if (batch.live[i]) distinct.insert(col.Get(i));
    }
  }
  return static_cast<int64_t>(distinct.size());
}

std::pair<Value, Value> ObjectStore::MinMax(const AttrRef& ref) const {
  const Extent& extent = *extents_[ref.class_id];
  const int slot = extent.SlotOf(ref.attr_id);
  if (slot < 0) return {Value::Null(), Value::Null()};
  const size_t uslot = static_cast<size_t>(slot);
  if (AllSegmentsEncoded(extent, uslot, ColumnEncoding::kInt64)) {
    bool any = false;
    int64_t lo = 0, hi = 0;
    for (int64_t s = 0; s < extent.num_segments(); ++s) {
      const SegmentBatch batch = extent.Batch(s);
      const ColumnView col = batch.column(uslot);
      for (int64_t i = 0; i < batch.rows; ++i) {
        if (!batch.live[i]) continue;
        const int64_t v = col.i64[i];
        if (!any) {
          any = true;
          lo = hi = v;
        } else {
          if (v < lo) lo = v;
          if (v > hi) hi = v;
        }
      }
    }
    if (!any) return {Value::Null(), Value::Null()};
    return {Value::Int(lo), Value::Int(hi)};
  }
  if (AllSegmentsEncoded(extent, uslot, ColumnEncoding::kFloat64)) {
    // `<` on raw doubles is exactly Value ordering for doubles (NaN
    // incomparable => never replaces an incumbent), so this matches
    // the generic path bit for bit.
    bool any = false;
    double lo = 0, hi = 0;
    for (int64_t s = 0; s < extent.num_segments(); ++s) {
      const SegmentBatch batch = extent.Batch(s);
      const ColumnView col = batch.column(uslot);
      for (int64_t i = 0; i < batch.rows; ++i) {
        if (!batch.live[i]) continue;
        const double v = col.f64[i];
        if (!any) {
          any = true;
          lo = hi = v;
        } else {
          if (v < lo) lo = v;
          if (hi < v) hi = v;
        }
      }
    }
    if (!any) return {Value::Null(), Value::Null()};
    return {Value::Double(lo), Value::Double(hi)};
  }
  Value min = Value::Null();
  Value max = Value::Null();
  for (int64_t s = 0; s < extent.num_segments(); ++s) {
    const SegmentBatch batch = extent.Batch(s);
    const ColumnView col = batch.column(uslot);
    for (int64_t i = 0; i < batch.rows; ++i) {
      if (!batch.live[i]) continue;
      Value v = col.Get(i);
      if (min.is_null() || v < min) min = v;
      if (max.is_null() || max < v) max = std::move(v);
    }
  }
  return {min, max};
}

std::vector<Value> ObjectStore::LiveValues(const AttrRef& ref) const {
  const Extent& extent = *extents_[ref.class_id];
  const int slot = extent.SlotOf(ref.attr_id);
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(extent.live_count()));
  if (slot < 0) {
    for (int64_t row = 0; row < extent.size(); ++row) {
      if (extent.IsLive(row)) out.push_back(Value::Null());
    }
    return out;
  }
  const size_t uslot = static_cast<size_t>(slot);
  for (int64_t s = 0; s < extent.num_segments(); ++s) {
    const SegmentBatch batch = extent.Batch(s);
    const ColumnView col = batch.column(uslot);
    for (int64_t i = 0; i < batch.rows; ++i) {
      if (batch.live[i]) out.push_back(col.Get(i));
    }
  }
  return out;
}

Status ObjectStore::RestoreClassColumns(ClassId class_id,
                                        std::vector<ColumnData> cols,
                                        std::vector<uint8_t> live) {
  if (class_id < 0 ||
      class_id >= static_cast<ClassId>(extents_.size())) {
    return Status::Corruption("snapshot names an unknown class id " +
                              std::to_string(class_id));
  }
  return extents_[class_id]->RestoreColumns(std::move(cols),
                                            std::move(live));
}

Status ObjectStore::RestoreRelationshipPairs(
    RelId rel_id, std::vector<std::pair<int64_t, int64_t>> pairs) {
  if (rel_id < 0 || rel_id >= static_cast<RelId>(rels_.size())) {
    return Status::Corruption("snapshot names an unknown relationship id " +
                              std::to_string(rel_id));
  }
  const Relationship& rel = schema_->relationship(rel_id);
  RelData data;
  for (const auto& [row_a, row_b] : pairs) {
    if (row_a < 0 || row_a >= NumObjects(rel.a) || row_b < 0 ||
        row_b >= NumObjects(rel.b)) {
      return Status::Corruption("relationship '" + rel.name +
                                "' pair references a nonexistent row");
    }
    data.adj_a[row_a].push_back(row_b);
    data.adj_b[row_b].push_back(row_a);
  }
  data.pairs = std::move(pairs);
  *rels_[rel_id] = std::move(data);
  return Status::OK();
}

Status ObjectStore::RestoreIndexEntries(
    ClassId class_id, AttrId attr_id,
    std::vector<std::pair<Value, int64_t>> entries) {
  auto it = indexes_.find({class_id, attr_id});
  if (it == indexes_.end()) {
    return Status::Corruption(
        "snapshot carries an index for a non-indexed attribute (class " +
        std::to_string(class_id) + ", attr " + std::to_string(attr_id) +
        ")");
  }
  // The serialized form is a leaf-chain scan, so it must be sorted;
  // bulk-loading an unsorted sequence would silently break every
  // lookup invariant, so reject it as corruption instead.
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].first < entries[i - 1].first) {
      return Status::Corruption(
          "snapshot index entries out of order (class " +
          std::to_string(class_id) + ", attr " + std::to_string(attr_id) +
          ")");
    }
  }
  auto fresh = std::make_shared<AttributeIndex>();
  fresh->LoadSorted(std::move(entries));
  it->second = std::move(fresh);
  return Status::OK();
}

void ObjectStore::ResetMeters() {
  for (auto& [key, index] : indexes_) index->probes = 0;
}

}  // namespace sqopt

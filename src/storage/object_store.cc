#include "storage/object_store.h"

#include <set>

namespace sqopt {

const std::vector<int64_t> ObjectStore::kNoPartners = {};

ObjectStore::ObjectStore(const Schema* schema) : schema_(schema) {
  extents_.reserve(schema_->num_classes());
  for (size_t i = 0; i < schema_->num_classes(); ++i) {
    extents_.push_back(
        std::make_unique<Extent>(schema_, static_cast<ClassId>(i)));
  }
  pairs_.resize(schema_->num_relationships());
  adj_a_.resize(schema_->num_relationships());
  adj_b_.resize(schema_->num_relationships());

  // One index per (class, indexed attribute), including inherited
  // indexed attributes on subclasses.
  for (const ObjectClass& oc : schema_->classes()) {
    for (AttrId attr_id : schema_->LayoutOf(oc.id)) {
      AttrRef ref{oc.id, attr_id};
      if (schema_->attribute(ref).indexed) {
        indexes_[{oc.id, attr_id}] = std::make_unique<AttributeIndex>();
      }
    }
  }
}

Result<int64_t> ObjectStore::Insert(ClassId class_id, Object obj) {
  SQOPT_ASSIGN_OR_RETURN(int64_t row,
                         extents_[class_id]->Insert(std::move(obj)));
  for (auto& [key, index] : indexes_) {
    if (key.first != class_id) continue;
    index->Insert(extents_[class_id]->ValueAt(row, key.second), row);
  }
  return row;
}

Status ObjectStore::Link(RelId rel_id, int64_t row_a, int64_t row_b) {
  const Relationship& rel = schema_->relationship(rel_id);
  if (row_a < 0 || row_a >= NumObjects(rel.a) || row_b < 0 ||
      row_b >= NumObjects(rel.b)) {
    return Status::OutOfRange("relationship '" + rel.name +
                              "' links a nonexistent row");
  }
  // Relationship instances form a SET of pairs: a duplicate link would
  // silently double rows produced by pointer-traversal joins.
  auto it = adj_a_[rel_id].find(row_a);
  if (it != adj_a_[rel_id].end()) {
    for (int64_t existing : it->second) {
      if (existing == row_b) {
        return Status::AlreadyExists("relationship '" + rel.name +
                                     "' already links this pair");
      }
    }
  }
  pairs_[rel_id].emplace_back(row_a, row_b);
  adj_a_[rel_id][row_a].push_back(row_b);
  adj_b_[rel_id][row_b].push_back(row_a);
  return Status::OK();
}

Status ObjectStore::UpdateAttribute(ClassId class_id, int64_t row,
                                    AttrId attr_id, Value value) {
  Extent& extent = *extents_[class_id];
  if (row < 0 || row >= extent.size()) {
    return Status::OutOfRange("row out of range");
  }
  auto it = indexes_.find({class_id, attr_id});
  if (it != indexes_.end()) {
    Value old = extent.ValueAt(row, attr_id);
    SQOPT_RETURN_IF_ERROR(extent.SetValue(row, attr_id, value));
    it->second->Remove(old, row);
    it->second->Insert(value, row);
    return Status::OK();
  }
  return extent.SetValue(row, attr_id, std::move(value));
}

const std::vector<int64_t>& ObjectStore::Partners(RelId rel_id,
                                                  ClassId from_class,
                                                  int64_t row) const {
  const Relationship& rel = schema_->relationship(rel_id);
  const auto& adjacency =
      (from_class == rel.a) ? adj_a_[rel_id] : adj_b_[rel_id];
  auto it = adjacency.find(row);
  return it == adjacency.end() ? kNoPartners : it->second;
}

const AttributeIndex* ObjectStore::GetIndex(const AttrRef& ref) const {
  auto it = indexes_.find({ref.class_id, ref.attr_id});
  return it == indexes_.end() ? nullptr : it->second.get();
}

int64_t ObjectStore::DistinctValues(const AttrRef& ref) const {
  const Extent& extent = *extents_[ref.class_id];
  std::set<Value> distinct;
  for (int64_t row = 0; row < extent.size(); ++row) {
    distinct.insert(extent.ValueAt(row, ref.attr_id));
  }
  return static_cast<int64_t>(distinct.size());
}

std::pair<Value, Value> ObjectStore::MinMax(const AttrRef& ref) const {
  const Extent& extent = *extents_[ref.class_id];
  if (extent.size() == 0) return {Value::Null(), Value::Null()};
  Value min = extent.ValueAt(0, ref.attr_id);
  Value max = min;
  for (int64_t row = 1; row < extent.size(); ++row) {
    const Value& v = extent.ValueAt(row, ref.attr_id);
    if (v < min) min = v;
    if (max < v) max = v;
  }
  return {min, max};
}

void ObjectStore::ResetMeters() {
  for (auto& [key, index] : indexes_) index->probes = 0;
}

}  // namespace sqopt

// The in-memory OODB store: one extent per class, adjacency lists per
// relationship, and attribute indexes for every attribute declared
// `indexed` in the schema. This is the substrate the executor runs
// against (the paper executed against a relational DBMS; see DESIGN.md
// §2 "Substitutions").
#ifndef SQOPT_STORAGE_OBJECT_STORE_H_
#define SQOPT_STORAGE_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/extent.h"
#include "storage/index.h"
#include "storage/morsel.h"

namespace sqopt {

class ObjectStore {
 public:
  explicit ObjectStore(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  // Inserts an object into `class_id`'s extent, maintaining indexes.
  Result<int64_t> Insert(ClassId class_id, Object obj);

  // Registers an instance (pair) of relationship `rel_id` between a row
  // of the relationship's class `a` and a row of class `b`. Duplicate
  // pairs are rejected with kAlreadyExists.
  Status Link(RelId rel_id, int64_t row_a, int64_t row_b);

  // Overwrites one attribute of an existing object, keeping any index
  // on the attribute consistent. `attr_id` must resolve on the class.
  Status UpdateAttribute(ClassId class_id, int64_t row, AttrId attr_id,
                         Value value);

  const Extent& extent(ClassId class_id) const {
    return *extents_[class_id];
  }
  int64_t NumObjects(ClassId class_id) const {
    return extents_[class_id]->size();
  }
  int64_t NumPairs(RelId rel_id) const {
    return static_cast<int64_t>(pairs_[rel_id].size());
  }

  // Splits `class_id`'s extent into consecutive row-range morsels of at
  // most `morsel_size` rows (the last may be short; non-positive sizes
  // fall back to kDefaultMorselSize). The ranges cover every row exactly
  // once, in row order — the parallel executor's scheduling units.
  std::vector<Morsel> PartitionExtent(ClassId class_id,
                                      int64_t morsel_size) const {
    return MakeMorsels(NumObjects(class_id), morsel_size);
  }

  // Partner rows of `row` (a row of `from_class`) across `rel_id`.
  // `from_class` must be one of the relationship's endpoints.
  const std::vector<int64_t>& Partners(RelId rel_id, ClassId from_class,
                                       int64_t row) const;

  // The index on `ref`, or null if the attribute is not indexed.
  const AttributeIndex* GetIndex(const AttrRef& ref) const;

  // Statistics raw material.
  int64_t DistinctValues(const AttrRef& ref) const;
  std::pair<Value, Value> MinMax(const AttrRef& ref) const;  // null/null
                                                             // if empty

  // Resets the probe counters on all indexes.
  void ResetMeters();

 private:
  // Index key: (class, attr id) — inherited attributes are indexed per
  // concrete class.
  using IndexKey = std::pair<ClassId, AttrId>;

  const Schema* schema_;
  std::vector<std::unique_ptr<Extent>> extents_;
  // Per relationship: the pair list and both adjacency directions.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> pairs_;
  std::vector<std::unordered_map<int64_t, std::vector<int64_t>>> adj_a_;
  std::vector<std::unordered_map<int64_t, std::vector<int64_t>>> adj_b_;
  std::map<IndexKey, std::unique_ptr<AttributeIndex>> indexes_;

  static const std::vector<int64_t> kNoPartners;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_OBJECT_STORE_H_

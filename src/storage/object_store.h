// The in-memory OODB store: one extent per class, adjacency lists per
// relationship, and attribute indexes for every attribute declared
// `indexed` in the schema. This is the substrate the executor runs
// against (the paper executed against a relational DBMS; see DESIGN.md
// §2 "Substitutions").
//
// Versioned snapshots: every substructure (extent, per-relationship
// adjacency, attribute index) lives behind a shared_ptr, so
// CloneForWrite() produces a copy-on-write sibling that deep-copies
// only the classes/relationships a commit will touch and shares the
// rest with the original. The write path (Engine::Apply) mutates the
// clone privately and publishes it as the next immutable snapshot;
// readers of the original never observe the divergence.
//
// Deletes are tombstones: row ids are positional and stable for the
// lifetime of a store lineage (adjacency lists and result bindings
// reference them), so Delete marks the slot dead instead of
// compacting. Scans skip dead rows; Delete also drops the row's index
// entries and every relationship instance it participates in, so
// indexes and Partners() never surface a dead row.
#ifndef SQOPT_STORAGE_OBJECT_STORE_H_
#define SQOPT_STORAGE_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/extent.h"
#include "storage/index.h"
#include "storage/morsel.h"

namespace sqopt {

class ObjectStore {
 public:
  explicit ObjectStore(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  // Copy-on-write clone: deep-copies the extents + indexes of
  // `classes` and the pair/adjacency structures of `rels`, sharing
  // everything else with this store. The caller must only mutate the
  // named classes/relationships on the clone — mutating anything else
  // would write through shared state visible to this store's readers.
  // (Extent "deep copies" are themselves segment-sharing shells; only
  // the segments a commit actually writes split off — see extent.h.)
  std::unique_ptr<ObjectStore> CloneForWrite(
      const std::set<ClassId>& classes, const std::set<RelId>& rels) const;

  // As above, but clones indexes only for `index_classes` (a subset of
  // `classes`). Index trees have no segment-level CoW, so cloning one
  // is O(entries); the commit path passes only the classes whose
  // INDEXED attributes a batch actually touches (inserts/deletes, or
  // an update to an indexed attribute) and shares the rest.
  std::unique_ptr<ObjectStore> CloneForWrite(
      const std::set<ClassId>& classes, const std::set<RelId>& rels,
      const std::set<ClassId>& index_classes) const;

  // Inserts an object into `class_id`'s extent, maintaining indexes.
  Result<int64_t> Insert(ClassId class_id, Object obj);

  // Registers an instance (pair) of relationship `rel_id` between a row
  // of the relationship's class `a` and a row of class `b`. Duplicate
  // pairs are rejected with kAlreadyExists; dead endpoints with
  // kFailedPrecondition.
  Status Link(RelId rel_id, int64_t row_a, int64_t row_b);

  // Removes one relationship instance (both adjacency directions).
  // kNotFound when the pair does not exist.
  Status Unlink(RelId rel_id, int64_t row_a, int64_t row_b);

  // Overwrites one attribute of an existing live object, keeping any
  // index on the attribute consistent. `attr_id` must resolve on the
  // class.
  Status UpdateAttribute(ClassId class_id, int64_t row, AttrId attr_id,
                         Value value);

  // Tombstones one live row: drops its index entries, unlinks every
  // relationship instance it participates in, and marks the slot dead.
  // Row ids of other objects are unaffected.
  Status Delete(ClassId class_id, int64_t row);

  const Extent& extent(ClassId class_id) const {
    return *extents_[class_id];
  }
  // Row SLOTS including tombstones — the positional scan bound.
  int64_t NumObjects(ClassId class_id) const {
    return extents_[class_id]->size();
  }
  // Live rows only — what statistics and cardinality estimates use.
  int64_t NumLiveObjects(ClassId class_id) const {
    return extents_[class_id]->live_count();
  }
  bool IsLive(ClassId class_id, int64_t row) const {
    return extents_[class_id]->IsLive(row);
  }
  int64_t NumPairs(RelId rel_id) const {
    return static_cast<int64_t>(rels_[rel_id]->pairs.size());
  }

  // Splits `class_id`'s extent into consecutive row-range morsels of at
  // most `morsel_size` rows (the last may be short; non-positive sizes
  // fall back to kDefaultMorselSize). The ranges cover every row slot
  // exactly once, in row order — the parallel executor's scheduling
  // units (the pipeline skips tombstoned rows inside each morsel).
  std::vector<Morsel> PartitionExtent(ClassId class_id,
                                      int64_t morsel_size) const {
    return MakeMorsels(NumObjects(class_id), morsel_size);
  }

  // Partner rows of `row` (a row of `from_class`) across `rel_id`.
  // `from_class` must be one of the relationship's endpoints.
  const std::vector<int64_t>& Partners(RelId rel_id, ClassId from_class,
                                       int64_t row) const;

  // The index on `ref`, or null if the attribute is not indexed.
  const AttributeIndex* GetIndex(const AttrRef& ref) const;

  // Statistics raw material (live rows only).
  int64_t DistinctValues(const AttrRef& ref) const;
  std::pair<Value, Value> MinMax(const AttrRef& ref) const;  // null/null
                                                             // if empty
  // All live values of `ref`, in row order (histogram raw material).
  std::vector<Value> LiveValues(const AttrRef& ref) const;

  // Resets the probe counters on all indexes.
  void ResetMeters();

  // --- Persistence hooks (src/persist/snapshot.cc). The restore
  // methods replace whole substructures on a freshly-constructed store;
  // they must not be called on a store that shares state with readers
  // (a CloneForWrite sibling). ---

  // All instances of `rel_id`, in insertion order.
  const std::vector<std::pair<int64_t, int64_t>>& Pairs(RelId rel_id) const {
    return rels_[rel_id]->pairs;
  }

  // Replaces `class_id`'s extent with deserialized whole-extent
  // columns (values for every row slot, live and tombstoned alike).
  // Indexes are NOT maintained: the snapshot restores them separately
  // via RestoreIndexEntries.
  Status RestoreClassColumns(ClassId class_id, std::vector<ColumnData> cols,
                             std::vector<uint8_t> live);

  // Replaces `rel_id`'s instances and rebuilds both adjacency
  // directions. Endpoint rows must exist (extents restore first).
  Status RestoreRelationshipPairs(
      RelId rel_id, std::vector<std::pair<int64_t, int64_t>> pairs);

  // Replaces the index on (class_id, attr_id) with a bulk-built tree
  // over the deserialized entries, which must arrive key-ascending (the
  // serialized form is a leaf-chain scan); unsorted input and
  // attributes that are not indexed under this schema are rejected as
  // corruption.
  Status RestoreIndexEntries(ClassId class_id, AttrId attr_id,
                             std::vector<std::pair<Value, int64_t>> entries);

 private:
  // Shell constructor for CloneForWrite: members are filled by copying
  // the source's shared_ptrs, so building fresh substructures (the
  // public constructor's job) would only allocate garbage.
  ObjectStore() = default;

  // Index key: (class, attr id) — inherited attributes are indexed per
  // concrete class.
  using IndexKey = std::pair<ClassId, AttrId>;

  // One relationship's instances: the pair list and both adjacency
  // directions, cloned as a unit by CloneForWrite.
  struct RelData {
    std::vector<std::pair<int64_t, int64_t>> pairs;
    std::unordered_map<int64_t, std::vector<int64_t>> adj_a;
    std::unordered_map<int64_t, std::vector<int64_t>> adj_b;
  };

  const Schema* schema_;
  std::vector<std::shared_ptr<Extent>> extents_;
  std::vector<std::shared_ptr<RelData>> rels_;
  std::map<IndexKey, std::shared_ptr<AttributeIndex>> indexes_;

  static const std::vector<int64_t> kNoPartners;
};

}  // namespace sqopt

#endif  // SQOPT_STORAGE_OBJECT_STORE_H_

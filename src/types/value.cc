#include "types/value.h"

#include <charconv>
#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace sqopt {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kRef:
      return "ref";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
    case 5:
      return ValueType::kRef;
  }
  return ValueType::kNull;
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt) return static_cast<double>(int_value());
  return double_value();
}

std::optional<int> Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) return std::nullopt;
  if (is_numeric() && other.is_numeric()) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = int_value(), y = other.int_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = AsDouble(), y = other.AsDouble();
    if (std::isnan(x) || std::isnan(y)) return std::nullopt;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) return std::nullopt;
  switch (a) {
    case ValueType::kBool: {
      int x = bool_value() ? 1 : 0, y = other.bool_value() ? 1 : 0;
      return x - y;
    }
    case ValueType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kRef: {
      Oid x = ref_value(), y = other.ref_value();
      if (x == y) return 0;
      return x < y ? -1 : 1;
    }
    default:
      return std::nullopt;
  }
}

namespace {

// Orders types into comparison classes so that int and double interleave.
int TypeClass(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
    case ValueType::kRef:
      return 4;
  }
  return 5;
}

}  // namespace

bool Value::operator<(const Value& other) const {
  int ca = TypeClass(type()), cb = TypeClass(other.type());
  if (ca != cb) return ca < cb;
  std::optional<int> cmp = Compare(other);
  if (cmp.has_value()) return *cmp < 0;
  return false;  // nulls, NaNs: treated as equal for ordering purposes
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      std::string s = std::to_string(double_value());
      return s;
    }
    case ValueType::kString:
      return "\"" + string_value() + "\"";
    case ValueType::kRef: {
      Oid oid = ref_value();
      return "@" + std::to_string(oid.class_id) + ":" +
             std::to_string(oid.row);
    }
  }
  return "?";
}

Result<Value> Value::Parse(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) {
    return Status::ParseError("empty value literal");
  }
  if (s == "null") return Value::Null();
  if (s == "true") return Value::Bool(true);
  if (s == "false") return Value::Bool(false);
  if ((s.front() == '"' && s.back() == '"' && s.size() >= 2) ||
      (s.front() == '\'' && s.back() == '\'' && s.size() >= 2)) {
    return Value::String(std::string(s.substr(1, s.size() - 2)));
  }
  if (LooksLikeInteger(s)) {
    int64_t v = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec == std::errc() && ptr == s.data() + s.size()) {
      return Value::Int(v);
    }
  }
  if (LooksLikeDouble(s)) {
    return Value::Double(std::stod(std::string(s)));
  }
  // Bare word: treat as a string constant (the paper writes string
  // constants unquoted in places, e.g. SFI).
  return Value::String(std::string(s));
}

size_t Value::Hash() const {
  std::hash<std::string> hs;
  std::hash<double> hd;
  std::hash<int64_t> hi;
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kBool:
      return bool_value() ? 0x5bd1e995 : 0x27d4eb2f;
    case ValueType::kInt:
      // Hash ints through double when integral-valued so 3 and 3.0 agree.
      return hd(static_cast<double>(int_value()));
    case ValueType::kDouble:
      return hd(double_value());
    case ValueType::kString:
      return hs(string_value());
    case ValueType::kRef: {
      Oid oid = ref_value();
      return hi(oid.row) * 1315423911u + static_cast<size_t>(oid.class_id);
    }
  }
  return 0;
}

}  // namespace sqopt

// Typed runtime values: attribute values stored in objects, constants in
// predicates, and key values in indexes all use `Value`.
#ifndef SQOPT_TYPES_VALUE_H_
#define SQOPT_TYPES_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/status.h"

namespace sqopt {

enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kRef,  // object reference (oid into another class's extent)
};

const char* ValueTypeName(ValueType type);

// Opaque object identifier: (class ordinal, row ordinal). Used by `kRef`
// values that implement the pointer attributes of Figure 2.1.
struct Oid {
  int32_t class_id = -1;
  int64_t row = -1;

  bool valid() const { return class_id >= 0 && row >= 0; }
  bool operator==(const Oid& other) const = default;
  auto operator<=>(const Oid& other) const = default;
};

// A dynamically typed value. Small, copyable, and totally ordered within
// comparable types. Numeric types (int/double) compare across each other.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Ref(Oid oid) { return Value(Rep(oid)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  // Accessors assert on type mismatch (programming error).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }
  Oid ref_value() const { return std::get<Oid>(rep_); }

  // Numeric value as double regardless of int/double representation.
  // Requires is_numeric().
  double AsDouble() const;

  // Three-way comparison. Returns nullopt when the values are not
  // comparable (different non-numeric types, or either side null) —
  // predicate evaluation treats incomparable as "unknown" = false.
  std::optional<int> Compare(const Value& other) const;

  // Strict equality of type and content (nulls equal nulls). This is the
  // identity used by hashing/containers, NOT SQL ternary logic.
  bool operator==(const Value& other) const { return rep_ == other.rep_; }

  // Total order for use as container keys: orders first by type class,
  // then by value. Numerics order together.
  bool operator<(const Value& other) const;

  std::string ToString() const;

  // Parses "null", "true"/"false", integer, double, or a single-quoted /
  // double-quoted string literal. Bare words parse as strings.
  static Result<Value> Parse(std::string_view text);

  size_t Hash() const;

 private:
  using Rep =
      std::variant<std::monostate, bool, int64_t, double, std::string, Oid>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace sqopt

#endif  // SQOPT_TYPES_VALUE_H_

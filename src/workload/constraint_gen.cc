#include "workload/constraint_gen.h"

#include "constraints/constraint_parser.h"

namespace sqopt {

Result<std::vector<HornClause>> ExperimentConstraints(const Schema& schema) {
  // All hold on GenerateDatabase output (segment construction):
  // segment 0 <=> {refrigerated truck, frozen food, region west,
  // rating >= 8, top secret, securityClass 4, licenseClass 4, ...}.
  return ParseConstraintList(schema, R"(
# --- inter-class ---
x1: vehicle.desc = "refrigerated truck" -> cargo.desc = "frozen food"
x2: cargo.desc = "frozen food" -> supplier.region = "west"
x3: cargo.desc = "frozen food" -> vehicle.desc = "refrigerated truck"
x4: department.securityClass >= 4 -> driver.clearance = "top secret"
x5: driver.clearance = "top secret" -> department.securityClass >= 4
x6: vehicle.vclass >= 3 -> driver.licenseClass >= 3
x7: supplier.region = "west" -> cargo.weight <= 40
x8: driver.rank = "senior" -> vehicle.capacity >= 20
# --- intra-class ---
i1: supplier.rating >= 8 -> supplier.region = "west"
i2: cargo.desc = "frozen food" -> cargo.weight <= 40
i3: vehicle.desc = "refrigerated truck" -> vehicle.capacity >= 20
i4: driver.clearance = "top secret" -> driver.licenseClass >= 4
i5: department.securityClass >= 4 -> department.budget >= 100000
i6: cargo.quantity >= 500 -> cargo.weight >= 41
i7: vehicle.vclass >= 4 -> vehicle.desc = "refrigerated truck"
)");
}

std::vector<HornClause> SyntheticChainConstraints(const Schema& schema,
                                                  const AttrRef& target,
                                                  int count) {
  std::vector<HornClause> out;
  out.reserve(count);
  (void)schema;
  for (int k = 1; k <= count; ++k) {
    Predicate antecedent =
        Predicate::AttrConst(target, CompareOp::kGe, Value::Int(k));
    Predicate consequent =
        Predicate::AttrConst(target, CompareOp::kGe, Value::Int(k - 1));
    out.emplace_back("chain" + std::to_string(k),
                     std::vector<Predicate>{antecedent}, consequent);
  }
  return out;
}

}  // namespace sqopt

// The experiment constraint set: 15 hand-designed Horn clauses (about 3
// per class, matching §4's "each object class had an average of 3
// semantic constraints attached to it") that hold on every database
// produced by GenerateDatabase thanks to the segment construction.
// Also provides a synthetic constraint generator for the Fig 4.1
// transformation-time sweeps, where only the count of relevant
// constraints matters.
#ifndef SQOPT_WORKLOAD_CONSTRAINT_GEN_H_
#define SQOPT_WORKLOAD_CONSTRAINT_GEN_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "constraints/horn_clause.h"

namespace sqopt {

// Requires the experiment schema (BuildExperimentSchema).
Result<std::vector<HornClause>> ExperimentConstraints(const Schema& schema);

// Synthetic chain constraints over one class's integer attribute for
// complexity sweeps: attr >= k -> attr >= k-1, for k = 1..count. All
// intra-class, all relevant to any query touching `target`, and they
// chain, so closure size and firing counts scale with `count`.
std::vector<HornClause> SyntheticChainConstraints(const Schema& schema,
                                                  const AttrRef& target,
                                                  int count);

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_CONSTRAINT_GEN_H_

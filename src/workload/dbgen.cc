#include "workload/dbgen.h"

#include <algorithm>
#include <array>

#include "catalog/schema_builder.h"
#include "common/rng.h"

namespace sqopt {

Result<Schema> BuildExperimentSchema() {
  SchemaBuilder b;
  b.AddClass("supplier")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("region", ValueType::kString, /*indexed=*/true)
      .Attr("rating", ValueType::kInt);
  b.AddClass("cargo")
      .Attr("code", ValueType::kString, /*indexed=*/true)
      .Attr("desc", ValueType::kString, /*indexed=*/true)
      .Attr("quantity", ValueType::kInt)
      .Attr("weight", ValueType::kInt);
  b.AddClass("vehicle")
      .Attr("vehicleNo", ValueType::kInt, /*indexed=*/true)
      .Attr("desc", ValueType::kString, /*indexed=*/true)
      .Attr("vclass", ValueType::kInt)
      .Attr("capacity", ValueType::kInt);
  b.AddClass("driver")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("clearance", ValueType::kString)
      .Attr("rank", ValueType::kString)
      .Attr("licenseClass", ValueType::kInt, /*indexed=*/true);
  b.AddClass("department")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("securityClass", ValueType::kInt, /*indexed=*/true)
      .Attr("budget", ValueType::kInt);

  b.AddRelationship("supplies", "supplier", "cargo");
  b.AddRelationship("collects", "cargo", "vehicle");
  b.AddRelationship("drives", "driver", "vehicle");
  b.AddRelationship("belongsTo", "driver", "department");
  b.AddRelationship("shipsTo", "supplier", "department");
  b.AddRelationship("inspects", "driver", "cargo");
  return b.Build();
}

std::vector<DbSpec> PaperDatabases() {
  return {
      DbSpec{"DB1", 52, 77},
      DbSpec{"DB2", 104, 154},
      DbSpec{"DB3", 208, 308},
      DbSpec{"DB4", 208, 616},
  };
}

namespace {

// Segment-determined attribute vocabulary. Index = segment.
constexpr std::array<const char*, kNumSegments> kVehicleDesc = {
    "refrigerated truck", "tanker", "van", "flatbed"};
constexpr std::array<const char*, kNumSegments> kCargoDesc = {
    "frozen food", "fuel", "parcels", "timber"};
constexpr std::array<const char*, kNumSegments> kRegion = {"west", "north",
                                                           "east", "south"};
constexpr std::array<const char*, kNumSegments> kClearance = {
    "top secret", "secret", "confidential", "public"};

}  // namespace

Result<Object> MakeSegmentObject(const Schema& schema, ClassId class_id,
                                 int segment, int64_t ordinal) {
  if (segment < 0 || segment >= kNumSegments) {
    return Status::InvalidArgument("segment out of range");
  }
  const int seg = segment;
  const std::string tag = "-w" + std::to_string(ordinal);
  const std::string& name = schema.object_class(class_id).name;
  Object obj;
  // Values sit at fixed points of the ranges GenerateDatabase samples,
  // so every ExperimentConstraints clause holds by the same argument.
  if (name == "supplier") {
    obj.values = {Value::String("supplier" + tag),
                  Value::String(kRegion[seg]),
                  Value::Int(seg == 0 ? 9 : 5)};
  } else if (name == "cargo") {
    obj.values = {Value::String("cargo" + tag),
                  Value::String(kCargoDesc[seg]),
                  Value::Int(seg == 0 ? 100 : 700),
                  Value::Int(seg == 0 ? 20 : 60)};
  } else if (name == "vehicle") {
    obj.values = {Value::Int(100000 + ordinal),
                  Value::String(kVehicleDesc[seg]), Value::Int(4 - seg),
                  Value::Int(seg <= 1 ? 30 : 10)};
  } else if (name == "driver") {
    obj.values = {Value::String("driver" + tag),
                  Value::String(kClearance[seg]),
                  Value::String(seg <= 1 ? "senior" : "junior"),
                  Value::Int(4 - seg)};
  } else if (name == "department") {
    obj.values = {Value::String("dept" + tag), Value::Int(4 - seg),
                  Value::Int(seg == 0 ? 150000 : 50000)};
  } else {
    return Status::InvalidArgument(
        "MakeSegmentObject requires the experiment schema (got class '" +
        name + "')");
  }
  return obj;
}

int SegmentOfObject(const Schema& schema, ClassId class_id,
                    const Object& object) {
  const std::string& name = schema.object_class(class_id).name;
  // Object::values is in extent layout order; AttrId is an encoded
  // (declaring class, slot) pair, so resolve names through LayoutOf.
  static const Value kNull = Value::Null();
  const std::vector<AttrId> layout = schema.LayoutOf(class_id);
  auto attr = [&](const char* attr_name) -> const Value& {
    const AttrId id = schema.FindAttribute(class_id, attr_name).attr_id;
    for (size_t i = 0; i < layout.size() && i < object.values.size(); ++i) {
      if (layout[i] == id) return object.values[i];
    }
    return kNull;
  };
  // "4 - seg" integers (vclass / licenseClass / securityClass).
  auto inverse_int = [](const Value& v) -> int {
    if (v.type() != ValueType::kInt) return -1;
    const int64_t seg = 4 - v.int_value();
    return seg >= 0 && seg < kNumSegments ? static_cast<int>(seg) : -1;
  };
  auto vocab_index = [](const auto& vocab, const Value& v) -> int {
    if (v.type() != ValueType::kString) return -1;
    for (int i = 0; i < kNumSegments; ++i) {
      if (v.string_value() == vocab[static_cast<size_t>(i)]) return i;
    }
    return -1;
  };
  int seg = -1;
  if (name == "supplier") {
    seg = vocab_index(kRegion, attr("region"));
  } else if (name == "cargo") {
    seg = vocab_index(kCargoDesc, attr("desc"));
  } else if (name == "vehicle") {
    seg = inverse_int(attr("vclass"));
  } else if (name == "driver") {
    seg = inverse_int(attr("licenseClass"));
  } else if (name == "department") {
    seg = inverse_int(attr("securityClass"));
  }
  if (seg >= 0) return seg;
  // FNV-1a over the tuple: deterministic for any schema / value set.
  uint64_t h = 1469598103934665603ull;
  for (const Value& v : object.values) {
    h = (h ^ static_cast<uint64_t>(v.Hash())) * 1099511628211ull;
  }
  return static_cast<int>(h % static_cast<uint64_t>(kNumSegments));
}

Result<std::unique_ptr<ObjectStore>> GenerateDatabase(const Schema& schema,
                                                      const DbSpec& spec,
                                                      uint64_t seed) {
  auto store = std::make_unique<ObjectStore>(&schema);
  Rng rng(seed);

  ClassId supplier = schema.FindClass("supplier");
  ClassId cargo = schema.FindClass("cargo");
  ClassId vehicle = schema.FindClass("vehicle");
  ClassId driver = schema.FindClass("driver");
  ClassId department = schema.FindClass("department");
  if (supplier == kInvalidClass || cargo == kInvalidClass ||
      vehicle == kInvalidClass || driver == kInvalidClass ||
      department == kInvalidClass) {
    return Status::InvalidArgument(
        "GenerateDatabase requires the experiment schema");
  }

  int64_t n = spec.class_cardinality;

  // Attribute values are functions of the segment so that every clause
  // of ExperimentConstraints() holds by construction (segments are
  // join-closed). Per-class generation, round-robin segments.
  for (int64_t i = 0; i < n; ++i) {
    int seg = SegmentOfRow(i);
    // supplier(name, region, rating): rating >= 8 iff seg 0.
    Object s;
    s.values = {Value::String("supplier-" + std::to_string(i)),
                Value::String(kRegion[seg]),
                Value::Int(seg == 0 ? rng.UniformInt(8, 10)
                                    : rng.UniformInt(1, 7))};
    SQOPT_RETURN_IF_ERROR(store->Insert(supplier, std::move(s)).status());

    // cargo(code, desc, quantity, weight): weight <= 40 iff seg 0;
    // quantity >= 500 iff seg != 0.
    Object c;
    c.values = {Value::String("cargo-" + std::to_string(i)),
                Value::String(kCargoDesc[seg]),
                Value::Int(seg == 0 ? rng.UniformInt(1, 499)
                                    : rng.UniformInt(500, 1000)),
                Value::Int(seg == 0 ? rng.UniformInt(10, 40)
                                    : rng.UniformInt(41, 100))};
    SQOPT_RETURN_IF_ERROR(store->Insert(cargo, std::move(c)).status());

    // vehicle(vehicleNo, desc, vclass, capacity): vclass = 4 - seg;
    // capacity >= 20 iff seg in {0, 1}.
    Object v;
    v.values = {Value::Int(i),
                Value::String(kVehicleDesc[seg]),
                Value::Int(4 - seg),
                Value::Int(seg <= 1 ? rng.UniformInt(20, 50)
                                    : rng.UniformInt(5, 19))};
    SQOPT_RETURN_IF_ERROR(store->Insert(vehicle, std::move(v)).status());

    // driver(name, clearance, rank, licenseClass): licenseClass = 4-seg,
    // rank senior iff seg in {0, 1}.
    Object d;
    d.values = {Value::String("driver-" + std::to_string(i)),
                Value::String(kClearance[seg]),
                Value::String(seg <= 1 ? "senior" : "junior"),
                Value::Int(4 - seg)};
    SQOPT_RETURN_IF_ERROR(store->Insert(driver, std::move(d)).status());

    // department(name, securityClass, budget): securityClass = 4 - seg,
    // budget >= 100000 iff seg 0.
    Object dept;
    dept.values = {Value::String("dept-" + std::to_string(i)),
                   Value::Int(4 - seg),
                   Value::Int(seg == 0 ? rng.UniformInt(100000, 200000)
                                       : rng.UniformInt(10000, 99999))};
    SQOPT_RETURN_IF_ERROR(store->Insert(department, std::move(dept)).status());
  }

  // Relationship instances: uniform within-segment pairs. Row r belongs
  // to segment r % kNumSegments, so we sample a segment, then rows
  // congruent to it.
  auto sample_row = [&](int seg) -> int64_t {
    int64_t per_seg = (n - seg + kNumSegments - 1) / kNumSegments;
    if (per_seg <= 0) return seg;  // degenerate tiny n
    int64_t k = rng.UniformInt(0, per_seg - 1);
    return seg + k * kNumSegments;
  };
  for (const Relationship& rel : schema.relationships()) {
    // Totality first: the diagonal pairing (row i with row i) keeps
    // segments aligned and guarantees every object participates in
    // every relationship it can. King's class elimination rule — and
    // hence the paper's Figure 2.3 transformation — is only
    // result-preserving when dangling classes are total.
    int64_t diagonal = std::min(n, spec.rel_cardinality);
    for (int64_t i = 0; i < diagonal; ++i) {
      SQOPT_RETURN_IF_ERROR(store->Link(rel.id, i, i));
    }
    for (int64_t i = diagonal; i < spec.rel_cardinality; ++i) {
      // Pairs are unique (Link rejects duplicates); retry on collision.
      bool linked = false;
      for (int attempt = 0; attempt < 1000 && !linked; ++attempt) {
        int seg = static_cast<int>(rng.Index(kNumSegments));
        int64_t row_a = sample_row(seg);
        int64_t row_b = sample_row(seg);
        Status link_status = store->Link(rel.id, row_a, row_b);
        if (link_status.ok()) {
          linked = true;
        } else if (link_status.code() != StatusCode::kAlreadyExists) {
          return link_status;
        }
      }
      if (!linked) {
        return Status::Internal(
            "could not place a unique relationship pair for '" + rel.name +
            "'; segment too saturated");
      }
    }
  }
  return store;
}

}  // namespace sqopt

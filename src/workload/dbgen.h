// Experiment database generator reproducing Table 4.1.
//
// The paper evaluates on a 5-class, 6-relationship schema with the
// database sizes of Table 4.1 (the exact schema is not printed; we use
// a 5-class cut of the transport domain with 6 relationships — see
// DESIGN.md "Substitutions"). Data generation is *segmented*: every
// object belongs to one of kNumSegments worlds, relationship instances
// only link objects within a segment, and segment membership determines
// the constrained attribute values. Because joins can never cross
// segments, every inter-class constraint of ExperimentConstraints()
// holds along ANY join path, which keeps semantic optimization sound on
// this data (optimized and original queries return identical results).
#ifndef SQOPT_WORKLOAD_DBGEN_H_
#define SQOPT_WORKLOAD_DBGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/object_store.h"

namespace sqopt {

inline constexpr int kNumSegments = 4;

// Classes: supplier, cargo, vehicle, driver, department.
// Relationships (6): supplies(supplier,cargo), collects(cargo,vehicle),
// drives(driver,vehicle), belongsTo(driver,department),
// shipsTo(supplier,department), inspects(driver,cargo).
Result<Schema> BuildExperimentSchema();

// One database instance configuration (a row of Table 4.1).
struct DbSpec {
  std::string name;
  int64_t class_cardinality = 52;  // average instances per class
  int64_t rel_cardinality = 77;    // average pairs per relationship
};

// DB1..DB4 exactly as in Table 4.1: cardinalities (52,77), (104,154),
// (208,308), (208,616).
std::vector<DbSpec> PaperDatabases();

// Generates a store satisfying every ExperimentConstraints() clause.
// Deterministic in `seed`.
Result<std::unique_ptr<ObjectStore>> GenerateDatabase(const Schema& schema,
                                                      const DbSpec& spec,
                                                      uint64_t seed);

// The segment an object row was assigned by GenerateDatabase (row-major
// round robin; exposed for tests).
inline int SegmentOfRow(int64_t row) {
  return static_cast<int>(row % kNumSegments);
}

// Deterministic, constraint-consistent attribute values for one new
// object of `class_id` in `segment` — the write-path counterpart of
// GenerateDatabase's value model, used by mutation workloads (fuzzers,
// benches) to grow a database without breaking any of the 15
// ExperimentConstraints. `ordinal` seeds only the name-like
// attributes, so objects of one segment are interchangeable w.r.t.
// every constraint. Requires the experiment schema.
Result<Object> MakeSegmentObject(const Schema& schema, ClassId class_id,
                                 int segment, int64_t ordinal);

// The segment an object's attribute values pin it to — the inverse of
// the generator's value model (supplier.region, cargo.desc,
// vehicle.vclass, driver.licenseClass, department.securityClass are
// all segment-determined and never mutated by the constraint-
// consistent write workloads). This is the sharded engine's partition
// key: it is derivable from the object alone, so write routing can be
// rebuilt from a mutation log during recovery. Objects outside the
// experiment value model fall back to a deterministic hash of the
// whole tuple, still in [0, kNumSegments).
int SegmentOfObject(const Schema& schema, ClassId class_id,
                    const Object& object);

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_DBGEN_H_

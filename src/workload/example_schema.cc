#include "workload/example_schema.h"

#include "catalog/schema_builder.h"
#include "constraints/constraint_parser.h"
#include "query/query_parser.h"

namespace sqopt {

Result<Schema> BuildFigure21Schema() {
  SchemaBuilder b;
  b.AddClass("supplier")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("address", ValueType::kString);
  b.AddClass("cargo")
      .Attr("code", ValueType::kString, /*indexed=*/true)
      .Attr("desc", ValueType::kString, /*indexed=*/true)
      .Attr("quantity", ValueType::kInt);
  b.AddClass("vehicle")
      .Attr("vehicle#", ValueType::kInt, /*indexed=*/true)
      .Attr("desc", ValueType::kString, /*indexed=*/true)
      .Attr("class", ValueType::kInt);
  b.AddClass("engine")
      .Attr("engine#", ValueType::kInt, /*indexed=*/true)
      .Attr("capacity", ValueType::kInt);
  b.AddClass("employee")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("clearance", ValueType::kString)
      .Attr("rank", ValueType::kString);
  b.AddClass("manager").Parent("employee");
  b.AddClass("driver")
      .Parent("employee")
      .Attr("license#", ValueType::kInt)
      .Attr("licenseClass", ValueType::kInt)
      .Attr("licenseDate", ValueType::kString);
  b.AddClass("supervisor").Parent("driver");
  b.AddClass("department")
      .Attr("name", ValueType::kString, /*indexed=*/true)
      .Attr("securityClass", ValueType::kInt);

  b.AddRelationship("supplies", "supplier", "cargo");
  b.AddRelationship("collects", "cargo", "vehicle");
  b.AddRelationship("engComp", "vehicle", "engine");
  b.AddRelationship("drives", "driver", "vehicle");
  b.AddRelationship("belongsTo", "employee", "department");
  return b.Build();
}

Result<std::vector<HornClause>> Figure22Constraints(const Schema& schema) {
  // Textual form of Figure 2.2 (the paper writes them with class
  // templates; predicates here carry the same content):
  //  c1: refrigerated trucks only carry frozen food
  //  c2: frozen food comes only from SFI
  //  c3: a driver's license classification bounds the vehicle's class
  //  c4: only research staff members are managers
  //  c5: development-department staff have top-secret clearance
  return ParseConstraintList(schema, R"(
c1: vehicle.desc = "refrigerated truck" -> cargo.desc = "frozen food"
c2: cargo.desc = "frozen food" -> supplier.name = "SFI"
c3: -> driver.licenseClass >= vehicle.class
c4: -> manager.rank = "research staff member"
c5: department.name = "development" -> employee.clearance = "top secret"
)");
}

Result<Query> Figure23SampleQuery(const Schema& schema) {
  return ParseQuery(schema, R"(
(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity}
        {}
        {vehicle.desc = "refrigerated truck", supplier.name = "SFI"}
        {collects, supplies}
        {supplier, cargo, vehicle}))");
}

}  // namespace sqopt

// The paper's running example: the Figure 2.1 database schema, the five
// Figure 2.2 semantic constraints, and the Figure 2.3 sample query.
// Used by the quickstart example and the paper-example integration test.
#ifndef SQOPT_WORKLOAD_EXAMPLE_SCHEMA_H_
#define SQOPT_WORKLOAD_EXAMPLE_SCHEMA_H_

#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "constraints/horn_clause.h"
#include "query/query.h"

namespace sqopt {

// Figure 2.1: supplier, cargo, vehicle, engine, employee (with manager,
// driver, supervisor subclasses), department; relationships supplies,
// collects, engComp, drives, belongsTo. Pointer attributes in the paper
// become Relationship entries here.
Result<Schema> BuildFigure21Schema();

// Figure 2.2: c1..c5. c3 and c4 have no predicate antecedents (they are
// conditioned on class membership alone).
Result<std::vector<HornClause>> Figure22Constraints(const Schema& schema);

// Figure 2.3's sample query: refrigerated trucks sent to SFI.
Result<Query> Figure23SampleQuery(const Schema& schema);

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_EXAMPLE_SCHEMA_H_

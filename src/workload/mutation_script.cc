#include "workload/mutation_script.h"

#include <utility>

#include "workload/dbgen.h"
#include "workload/query_pool.h"

namespace sqopt {

MutationScript::MutationScript(const Schema* schema,
                               std::vector<int64_t> base_rows,
                               uint64_t seed)
    : schema_(schema), base_rows_(std::move(base_rows)), rng_(seed) {
  class_order_ = {schema_->FindClass("supplier"),
                  schema_->FindClass("cargo"),
                  schema_->FindClass("vehicle"),
                  schema_->FindClass("driver"),
                  schema_->FindClass("department")};
}

Status MutationScript::StageWorldInsert(MutationBatch* batch) {
  const int seg = static_cast<int>(rng_.Index(kNumSegments));
  const int64_t ordinal = 1000000 + worlds_inserted_;
  std::vector<int64_t> handle(schema_->num_classes(), -1);
  for (ClassId cid : class_order_) {
    SQOPT_ASSIGN_OR_RETURN(Object obj,
                           MakeSegmentObject(*schema_, cid, seg, ordinal));
    handle[cid] = batch->Insert(cid, std::move(obj));
  }
  for (const Relationship& rel : schema_->relationships()) {
    batch->Link(rel.id, handle[rel.a], handle[rel.b]);
  }
  ++worlds_inserted_;
  return Status::OK();
}

Status MutationScript::StageUpdate(MutationBatch* batch) {
  const ClassId cid = class_order_[rng_.Index(class_order_.size())];
  // Fixture rows only: they never die, and their segment is positional.
  const int64_t row = static_cast<int64_t>(
      rng_.Index(static_cast<size_t>(base_rows_[cid])));
  const int seg = SegmentOfRow(row);
  auto attr = [&](const char* name) {
    return schema_->FindAttribute(cid, name).attr_id;
  };
  // Values stay inside the segment's legal range, mirroring
  // GenerateDatabase's value model, so every constraint keeps holding.
  if (cid == class_order_[0]) {  // supplier
    if (rng_.Bernoulli(0.5)) {
      batch->Update(cid, row, attr("name"),
                    Value::String("ws" + std::to_string(rng_.Next() % 997)));
    } else {
      batch->Update(cid, row, attr("rating"),
                    Value::Int(seg == 0 ? rng_.UniformInt(8, 10)
                                        : rng_.UniformInt(1, 7)));
    }
  } else if (cid == class_order_[1]) {  // cargo
    switch (rng_.Index(3)) {
      case 0:
        batch->Update(cid, row, attr("code"),
                      Value::String("wc" + std::to_string(rng_.Next() % 997)));
        break;
      case 1:
        batch->Update(cid, row, attr("quantity"),
                      Value::Int(seg == 0 ? rng_.UniformInt(1, 499)
                                          : rng_.UniformInt(500, 1000)));
        break;
      default:
        batch->Update(cid, row, attr("weight"),
                      Value::Int(seg == 0 ? rng_.UniformInt(10, 40)
                                          : rng_.UniformInt(41, 100)));
    }
  } else if (cid == class_order_[2]) {  // vehicle
    if (rng_.Bernoulli(0.5)) {
      batch->Update(cid, row, attr("vehicleNo"),
                    Value::Int(rng_.UniformInt(200000, 299999)));
    } else {
      batch->Update(cid, row, attr("capacity"),
                    Value::Int(seg <= 1 ? rng_.UniformInt(20, 50)
                                        : rng_.UniformInt(5, 19)));
    }
  } else if (cid == class_order_[3]) {  // driver
    batch->Update(cid, row, attr("name"),
                  Value::String("wd" + std::to_string(rng_.Next() % 997)));
  } else {  // department
    batch->Update(cid, row, attr("budget"),
                  Value::Int(seg == 0 ? rng_.UniformInt(100000, 200000)
                                      : rng_.UniformInt(10000, 99999)));
  }
  return Status::OK();
}

Status MutationScript::StageRelinkOrUpdate(MutationBatch* batch) {
  if (worlds_inserted_ == worlds_deleted_) return StageUpdate(batch);
  // An alive world still carries all six diagonal links (deletes take
  // whole worlds, relinks restore what they cut) — unlink one and put
  // it back in the same batch, a structural no-op that still pushes
  // two framed ops through the WAL.
  const int64_t w =
      worlds_deleted_ +
      static_cast<int64_t>(rng_.Index(
          static_cast<size_t>(worlds_inserted_ - worlds_deleted_)));
  const Relationship& rel = schema_->relationship(
      static_cast<RelId>(rng_.Index(schema_->num_relationships())));
  batch->Unlink(rel.id, WorldRow(rel.a, w), WorldRow(rel.b, w));
  batch->Link(rel.id, WorldRow(rel.a, w), WorldRow(rel.b, w));
  return Status::OK();
}

Result<MutationBatch> MutationScript::Next() {
  for (ClassId cid : class_order_) {
    if (cid == kInvalidClass) {
      return Status::InvalidArgument(
          "MutationScript requires the experiment schema");
    }
  }
  MutationBatch batch;
  switch (batch_index_ % 4) {
    case 0:
    case 2:
      SQOPT_RETURN_IF_ERROR(StageWorldInsert(&batch));
      break;
    case 1: {
      const int updates = static_cast<int>(rng_.UniformInt(1, 3));
      for (int i = 0; i < updates; ++i) {
        SQOPT_RETURN_IF_ERROR(StageUpdate(&batch));
      }
      break;
    }
    default:
      if (worlds_inserted_ - worlds_deleted_ > 2 && rng_.Bernoulli(0.6)) {
        // Retire the oldest alive world: its five rows tombstone and
        // their links cascade away, on the engine and on replay alike.
        const int64_t w = worlds_deleted_;
        for (ClassId cid : class_order_) {
          batch.Delete(cid, WorldRow(cid, w));
        }
        ++worlds_deleted_;
      } else {
        SQOPT_RETURN_IF_ERROR(StageRelinkOrUpdate(&batch));
      }
  }
  ++batch_index_;
  return batch;
}

std::vector<std::string> MutationScript::QueryPool() {
  return ExperimentQueryPool();
}

}  // namespace sqopt

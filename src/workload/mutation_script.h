// Deterministic, constraint-consistent mutation scripts over the
// experiment schema — the raw material of the crash-recovery harness
// and its oracle. Batch k is fully determined by (base row counts,
// seed, k), so two processes that replay the same prefix from the same
// fixture arrive at bit-identical stores: the harness's writer commits
// batches against a durable engine while the verifier regenerates the
// exact committed prefix into a fresh in-memory engine and diffs every
// query between the two.
//
// The op mix covers the whole WAL vocabulary: "world" inserts (one
// object per class, linked across all six relationships — the shape
// GenerateDatabase produces), segment-consistent attribute updates,
// whole-world deletes (exercising cascade unlink on replay), and
// unlink/relink round-trips. Every staged batch satisfies all 15
// ExperimentConstraints, so Engine::Apply never rejects one.
#ifndef SQOPT_WORKLOAD_MUTATION_SCRIPT_H_
#define SQOPT_WORKLOAD_MUTATION_SCRIPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/mutation.h"
#include "catalog/schema.h"
#include "common/rng.h"
#include "common/status.h"

namespace sqopt {

class MutationScript {
 public:
  // `schema` must be the experiment schema (BuildExperimentSchema) and
  // must outlive the script. `base_rows[cid]` is the extent SLOT count
  // of class cid in the fixture the script runs against (all fixture
  // rows live, segment = row % kNumSegments — what GenerateDatabase
  // produces); the script computes the row ids of its own inserts from
  // these, so it never needs to see the store.
  MutationScript(const Schema* schema, std::vector<int64_t> base_rows,
                 uint64_t seed);

  // The next batch, never empty. Batches must be consumed in order —
  // the script advances its world bookkeeping as they are handed out.
  Result<MutationBatch> Next();

  int64_t batches_issued() const { return batch_index_; }

  // The shared experiment query pool (see workload/query_pool.h); the
  // recovery differential runs it on both engines after every kill.
  // Kept as a member so existing harness call sites stay valid — the
  // pool itself is defined once, in ExperimentQueryPool().
  static std::vector<std::string> QueryPool();

 private:
  // Row id of world `w`'s member in class `cid` (worlds append exactly
  // one row per class, in insertion order).
  int64_t WorldRow(ClassId cid, int64_t w) const {
    return base_rows_[cid] + w;
  }

  Status StageWorldInsert(MutationBatch* batch);
  Status StageUpdate(MutationBatch* batch);
  Status StageRelinkOrUpdate(MutationBatch* batch);

  const Schema* schema_;
  std::vector<int64_t> base_rows_;
  Rng rng_;
  int64_t batch_index_ = 0;
  int64_t worlds_inserted_ = 0;
  int64_t worlds_deleted_ = 0;  // worlds [0, worlds_deleted_) are dead
  std::vector<ClassId> class_order_;
};

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_MUTATION_SCRIPT_H_

#include "workload/path_enum.h"

#include <set>
#include <sstream>

namespace sqopt {

std::string SchemaPath::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (size_t i = 0; i < classes.size(); ++i) {
    if (i > 0) {
      os << " -[" << schema.relationship(relationships[i - 1]).name
         << "]- ";
    }
    os << schema.object_class(classes[i]).name;
  }
  return os.str();
}

namespace {

void Extend(const Schema& schema, SchemaPath* current,
            std::set<ClassId>* used_classes, std::set<RelId>* used_rels,
            size_t min_classes, size_t max_classes,
            std::vector<SchemaPath>* out) {
  if (current->classes.size() >= min_classes) {
    // Deduplicate reversals: keep only paths whose endpoints are in
    // non-decreasing (class id, first rel) order.
    bool canonical = true;
    if (current->classes.size() >= 2) {
      ClassId front = current->classes.front();
      ClassId back = current->classes.back();
      if (front > back) canonical = false;
      if (front == back) {
        // Palindromic endpoints: compare relationship sequences.
        const std::vector<RelId>& rels = current->relationships;
        std::vector<RelId> reversed(rels.rbegin(), rels.rend());
        if (reversed < rels) canonical = false;
      }
    }
    if (canonical) out->push_back(*current);
  }
  if (current->classes.size() >= max_classes) return;

  ClassId tip = current->classes.back();
  for (const Relationship& rel : schema.relationships()) {
    if (!rel.Involves(tip)) continue;
    if (used_rels->count(rel.id) > 0) continue;
    ClassId next = rel.Other(tip);
    if (used_classes->count(next) > 0) continue;

    current->classes.push_back(next);
    current->relationships.push_back(rel.id);
    used_classes->insert(next);
    used_rels->insert(rel.id);
    Extend(schema, current, used_classes, used_rels, min_classes,
           max_classes, out);
    used_rels->erase(rel.id);
    used_classes->erase(next);
    current->relationships.pop_back();
    current->classes.pop_back();
  }
}

}  // namespace

std::vector<SchemaPath> EnumerateSimplePaths(const Schema& schema,
                                             size_t min_classes,
                                             size_t max_classes) {
  std::vector<SchemaPath> out;
  for (const ObjectClass& oc : schema.classes()) {
    SchemaPath path;
    path.classes.push_back(oc.id);
    std::set<ClassId> used_classes = {oc.id};
    std::set<RelId> used_rels;
    Extend(schema, &path, &used_classes, &used_rels, min_classes,
           max_classes, &out);
  }
  return out;
}

}  // namespace sqopt

// Schema path enumeration (§4): "All possible paths in this schema were
// identified, where a path consists of a series of interconnecting
// object classes and relationships, and no object class or relationship
// appears more than once. A query was formulated for each such path."
#ifndef SQOPT_WORKLOAD_PATH_ENUM_H_
#define SQOPT_WORKLOAD_PATH_ENUM_H_

#include <string>
#include <vector>

#include "catalog/schema.h"

namespace sqopt {

struct SchemaPath {
  std::vector<ClassId> classes;     // length k
  std::vector<RelId> relationships;  // length k-1

  std::string ToString(const Schema& schema) const;
};

// Every simple path (classes and relationships each used at most once)
// with between `min_classes` and `max_classes` classes. Paths are
// reported once per direction-free identity (the reverse of a path is
// not re-reported). Single-class "paths" are included when
// min_classes == 1.
std::vector<SchemaPath> EnumerateSimplePaths(const Schema& schema,
                                             size_t min_classes,
                                             size_t max_classes);

}  // namespace sqopt

#endif  // SQOPT_WORKLOAD_PATH_ENUM_H_
